"""Every scheduled-handler seed must survive a process boundary.

The multi-process backend ships event payloads between workers through
:mod:`repro.serialization` and resolves handlers by name on the
receiving shard. That contract silently breaks if a handler reachable
from the scheduler is a closure, a lambda, or otherwise not resolvable
from its module — simlint's SIM203 catches registrar-site closures
syntactically, and this test closes the remaining gap dynamically: it
takes the *actual* seed set the whole-program reachability pass
(:mod:`repro.analysis.reachability`) computes over ``src/repro``,
imports every seed, and asserts each one round-trips through the wire
format by reference.
"""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

from repro.analysis.astlint import lint_paths_program
from repro.serialization import decode_payload, encode_payload

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _seed_qualnames() -> list[str]:
    _, program, _ = lint_paths_program([str(SRC)])
    assert program is not None
    return sorted(program.seeds)


SEEDS = _seed_qualnames()


def _resolve(seed: str):
    mod_name, _, qual = seed.partition(":")
    obj = importlib.import_module(mod_name)
    for part in qual.split("."):
        obj = getattr(obj, part)
    return obj


def test_reachability_found_a_plausible_seed_set():
    # Guard the fixture itself: an empty or tiny seed set means the
    # entry patterns rotted and the per-seed assertions prove nothing.
    assert len(SEEDS) >= 10
    assert any("NetworkSimulator._handle_at" in s for s in SEEDS)
    assert any("FaultInjector._apply" in s for s in SEEDS)


@pytest.mark.parametrize("seed", SEEDS)
def test_scheduled_handler_seed_pickles_by_reference(seed):
    """The seed resolves from its module and round-trips the wire format.

    Pickle serializes plain functions by qualified reference, so a
    successful round-trip to the *identical* object proves the handler
    is name-addressable across processes — exactly what the backend's
    mail protocol and the spawn start method require. A closure or
    lambda seed fails both the resolution and the pickle step.
    """
    fn = _resolve(seed)
    assert callable(fn), f"seed {seed} resolved to a non-callable"
    assert decode_payload(encode_payload(fn)) is fn
