"""Shared fixtures: small networks and graphs reused across test modules.

Module-scoped where generation is expensive; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.online.wrapsocket import WrapSocket
from repro.partition import WeightedGraph
from repro.routing import ForwardingPlane
from repro.routing.bgp import configure_bgp
from repro.topology import generate_flat_network, generate_multi_as_network


@pytest.fixture(autouse=True)
def _reset_wrapsocket_listeners():
    """WrapSocket keeps class-level listener state; isolate tests."""
    WrapSocket.reset_listeners()
    yield
    WrapSocket.reset_listeners()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def flat_net():
    """A small single-AS network: 150 routers, 50 hosts."""
    return generate_flat_network(num_routers=150, num_hosts=50, seed=7)


@pytest.fixture(scope="session")
def flat_fib(flat_net):
    return ForwardingPlane(flat_net)


@pytest.fixture(scope="session")
def multi_net():
    """A small multi-AS network: 12 ASes x 12 routers, 60 hosts."""
    return generate_multi_as_network(num_ases=12, routers_per_as=12, num_hosts=60, seed=11)


@pytest.fixture(scope="session")
def multi_bgp(multi_net):
    return configure_bgp(multi_net)


@pytest.fixture(scope="session")
def multi_fib(multi_net, multi_bgp):
    return ForwardingPlane(multi_net, multi_bgp)


@pytest.fixture()
def grid_graph():
    """An 8x8 grid graph with unit weights and uniform 1 ms latencies."""
    n = 8
    us, vs = [], []
    for r in range(n):
        for c in range(n):
            v = r * n + c
            if c + 1 < n:
                us.append(v)
                vs.append(v + 1)
            if r + 1 < n:
                us.append(v)
                vs.append(v + n)
    m = len(us)
    return WeightedGraph(n * n, us, vs, np.ones(m), np.full(m, 1e-3))


@pytest.fixture()
def two_cluster_graph():
    """Two dense 10-cliques joined by a single long-latency bridge.

    The obvious bisection cuts only the bridge; used to verify cut
    quality and MLL behavior.
    """
    us, vs, lat = [], [], []
    for base in (0, 10):
        for i in range(10):
            for j in range(i + 1, 10):
                us.append(base + i)
                vs.append(base + j)
                lat.append(0.1e-3)  # intra-cluster: 0.1 ms
    us.append(0)
    vs.append(10)
    lat.append(5e-3)  # bridge: 5 ms
    return WeightedGraph(20, us, vs, np.ones(len(us)), np.asarray(lat))
