"""Tests for multi-seed aggregation and the bar/figure rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Approach
from repro.experiments import (
    ExperimentScale,
    MetricStats,
    aggregate_results,
    format_aggregate,
    format_bars,
    run_seed_sweep,
)

MICRO = ExperimentScale(
    name="agg-test",
    flat_routers=60,
    flat_hosts=24,
    num_ases=4,
    routers_per_as=8,
    multi_hosts=16,
    http_clients=10,
    http_servers=4,
    http_mean_gap_s=0.5,
    num_engines=4,
    app_processes=3,
    scalapack_iterations=1,
    duration_s=3.0,
    profile_duration_s=1.5,
)


@pytest.fixture(scope="module")
def sweep():
    return run_seed_sweep(
        "single-as",
        "scalapack",
        seeds=[0, 1],
        approaches=[Approach.HTOP, Approach.TOP2],
        scale=MICRO,
    )


class TestSeedSweep:
    def test_runs_all_seeds(self, sweep):
        assert len(sweep) == 2
        assert all(len(r.rows) == 2 for r in sweep)

    def test_seeds_differ(self, sweep):
        # Different seeds -> different topologies -> different metrics.
        a = sweep[0].metric(Approach.HTOP, "sim_time_s")
        b = sweep[1].metric(Approach.HTOP, "sim_time_s")
        assert a != b

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_seed_sweep("single-as", "scalapack", seeds=[], scale=MICRO)


class TestAggregate:
    def test_stats_consistent(self, sweep):
        stats = aggregate_results(sweep)
        for s in stats:
            assert s.count == 2
            assert s.min <= s.mean <= s.max
            assert s.std >= 0
        approaches = {s.approach for s in stats}
        assert approaches == {Approach.HTOP, Approach.TOP2}

    def test_mean_matches_manual(self, sweep):
        stats = aggregate_results(sweep)
        target = next(
            s for s in stats
            if s.approach is Approach.HTOP and s.metric == "sim_time_s"
        )
        manual = np.mean([r.metric(Approach.HTOP, "sim_time_s") for r in sweep])
        assert target.mean == pytest.approx(manual)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_format(self, sweep):
        text = format_aggregate(aggregate_results(sweep))
        assert "Simulation Time" in text
        assert "HTOP" in text and "TOP2" in text
        assert "over 2 runs" in text


class TestFormatBars:
    def test_renders(self, sweep):
        text = format_bars(sweep[0], "sim_time_s")
        assert "#" in text
        assert "HTOP" in text
        lines = text.splitlines()
        # The largest value gets the longest bar.
        t = {r.approach.value: r.sim_time_s for r in sweep[0].rows}
        worst = max(t, key=t.get)
        worst_line = next(l for l in lines if l.startswith(worst))
        assert worst_line.count("#") == max(l.count("#") for l in lines)

    def test_unknown_metric(self, sweep):
        with pytest.raises(ValueError):
            format_bars(sweep[0], "nope")
