"""Tests for the MPI-style collective primitives."""

from __future__ import annotations

import pytest

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator
from repro.netsim.app.collectives import (
    CollectiveGroup,
    all_to_all,
    broadcast,
    gather,
    reduce_tree,
    ring_exchange,
)
from repro.online import Agent


@pytest.fixture()
def group_env(flat_net, flat_fib):
    k = SimKernel()
    sim = NetworkSimulator(flat_net, flat_fib, k)
    agent = Agent(sim)
    group = CollectiveGroup(agent, flat_net.host_ids()[:6], name="t")
    return k, sim, group


class TestGroup:
    def test_needs_two_ranks(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        agent = Agent(sim)
        with pytest.raises(ValueError):
            CollectiveGroup(agent, flat_net.host_ids()[:1])

    def test_needs_distinct_hosts(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        agent = Agent(sim)
        h = flat_net.host_ids()[0]
        with pytest.raises(ValueError):
            CollectiveGroup(agent, [h, h])


class TestPrimitives:
    def _run(self, k, fn, timeout=60.0):
        done = []
        fn(done.append)
        k.run(until=timeout)
        return done

    def test_broadcast(self, group_env):
        k, sim, group = group_env
        done = self._run(k, lambda cb: broadcast(group, 0, 20_000, cb))
        assert done
        assert group.transfers_started == group.size - 1
        assert group.bytes_sent == 20_000 * (group.size - 1)

    def test_broadcast_invalid_root(self, group_env):
        _, _, group = group_env
        with pytest.raises(ValueError):
            broadcast(group, 99, 1000)

    def test_gather(self, group_env):
        k, sim, group = group_env
        done = self._run(k, lambda cb: gather(group, 2, 10_000, cb))
        assert done
        assert group.transfers_started == group.size - 1

    def test_all_to_all(self, group_env):
        k, sim, group = group_env
        p = group.size
        done = self._run(k, lambda cb: all_to_all(group, 5_000, cb))
        assert done
        assert group.transfers_started == p * (p - 1)

    def test_ring(self, group_env):
        k, sim, group = group_env
        done = self._run(k, lambda cb: ring_exchange(group, 8_000, cb))
        assert done
        assert group.transfers_started == group.size

    def test_reduce_tree_transfer_count(self, group_env):
        k, sim, group = group_env
        done = self._run(k, lambda cb: reduce_tree(group, 8_000, cb))
        assert done
        # A reduction combines P values into one: exactly P-1 transfers.
        assert group.transfers_started == group.size - 1

    def test_reduce_tree_two_ranks(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        agent = Agent(sim)
        group = CollectiveGroup(agent, flat_net.host_ids()[6:8], name="t2")
        done = []
        reduce_tree(group, 4_000, done.append)
        k.run(until=30.0)
        assert done
        assert group.transfers_started == 1

    def test_chained_phases(self, group_env):
        """broadcast -> ring -> gather composes like an app skeleton."""
        k, sim, group = group_env
        phases = []

        def phase3(t):
            phases.append(("gather", t))

        def phase2(t):
            phases.append(("ring", t))
            gather(group, 0, 5_000, phase3)

        def phase1(t):
            phases.append(("bcast", t))
            ring_exchange(group, 5_000, phase2)

        broadcast(group, 0, 5_000, phase1)
        k.run(until=120.0)
        assert [p for p, _ in phases] == ["bcast", "ring", "gather"]
        times = [t for _, t in phases]
        assert times == sorted(times)

    def test_completion_time_is_latest_arrival(self, group_env):
        k, sim, group = group_env
        arrivals = []
        group_done = []
        # Wrap: record each rank's arrival via listener-free per-send joins.
        broadcast(group, 0, 30_000, group_done.append)
        k.run(until=60.0)
        assert group_done
        assert group_done[0] <= k.now
