"""Validation tests: simulator behavior against analytic expectations.

These pin the physics of the substrate: TCP against slow-start theory and
capacity bounds, OSPF against an independent shortest-path oracle
(networkx), and full multi-AS experiments against basic invariants.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro.core import Approach
from repro.engine import SimKernel
from repro.netsim import (
    NetworkSimulator,
    TCP_HEADER_BYTES,
    TCP_MSS_BYTES,
    start_transfer,
)
from repro.routing import ForwardingPlane, OspfRouting, ospf_link_metric
from repro.topology import Network, NodeKind


def clean_path_net(bw=100e6, lat=10e-3):
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, bw, lat, queue_bytes=10**7)
    net.add_link(h0, r0, 1e9, 20e-6)
    net.add_link(h1, r1, 1e9, 20e-6)
    return net, h0, h1


class TestTcpAgainstTheory:
    def test_cannot_beat_capacity(self):
        bw = 10e6
        net, h0, h1 = clean_path_net(bw=bw, lat=1e-3)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        done = []
        nbytes = 1_000_000
        start_transfer(sim, h0, h1, nbytes, lambda t: done.append(t))
        k.run(until=60.0)
        assert done
        # Lower bound: payload + headers over the bottleneck.
        segments = math.ceil(nbytes / TCP_MSS_BYTES)
        wire_bytes = nbytes + segments * TCP_HEADER_BYTES
        assert done[0] >= wire_bytes * 8 / bw

    def test_slow_start_dominates_small_transfers(self):
        # 64 segments from cwnd=2 needs ~5 doubling rounds: the transfer
        # takes several RTTs even though serialization is negligible.
        rtt = 2 * (10e-3 + 2 * 20e-6)
        net, h0, h1 = clean_path_net(bw=1e9, lat=10e-3)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        done = []
        start_transfer(sim, h0, h1, 64 * TCP_MSS_BYTES, lambda t: done.append(t))
        k.run(until=10.0)
        assert done
        rounds = math.ceil(math.log2(64 / 2))  # cwnd 2 -> 64
        assert done[0] >= (rounds - 1) * rtt
        assert done[0] <= (rounds + 4) * rtt  # and not much more

    def test_long_transfer_approaches_capacity(self):
        bw = 50e6
        net, h0, h1 = clean_path_net(bw=bw, lat=2e-3)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        done = []
        nbytes = 4_000_000
        start_transfer(sim, h0, h1, nbytes, lambda t: done.append(t))
        k.run(until=60.0)
        assert done
        achieved = nbytes * 8 / done[0]
        assert achieved > 0.5 * bw  # within 2x of line rate after ramp-up

    def test_utilization_bounded(self):
        net, h0, h1 = clean_path_net(bw=10e6, lat=1e-3)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        start_transfer(sim, h0, h1, 2_000_000)
        k.run(until=5.0)
        for lr in sim.links:
            assert 0.0 <= lr.utilization(5.0) <= 1.0


class TestOspfAgainstOracle:
    def test_matches_networkx_dijkstra(self, flat_net):
        """Our reverse-SPT next hops must produce paths with the same total
        metric as networkx's Dijkstra on the identical weighted graph."""
        g = nx.Graph()
        for link in flat_net.links:
            g.add_edge(
                link.u, link.v, w=ospf_link_metric(link.latency_s, link.bandwidth_bps)
            )
        ospf = OspfRouting(flat_net, list(range(flat_net.num_nodes)))
        rng = np.random.default_rng(7)
        nodes = rng.choice(flat_net.num_nodes, size=8, replace=False)
        for a in nodes[:4]:
            for b in nodes[4:]:
                ours = ospf.distance(int(a), int(b))
                oracle = nx.dijkstra_path_length(g, int(a), int(b), weight="w")
                assert ours == pytest.approx(oracle, rel=1e-9)


class TestMultiAsExperimentInvariants:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ExperimentScale, run_experiment

        scale = ExperimentScale(
            name="val-micro",
            flat_routers=60,
            flat_hosts=24,
            num_ases=8,
            routers_per_as=8,
            multi_hosts=28,
            http_clients=16,
            http_servers=6,
            http_mean_gap_s=0.4,
            num_engines=6,
            app_processes=4,
            scalapack_iterations=2,
            duration_s=4.0,
            profile_duration_s=2.0,
            event_cost_s=75e-6,
            remote_event_cost_s=190e-6,
        )
        return run_experiment("multi-as", "gridnpb", scale=scale, seed=1)

    def test_all_metrics_finite_positive(self, result):
        for row in result.rows:
            assert math.isfinite(row.sim_time_s) and row.sim_time_s > 0
            assert math.isfinite(row.achieved_mll_ms) and row.achieved_mll_ms > 0
            assert 0 <= row.parallel_eff <= 1

    def test_every_engine_loaded(self, result):
        """No simulation engine may end up with zero events under any of
        the serious mappings (all parts populated + traffic spread)."""
        for row in result.rows:
            if row.approach in (Approach.HPROF, Approach.PROF2):
                assert np.all(row.prediction.events_per_lp > 0)

    def test_time_decomposition(self, result):
        for row in result.rows:
            pred = row.prediction
            assert pred.total_s == pytest.approx(pred.compute_s + pred.sync_s)
            assert 0 <= pred.sync_fraction <= 1
