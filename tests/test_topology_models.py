"""Tests for the Network / Node / Link / ASDomain data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import ASDomain, ASTier, Network, NodeKind


def tiny_net():
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER, position=(0, 0))
    r1 = net.add_node(NodeKind.ROUTER, position=(100, 0))
    h = net.add_node(NodeKind.HOST, position=(0, 0))
    net.add_link(r0, r1, 1e9, 1e-3)
    net.add_link(h, r0, 100e6, 20e-6)
    return net, r0, r1, h


class TestConstruction:
    def test_counts(self):
        net, *_ = tiny_net()
        assert net.num_nodes == 3
        assert net.num_routers == 2
        assert net.num_hosts == 1
        assert net.num_links == 2

    def test_self_link_rejected(self):
        net, r0, *_ = tiny_net()
        with pytest.raises(ValueError):
            net.add_link(r0, r0, 1e9, 1e-3)

    def test_unknown_node_rejected(self):
        net, *_ = tiny_net()
        with pytest.raises(ValueError):
            net.add_link(0, 99, 1e9, 1e-3)

    def test_bad_latency_rejected(self):
        net, r0, r1, _ = tiny_net()
        with pytest.raises(ValueError):
            net.add_link(r0, r1, 1e9, 0.0)

    def test_bad_bandwidth_rejected(self):
        net, r0, r1, _ = tiny_net()
        with pytest.raises(ValueError):
            net.add_link(r0, r1, -1.0, 1e-3)

    def test_duplicate_as_rejected(self):
        net, *_ = tiny_net()
        net.add_as(1, ASTier.STUB)
        with pytest.raises(ValueError):
            net.add_as(1, ASTier.CORE)


class TestQueries:
    def test_neighbors(self):
        net, r0, r1, h = tiny_net()
        nbrs = {n for n, _ in net.neighbors(r0)}
        assert nbrs == {r1, h}

    def test_link_between(self):
        net, r0, r1, h = tiny_net()
        assert net.link_between(r0, r1) is not None
        assert net.link_between(r1, h) is None

    def test_link_other(self):
        net, r0, r1, _ = tiny_net()
        link = net.link_between(r0, r1)
        assert link.other(r0) == r1
        assert link.other(r1) == r0
        with pytest.raises(ValueError):
            link.other(99)

    def test_total_node_bandwidth(self):
        net, r0, *_ = tiny_net()
        assert net.total_node_bandwidth(r0) == pytest.approx(1e9 + 100e6)

    def test_min_link_latency(self):
        net, *_ = tiny_net()
        assert net.min_link_latency() == pytest.approx(20e-6)

    def test_min_link_latency_empty(self):
        assert Network().min_link_latency() == np.inf

    def test_is_connected(self):
        net, *_ = tiny_net()
        assert net.is_connected()
        net.add_node(NodeKind.ROUTER)
        assert not net.is_connected()

    def test_degree(self):
        net, r0, r1, h = tiny_net()
        assert net.degree(r0) == 2
        assert net.degree(h) == 1


class TestASDomain:
    def test_relationships(self):
        dom = ASDomain(as_id=1, tier=ASTier.STUB, providers={2}, peers={3})
        assert dom.relationship_to(2) == "provider"
        assert dom.relationship_to(3) == "peer"
        with pytest.raises(KeyError):
            dom.relationship_to(9)

    def test_neighbor_ases(self):
        dom = ASDomain(as_id=1, tier=ASTier.REGIONAL, providers={2}, customers={4}, peers={3})
        assert dom.neighbor_ases == {2, 3, 4}


class TestConversions:
    def test_to_graph_dimensions(self):
        net, *_ = tiny_net()
        g = net.to_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_to_graph_latencies_match_links(self):
        net, *_ = tiny_net()
        g = net.to_graph()
        _, _, _, lat = g.edge_list()
        assert sorted(lat.tolist()) == pytest.approx([20e-6, 1e-3])

    def test_to_graph_custom_weights(self):
        net, *_ = tiny_net()
        g = net.to_graph(vertex_weight=[1.0, 2.0, 3.0], edge_weight=[5.0, 7.0])
        assert g.total_vertex_weight == pytest.approx(6.0)

    def test_to_networkx(self):
        net, *_ = tiny_net()
        nx_g = net.to_networkx()
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 2
        assert nx_g.nodes[2]["kind"] == "host"
