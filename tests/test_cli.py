"""Tests for the `python -m repro` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_validates_network(self):
        with pytest.raises(SystemExit):
            main(["experiment", "mesh", "scalapack"])

    def test_experiment_validates_app(self):
        with pytest.raises(SystemExit):
            main(["experiment", "single-as", "hadoop"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            main(["figures", "--scale", "galactic"])


class TestSyncCost:
    def test_prints_table(self, capsys):
        assert main(["synccost"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "100" in out and "580" in out


class TestExperimentCommand:
    def test_invokes_runner(self, capsys, monkeypatch):
        calls = {}

        def fake_run(network, app, scale=None, seed=0):
            calls["args"] = (network, app, scale.name, seed)

            class R:
                pass

            return R()

        monkeypatch.setattr("repro.experiments.run_experiment", fake_run)
        monkeypatch.setattr(
            "repro.experiments.format_result", lambda r: "FAKE RESULT"
        )
        assert main(["experiment", "multi-as", "gridnpb", "--seed", "3"]) == 0
        assert calls["args"] == ("multi-as", "gridnpb", "small", 3)
        assert "FAKE RESULT" in capsys.readouterr().out

    def test_save_flag_writes_result(self, monkeypatch, capsys, tmp_path):
        saved = {}
        monkeypatch.setattr(
            "repro.experiments.run_experiment",
            lambda *a, **k: "RESULT",
        )
        monkeypatch.setattr("repro.experiments.format_result", lambda r: "")
        monkeypatch.setattr(
            "repro.serialization.save_result",
            lambda result, path: saved.update(result=result, path=path),
        )
        out = tmp_path / "res.json"
        assert main(["experiment", "single-as", "scalapack", "--save", str(out)]) == 0
        assert saved == {"result": "RESULT", "path": str(out)}

    def test_scale_flag_selects_scale(self, monkeypatch, capsys):
        seen = {}

        def fake_run(network, app, scale=None, seed=0):
            seen["scale"] = scale.name
            return object()

        monkeypatch.setattr("repro.experiments.run_experiment", fake_run)
        monkeypatch.setattr("repro.experiments.format_result", lambda r: "")
        main(["experiment", "single-as", "scalapack", "--scale", "medium"])
        assert seen["scale"] == "medium"

    def test_obs_out_flag_forwarded_to_runner(self, monkeypatch, capsys, tmp_path):
        seen = {}

        def fake_run(network, app, scale=None, seed=0, obs_out=None):
            seen["obs_out"] = obs_out
            return object()

        monkeypatch.setattr("repro.experiments.run_experiment", fake_run)
        monkeypatch.setattr("repro.experiments.format_result", lambda r: "")
        out = tmp_path / "snap.json"
        assert main(
            ["experiment", "single-as", "scalapack", "--obs-out", str(out)]
        ) == 0
        assert seen["obs_out"] == str(out)


class TestChaosCommand:
    def _fake_result(self, recovered=True):
        class R:
            pass

        r = R()
        r.recovered = recovered
        return r

    def test_invokes_runner_with_builtin_scenario(self, capsys, monkeypatch):
        calls = {}

        def fake_run(network, app, scenario, scale=None, seed=0, duration_s=None,
                     obs_out=None):
            calls["args"] = (network, app, scenario.name, seed, duration_s)
            return self._fake_result()

        monkeypatch.setattr("repro.experiments.run_chaos_experiment", fake_run)
        monkeypatch.setattr(
            "repro.experiments.format_chaos_report", lambda r: "CHAOS REPORT"
        )
        rc = main(
            ["chaos", "multi-as", "scalapack", "--scenario", "link-flap",
             "--seed", "2", "--duration", "5"]
        )
        assert rc == 0
        assert calls["args"] == ("multi-as", "scalapack", "link-flap", 2, 5.0)
        assert "CHAOS REPORT" in capsys.readouterr().out

    def test_degraded_run_exits_nonzero(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.run_chaos_experiment",
            lambda *a, **k: self._fake_result(recovered=False),
        )
        monkeypatch.setattr(
            "repro.experiments.format_chaos_report", lambda r: "DEGRADED"
        )
        assert main(["chaos", "multi-as", "scalapack"]) == 1
        capsys.readouterr()

    def test_spec_file_overrides_scenario(self, capsys, monkeypatch, tmp_path):
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps({"name": "mini", "link_flaps": 1}))
        seen = {}

        def fake_run(network, app, scenario, **kwargs):
            seen["scenario"] = scenario
            return self._fake_result()

        monkeypatch.setattr("repro.experiments.run_chaos_experiment", fake_run)
        monkeypatch.setattr(
            "repro.experiments.format_chaos_report", lambda r: "ok"
        )
        assert main(["chaos", "single-as", "gridnpb", "--spec", str(spec)]) == 0
        assert seen["scenario"].name == "mini"
        assert seen["scenario"].link_flaps == 1
        capsys.readouterr()

    def test_bad_spec_key_rejected(self, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"blast_radius": 9}))
        with pytest.raises(ValueError, match="unknown scenario keys"):
            main(["chaos", "single-as", "gridnpb", "--spec", str(spec)])

    def test_validates_network_and_scenario_choices(self):
        with pytest.raises(SystemExit):
            main(["chaos", "bogus-net", "scalapack"])
        with pytest.raises(SystemExit):
            main(["chaos", "multi-as", "scalapack", "--scenario", "nope"])


class TestTraceCommand:
    def test_trace_writes_validated_snapshot(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        rc = main(
            ["trace", "single-as", "scalapack", "--duration", "0.25",
             "--out", str(out)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "[validators passed]" in printed
        assert "node events" in printed

        data = json.loads(out.read_text())
        assert data["version"] == 1
        assert data["meta"]["network"] == "single-as"
        assert data["meta"]["approach"] == "PROF"
        assert "efficiency" in data["meta"]["partition"]
        assert data["counters"]["netsim.packets.sent"] > 0
        node_events = data["vectors"]["netsim.node.events"]
        assert node_events["sum"] > 0
        assert data["series"]["netsim.node.rate_bins"]["num_bins"] >= 1

    def test_trace_prometheus_format(self, capsys, tmp_path):
        out = tmp_path / "trace.prom"
        rc = main(
            ["trace", "single-as", "--duration", "0.25", "--out", str(out),
             "--format", "prom"]
        )
        assert rc == 0
        text = out.read_text()
        assert "# TYPE repro_netsim_packets_sent counter" in text

    def test_trace_validates_network_choice(self):
        with pytest.raises(SystemExit):
            main(["trace", "mesh"])

    def test_trace_rejects_topology_only_approach(self, capsys):
        # TOP needs no profile, so snapshot mode has nothing to validate
        # it against (exit 2). --timeline does accept it (base mapping).
        assert main(["trace", "single-as", "--approach", "TOP"]) == 2
        assert "does not consume a profile" in capsys.readouterr().out

    def test_timeline_emits_blame_whatif_and_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "timeline.json"
        rc = main(["trace", "--timeline", "--duration", "0.2", "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        # (b) the per-LP blame table with its sum cross-check
        assert "blame sums to it exactly" in printed
        assert "straggler wins" in printed
        assert "barrier wait per window: p50" in printed
        assert "critical path:" in printed
        # (c) what-if scores for all four candidate mappings
        assert "<== best" in printed
        for label in ("TOP", "PROF", "HTOP", "HPROF"):
            assert label in printed
        # (a) a Perfetto-loadable Chrome trace-event document
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and all("ts" in e and "dur" in e for e in slices)

    def test_timeline_trace_capacity_bounds_the_ring(self, capsys, tmp_path):
        out = tmp_path / "timeline.json"
        rc = main(["trace", "--timeline", "--duration", "0.2",
                   "--trace-capacity", "64", "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "trace overflowed" in printed
        assert "retained suffix" in printed
