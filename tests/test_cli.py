"""Tests for the `python -m repro` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_validates_network(self):
        with pytest.raises(SystemExit):
            main(["experiment", "mesh", "scalapack"])

    def test_experiment_validates_app(self):
        with pytest.raises(SystemExit):
            main(["experiment", "single-as", "hadoop"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            main(["figures", "--scale", "galactic"])


class TestSyncCost:
    def test_prints_table(self, capsys):
        assert main(["synccost"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "100" in out and "580" in out


class TestExperimentCommand:
    def test_invokes_runner(self, capsys, monkeypatch):
        calls = {}

        def fake_run(network, app, scale=None, seed=0):
            calls["args"] = (network, app, scale.name, seed)

            class R:
                pass

            return R()

        monkeypatch.setattr("repro.experiments.run_experiment", fake_run)
        monkeypatch.setattr(
            "repro.experiments.format_result", lambda r: "FAKE RESULT"
        )
        assert main(["experiment", "multi-as", "gridnpb", "--seed", "3"]) == 0
        assert calls["args"] == ("multi-as", "gridnpb", "small", 3)
        assert "FAKE RESULT" in capsys.readouterr().out

    def test_save_flag_writes_result(self, monkeypatch, capsys, tmp_path):
        saved = {}
        monkeypatch.setattr(
            "repro.experiments.run_experiment",
            lambda *a, **k: "RESULT",
        )
        monkeypatch.setattr("repro.experiments.format_result", lambda r: "")
        monkeypatch.setattr(
            "repro.serialization.save_result",
            lambda result, path: saved.update(result=result, path=path),
        )
        out = tmp_path / "res.json"
        assert main(["experiment", "single-as", "scalapack", "--save", str(out)]) == 0
        assert saved == {"result": "RESULT", "path": str(out)}

    def test_scale_flag_selects_scale(self, monkeypatch, capsys):
        seen = {}

        def fake_run(network, app, scale=None, seed=0):
            seen["scale"] = scale.name
            return object()

        monkeypatch.setattr("repro.experiments.run_experiment", fake_run)
        monkeypatch.setattr("repro.experiments.format_result", lambda r: "")
        main(["experiment", "single-as", "scalapack", "--scale", "medium"])
        assert seen["scale"] == "medium"
