"""Tests for BGP attributes, policies, decision process, and the engine."""

from __future__ import annotations

import pytest

from repro.routing.bgp import (
    BgpEngine,
    BgpSpeaker,
    LOCAL_PREF,
    Origin,
    Route,
    best_route,
    decision_key,
    export_allowed,
    import_local_pref,
    is_valley_free,
    learned_relationship,
)


def mk_route(prefix=9, path=(2, 9), pref=100, nh=None, origin=Origin.IGP, med=0):
    return Route(
        prefix=prefix,
        as_path=tuple(path),
        local_pref=pref,
        next_hop_as=nh if nh is not None else (path[0] if path else prefix),
        origin=origin,
        med=med,
    )


class TestRoute:
    def test_originate(self):
        r = Route.originate(5)
        assert r.prefix == 5
        assert r.is_local
        assert r.path_length == 0
        assert r.local_pref == LOCAL_PREF["local"]

    def test_announced_by_prepends(self):
        r = Route.originate(5).announced_by(5, 100)
        assert r.as_path == (5,)
        assert r.next_hop_as == 5
        assert r.local_pref == 100

    def test_loop_detection(self):
        r = mk_route(path=(2, 3, 9))
        assert r.contains_loop(3)
        assert not r.contains_loop(7)


class TestDecision:
    def test_local_pref_first(self):
        lo = mk_route(pref=80, path=(1, 9))
        hi = mk_route(pref=100, path=(2, 3, 4, 5, 9))  # longer path, higher pref
        assert best_route([lo, hi]) is hi

    def test_shorter_path_wins(self):
        short = mk_route(path=(2, 9))
        long = mk_route(path=(3, 4, 9))
        assert best_route([long, short]) is short

    def test_origin_ranks_third(self):
        igp = mk_route(origin=Origin.IGP)
        egp = mk_route(path=(3, 9), origin=Origin.EGP)
        # same pref, same length: IGP preferred
        assert best_route([egp, igp]) is igp

    def test_med_ranks_fourth(self):
        low = mk_route(med=1)
        high = mk_route(path=(3, 9), med=10)
        chosen = best_route([high, low])
        assert chosen.med == 1

    def test_next_hop_tiebreak_deterministic(self):
        a = mk_route(path=(2, 9))
        b = mk_route(path=(3, 9))
        assert best_route([b, a]).next_hop_as == 2

    def test_empty(self):
        assert best_route([]) is None

    def test_decision_key_orders(self):
        better = mk_route(pref=100)
        worse = mk_route(pref=90)
        assert decision_key(better) < decision_key(worse)


class TestPolicies:
    RELS = {2: "customer", 3: "peer", 4: "provider"}

    def test_learned_relationship(self):
        assert learned_relationship(Route.originate(1), self.RELS) == "local"
        assert learned_relationship(mk_route(path=(2, 9)), self.RELS) == "customer"
        assert learned_relationship(mk_route(path=(4, 9)), self.RELS) == "provider"

    def test_learned_relationship_unknown_next_hop(self):
        from repro.routing.bgp.policy import PolicyError

        with pytest.raises(PolicyError, match="next-hop AS 8.*known neighbor"):
            learned_relationship(mk_route(path=(8, 9)), self.RELS)
        # Backwards compatible: PolicyError is still a KeyError.
        with pytest.raises(KeyError):
            learned_relationship(mk_route(path=(8, 9)), self.RELS)

    def test_export_to_customer_everything(self):
        for path in [(), (2, 9), (3, 9), (4, 9)]:
            r = Route.originate(9) if not path else mk_route(path=path)
            assert export_allowed(r, "customer", self.RELS)

    def test_export_to_peer_no_transit(self):
        assert export_allowed(Route.originate(1), "peer", self.RELS)
        assert export_allowed(mk_route(path=(2, 9)), "peer", self.RELS)  # customer route
        assert not export_allowed(mk_route(path=(3, 9)), "peer", self.RELS)  # peer route
        assert not export_allowed(mk_route(path=(4, 9)), "peer", self.RELS)  # provider route

    def test_export_to_provider_no_transit(self):
        assert export_allowed(mk_route(path=(2, 9)), "provider", self.RELS)
        assert not export_allowed(mk_route(path=(3, 9)), "provider", self.RELS)
        assert not export_allowed(mk_route(path=(4, 9)), "provider", self.RELS)

    def test_import_pref_ordering(self):
        assert (
            import_local_pref("customer")
            > import_local_pref("peer")
            > import_local_pref("provider")
        )


class TestValleyFree:
    def rel_of(self, a, b):
        # Chain 0 <- 1 <- 2 (2 at top), 2 peers 3, 3 -> 4 -> 5 descending.
        providers = {0: 1, 1: 2, 5: 4, 4: 3}
        peers = {(2, 3), (3, 2)}
        if providers.get(a) == b:
            return "provider"
        if providers.get(b) == a:
            return "customer"
        if (a, b) in peers:
            return "peer"
        raise KeyError((a, b))

    def test_up_peer_down_ok(self):
        assert is_valley_free((1, 2, 3, 4, 5), 5, self.rel_of)

    def test_pure_up_ok(self):
        assert is_valley_free((1, 2), 2, self.rel_of)

    def test_pure_down_ok(self):
        assert is_valley_free((4, 5), 5, self.rel_of)

    def test_valley_rejected(self):
        # 3 -> 1 descends (1 is 3's customer), then 1 -> 2 climbs
        # (2 is 1's provider): a valley.
        rels = {(3, 1): "customer", (1, 2): "provider"}
        assert not is_valley_free((3, 1, 2), 2, lambda a, b: rels[(a, b)])

    def test_peer_after_descent_rejected(self):
        # 3 -> 1 descends, then 1 -> 2 crosses a peer link: also invalid.
        rels = {(3, 1): "customer", (1, 2): "peer"}
        assert not is_valley_free((3, 1, 2), 2, lambda a, b: rels[(a, b)])

    def test_double_peer_rejected(self):
        # Two peer crossings: 1 -peer- 2 -peer- 3.
        rels = {(1, 2): "peer", (2, 3): "peer"}
        assert not is_valley_free((1, 2, 3), 3, lambda a, b: rels[(a, b)])

    def test_single_hop_trivially_valid(self):
        assert is_valley_free((5,), 5, self.rel_of)


def three_as_engine():
    """1 provides to 2 and 3; 2 and 3 peer."""
    speakers = {
        1: BgpSpeaker(1, {2: "customer", 3: "customer"}),
        2: BgpSpeaker(2, {1: "provider", 3: "peer"}),
        3: BgpSpeaker(3, {1: "provider", 2: "peer"}),
    }
    return BgpEngine(speakers)


class TestEngine:
    def test_converges(self):
        eng = three_as_engine()
        assert eng.run() <= 5
        assert eng.converged

    def test_full_reachability(self):
        eng = three_as_engine()
        eng.run()
        for a in (1, 2, 3):
            assert set(eng.speakers[a].rib) == {1, 2, 3}

    def test_peer_preferred_over_provider(self):
        eng = three_as_engine()
        eng.run()
        # 2 reaches 3 directly via the peer link, not via provider 1.
        assert eng.next_hop_as(2, 3) == 3

    def test_as_path_follows_next_hops(self):
        eng = three_as_engine()
        eng.run()
        assert eng.as_path(2, 3) == (2, 3)
        assert eng.as_path(1, 2) == (1, 2)
        assert eng.as_path(2, 2) == (2,)

    def test_no_transit_between_customers_peers(self):
        # 1 <- 2, 1 <- 3 (1 is customer of both providers 2 and 3):
        # 2 and 3 are unrelated; 1 must not transit between them.
        speakers = {
            1: BgpSpeaker(1, {2: "provider", 3: "provider"}),
            2: BgpSpeaker(2, {1: "customer"}),
            3: BgpSpeaker(3, {1: "customer"}),
        }
        eng = BgpEngine(speakers)
        eng.run()
        # Customer 1 reaches both providers, but 2 cannot reach 3:
        # 1 does not export provider routes to its other provider.
        assert eng.route(1, 2) is not None
        assert eng.route(2, 3) is None
        assert eng.route(3, 2) is None

    def test_inconsistent_relationships_rejected(self):
        speakers = {
            1: BgpSpeaker(1, {2: "customer"}),
            2: BgpSpeaker(2, {1: "peer"}),
        }
        with pytest.raises(ValueError, match="inconsistent"):
            BgpEngine(speakers)

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(ValueError, match="unknown neighbor"):
            BgpEngine({1: BgpSpeaker(1, {9: "peer"})})

    def test_reachability_matrix(self):
        eng = three_as_engine()
        eng.run()
        matrix = eng.reachability_matrix()
        assert matrix[1] == {1, 2, 3}
