"""Unit tests for ``repro.faults``: schedules, injector mechanics, sessions.

Covers the determinism contract at the schedule level (same scenario +
network + seed -> same digest), the injector's application of each fault
kind to the simulator/forwarding plane, and the BGP session FSM
(withdrawal on reset, backoff re-establishment, retry exhaustion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.kernel import SimKernel
from repro.faults import (
    BUILTIN_SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultScenario,
    FaultSchedule,
)
from repro.netsim.simulator import NetworkSimulator
from repro.obs.trace import traced_run
from repro.routing import ForwardingPlane
from repro.routing.bgp.engine import BgpEngine, BgpSpeaker
from repro.routing.bgp.session import BgpSessionManager, SessionState
from repro.topology import generate_flat_network, generate_multi_as_network


class TestFaultEvent:
    def test_param_lookup_and_default(self):
        fe = FaultEvent(
            1.0, FaultKind.LOSS_BURST_START, (3,), (("corrupt_prob", 0.1), ("loss_prob", 0.2))
        )
        assert fe.param("loss_prob") == 0.2
        assert fe.param("corrupt_prob") == 0.1
        assert fe.param("absent", 7.0) == 7.0

    def test_canonical_is_stable_text(self):
        fe = FaultEvent(0.5, FaultKind.LINK_DOWN, (9,))
        assert fe.canonical() == "0.5|link.down|(9,)|"


class TestFaultSchedule:
    def test_events_sorted_by_time_then_kind(self):
        late = FaultEvent(2.0, FaultKind.LINK_UP, (1,))
        early = FaultEvent(1.0, FaultKind.LINK_DOWN, (1,))
        sched = FaultSchedule.from_events([late, early])
        assert [e.time for e in sched] == [1.0, 2.0]
        assert len(sched) == 2

    def test_digest_reflects_content(self):
        a = FaultSchedule.from_events([FaultEvent(1.0, FaultKind.LINK_DOWN, (1,))])
        b = FaultSchedule.from_events([FaultEvent(1.0, FaultKind.LINK_DOWN, (2,))])
        same_as_a = FaultSchedule.from_events([FaultEvent(1.0, FaultKind.LINK_DOWN, (1,))])
        assert a.digest() == same_as_a.digest()
        assert a.digest() != b.digest()
        assert FaultSchedule.from_events([]).digest() == FaultSchedule.from_events([]).digest()


class TestFaultScenario:
    def test_dict_round_trip(self):
        sc = BUILTIN_SCENARIOS["chaos-mixed"]
        assert FaultScenario.from_dict(sc.to_dict()) == sc

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            FaultScenario.from_dict({"link_flaps": 1, "blast_radius": 3})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_s": 2.0, "end_s": 1.0},
            {"loss_prob": 1.5},
            {"corrupt_prob": -0.1},
            {"slowdown_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultScenario(**kwargs)


class TestScenarioMaterialization:
    @pytest.fixture(scope="class")
    def tiny_multi_net(self):
        return generate_multi_as_network(num_ases=4, routers_per_as=4, num_hosts=12, seed=5)

    def test_same_inputs_same_digest(self, tiny_multi_net):
        sc = BUILTIN_SCENARIOS["chaos-mixed"]
        d1 = FaultSchedule.from_scenario(sc, tiny_multi_net, seed=3).digest()
        d2 = FaultSchedule.from_scenario(sc, tiny_multi_net, seed=3).digest()
        assert d1 == d2

    def test_seed_changes_schedule(self, tiny_multi_net):
        sc = BUILTIN_SCENARIOS["chaos-mixed"]
        d1 = FaultSchedule.from_scenario(sc, tiny_multi_net, seed=3).digest()
        d2 = FaultSchedule.from_scenario(sc, tiny_multi_net, seed=4).digest()
        assert d1 != d2

    def test_event_counts_match_scenario(self, tiny_multi_net):
        sc = FaultScenario(
            link_flaps=2,
            flap_cycles=2,
            router_restarts=1,
            loss_bursts=1,
            lp_slowdowns=1,
            bgp_resets=1,
        )
        sched = FaultSchedule.from_scenario(sc, tiny_multi_net, seed=0)
        kinds = [e.kind for e in sched]
        # Each flap cycle is a down/up pair; restarts and bursts pair too.
        assert kinds.count(FaultKind.LINK_DOWN) == 4
        assert kinds.count(FaultKind.LINK_UP) == 4
        assert kinds.count(FaultKind.ROUTER_DOWN) == 1
        assert kinds.count(FaultKind.ROUTER_UP) == 1
        assert kinds.count(FaultKind.LOSS_BURST_START) == 1
        assert kinds.count(FaultKind.LOSS_BURST_END) == 1
        assert kinds.count(FaultKind.LP_SLOWDOWN_START) == 1
        assert kinds.count(FaultKind.LP_SLOWDOWN_END) == 1
        assert kinds.count(FaultKind.BGP_SESSION_RESET) == 1

    def test_events_fall_inside_window(self, tiny_multi_net):
        sc = FaultScenario(start_s=2.0, end_s=6.0, link_flaps=3, router_restarts=2)
        sched = FaultSchedule.from_scenario(sc, tiny_multi_net, seed=1)
        downs = [e for e in sched if e.kind in (FaultKind.LINK_DOWN, FaultKind.ROUTER_DOWN)]
        assert downs and all(2.0 <= e.time <= 6.0 + 2 * sc.flap_down_s for e in downs)


@pytest.fixture()
def small_sim():
    net = generate_flat_network(num_routers=12, num_hosts=6, seed=3)
    fib = ForwardingPlane(net)
    kernel = SimKernel()
    sim = NetworkSimulator(net, fib, kernel)
    return net, fib, kernel, sim


class TestFaultInjector:
    def test_empty_schedule_is_inert(self, small_sim):
        _net, fib, kernel, sim = small_sim
        with traced_run() as tracer:
            injector = FaultInjector(sim, fib, FaultSchedule.from_events([]))
            injector.install(kernel)
            kernel.run(until=1.0)
        assert injector.counts.injected == 0
        assert not tracer.faults
        assert fib.route_recompute_stats()["invalidations"] == 0

    def test_link_flap_round_trip(self, small_sim):
        net, fib, kernel, sim = small_sim
        link_id = net.links[0].link_id
        sched = FaultSchedule.from_events(
            [
                FaultEvent(1.0, FaultKind.LINK_DOWN, (link_id,)),
                FaultEvent(2.0, FaultKind.LINK_UP, (link_id,)),
            ]
        )
        with traced_run() as tracer:
            injector = FaultInjector(sim, fib, sched)
            injector.install(kernel)
            kernel.run(until=3.0)
        assert injector.counts.link_transitions == 2
        assert not injector.links_down
        assert not sim.links[link_id].failed
        assert fib.route_recompute_stats()["invalidations"] >= 2
        assert [(r.kind, r.phase) for r in tracer.faults] == [
            ("link.down", "inject"),
            ("link.up", "recover"),
        ]

    def test_router_crash_and_restart(self, small_sim):
        net, fib, kernel, sim = small_sim
        node = next(n.node_id for n in net.nodes if net.degree(n.node_id) >= 2)
        sched = FaultSchedule.from_events(
            [
                FaultEvent(1.0, FaultKind.ROUTER_DOWN, (node,)),
                FaultEvent(2.0, FaultKind.ROUTER_UP, (node,)),
            ]
        )
        injector = FaultInjector(sim, fib, sched)
        injector.install(kernel)
        kernel.run(until=1.5)
        assert injector.nodes_down == {node}
        kernel.run(until=3.0)
        assert not injector.nodes_down
        assert injector.counts.router_transitions == 2

    def test_crashed_router_blackholes_packets(self, small_sim):
        net, fib, kernel, sim = small_sim
        node = net.nodes[0].node_id
        sim.set_node_down(node)
        before = sim.dropped_fault
        sim._handle_at(node, object())
        assert sim.dropped_fault == before + 1
        sim.set_node_up(node)

    def test_loss_burst_sets_and_clears_probabilities(self, small_sim):
        net, fib, kernel, sim = small_sim
        link_id = net.links[0].link_id
        sched = FaultSchedule.from_events(
            [
                FaultEvent(
                    1.0,
                    FaultKind.LOSS_BURST_START,
                    (link_id,),
                    (("corrupt_prob", 0.05), ("loss_prob", 0.3)),
                ),
                FaultEvent(2.0, FaultKind.LOSS_BURST_END, (link_id,)),
            ]
        )
        injector = FaultInjector(sim, fib, sched)
        injector.install(kernel)
        kernel.run(until=1.5)
        assert sim.links[link_id].loss_prob == 0.3
        assert sim.links[link_id].corrupt_prob == 0.05
        kernel.run(until=3.0)
        assert sim.links[link_id].loss_prob == 0.0
        assert sim.links[link_id].corrupt_prob == 0.0
        assert injector.counts.loss_transitions == 2

    def test_busy_multipliers_cover_slowdown_spans(self, small_sim):
        _net, fib, kernel, sim = small_sim
        sched = FaultSchedule.from_events(
            [
                FaultEvent(2.0, FaultKind.LP_SLOWDOWN_START, (1,), (("factor", 3.0),)),
                FaultEvent(5.0, FaultKind.LP_SLOWDOWN_END, (1,)),
            ]
        )
        injector = FaultInjector(sim, fib, sched)
        injector.install(kernel)
        kernel.run(until=6.0)
        assert injector.slowdown_spans == [(1, 2.0, 5.0, 3.0)]
        mult = injector.busy_multipliers(10, 4, window_s=1.0, end_time=10.0)
        assert mult.shape == (10, 4)
        assert np.all(mult[2:5, 1] == 3.0)
        assert np.all(mult[:2, 1] == 1.0)
        assert np.all(mult[5:, 1] == 1.0)
        assert np.all(mult[:, [0, 2, 3]] == 1.0)

    def test_open_slowdown_extends_to_end_time(self, small_sim):
        _net, fib, kernel, sim = small_sim
        sched = FaultSchedule.from_events(
            [FaultEvent(4.0, FaultKind.LP_SLOWDOWN_START, (0,), (("factor", 2.0),))]
        )
        injector = FaultInjector(sim, fib, sched)
        injector.install(kernel)
        kernel.run(until=6.0)
        mult = injector.busy_multipliers(8, 2, window_s=1.0, end_time=8.0)
        assert np.all(mult[4:, 0] == 2.0)

    def test_bgp_reset_without_sessions_is_noted_not_fatal(self, small_sim):
        _net, fib, kernel, sim = small_sim
        sched = FaultSchedule.from_events(
            [FaultEvent(1.0, FaultKind.BGP_SESSION_RESET, (1, 2), (("down_for", 1.0),))]
        )
        with traced_run() as tracer:
            injector = FaultInjector(sim, fib, sched)
            injector.install(kernel)
            kernel.run(until=2.0)
        assert injector.counts.injected == 1
        assert [r.kind for r in tracer.faults] == ["bgp.reset.skipped"]


def _chain_engine() -> BgpEngine:
    """AS1 <- AS2 <- AS3 provider chain (customer routes reach everyone)."""
    speakers = {
        1: BgpSpeaker(1, {2: "provider"}),
        2: BgpSpeaker(2, {1: "customer", 3: "provider"}),
        3: BgpSpeaker(3, {2: "customer"}),
    }
    engine = BgpEngine(speakers)
    engine.run()
    return engine


class TestBgpSessionManager:
    def test_reset_withdraws_then_reestablishes(self):
        engine = _chain_engine()
        assert engine.route(1, 3) is not None
        kernel = SimKernel()
        events: list[str] = []
        mgr = BgpSessionManager(
            engine, kernel, base_retry_s=0.2, seed=0,
            on_change=lambda ev, a, b, detail: events.append(ev),
        )
        mgr.reset(2, 3, down_for_s=1.0)
        info = mgr.session(2, 3)
        assert info.state is SessionState.CONNECT
        # Withdrawal propagated network-wide: AS1 lost the transit route.
        assert engine.route(1, 3) is None
        assert engine.route(3, 1) is None
        kernel.run(until=30.0)
        assert info.state is SessionState.ESTABLISHED
        assert mgr.all_established()
        assert engine.route(1, 3) is not None
        assert mgr.stats.resets == 1
        assert mgr.stats.reestablished == 1
        assert mgr.stats.gave_up == 0
        assert mgr.stats.withdraw_iterations >= 1
        assert mgr.stats.readvertise_iterations >= 1
        assert events[0] == "withdrawn"
        assert events[-1] == "reestablished"

    def test_retry_budget_exhaustion_gives_up(self):
        engine = _chain_engine()
        kernel = SimKernel()
        mgr = BgpSessionManager(
            engine, kernel, base_retry_s=0.1, max_retry_s=0.2, max_retries=2, seed=0
        )
        mgr.reset(1, 2, down_for_s=1e9)
        kernel.run(until=60.0)
        assert mgr.session(1, 2).state is SessionState.DOWN
        assert mgr.stats.gave_up == 1
        assert mgr.stats.retry_attempts == 3  # budget + the failing final one
        assert not mgr.all_established()

    def test_second_reset_extends_outage_without_new_teardown(self):
        engine = _chain_engine()
        kernel = SimKernel()
        events: list[str] = []
        mgr = BgpSessionManager(
            engine, kernel, base_retry_s=0.2, seed=0,
            on_change=lambda ev, a, b, detail: events.append(ev),
        )
        mgr.reset(2, 3, down_for_s=5.0)
        first_deadline = mgr.session(2, 3).down_until
        mgr.reset(2, 3, down_for_s=9.0)
        assert mgr.stats.resets == 1
        assert mgr.session(2, 3).down_until > first_deadline
        assert "reset-extended" in events
        kernel.run(until=60.0)
        assert mgr.all_established()

    def test_backoff_is_bounded_and_jittered(self):
        engine = _chain_engine()
        kernel = SimKernel()
        mgr = BgpSessionManager(
            engine, kernel, base_retry_s=0.5, max_retry_s=2.0, jitter=0.1, seed=0
        )
        delays = [mgr._backoff_delay(k) for k in range(8)]
        assert all(d >= 0.5 for d in delays)
        assert all(d <= 2.0 * 1.1 + 1e-12 for d in delays)
        # Deterministic: same seed reproduces the same jittered sequence.
        mgr2 = BgpSessionManager(
            _chain_engine(), SimKernel(), base_retry_s=0.5, max_retry_s=2.0, jitter=0.1, seed=0
        )
        assert delays == [mgr2._backoff_delay(k) for k in range(8)]
