"""Whole-program analyzer tests: callgraph, reachability, SIM2xx rules.

Each SIM2xx rule gets a fixture trio — a positive case (fires), a
negative case (stays silent), and a suppressed case — exercised through
:func:`repro.analysis.lint_sources`, the same multi-file entry point the
CLI uses. A fixture tree here is just a tiny program: paths are given
under ``repro/`` so the parallel-safety rules are in scope.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    BaselineError,
    baseline_key,
    build_program_context,
    filter_new_findings,
    findings_to_sarif,
    lint_source,
    lint_sources,
    load_baseline,
    save_baseline,
)
from repro.analysis.astlint import _make_context
from repro.analysis.rules import all_rules


def rules_for(*ids: str):
    picked = [r for r in all_rules() if r.rule_id in ids]
    assert len(picked) == len(ids), f"unknown rule id among {ids}"
    return picked


def run_program(sources: dict[str, str], *rule_ids: str):
    """Lint a {path: source} fixture tree with the selected rules."""
    findings, program = lint_sources(
        [(src, path) for path, src in sources.items()],
        rules_for(*rule_ids) if rule_ids else None,
    )
    return findings, program


def build_program(sources: dict[str, str]):
    contexts = [_make_context(src, path) for path, src in sources.items()]
    return build_program_context(contexts)


# ---------------------------------------------------------------------------
# Call graph resolution
# ---------------------------------------------------------------------------
class TestCallGraph:
    def test_self_method_call_resolves_precisely(self):
        prog = build_program(
            {
                "repro/a.py": (
                    "class K:\n"
                    "    def top(self):\n"
                    "        self.helper()\n"
                    "    def helper(self):\n"
                    "        pass\n"
                )
            }
        )
        assert "repro.a:K.helper" in prog.graph.successors("repro.a:K.top")

    def test_same_module_function_call(self):
        prog = build_program(
            {"repro/a.py": "def f():\n    g()\ndef g():\n    pass\n"}
        )
        assert "repro.a:g" in prog.graph.successors("repro.a:f")

    def test_constructor_resolves_to_init(self):
        prog = build_program(
            {
                "repro/a.py": (
                    "class Widget:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "def make():\n"
                    "    return Widget()\n"
                )
            }
        )
        assert "repro.a:Widget.__init__" in prog.graph.successors("repro.a:make")

    def test_annotated_receiver_resolves_method(self):
        prog = build_program(
            {
                "repro/a.py": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        pass\n"
                    "def drive(e: Engine):\n"
                    "    e.step()\n"
                )
            }
        )
        assert "repro.a:Engine.step" in prog.graph.successors("repro.a:drive")

    def test_cross_module_import_resolves(self):
        prog = build_program(
            {
                "repro/a.py": "def helper():\n    pass\n",
                "repro/b.py": (
                    "from repro.a import helper\n"
                    "def caller():\n    helper()\n"
                ),
            }
        )
        assert "repro.a:helper" in prog.graph.successors("repro.b:caller")

    def test_dunder_names_excluded_from_by_name_fallback(self):
        # ``x.__init__()`` on an unknown receiver must NOT fan out to every
        # constructor in the program (the super().__init__ explosion).
        prog = build_program(
            {
                "repro/a.py": (
                    "class Other:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "def f(x):\n"
                    "    x.__init__()\n"
                )
            }
        )
        assert "repro.a:Other.__init__" not in prog.graph.successors("repro.a:f")


# ---------------------------------------------------------------------------
# Reachability
# ---------------------------------------------------------------------------
class TestReachability:
    def test_entry_pattern_seeds_engine_loop(self):
        prog = build_program(
            {
                "repro/k.py": (
                    "class SimKernel:\n"
                    "    def run(self):\n"
                    "        self.dispatch()\n"
                    "    def dispatch(self):\n"
                    "        pass\n"
                    "def offline_report():\n"
                    "    pass\n"
                )
            }
        )
        assert "repro.k:SimKernel.run" in prog.seeds
        assert "repro.k:SimKernel.dispatch" in prog.reachable
        assert "repro.k:offline_report" not in prog.reachable

    def test_scheduled_handler_is_seeded(self):
        prog = build_program(
            {
                "repro/k.py": (
                    "class App:\n"
                    "    def boot(self, sched):\n"
                    "        sched.schedule_at(1.0, self.on_tick)\n"
                    "    def on_tick(self):\n"
                    "        self.work()\n"
                    "    def work(self):\n"
                    "        pass\n"
                )
            }
        )
        assert "repro.k:App.on_tick" in prog.seeds
        assert "repro.k:App.work" in prog.reachable

    def test_partial_wrapped_handler_is_seeded(self):
        prog = build_program(
            {
                "repro/k.py": (
                    "from functools import partial\n"
                    "class App:\n"
                    "    def boot(self, sched):\n"
                    "        sched.schedule(1.0, partial(self.on_done, 3))\n"
                    "    def on_done(self, k, t):\n"
                    "        pass\n"
                )
            }
        )
        assert "repro.k:App.on_done" in prog.seeds

    def test_on_star_kwarg_seeds_on_any_call(self):
        prog = build_program(
            {
                "repro/k.py": (
                    "class App:\n"
                    "    def boot(self, sock):\n"
                    "        sock.send(100, on_received=self.got)\n"
                    "    def got(self, t):\n"
                    "        pass\n"
                )
            }
        )
        assert "repro.k:App.got" in prog.seeds

    def test_fn_kwarg_only_seeds_on_registrar_calls(self):
        # argparse's set_defaults(fn=cmd) must not make every CLI command
        # LP-reachable.
        prog = build_program(
            {
                "repro/k.py": (
                    "def cmd_plot(args):\n"
                    "    pass\n"
                    "def wire(sub):\n"
                    "    sub.set_defaults(fn=cmd_plot)\n"
                )
            }
        )
        assert "repro.k:cmd_plot" not in prog.seeds

    def test_chain_reports_auditable_path(self):
        prog = build_program(
            {
                "repro/k.py": (
                    "class SimKernel:\n"
                    "    def run(self):\n"
                    "        self.a()\n"
                    "    def a(self):\n"
                    "        self.b()\n"
                    "    def b(self):\n"
                    "        pass\n"
                )
            }
        )
        chain = prog.chain("repro.k:SimKernel.b")
        assert chain == "SimKernel.b <- SimKernel.a <- SimKernel.run"

    def test_stats_are_populated(self):
        prog = build_program({"repro/k.py": "def f():\n    pass\n"})
        for key in ("modules", "functions", "call_edges", "seeds", "reachable"):
            assert key in prog.stats


# ---------------------------------------------------------------------------
# SIM201 — shared mutable state on the LP path
# ---------------------------------------------------------------------------
SIM201_POSITIVE = (
    "import itertools\n"
    "_seq = itertools.count()\n"
    "class SimKernel:\n"
    "    def run(self):\n"
    "        return next(_seq)\n"
)


class TestSim201:
    def test_module_counter_mutated_on_lp_path(self):
        findings, _ = run_program({"repro/k.py": SIM201_POSITIVE}, "SIM201")
        assert [f.rule_id for f in findings] == ["SIM201"]
        assert "SimKernel.run" in findings[0].message

    def test_dict_store_on_lp_path(self):
        src = (
            "_cache = {}\n"
            "class SimKernel:\n"
            "    def run(self, k):\n"
            "        _cache[k] = 1\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM201")
        assert [f.rule_id for f in findings] == ["SIM201"]

    def test_unreachable_writer_is_silent(self):
        src = (
            "import itertools\n"
            "_seq = itertools.count()\n"
            "def offline_tool():\n"
            "    return next(_seq)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM201")
        assert findings == []

    def test_class_level_mutable_attr_mutated_from_handler(self):
        src = (
            "class Table:\n"
            "    _shared = {}\n"
            "    def boot(self, sched):\n"
            "        sched.schedule(1.0, self.on_event)\n"
            "    def on_event(self):\n"
            "        self._shared['k'] = 1\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM201")
        assert [f.rule_id for f in findings] == ["SIM201"]

    def test_instance_attr_shadowing_is_silent(self):
        src = (
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._mine = {}\n"
            "    def boot(self, sched):\n"
            "        sched.schedule(1.0, self.on_event)\n"
            "    def on_event(self):\n"
            "        self._mine['k'] = 1\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM201")
        assert findings == []

    def test_suppression_comment_silences(self):
        src = SIM201_POSITIVE.replace(
            "return next(_seq)", "return next(_seq)  # simlint: disable=SIM201"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM201")
        assert findings == []


# ---------------------------------------------------------------------------
# SIM202 — unordered iteration feeding the simulation
# ---------------------------------------------------------------------------
class TestSim202:
    def test_dict_iteration_scheduling_fires(self):
        src = (
            "class SimKernel:\n"
            "    def __init__(self):\n"
            "        self.peers = {}\n"
            "    def run(self, sched):\n"
            "        for p in self.peers:\n"
            "            sched.schedule(1.0, p)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM202")
        assert [f.rule_id for f in findings] == ["SIM202"]

    def test_sorted_iteration_is_silent(self):
        src = (
            "class SimKernel:\n"
            "    def __init__(self):\n"
            "        self.peers = {}\n"
            "    def run(self, sched):\n"
            "        for p in sorted(self.peers):\n"
            "            sched.schedule(1.0, p)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM202")
        assert findings == []

    def test_set_iteration_with_mutation_fires(self):
        src = (
            "class SimKernel:\n"
            "    def __init__(self):\n"
            "        self.live = set()\n"
            "        self.order = []\n"
            "    def run(self):\n"
            "        for s in self.live:\n"
            "            self.order.append(s)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM202")
        assert [f.rule_id for f in findings] == ["SIM202"]

    def test_pure_read_loop_is_silent(self):
        src = (
            "class SimKernel:\n"
            "    def __init__(self):\n"
            "        self.peers = {}\n"
            "    def run(self):\n"
            "        total = 0\n"
            "        for p in self.peers:\n"
            "            total += p\n"
            "        return total\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM202")
        assert findings == []

    def test_unreachable_loop_is_silent(self):
        src = (
            "def offline(peers, sched):\n"
            "    for p in peers.items():\n"
            "        sched.schedule(1.0, p)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM202")
        assert findings == []

    def test_suppression_comment_silences(self):
        src = (
            "class SimKernel:\n"
            "    def __init__(self):\n"
            "        self.peers = {}\n"
            "    def run(self, sched):\n"
            "        for p in self.peers:  # simlint: disable=SIM202\n"
            "            sched.schedule(1.0, p)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM202")
        assert findings == []


# ---------------------------------------------------------------------------
# SIM203 — statically unpicklable scheduled payloads
# ---------------------------------------------------------------------------
class TestSim203:
    def test_lambda_payload_fires(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        sched.schedule_at(1.0, lambda: None)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert [f.rule_id for f in findings] == ["SIM203"]
        assert "lambda" in findings[0].message

    def test_nested_function_payload_fires(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        def cb():\n"
            "            pass\n"
            "        sched.schedule(1.0, cb)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert [f.rule_id for f in findings] == ["SIM203"]

    def test_bound_method_with_args_is_silent(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        sched.schedule_at(1.0, self.on_tick, args=(3,))\n"
            "    def on_tick(self, k):\n"
            "        pass\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert findings == []

    def test_partial_of_bound_method_is_silent(self):
        src = (
            "from functools import partial\n"
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        sched.schedule(1.0, partial(self.on_tick, 3))\n"
            "    def on_tick(self, k):\n"
            "        pass\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert findings == []

    def test_unreachable_schedule_is_silent(self):
        src = (
            "def offline(sched):\n"
            "    sched.schedule(1.0, lambda: None)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert findings == []

    def test_suppression_comment_silences(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        sched.schedule_at(1.0, lambda: None)  # simlint: disable=SIM203\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert findings == []


# ---------------------------------------------------------------------------
# SIM204 — RNG stream aliasing
# ---------------------------------------------------------------------------
class TestSim204:
    def test_same_seed_at_two_sites_fires_at_both(self):
        sources = {
            "repro/a.py": (
                "import numpy as np\n"
                "def make_a():\n"
                "    return np.random.default_rng(42)\n"
            ),
            "repro/b.py": (
                "import numpy as np\n"
                "def make_b():\n"
                "    return np.random.default_rng(42)\n"
            ),
        }
        findings, _ = run_program(sources, "SIM204")
        assert sorted(f.path for f in findings) == ["repro/a.py", "repro/b.py"]
        assert all(f.rule_id == "SIM204" for f in findings)
        # Messages cite the other site by path only (stable baseline keys).
        assert "repro/b.py" in findings[0].message
        assert ":" + str(findings[1].line) not in findings[0].message

    def test_distinct_seeds_are_silent(self):
        sources = {
            "repro/a.py": (
                "import numpy as np\n"
                "def make_a():\n"
                "    return np.random.default_rng(1)\n"
            ),
            "repro/b.py": (
                "import numpy as np\n"
                "def make_b():\n"
                "    return np.random.default_rng(2)\n"
            ),
        }
        findings, _ = run_program(sources, "SIM204")
        assert findings == []

    def test_derived_seed_expressions_alias(self):
        # Same derivation from structurally-equivalent parts at two sites.
        body = (
            "import numpy as np\n"
            "class {name}:\n"
            "    def __init__(self, link):\n"
            "        self.rng = np.random.default_rng(0x9E37 ^ link.link_id)\n"
        )
        sources = {
            "repro/a.py": body.format(name="A"),
            "repro/b.py": body.format(name="B"),
        }
        findings, _ = run_program(sources, "SIM204")
        assert len(findings) == 2


# ---------------------------------------------------------------------------
# SIM205 — accumulated float time drift
# ---------------------------------------------------------------------------
class TestSim205:
    def test_time_accumulation_in_loop_fires(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, events, dt):\n"
            "        t = 0.0\n"
            "        for _ in events:\n"
            "            t += dt\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM205")
        assert [f.rule_id for f in findings] == ["SIM205"]

    def test_unreachable_accumulation_is_silent(self):
        src = (
            "def offline_sweep(events, dt):\n"
            "    t = 0.0\n"
            "    for _ in events:\n"
            "        t += dt\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM205")
        assert findings == []

    def test_multiplied_index_is_silent(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, events, dt):\n"
            "        for i, _ in enumerate(events):\n"
            "            t = i * dt\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM205")
        assert findings == []

    def test_non_time_accumulator_is_silent(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, events):\n"
            "        total = 0\n"
            "        for e in events:\n"
            "            total += 1\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM205")
        assert findings == []


# ---------------------------------------------------------------------------
# Single-file mode: SIM2xx stay silent without a program
# ---------------------------------------------------------------------------
def test_sim2xx_rules_need_whole_program_context():
    findings = lint_source(SIM201_POSITIVE, "repro/k.py", rules_for("SIM201"))
    assert findings == []


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------
class TestBaseline:
    def _findings(self):
        findings, _ = run_program({"repro/k.py": SIM201_POSITIVE}, "SIM201")
        assert findings
        return findings

    def test_roundtrip_and_filter(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "base.json"
        save_baseline(str(path), findings)
        baseline = load_baseline(str(path))
        assert baseline[baseline_key(findings[0])] == 1
        assert filter_new_findings(findings, baseline) == []

    def test_new_finding_escapes_baseline(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "base.json"
        save_baseline(str(path), findings)
        baseline = load_baseline(str(path))
        extra_src = SIM201_POSITIVE.replace("_seq", "_other")
        new, _ = run_program({"repro/k.py": extra_src}, "SIM201")
        assert filter_new_findings(new, baseline) == new

    def test_baseline_key_ignores_line_numbers(self):
        findings = self._findings()
        shifted, _ = run_program(
            {"repro/k.py": "# a comment pushing lines down\n" + SIM201_POSITIVE},
            "SIM201",
        )
        assert findings[0].line != shifted[0].line
        assert baseline_key(findings[0]) == baseline_key(shifted[0])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_wrong_structure_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "findings": ["a"]}))
        with pytest.raises(BaselineError):
            load_baseline(str(path))


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------
def test_sarif_document_shape():
    findings, _ = run_program({"repro/k.py": SIM201_POSITIVE}, "SIM201")
    doc = findings_to_sarif(findings, all_rules())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "SIM201" in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "SIM201"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "repro/k.py"
    assert loc["region"]["startLine"] == findings[0].line


# ---------------------------------------------------------------------------
# Suppression forms
# ---------------------------------------------------------------------------
class TestSuppressionForms:
    def test_disable_next_line(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        # simlint: disable-next-line=SIM203\n"
            "        sched.schedule_at(1.0, lambda: None)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert findings == []

    def test_disable_next_line_wrong_rule_does_not_silence(self):
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        # simlint: disable-next-line=SIM201\n"
            "        sched.schedule_at(1.0, lambda: None)\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert [f.rule_id for f in findings] == ["SIM203"]

    def test_disable_on_parenthesized_continuation(self):
        # The suppression comment sits on a continuation line of the same
        # logical statement; the finding anchors on the first line.
        src = (
            "class SimKernel:\n"
            "    def run(self, sched):\n"
            "        sched.schedule_at(\n"
            "            1.0,\n"
            "            lambda: None,  # simlint: disable=SIM203\n"
            "        )\n"
        )
        findings, _ = run_program({"repro/k.py": src}, "SIM203")
        assert findings == []
