"""Tests for the link transmission model."""

from __future__ import annotations

import pytest

from repro.netsim import LinkRuntime, Packet, Protocol
from repro.topology.models import Link


def mk_link(bw=1e6, lat=1e-3, queue=10_000):
    return LinkRuntime(Link(0, 1, 2, bw, lat, queue))


def pkt(size=1000):
    return Packet(src=1, dst=2, size_bytes=size, protocol=Protocol.UDP, flow_id=1)


class TestTransmit:
    def test_timing(self):
        lr = mk_link(bw=1e6, lat=1e-3)
        res = lr.transmit(1, pkt(1000), now=0.0)
        assert res.accepted
        assert res.start_time == 0.0
        # 1000 B at 1 Mb/s = 8 ms transmit + 1 ms propagation
        assert res.arrival_time == pytest.approx(0.009)

    def test_serialization(self):
        lr = mk_link(bw=1e6)
        r1 = lr.transmit(1, pkt(1000), 0.0)
        r2 = lr.transmit(1, pkt(1000), 0.0)
        assert r2.start_time == pytest.approx(0.008)  # waits for first

    def test_directions_independent(self):
        lr = mk_link(bw=1e6)
        lr.transmit(1, pkt(1000), 0.0)
        rev = lr.transmit(2, pkt(1000), 0.0)
        assert rev.start_time == 0.0

    def test_drop_when_queue_full(self):
        lr = mk_link(bw=1e6, queue=2_000)
        results = [lr.transmit(1, pkt(1000), 0.0) for _ in range(8)]
        assert not all(r.accepted for r in results)
        assert lr.total_drops >= 1

    def test_queue_drains_over_time(self):
        lr = mk_link(bw=1e6, queue=2_000)
        for _ in range(4):
            lr.transmit(1, pkt(1000), 0.0)
        # much later the backlog is gone
        res = lr.transmit(1, pkt(1000), 1.0)
        assert res.accepted
        assert res.start_time == 1.0

    def test_counters(self):
        lr = mk_link()
        lr.transmit(1, pkt(500), 0.0)
        lr.transmit(2, pkt(700), 0.0)
        assert lr.total_bytes == 1200
        assert lr.total_packets == 2

    def test_wrong_node_raises(self):
        lr = mk_link()
        with pytest.raises(ValueError):
            lr.transmit(99, pkt(), 0.0)

    def test_utilization(self):
        lr = mk_link(bw=1e6)
        lr.transmit(1, pkt(12_500), 0.0)  # 0.1 s of a 1 Mb/s link
        assert lr.utilization(1.0) == pytest.approx(0.1)
        assert lr.utilization(0.0) == 0.0
