"""Tests for the link transmission model."""

from __future__ import annotations

import pytest

from repro.netsim import LinkRuntime, Packet, Protocol
from repro.topology.models import Link


def mk_link(bw=1e6, lat=1e-3, queue=10_000, discipline="droptail"):
    return LinkRuntime(Link(0, 1, 2, bw, lat, queue), discipline=discipline)


def pkt(size=1000):
    return Packet(src=1, dst=2, size_bytes=size, protocol=Protocol.UDP, flow_id=1)


class TestTransmit:
    def test_timing(self):
        lr = mk_link(bw=1e6, lat=1e-3)
        res = lr.transmit(1, pkt(1000), now=0.0)
        assert res.accepted
        assert res.start_time == 0.0
        # 1000 B at 1 Mb/s = 8 ms transmit + 1 ms propagation
        assert res.arrival_time == pytest.approx(0.009)

    def test_serialization(self):
        lr = mk_link(bw=1e6)
        r1 = lr.transmit(1, pkt(1000), 0.0)
        r2 = lr.transmit(1, pkt(1000), 0.0)
        assert r2.start_time == pytest.approx(0.008)  # waits for first

    def test_directions_independent(self):
        lr = mk_link(bw=1e6)
        lr.transmit(1, pkt(1000), 0.0)
        rev = lr.transmit(2, pkt(1000), 0.0)
        assert rev.start_time == 0.0

    def test_drop_when_queue_full(self):
        lr = mk_link(bw=1e6, queue=2_000)
        results = [lr.transmit(1, pkt(1000), 0.0) for _ in range(8)]
        assert not all(r.accepted for r in results)
        assert lr.total_drops >= 1

    def test_queue_drains_over_time(self):
        lr = mk_link(bw=1e6, queue=2_000)
        for _ in range(4):
            lr.transmit(1, pkt(1000), 0.0)
        # much later the backlog is gone
        res = lr.transmit(1, pkt(1000), 1.0)
        assert res.accepted
        assert res.start_time == 1.0

    def test_counters(self):
        lr = mk_link()
        lr.transmit(1, pkt(500), 0.0)
        lr.transmit(2, pkt(700), 0.0)
        assert lr.total_bytes == 1200
        assert lr.total_packets == 2

    def test_wrong_node_raises(self):
        lr = mk_link()
        with pytest.raises(ValueError):
            lr.transmit(99, pkt(), 0.0)

    def test_admission_counts_packet_itself(self):
        # Regression: admission is backlog + packet > queue_bytes. With a
        # 2000 B buffer and 1000 B packets the third offer (backlog
        # exactly 2000) must be dropped — the old backlog-only test let
        # the buffer overshoot by a packet.
        lr = mk_link(bw=1e6, queue=2_000)
        assert lr.transmit(1, pkt(1000), 0.0).accepted  # backlog 0
        assert lr.transmit(1, pkt(1000), 0.0).accepted  # backlog 1000 (fits exactly)
        third = lr.transmit(1, pkt(1000), 0.0)  # backlog 2000: would overshoot
        assert not third.accepted
        assert third.backlog_bytes == pytest.approx(2_000)
        assert lr.total_drops == 1

    def test_oversized_packet_dropped_even_into_empty_queue(self):
        # Regression: a packet larger than the whole buffer must never be
        # admitted, even with zero backlog.
        lr = mk_link(bw=1e6, queue=10_000)
        assert not lr.transmit(1, pkt(12_500), 0.0).accepted
        assert lr.total_drops == 1

    def test_utilization(self):
        # Buffer sized above the packet: admission now counts the packet
        # itself against queue_bytes, so it must fit to be accepted.
        lr = mk_link(bw=1e6, queue=20_000)
        lr.transmit(1, pkt(12_500), 0.0)  # 0.1 s of a 1 Mb/s link
        assert lr.utilization(1.0) == pytest.approx(0.1)
        assert lr.utilization(0.0) == 0.0


class _StubRng:
    """Deterministic stand-in for the link's RNG: always returns `value`."""

    def __init__(self, value):
        self.value = value
        self.calls = 0

    def random(self):
        self.calls += 1
        return self.value


class TestGentleRedProfile:
    """Deterministic checks of the piecewise-linear gentle-RED profile.

    queue=10_000 with default RedParams gives min_th=500, max_th=5_000:
    p = 0 up to min_th, linear to max_p=0.1 at max_th, linear from 0.1
    to 1.0 at 2*max_th (gentle ramp), certain drop beyond. The stub RNG
    turns the probabilistic decision into an exact threshold test.
    """

    def _red(self, rng_value):
        lr = mk_link(queue=10_000, discipline="red")
        lr._rng = _StubRng(rng_value)
        return lr

    def test_no_drop_at_or_below_min_th(self):
        lr = self._red(0.0)  # rng would drop at any p > 0
        assert not lr._early_drop(0.0)
        assert not lr._early_drop(500.0)
        assert lr._rng.calls == 0  # short-circuits before consulting the RNG

    def test_linear_ramp_to_max_p(self):
        # midpoint of [min_th, max_th): p = max_p / 2 = 0.05
        assert self._red(0.0499)._early_drop(2_750.0)
        assert not self._red(0.0501)._early_drop(2_750.0)

    def test_continuous_at_max_th(self):
        # Regression: the old profile jumped to min(2 * max_p, 1) at
        # max_th. Gentle RED is continuous: p(max_th) == max_p == 0.1.
        assert self._red(0.0999)._early_drop(5_000.0)
        assert not self._red(0.1001)._early_drop(5_000.0)

    def test_gentle_ramp_midpoint(self):
        # at 1.5 * max_th: p = max_p + (1 - max_p) / 2 = 0.55
        assert self._red(0.5499)._early_drop(7_500.0)
        assert not self._red(0.5501)._early_drop(7_500.0)

    def test_certain_drop_at_twice_max_th(self):
        lr = self._red(0.999999)  # rng alone would never drop
        assert lr._early_drop(10_000.0)
        assert lr._rng.calls == 0  # certain region never consults the RNG

    def test_droptail_never_early_drops(self):
        lr = mk_link(queue=10_000)  # default discipline
        lr._rng = _StubRng(0.0)
        assert not lr._early_drop(9_999.0)
