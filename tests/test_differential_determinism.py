"""Differential determinism across scheduler, queue, and process backends.

The same seeded workload is run on the sequential kernel and on the
conservative engine with heap-backed and calendar-backed LP queues. The
queue backend must be invisible: the two conservative runs must match
*bit-for-bit* (delivery log order included), and the kernel run must
produce the same set of deliveries, the same traffic counters, and the
same per-node packet counts (its interleaving across LPs legitimately
differs within a window, so only its log *order* is compared sorted).

The cross-process classes extend the bar to the multi-process backend:
1, 2, and 4 real worker processes must produce byte-identical delivery
logs, traffic-counter fingerprints, and fault outcomes against the
single-process reference — on a plain workload and under a chaos
schedule — and a hypothesis sweep drives arbitrary LP counts and
partition interleavings through the in-process shard group (which runs
the identical barrier/mail protocol, serialization included).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.conservative import ConservativeEngine
from repro.engine.kernel import SimKernel
from repro.engine.parallel import LocalShardGroup, ParallelConservativeEngine
from repro.experiments.shard import (
    chain_spec,
    delivery_log_bytes,
    merge_collected,
    run_reference,
)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.netsim.packet import Packet, Protocol
from repro.netsim.simulator import NetworkSimulator
from repro.obs.trace import traced_run
from repro.routing.fib import ForwardingPlane
from repro.topology.models import Network, NodeKind

NUM_NODES = 8
LATENCY_S = 1e-4  # every link; also the conservative lookahead
# contiguous halves: nodes 0-3 on LP 0, nodes 4-7 on LP 1
ASSIGNMENT = np.array([0, 0, 0, 0, 1, 1, 1, 1])
PACKETS = 40


def _build_chain() -> tuple[Network, ForwardingPlane]:
    net = Network()
    for _ in range(NUM_NODES):
        net.add_node(NodeKind.ROUTER)
    for u in range(NUM_NODES - 1):
        net.add_link(u, u + 1, 1e9, LATENCY_S, 1 << 26)
    return net, ForwardingPlane(net)


def _run(scheduler):
    """Run the canonical workload; returns (sim, delivery log).

    The log records ``(time, node, flow_id, seq)`` per delivery by
    shadowing ``sim._deliver`` with a recording wrapper. Flow ids are
    explicit (not drawn from the global allocator) so the three runs see
    byte-identical packets.
    """
    net, fib = _build_chain()
    sim = NetworkSimulator(net, fib, scheduler)
    log: list[tuple[float, int, int, int]] = []
    orig_deliver = sim._deliver

    def recording(node: int, packet: Packet) -> None:
        log.append((round(sim.now, 12), node, packet.flow_id, packet.seq))
        orig_deliver(node, packet)

    sim._deliver = recording
    rng = np.random.default_rng(7)
    times = np.sort(rng.uniform(0.0, 0.01, size=PACKETS)).tolist()
    for i, t in enumerate(times):
        src, dst = (0, NUM_NODES - 1) if i % 2 == 0 else (NUM_NODES - 1, 0)
        packet = Packet(
            src=src, dst=dst, size_bytes=1000, protocol=Protocol.UDP,
            flow_id=i, seq=i,
        )
        scheduler.schedule_at(t, sim.inject, node=src, args=(packet,))
    scheduler.run(until=0.05)
    return sim, log


def _run_with_faults(scheduler, events):
    """The canonical workload plus a fault schedule; returns the run's
    (sim, delivery log, fault trace records)."""
    net, fib = _build_chain()
    sim = NetworkSimulator(net, fib, scheduler)
    log: list[tuple[float, int, int, int]] = []
    orig_deliver = sim._deliver

    def recording(node: int, packet: Packet) -> None:
        log.append((round(sim.now, 12), node, packet.flow_id, packet.seq))
        orig_deliver(node, packet)

    sim._deliver = recording
    with traced_run() as tracer:
        injector = FaultInjector(sim, fib, FaultSchedule.from_events(events))
        injector.install(scheduler)
        rng = np.random.default_rng(7)
        times = np.sort(rng.uniform(0.0, 0.01, size=PACKETS)).tolist()
        for i, t in enumerate(times):
            src, dst = (0, NUM_NODES - 1) if i % 2 == 0 else (NUM_NODES - 1, 0)
            packet = Packet(
                src=src, dst=dst, size_bytes=1000, protocol=Protocol.UDP,
                flow_id=i, seq=i,
            )
            scheduler.schedule_at(t, sim.inject, node=src, args=(packet,))
        scheduler.run(until=0.05)
        faults = list(tracer.faults)
    return sim, log, faults


# Faults confined to LP 0's half of the chain (links 1-2 and 2-3), so
# the conservative runs order them against packet events within one LP.
FAULT_EVENTS = [
    FaultEvent(0.001, FaultKind.LOSS_BURST_START, (2,), (("loss_prob", 0.3),)),
    FaultEvent(0.002, FaultKind.LINK_DOWN, (1,)),
    FaultEvent(0.004, FaultKind.LINK_UP, (1,)),
    FaultEvent(0.006, FaultKind.LOSS_BURST_END, (2,)),
]


class TestDifferentialDeterminism:
    def test_backends_are_interchangeable(self):
        kern_sim, kern_log = _run(SimKernel())
        heap_eng = ConservativeEngine(
            ASSIGNMENT, 2, lookahead=LATENCY_S, queue="heap"
        )
        heap_sim, heap_log = _run(heap_eng)
        cal_eng = ConservativeEngine(
            ASSIGNMENT, 2, lookahead=LATENCY_S, queue="calendar"
        )
        cal_sim, cal_log = _run(cal_eng)

        # Sanity: the workload is drop-free and fully delivered.
        assert kern_sim.counters.packets_delivered == PACKETS
        assert kern_sim.counters.packets_dropped_queue == 0

        # Heap vs calendar LP queues: bit-for-bit identical execution.
        assert heap_log == cal_log
        assert heap_eng.events_executed == cal_eng.events_executed
        assert [ws.total_events for ws in heap_eng.window_stats] == [
            ws.total_events for ws in cal_eng.window_stats
        ]

        # Sequential vs conservative: same deliveries (order compared
        # sorted — within a window the LP interleaving differs), same
        # counters, same per-node packet counts.
        assert sorted(kern_log) == sorted(heap_log)
        assert kern_sim.counters.as_dict() == heap_sim.counters.as_dict()
        assert kern_sim.counters.as_dict() == cal_sim.counters.as_dict()
        assert np.array_equal(kern_sim.node_packets, heap_sim.node_packets)
        assert np.array_equal(kern_sim.node_packets, cal_sim.node_packets)

    def test_adaptive_matches_heap_on_kernel(self):
        # The sequential kernel's default adaptive queue must execute the
        # identical schedule as an explicit heap backend.
        a_sim, a_log = _run(SimKernel(queue="adaptive"))
        h_sim, h_log = _run(SimKernel(queue="heap"))
        assert a_log == h_log
        assert a_sim.counters.as_dict() == h_sim.counters.as_dict()
        assert np.array_equal(a_sim.node_packets, h_sim.node_packets)


class TestFaultDeterminism:
    """The robustness acceptance bar: same seed + scenario gives a
    byte-identical fault trace and delivery log on every backend, and a
    run with an *empty* schedule is bit-identical to no injector at all."""

    def test_fault_run_identical_across_kernel_queues(self):
        runs = {
            backend: _run_with_faults(SimKernel(queue=backend), FAULT_EVENTS)
            for backend in ("adaptive", "heap", "calendar")
        }
        ref_sim, ref_log, ref_faults = runs["adaptive"]
        assert ref_faults, "fault schedule produced no trace records"
        # Faults actually bit: the burst lost packets and the down link
        # left some traffic unroutable.
        assert ref_sim.links[2].total_lost > 0
        assert ref_sim.counters.packets_delivered < PACKETS
        for backend in ("heap", "calendar"):
            sim, log, faults = runs[backend]
            assert log == ref_log, f"{backend} delivery log diverged"
            assert faults == ref_faults, f"{backend} fault trace diverged"
            assert sim.counters.as_dict() == ref_sim.counters.as_dict()
            assert sim.dropped_fault == ref_sim.dropped_fault
            assert sim.links[2].total_lost == ref_sim.links[2].total_lost
            assert np.array_equal(sim.node_packets, ref_sim.node_packets)

    def test_fault_run_identical_across_conservative_queues(self):
        heap = _run_with_faults(
            ConservativeEngine(ASSIGNMENT, 2, lookahead=LATENCY_S, queue="heap"),
            FAULT_EVENTS,
        )
        cal = _run_with_faults(
            ConservativeEngine(ASSIGNMENT, 2, lookahead=LATENCY_S, queue="calendar"),
            FAULT_EVENTS,
        )
        assert heap[1] == cal[1]
        assert heap[2] == cal[2]
        assert heap[0].counters.as_dict() == cal[0].counters.as_dict()

    def test_empty_schedule_is_bit_identical_to_no_injector(self):
        plain_sim, plain_log = _run(SimKernel())
        faulted_sim, faulted_log, faults = _run_with_faults(SimKernel(), [])
        assert not faults
        assert faulted_log == plain_log
        assert faulted_sim.counters.as_dict() == plain_sim.counters.as_dict()
        assert faulted_sim.dropped_fault == 0
        assert np.array_equal(faulted_sim.node_packets, plain_sim.node_packets)


# ----------------------------------------------------------------------
# Cross-process suite: real worker processes, same bytes
# ----------------------------------------------------------------------
UNTIL = 0.05


def _reference(spec):
    _, collected = run_reference(spec, ASSIGNMENT, 2, LATENCY_S, UNTIL)
    return collected


def _mp_run(spec, procs, start_method="fork", until=UNTIL):
    engine = ParallelConservativeEngine(
        ASSIGNMENT, 2, LATENCY_S, procs=procs, start_method=start_method
    )
    result = engine.run_scenario(spec, until=until)
    return result, merge_collected(result.collected)


class TestCrossProcessDeterminism:
    """1, 2, and 4 worker processes against the single-process engine:
    identical delivery-log bytes, identical TrafficCounters fingerprint,
    identical fault outcomes — the headline acceptance bar."""

    def test_plain_workload_byte_identical_across_procs(self):
        spec = chain_spec(NUM_NODES, LATENCY_S, PACKETS)
        ref = _reference(spec)
        ref_bytes = delivery_log_bytes(ref)
        assert ref["counters"]["delivered"] == PACKETS
        for procs in (1, 2, 4):
            result, merged = _mp_run(spec, procs)
            assert delivery_log_bytes(merged) == ref_bytes, (
                f"{procs}-process delivery log diverged"
            )
            assert merged["counters"] == ref["counters"]
            assert merged["node_packets"] == ref["node_packets"]
            assert merged["events_executed"] == ref["events_executed"]
            assert result.lookahead_violations == 0

    def test_chaos_workload_byte_identical_across_procs(self):
        spec = chain_spec(NUM_NODES, LATENCY_S, PACKETS, faults=FAULT_EVENTS)
        ref = _reference(spec)
        ref_bytes = delivery_log_bytes(ref)
        # The schedule bites: lossy burst plus a down link.
        assert ref["dropped_fault"] > 0 or sum(ref["link_lost"]) > 0
        assert ref["counters"]["delivered"] < PACKETS
        for procs in (1, 2, 4):
            _, merged = _mp_run(spec, procs)
            assert delivery_log_bytes(merged) == ref_bytes, (
                f"{procs}-process chaos delivery log diverged"
            )
            assert merged["counters"] == ref["counters"]
            assert merged["dropped_fault"] == ref["dropped_fault"]
            assert merged["link_lost"] == ref["link_lost"]
            assert merged["faults"] == ref["faults"]
            assert merged["fault_counts"] == ref["fault_counts"]
            assert merged["schedule_digest"] == ref["schedule_digest"]

    def test_two_proc_run_stays_within_ci_budget(self):
        # The tier-1 gate runs this file on every commit; the procs=2
        # barrier loop must stay comfortably inside the suite's budget.
        spec = chain_spec(NUM_NODES, LATENCY_S, PACKETS)
        result, merged = _mp_run(spec, 2)
        assert result.wall_s < 60.0
        assert delivery_log_bytes(merged) == delivery_log_bytes(_reference(spec))

    def test_spawn_start_method_proves_picklability(self):
        # spawn re-imports everything in a fresh interpreter, so any
        # non-picklable payload in configs, mail, or results fails here.
        spec = chain_spec(NUM_NODES, LATENCY_S, PACKETS, faults=FAULT_EVENTS)
        ref = _reference(spec)
        _, merged = _mp_run(spec, 2, start_method="spawn")
        assert delivery_log_bytes(merged) == delivery_log_bytes(ref)
        assert merged["counters"] == ref["counters"]
        assert merged["fault_counts"] == ref["fault_counts"]


class TestRebalanceDeterminism:
    """The re-balancer's cardinal invariant: placement changes execution,
    never outcomes. A chaos-straggler workload (loss burst + link flap +
    an LP slowdown that concentrates blame) runs with the online
    re-balancer enabled; delivery-log bytes, counter fingerprints, and
    fault traces must match the non-rebalanced single-process reference
    at 1, 2, and 4 worker processes, under fork and spawn, and the
    migration decisions themselves must be identical on every repeat."""

    LOOKAHEAD = 1e-3
    UNTIL = 0.06
    NODES = 16

    # Chaos on LP 0's half of the chain plus a factor-8 slowdown on the
    # LP the straggler blame should concentrate on. With 4 LPs over 2
    # shards ([[0,1],[2,3]]) the profitable move is LP 3 off shard 1.
    @classmethod
    def _spec(cls, slow_lp: int):
        faults = [
            FaultEvent(0.001, FaultKind.LOSS_BURST_START, (2,), (("loss_prob", 0.3),)),
            FaultEvent(0.002, FaultKind.LINK_DOWN, (1,)),
            FaultEvent(0.004, FaultKind.LINK_UP, (1,)),
            FaultEvent(0.006, FaultKind.LOSS_BURST_END, (2,)),
            FaultEvent(
                0.0, FaultKind.LP_SLOWDOWN_START, (slow_lp,), (("factor", 8.0),)
            ),
        ]
        return chain_spec(cls.NODES, cls.LOOKAHEAD, packets=200, faults=faults)

    @classmethod
    def _assignment(cls, num_lps: int) -> np.ndarray:
        return np.array([i * num_lps // cls.NODES for i in range(cls.NODES)])

    @classmethod
    def _config(cls):
        from repro.partition.rebalance import RebalanceConfig

        return RebalanceConfig(
            threshold=0.5, patience=2, cooldown=2, history=6,
            max_migrations=2, min_gain_fraction=0.02,
        )

    @classmethod
    def _rebalanced(cls, procs, num_lps=4, start_method="fork", slow_lp=2):
        engine = ParallelConservativeEngine(
            cls._assignment(num_lps), num_lps, cls.LOOKAHEAD, procs=procs,
            start_method=start_method, rebalance=cls._config(),
        )
        result = engine.run_scenario(cls._spec(slow_lp), until=cls.UNTIL)
        return result, merge_collected(result.collected)

    @classmethod
    def _ref(cls, num_lps=4, slow_lp=2):
        _, collected = run_reference(
            cls._spec(slow_lp), cls._assignment(num_lps), num_lps,
            cls.LOOKAHEAD, cls.UNTIL,
        )
        return collected

    def test_rebalanced_chaos_run_byte_identical_across_procs(self):
        ref = self._ref()
        ref_bytes = delivery_log_bytes(ref)
        assert ref["dropped_fault"] > 0 or sum(ref["link_lost"]) > 0
        for procs in (1, 2):
            result, merged = self._rebalanced(procs)
            assert delivery_log_bytes(merged) == ref_bytes, (
                f"{procs}-process rebalanced delivery log diverged"
            )
            assert merged["counters"] == ref["counters"]
            assert merged["faults"] == ref["faults"]
            assert merged["fault_counts"] == ref["fault_counts"]
            assert merged["node_packets"] == ref["node_packets"]
        # procs=1 has nowhere to migrate to; procs=2 must actually move
        # the blamed shard's fast LP mid-run for this test to mean much.
        assert len(result.migrations) >= 1
        assert all(d.lp != 0 for d in result.migrations)
        assert result.migrations[0].src_shard == 1

    def test_four_proc_migration_byte_identical(self):
        # 8 LPs over 4 shards so single-LP moves are legal everywhere
        # (a 4-over-4 split would empty the source shard). The slowdown
        # sits on LP 4, blaming shard 2 = {4, 5}.
        ref = self._ref(num_lps=8, slow_lp=4)
        result, merged = self._rebalanced(4, num_lps=8, slow_lp=4)
        assert delivery_log_bytes(merged) == delivery_log_bytes(ref)
        assert merged["counters"] == ref["counters"]
        assert merged["faults"] == ref["faults"]
        # Which shard the ramp-up history blames first is a model detail
        # (traffic reaches the slowed LP's nodes only after 8 hops); the
        # bar here is that migrations happen at all at 4 shards, never
        # touch LP 0, and leave the outcome bytes untouched.
        assert len(result.migrations) >= 1
        assert all(d.lp != 0 for d in result.migrations)

    def test_spawn_matches_fork_decisions_and_bytes(self):
        fork_result, fork_merged = self._rebalanced(2)
        spawn_result, spawn_merged = self._rebalanced(2, start_method="spawn")
        assert delivery_log_bytes(spawn_merged) == delivery_log_bytes(fork_merged)
        assert spawn_merged["counters"] == fork_merged["counters"]
        assert [d.as_dict() for d in spawn_result.migrations] == [
            d.as_dict() for d in fork_result.migrations
        ]

    def test_migration_decisions_deterministic_across_repeats(self):
        runs = [self._rebalanced(2) for _ in range(2)]
        decisions = [
            [d.as_dict() for d in result.migrations] for result, _ in runs
        ]
        assert decisions[0], "no migration decided — trigger never armed"
        assert decisions[0] == decisions[1]
        assert runs[0][0].shards == runs[1][0].shards
        # The in-process group runs the identical controller protocol:
        # same windows, same counters, same decisions, same bytes.
        group = LocalShardGroup(
            self._assignment(4), 4, self.LOOKAHEAD, procs=2,
            rebalance=self._config(),
        )
        local = group.run_scenario(self._spec(2), until=self.UNTIL)
        assert [d.as_dict() for d in local.migrations] == decisions[0]
        assert delivery_log_bytes(merge_collected(local.collected)) == (
            delivery_log_bytes(runs[0][1])
        )


class TestShardSweepDeterminism:
    """Hypothesis-driven LP counts, assignments, and shard partitions
    through the in-process group (identical protocol, serialization
    round-trip included): every interleaving must reproduce its own
    single-process reference bit-for-bit."""

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_arbitrary_partitions_match_reference(self, data):
        num_lps = data.draw(st.integers(1, 5), label="num_lps")
        assignment = data.draw(
            st.lists(
                st.integers(0, num_lps - 1),
                min_size=NUM_NODES,
                max_size=NUM_NODES,
            ),
            label="assignment",
        )
        num_shards = data.draw(st.integers(1, num_lps), label="num_shards")
        shard_of_lp = data.draw(
            st.lists(
                st.integers(0, num_shards - 1),
                min_size=num_lps,
                max_size=num_lps,
            ),
            label="shard_of_lp",
        )
        shards = [
            [lp for lp in range(num_lps) if shard_of_lp[lp] == s]
            for s in range(num_shards)
        ]
        # Every chain link's latency equals the lookahead, so *any*
        # node->LP assignment satisfies the conservative contract.
        spec = chain_spec(NUM_NODES, LATENCY_S, packets=25)
        until = 0.02
        _, ref = run_reference(
            spec, np.asarray(assignment), num_lps, LATENCY_S, until
        )
        group = LocalShardGroup(
            assignment, num_lps, LATENCY_S, shards=shards
        )
        result = group.run_scenario(spec, until=until)
        merged = merge_collected(result.collected)
        assert delivery_log_bytes(merged) == delivery_log_bytes(ref)
        assert merged["counters"] == ref["counters"]
        assert merged["node_packets"] == ref["node_packets"]
        assert merged["events_executed"] == ref["events_executed"]
