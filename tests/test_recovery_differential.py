"""Differential recovery suite: crashed runs byte-match clean runs.

The fault-tolerance headline: a multi-process run whose workers are
SIGKILLed (or hung, or pipe-dropped) at seeded windows must produce a
delivery log and traffic counters *byte-identical* to an uninterrupted
single-process run of the same seeded workload — through checkpoint
restore + respawn, and through the degraded survivor-adoption rung.
Also pinned here: checkpointing itself never perturbs the run (same
log, zero added mail bytes), recovery disabled is exactly the pre-PR
engine, and the escalation modes ('fail', exhausted 'respawn') raise
typed errors instead of diverging silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.parallel import (
    LocalShardGroup,
    ParallelConservativeEngine,
    RecoveryExhaustedError,
    WorkerCrashError,
)
from repro.engine.recovery import RecoveryConfig
from repro.experiments.shard import (
    chain_spec,
    delivery_log_bytes,
    merge_collected,
    run_reference,
)
from repro.faults.plan import FaultPlan, ProcessFault, ProcessFaultKind
from repro.partition.rebalance import RebalanceConfig

NUM_NODES = 8
LATENCY_S = 1e-4
PACKETS = 40
UNTIL = 0.05  # ~500 barrier windows
ASSIGN2 = np.array([0, 0, 0, 0, 1, 1, 1, 1])
ASSIGN4 = np.array([0, 0, 1, 1, 2, 2, 3, 3])


def _spec():
    return chain_spec(num_nodes=NUM_NODES, latency_s=LATENCY_S, packets=PACKETS)


def _mp(spec, procs, assignment, num_lps, recovery=None,
        start_method="fork", window_timeout_s=120.0):
    engine = ParallelConservativeEngine(
        assignment, num_lps, LATENCY_S, procs=procs,
        start_method=start_method, window_timeout_s=window_timeout_s,
        recovery=recovery,
    )
    return engine.run_scenario(spec, until=UNTIL)


def _assert_matches(result, ref):
    merged = merge_collected(result.collected)
    assert delivery_log_bytes(merged) == delivery_log_bytes(ref)
    assert merged["counters"] == ref["counters"]
    assert merged["node_packets"] == ref["node_packets"]
    return merged


@pytest.fixture(scope="module")
def ref2():
    return run_reference(_spec(), ASSIGN2, 2, LATENCY_S, UNTIL)[1]


@pytest.fixture(scope="module")
def ref4():
    return run_reference(_spec(), ASSIGN4, 4, LATENCY_S, UNTIL)[1]


class TestCheckpointingIsFree:
    def test_checkpointing_on_is_invisible_without_faults(self, ref2):
        plain = _mp(_spec(), 2, ASSIGN2, 2)
        ckpt = _mp(
            _spec(), 2, ASSIGN2, 2,
            recovery=RecoveryConfig(checkpoint_every_n_windows=64),
        )
        _assert_matches(ckpt, ref2)
        # Checkpoints ride the control plane, never barrier mail.
        assert ckpt.total_mail_bytes == plain.total_mail_bytes
        assert ckpt.recovery is not None
        assert ckpt.recovery["checkpoints_taken"] > 0
        assert ckpt.recovery["checkpoint_bytes"] > 0
        assert ckpt.recovery["detections"] == 0
        assert ckpt.recovery["respawns"] == 0

    def test_recovery_disabled_is_exactly_the_plain_engine(self, ref2):
        result = _mp(_spec(), 2, ASSIGN2, 2, recovery=None)
        _assert_matches(result, ref2)
        assert result.recovery is None

    def test_recovery_and_rebalance_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ParallelConservativeEngine(
                ASSIGN2, 2, LATENCY_S, procs=2,
                rebalance=RebalanceConfig(), recovery=RecoveryConfig(),
            )
        with pytest.raises(ValueError):
            LocalShardGroup(
                ASSIGN2, 2, LATENCY_S, procs=2,
                rebalance=RebalanceConfig(), recovery=RecoveryConfig(),
            )


class TestRespawnByteIdentity:
    def test_random_kills_2procs_fork(self, ref2):
        plan = FaultPlan.random_kills(480, 2, kills=2, seed=3)
        assert len(plan) == 2
        result = _mp(
            _spec(), 2, ASSIGN2, 2,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, fault_plan=plan
            ),
        )
        _assert_matches(result, ref2)
        assert result.recovery["detections"] == 2
        assert result.recovery["respawns"] == 2
        assert result.recovery["adoptions"] == 0

    def test_random_kills_4procs_fork(self, ref4):
        plan = FaultPlan.random_kills(480, 4, kills=2, seed=5)
        result = _mp(
            _spec(), 4, ASSIGN4, 4,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, fault_plan=plan
            ),
        )
        _assert_matches(result, ref4)
        assert result.recovery["respawns"] == len(plan)

    def test_random_kills_2procs_spawn(self, ref2):
        plan = FaultPlan.random_kills(480, 2, kills=1, seed=7)
        result = _mp(
            _spec(), 2, ASSIGN2, 2, start_method="spawn",
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=32, fault_plan=plan
            ),
        )
        _assert_matches(result, ref2)
        assert result.recovery["respawns"] == 1

    def test_after_send_and_pipe_drop_kills(self, ref2):
        # after_send exercises the partially-collected-barrier path (the
        # window message is already in the pipe buffer when the worker
        # dies); the pipe drop surfaces as EOF instead of a dead PID.
        plan = FaultPlan.from_faults([
            ProcessFault(40, 1, ProcessFaultKind.SIGKILL, incarnation=0,
                         after_send=True),
            ProcessFault(200, 1, ProcessFaultKind.PIPE_DROP, incarnation=1),
        ])
        result = _mp(
            _spec(), 2, ASSIGN2, 2,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, fault_plan=plan
            ),
        )
        _assert_matches(result, ref2)
        assert result.recovery["detections"] == 2
        assert result.recovery["respawns"] == 2

    def test_hang_is_detected_and_respawned(self, ref2):
        plan = FaultPlan.from_faults([
            ProcessFault(100, 1, ProcessFaultKind.HANG)
        ])
        result = _mp(
            _spec(), 2, ASSIGN2, 2, window_timeout_s=1.5,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, fault_plan=plan
            ),
        )
        _assert_matches(result, ref2)
        assert result.recovery["respawns"] == 1

    def test_crashed_run_is_repeatable(self, ref2):
        plan = FaultPlan.random_kills(480, 2, kills=1, seed=11)
        cfg = RecoveryConfig(checkpoint_every_n_windows=16, fault_plan=plan)
        first = _mp(_spec(), 2, ASSIGN2, 2, recovery=cfg)
        second = _mp(_spec(), 2, ASSIGN2, 2, recovery=cfg)
        a, b = merge_collected(first.collected), merge_collected(second.collected)
        assert delivery_log_bytes(a) == delivery_log_bytes(b)
        assert first.recovery["respawns"] == second.recovery["respawns"]
        _assert_matches(first, ref2)


class TestDegradedAdoption:
    def test_adoption_4procs_byte_identical(self, ref4):
        # Shard 2 dies twice with a budget of one respawn: the second
        # loss exhausts the budget and a survivor adopts its LPs after a
        # global rollback to the commit cut.
        plan = FaultPlan.from_faults([
            ProcessFault(120, 2, ProcessFaultKind.SIGKILL, incarnation=0),
            ProcessFault(240, 2, ProcessFaultKind.SIGKILL, incarnation=1),
        ])
        result = _mp(
            _spec(), 4, ASSIGN4, 4,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, max_respawns=1,
                on_worker_loss="adopt", fault_plan=plan,
            ),
        )
        _assert_matches(result, ref4)
        assert result.recovery["adoptions"] == 1
        assert result.recovery["dead_shards"] == [2]
        # The dead shard's LPs moved to a survivor.
        assert result.shards[2] == []
        adopted = [lp for part in result.shards for lp in part]
        assert sorted(adopted) == [0, 1, 2, 3]

    def test_fail_mode_raises_on_first_loss(self):
        plan = FaultPlan.from_faults([
            ProcessFault(50, 1, ProcessFaultKind.SIGKILL)
        ])
        with pytest.raises(WorkerCrashError):
            _mp(
                _spec(), 2, ASSIGN2, 2,
                recovery=RecoveryConfig(
                    checkpoint_every_n_windows=16, on_worker_loss="fail",
                    fault_plan=plan,
                ),
            )

    def test_exhausted_respawn_budget_raises_typed_error(self):
        plan = FaultPlan.from_faults([
            ProcessFault(50, 1, ProcessFaultKind.SIGKILL, incarnation=0),
            ProcessFault(80, 1, ProcessFaultKind.SIGKILL, incarnation=1),
        ])
        with pytest.raises(RecoveryExhaustedError):
            _mp(
                _spec(), 2, ASSIGN2, 2,
                recovery=RecoveryConfig(
                    checkpoint_every_n_windows=16, max_respawns=1,
                    on_worker_loss="respawn", fault_plan=plan,
                ),
            )


class TestLocalGroupParity:
    """The in-process group replays the same ladder deterministically."""

    def test_local_respawn_byte_identity(self, ref2):
        plan = FaultPlan.random_kills(480, 2, kills=2, seed=3)
        group = LocalShardGroup(
            ASSIGN2, 2, LATENCY_S, procs=2,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, fault_plan=plan
            ),
        )
        result = group.run_scenario(_spec(), until=UNTIL)
        _assert_matches(result, ref2)
        assert result.recovery["respawns"] == 2

    def test_local_adoption_byte_identity(self, ref2):
        plan = FaultPlan.from_faults([
            ProcessFault(120, 1, ProcessFaultKind.SIGKILL, incarnation=0),
            ProcessFault(240, 1, ProcessFaultKind.SIGKILL, incarnation=1),
        ])
        group = LocalShardGroup(
            ASSIGN2, 2, LATENCY_S, procs=2,
            recovery=RecoveryConfig(
                checkpoint_every_n_windows=16, max_respawns=1,
                on_worker_loss="adopt", fault_plan=plan,
            ),
        )
        result = group.run_scenario(_spec(), until=UNTIL)
        _assert_matches(result, ref2)
        assert result.recovery["adoptions"] == 1
        assert result.shards[1] == []
