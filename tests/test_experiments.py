"""Tests for experiment config, workloads, runner, and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Approach
from repro.experiments import (
    APP_KINDS,
    DEFAULT_APPROACHES,
    ExperimentScale,
    SCALES,
    build_network,
    default_scale,
    format_figure,
    format_result,
    install_workload,
    run_experiment,
)
from repro.experiments.runner import cluster_for_scale
from repro.engine import SimKernel
from repro.netsim import NetworkSimulator
from repro.online import Agent

MICRO = ExperimentScale(
    name="micro",
    flat_routers=80,
    flat_hosts=40,
    num_ases=8,
    routers_per_as=10,
    multi_hosts=36,
    http_clients=20,
    http_servers=6,
    http_mean_gap_s=0.4,
    num_engines=6,
    app_processes=4,
    scalapack_iterations=2,
    duration_s=4.0,
    profile_duration_s=2.0,
    event_cost_s=75e-6,
    remote_event_cost_s=190e-6,
)


class TestConfig:
    def test_scales_registry(self):
        assert {"small", "medium", "large", "paper"} <= set(SCALES)

    def test_paper_scale_matches_paper(self):
        p = SCALES["paper"]
        assert p.flat_routers == 20_000
        assert p.flat_hosts == 10_000
        assert p.num_ases == 100
        assert p.routers_per_as == 200
        assert p.http_clients == 8_000
        assert p.http_servers == 2_000
        assert p.http_mean_gap_s == 5.0
        assert p.http_mean_file_bytes == 50_000.0
        assert p.num_engines == 90

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert default_scale().name == "medium"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            default_scale()
        monkeypatch.delenv("REPRO_SCALE")
        assert default_scale().name == "small"

    def test_scaled_http_counts_clamped(self):
        c, s = MICRO.scaled_http_counts(10)
        assert c + s + MICRO.app_processes <= 10 + 2  # near-fit
        assert c >= 1 and s >= 1

    def test_scaled_http_counts_pass_through(self):
        c, s = MICRO.scaled_http_counts(1000)
        assert (c, s) == (20, 6)

    def test_cluster_for_scale(self):
        cl = cluster_for_scale(MICRO)
        assert cl.event_cost_s == MICRO.event_cost_s
        assert cl.num_engine_nodes == MICRO.num_engines


class TestBuildNetwork:
    def test_single_as(self):
        net, fib = build_network("single-as", MICRO, seed=1)
        assert net.num_routers == MICRO.flat_routers
        assert fib.bgp is None

    def test_multi_as(self):
        net, fib = build_network("multi-as", MICRO, seed=1)
        assert len(net.as_domains) == MICRO.num_ases
        assert fib.bgp is not None and fib.bgp.converged

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_network("mesh", MICRO)


class TestInstallWorkload:
    def test_host_sets_disjoint(self):
        net, fib = build_network("single-as", MICRO, seed=1)
        k = SimKernel()
        sim = NetworkSimulator(net, fib, k)
        agent = Agent(sim)
        handles = install_workload(sim, agent, net, "scalapack", MICRO, seed=0)
        everyone = handles.clients + handles.servers + handles.app_hosts
        assert len(everyone) == len(set(everyone))

    @pytest.mark.parametrize("app_kind", APP_KINDS)
    def test_apps_run_to_completion(self, app_kind):
        net, fib = build_network("single-as", MICRO, seed=1)
        k = SimKernel()
        sim = NetworkSimulator(net, fib, k)
        agent = Agent(sim)
        handles = install_workload(sim, agent, net, app_kind, MICRO, seed=0,
                                   duration_s=60.0)
        k.run(until=60.0)
        assert handles.apps_finished
        assert handles.http.stats.responses_completed > 0

    def test_unknown_app_kind(self):
        net, fib = build_network("single-as", MICRO, seed=1)
        k = SimKernel()
        sim = NetworkSimulator(net, fib, k)
        with pytest.raises(ValueError):
            install_workload(sim, Agent(sim), net, "hadoop", MICRO)

    def test_explicit_rng_matches_seed_path(self):
        """The explicit-Generator parameter replays the seed-derived split."""
        net, fib = build_network("single-as", MICRO, seed=1)

        def split(**kwargs):
            k = SimKernel()
            sim = NetworkSimulator(net, fib, k)
            h = install_workload(sim, Agent(sim), net, "scalapack", MICRO, **kwargs)
            return (h.clients, h.servers, h.app_hosts)

        assert split(seed=9) == split(rng=np.random.default_rng(9))


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("single-as", "scalapack", scale=MICRO, seed=0)

    def test_rows_complete(self, result):
        assert [r.approach for r in result.rows] == DEFAULT_APPROACHES
        for row in result.rows:
            assert row.sim_time_s > 0
            assert row.achieved_mll_ms > 0
            assert 0 <= row.parallel_eff <= 1
            assert row.measured_imbalance >= 0

    def test_paper_shape_hierarchical_mll_larger(self, result):
        mll = {r.approach: r.achieved_mll_ms for r in result.rows}
        assert mll[Approach.HPROF] >= mll[Approach.TOP2]
        assert mll[Approach.HTOP] >= mll[Approach.TOP2]

    def test_paper_shape_hprof_fastest(self, result):
        t = {r.approach: r.sim_time_s for r in result.rows}
        assert t[Approach.HPROF] <= min(t[Approach.TOP2], t[Approach.PROF2]) * 1.05

    def test_events_counted(self, result):
        assert result.total_events > 1000
        for row in result.rows:
            assert row.prediction.total_events <= result.total_events

    def test_result_accessors(self, result):
        row = result.row(Approach.HPROF)
        assert row.approach is Approach.HPROF
        assert result.metric(Approach.HPROF, "sim_time_s") == row.sim_time_s
        with pytest.raises(KeyError):
            result.row(Approach.TOP)

    def test_report_rendering(self, result):
        text = format_result(result)
        assert "HPROF" in text and "TOP2" in text
        fig = format_figure([result], "sim_time_s")
        assert "Simulation Time" in fig
        assert "scalapack" in fig

    def test_format_figure_unknown_metric(self, result):
        with pytest.raises(ValueError):
            format_figure([result], "latency_budget")
