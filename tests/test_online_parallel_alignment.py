"""Tests for live-traffic admission on the parallel engine.

The Agent must align injected live traffic to synchronization barriers —
the mechanism that lets application callbacks execute on arbitrary LPs
without violating the conservative lookahead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ConservativeEngine, SimKernel
from repro.netsim import NetworkSimulator
from repro.online import Agent, WrapSocket
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


@pytest.fixture()
def split_net():
    """Two host/router pairs joined by a 2 ms link; LP 0 = left, LP 1 = right."""
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, 1e9, 2e-3)
    net.add_link(h0, r0, 1e9, 20e-6)
    net.add_link(h1, r1, 1e9, 20e-6)
    assignment = np.array([0, 1, 0, 1])
    return net, assignment, (r0, r1, h0, h1)


class TestBarrierAlignment:
    def test_sequential_injects_immediately(self, split_net):
        net, assignment, (r0, r1, h0, h1) = split_net
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        agent = Agent(sim)
        assert agent._injection_time() == k.now

    def test_parallel_defers_to_window_end(self, split_net):
        net, assignment, (r0, r1, h0, h1) = split_net
        eng = ConservativeEngine(assignment, 2, lookahead=1e-3)
        sim = NetworkSimulator(net, ForwardingPlane(net), eng)
        agent = Agent(sim)
        observed = []

        def probe():
            observed.append((eng.current_time, agent._injection_time()))

        eng.schedule_at(0.0004, probe, node=h0)
        eng.run(until=0.01)
        (now, inj), = observed
        assert now == pytest.approx(0.0004)
        assert inj == pytest.approx(1e-3)  # end of the first window

    def test_cross_lp_callback_chain_runs_strict(self, split_net):
        """A ping-pong between sockets on different LPs, fully callback-
        driven, must run without lookahead violations."""
        net, assignment, (r0, r1, h0, h1) = split_net
        eng = ConservativeEngine(assignment, 2, lookahead=2e-3, strict=True)
        sim = NetworkSimulator(net, ForwardingPlane(net), eng)
        agent = Agent(sim)
        a = WrapSocket(agent, h0, "a@pp")
        b = WrapSocket(agent, h1, "b@pp")
        a.connect_node(h1)
        b.connect_node(h0)
        hops = []

        def pong(src, nbytes, t):
            hops.append(("b-got", t))
            if len(hops) < 6:
                b.send(4_000)

        def ping_back(src, nbytes, t):
            hops.append(("a-got", t))
            if len(hops) < 6:
                a.send(4_000)

        b.listen(pong)
        a.listen(ping_back)
        a.send(4_000)
        eng.run(until=2.0)
        assert len(hops) >= 6
        assert eng.lookahead_violations == 0
        times = [t for _, t in hops]
        assert times == sorted(times)

    def test_agent_schedule_clamps_to_barrier(self, split_net):
        net, assignment, (r0, r1, h0, h1) = split_net
        eng = ConservativeEngine(assignment, 2, lookahead=1e-3, strict=True)
        sim = NetworkSimulator(net, ForwardingPlane(net), eng)
        agent = Agent(sim)
        fired = []

        def inside_window():
            # Schedule "zero-delay" app work onto the OTHER LP: without
            # barrier clamping this would violate the lookahead.
            agent.schedule(0.0, lambda: fired.append(eng.current_time), node=h1)

        eng.schedule_at(0.0002, inside_window, node=h0)
        eng.run(until=0.01)
        assert fired
        assert fired[0] >= 1e-3 - 1e-12
        assert eng.lookahead_violations == 0
