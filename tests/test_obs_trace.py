"""Structured trace, straggler blame, Chrome export, and what-if replay.

Covers the four layers of the causal-tracing subsystem:

- :mod:`repro.obs.trace` — ring-buffer semantics: disabled-by-default,
  ``traced_run`` scoping, capacity eviction with ``dropped_records``;
- :mod:`repro.obs.blame` — straggler-takes-all attribution (the blame
  vector sums *exactly* to the modeled barrier wait), critical-path
  handoffs, per-node blame splitting;
- :mod:`repro.obs.trace_export` — well-formed Chrome trace-event JSON;
- :mod:`repro.obs.whatif` — replay scores agree with the dense
  cost-model path (:func:`predict_wallclock`) to float precision, on a
  real traced parallel run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import Approach, MappingPipeline
from repro.engine.costmodel import predict_wallclock, window_for_mapping
from repro.experiments import ExperimentScale, build_network
from repro.experiments.parallel import run_traced_workload
from repro.experiments.runner import cluster_for_scale
from repro.obs import blame
from repro.obs.trace import TraceBuffer, get_tracer, traced_run
from repro.obs.trace_export import to_chrome_trace
from repro.obs.whatif import replay_counts, score_mapping, score_mappings

SCALE = ExperimentScale(
    name="trace-test",
    flat_routers=80,
    flat_hosts=30,
    num_ases=4,
    routers_per_as=10,
    multi_hosts=20,
    http_clients=12,
    http_servers=4,
    http_mean_gap_s=0.4,
    num_engines=4,
    app_processes=4,
    scalapack_iterations=2,
    duration_s=5.0,
    profile_duration_s=2.0,
)

DURATION = 0.4


@pytest.fixture(autouse=True)
def _isolate_global_tracer():
    """The process-global tracer must leave tests the way it arrived."""
    tr = get_tracer()
    yield
    tr.disable()
    tr.reset()


@pytest.fixture(scope="module")
def traced_run_result():
    """One traced parallel run plus two candidate mappings to replay."""
    net, fib = build_network("single-as", SCALE, seed=3)
    pipeline = MappingPipeline(net, SCALE.num_engines, cluster_for_scale(SCALE), seed=0)
    candidates = pipeline.run_all([Approach.TOP, Approach.HTOP])
    cluster = cluster_for_scale(SCALE)
    engine, sim, handles, reg, tr = run_traced_workload(
        net, fib, "scalapack", SCALE, candidates[Approach.HTOP], DURATION, cluster,
        seed=0,
    )
    # run_traced_workload hands back the process-global tracer, which the
    # per-test isolation fixture resets; keep an independent copy.
    snap = TraceBuffer(capacity=tr.capacity)
    snap.set_costs(tr.event_cost_s, tr.remote_event_cost_s)
    for src, dst in zip(tr._channels(), snap._channels()):
        dst.extend(src)
    snap.dropped_records = tr.dropped_records
    return net, engine, snap, candidates, cluster


# ---------------------------------------------------------------------------
# TraceBuffer semantics
# ---------------------------------------------------------------------------
class TestTraceBuffer:
    def test_disabled_record_methods_are_noops(self):
        tr = TraceBuffer()
        assert not tr.enabled
        tr.window(0, 0.0, 1.0, np.array([1]), np.array([0]))
        tr.edge(0, 1, 0.1, 0.9)
        tr.event(0.2, 3)
        tr.tx(0.2, 3, 4)
        token = tr.span_begin()
        tr.span_end(token, "bgp.convergence")
        assert len(tr) == 0 and token == -1.0

    def test_traced_run_enables_resets_and_restores(self):
        tr = TraceBuffer()
        tr.enable()
        tr.event(0.1, 1)
        with traced_run(tr, capacity=8) as inner:
            assert inner is tr and tr.enabled and tr.capacity == 8
            assert len(tr) == 0  # reset_first dropped the stale record
            tr.event(0.2, 2)
        assert tr.enabled  # previous state (enabled) restored
        assert tr.capacity == TraceBuffer().capacity
        assert list(tr.events) == [(0.2, 2)]

    def test_window_records_modeled_busy_time(self):
        tr = TraceBuffer(enabled=True)
        tr.set_costs(2e-6, 5e-6)
        tr.window(0, 0.0, 1.0, np.array([10, 0]), np.array([3, 0]))
        w = tr.windows[0]
        assert w.busy_s_per_lp[0] == pytest.approx(10 * 2e-6 + 3 * 5e-6)
        assert w.straggler_lp == 0
        assert w.wait_s == pytest.approx(w.max_busy_s)  # LP 1 idles fully

    def test_set_costs_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TraceBuffer().set_costs(0.0, 1e-6)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_overflow_evicts_oldest_and_counts_drops(self):
        tr = TraceBuffer(capacity=3, enabled=True)
        for i in range(5):
            tr.event(float(i), i)
        assert list(tr.events) == [(2.0, 2), (3.0, 3), (4.0, 4)]
        assert tr.dropped_records == 2
        # Drops are counted per channel append, across channels.
        for i in range(4):
            tr.tx(float(i), i, i + 1)
        assert tr.dropped_records == 3
        tr.reset()
        assert tr.dropped_records == 0 and len(tr) == 0


# ---------------------------------------------------------------------------
# Blame analysis on synthetic windows
# ---------------------------------------------------------------------------
def _synthetic_trace() -> TraceBuffer:
    """Three windows over 2 LPs with a known straggler sequence 1,1,0."""
    tr = TraceBuffer(enabled=True)
    tr.set_costs(1e-6, 1e-6)
    tr.window(0, 0.0, 1.0, np.array([10, 30]), np.array([0, 0]))
    tr.window(1, 1.0, 2.0, np.array([5, 20]), np.array([0, 0]))
    tr.window(2, 2.0, 3.0, np.array([40, 10]), np.array([0, 0]))
    # Edge: window-1 straggler (LP 1) feeds the window-2 straggler (LP 0).
    tr.edge(1, 0, 1.5, 2.5)
    return tr


class TestBlame:
    def test_blame_sums_exactly_to_total_wait(self):
        report = blame.analyze(_synthetic_trace())
        expected_wait = (30 - 10) * 1e-6 + (20 - 5) * 1e-6 + (40 - 10) * 1e-6
        assert report.total_wait_s == pytest.approx(expected_wait, rel=0, abs=0)
        assert report.lp_blame_s.sum() == report.total_wait_s
        assert report.lp_blame_s[1] == pytest.approx((20 + 15) * 1e-6)
        assert report.lp_blame_s[0] == pytest.approx(30e-6)
        assert list(report.lp_straggler_windows) == [1, 2]
        assert report.critical_s == pytest.approx((30 + 20 + 40) * 1e-6)

    def test_critical_path_marks_causal_handoff(self):
        report = blame.analyze(_synthetic_trace())
        assert [s.lp for s in report.critical_path] == [1, 1, 0]
        # Windows 0->1: same straggler but no recorded edge -> no handoff.
        assert not report.critical_path[1].handoff_from_prev
        # Windows 1->2: the recorded edge LP1 -> LP0 marks the handoff.
        assert report.critical_path[2].handoff_from_prev
        assert report.handoff_fraction == pytest.approx(0.5)

    def test_lp_width_mismatch_raises(self):
        tr = _synthetic_trace()
        tr.window(3, 3.0, 4.0, np.array([1, 2, 3]), np.array([0, 0, 0]))
        with pytest.raises(ValueError, match="LPs"):
            blame.analyze(tr)

    def test_empty_trace_analyzes_to_zero(self):
        report = blame.analyze(TraceBuffer(), num_lps=3)
        assert report.num_windows == 0 and report.total_wait_s == 0.0
        assert report.lp_blame_s.shape == (3,)

    def test_blame_on_overflowed_trace_covers_retained_suffix(self):
        tr = TraceBuffer(capacity=2, enabled=True)
        tr.set_costs(1e-6, 1e-6)
        tr.window(0, 0.0, 1.0, np.array([100, 0]), np.array([0, 0]))  # evicted
        tr.window(1, 1.0, 2.0, np.array([10, 30]), np.array([0, 0]))
        tr.window(2, 2.0, 3.0, np.array([40, 10]), np.array([0, 0]))
        assert tr.dropped_records == 1
        report = blame.analyze(tr)
        assert report.num_windows == 2
        assert report.dropped_records == 1
        assert report.lp_blame_s.sum() == report.total_wait_s
        assert report.total_wait_s == pytest.approx((20 + 30) * 1e-6)
        assert "retained suffix" in blame.format_blame_table(report)

    def test_node_blame_splits_by_event_share(self):
        tr = _synthetic_trace()
        # Nodes 0,1 on LP 0; nodes 2,3 on LP 1. Node 2 did 3x node 3's work.
        for _ in range(3):
            tr.event(0.5, 2)
        tr.event(0.5, 3)
        tr.event(0.5, 0)
        tr.event(2.5, -1)  # engine-internal: never attributed
        report = blame.analyze(tr)
        assignment = np.array([0, 0, 1, 1])
        share = blame.node_blame(tr, report, assignment)
        assert share[2] == pytest.approx(0.75 * report.lp_blame_s[1])
        assert share[3] == pytest.approx(0.25 * report.lp_blame_s[1])
        assert share[0] == pytest.approx(report.lp_blame_s[0])
        assert share[1] == 0.0

    def test_format_blame_table_cross_checks_sum(self):
        report = blame.analyze(_synthetic_trace())
        table = blame.format_blame_table(report)
        assert "blame sums to it exactly" in table
        assert f"{report.total_wait_s * 1e3:.3f}" in table

    def test_blame_shares_of_zero_wait_are_exactly_zero(self):
        # A single-LP shard or an all-idle run accumulates zero barrier
        # wait; shares must be exactly 0.0, not NaN from a 0/0.
        with np.errstate(divide="raise", invalid="raise"):
            shares = blame.blame_shares(np.zeros(3))
            assert shares.tolist() == [0.0, 0.0, 0.0]
            shares = blame.blame_shares(np.array([1.0, 2.0]), total_wait_s=0.0)
            assert shares.tolist() == [0.0, 0.0]

    def test_zero_wait_trace_formats_without_dividing(self):
        # One LP per window: the straggler waits on nobody, so every
        # window contributes zero wait. The table must render (no NaN,
        # shares all 0.0%) and the report's invariants must still hold.
        tr = TraceBuffer(enabled=True)
        tr.set_costs(1e-6, 1e-6)
        tr.window(0, 0.0, 1.0, np.array([10]), np.array([0]))
        tr.window(1, 1.0, 2.0, np.array([20]), np.array([0]))
        with np.errstate(divide="raise", invalid="raise"):
            report = blame.analyze(tr)
            table = blame.format_blame_table(report)
        assert report.total_wait_s == 0.0
        assert report.shares.tolist() == [0.0]
        assert "nan" not in table.lower()
        assert "0.0%" in table

    def test_measured_shares_zero_when_no_shard_waited(self):
        # Single-shard measured runs record zero barrier wait everywhere.
        tr = TraceBuffer(enabled=True)
        tr.measured_window(0, 0, 1.0, 0.0, 0.1, 0.05, 100, 0)
        tr.measured_window(1, 0, 2.0, 0.0, 0.2, 0.10, 200, 0)
        with np.errstate(divide="raise", invalid="raise"):
            report = blame.analyze_measured(tr, num_shards=1)
            table = blame.format_measured_table(report)
        assert report.shares.tolist() == [0.0]
        assert report.num_windows == 2
        assert "nan" not in table.lower()


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
class TestChromeExport:
    def test_export_structure_and_json_round_trip(self):
        doc = to_chrome_trace(_synthetic_trace(), sync_cost_s=10e-6)
        doc = json.loads(json.dumps(doc))  # must be plain-JSON serializable
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "s", "f"} <= phases
        slices = [e for e in events if e["ph"] == "X" and e["cat"] == "window"]
        # 3 windows x 2 LPs, all with nonzero busy time.
        assert len(slices) == 6
        assert all(s["dur"] > 0 and s["ts"] >= 0 for s in slices)
        stragglers = [s for s in slices if s["args"]["straggler"]]
        assert len(stragglers) == 3
        barriers = [e for e in events if e.get("cat") == "sync"]
        assert len(barriers) == 3 and all(b["dur"] == 10.0 for b in barriers)

    def test_windows_laid_out_back_to_back(self):
        doc = to_chrome_trace(_synthetic_trace(), sync_cost_s=0.0)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["cat"] == "window"]
        by_window: dict[str, list] = {}
        for s in slices:
            by_window.setdefault(s["name"], []).append(s)
        # Window 1 starts where window 0's straggler (30us) ended.
        assert by_window["window 1"][0]["ts"] == pytest.approx(30.0)
        assert by_window["window 2"][0]["ts"] == pytest.approx(50.0)

    def test_flow_pair_links_sender_to_receiver(self):
        doc = to_chrome_trace(_synthetic_trace())
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        start, finish = flows
        assert start["id"] == finish["id"]
        assert start["tid"] == 1 and finish["tid"] == 0
        assert start["ts"] <= finish["ts"]

    def test_flow_cap_is_respected(self):
        tr = _synthetic_trace()
        for _ in range(50):
            tr.edge(1, 0, 1.5, 2.5)
        doc = to_chrome_trace(tr, max_flows=5)
        assert sum(e["ph"] == "s" for e in doc["traceEvents"]) == 5

    def test_empty_trace_exports_metadata_only(self):
        doc = to_chrome_trace(TraceBuffer())
        assert all(e["ph"] == "M" for e in doc["traceEvents"])


# ---------------------------------------------------------------------------
# Integration: traced parallel run feeds blame + what-if
# ---------------------------------------------------------------------------
class TestTracedRunIntegration:
    def test_engine_hooks_record_all_channels(self, traced_run_result):
        net, engine, tr, candidates, cluster = traced_run_result
        assert len(tr.windows) == len(engine.window_stats)
        assert len(tr.events) > 1000
        assert len(tr.transmissions) > 0
        assert len(tr.edges) == int(engine.remote_sends_total().sum())
        for w, ws in zip(tr.windows, engine.window_stats):
            assert np.array_equal(w.events_per_lp, ws.events_per_lp)
            assert np.array_equal(w.remote_per_lp, ws.remote_sends_per_lp)

    def test_tracer_costs_follow_the_cluster(self, traced_run_result):
        net, engine, tr, candidates, cluster = traced_run_result
        assert tr.event_cost_s == cluster.event_cost_s
        assert tr.remote_event_cost_s == cluster.remote_event_cost_s

    def test_global_tracer_disabled_after_traced_run(self, traced_run_result):
        assert not get_tracer().enabled

    def test_blame_totals_on_real_run(self, traced_run_result):
        net, engine, tr, candidates, cluster = traced_run_result
        report = blame.analyze(tr, num_lps=engine.num_lps)
        assert report.num_windows == len(engine.window_stats)
        assert report.lp_blame_s.sum() == report.total_wait_s
        assert report.total_wait_s == pytest.approx(float(report.window_wait_s.sum()))
        node_share = blame.node_blame(
            tr, report, candidates[Approach.HTOP].assignment, net.num_nodes
        )
        assert node_share.sum() <= report.total_wait_s * (1 + 1e-9)
        assert node_share.min() >= 0.0

    def test_whatif_agrees_with_dense_cost_model(self, traced_run_result):
        """Acceptance: sparse replay == predict_wallclock re-run, <=1e-9 rel."""
        net, engine, tr, candidates, cluster = traced_run_result
        assert len(candidates) >= 2
        for mapping in candidates.values():
            window = window_for_mapping(mapping.achieved_mll_s, DURATION)
            events, remotes = replay_counts(
                tr, mapping.assignment, mapping.num_engines, window, DURATION
            )
            dense = predict_wallclock(events, remotes, cluster, mapping.num_engines)
            sparse = score_mapping(tr, mapping, cluster, DURATION)
            assert sparse.total_s == pytest.approx(dense.total_s, rel=1e-9)
            assert sparse.compute_s == pytest.approx(dense.compute_s, rel=1e-9)
            assert sparse.sync_s == pytest.approx(dense.sync_s, rel=1e-9)

    def test_score_mappings_sorted_best_first(self, traced_run_result):
        net, engine, tr, candidates, cluster = traced_run_result
        scores = score_mappings(
            tr, {a.value: m for a, m in candidates.items()}, cluster, DURATION
        )
        totals = [s.total_s for s in scores]
        assert totals == sorted(totals)
        from repro.obs.whatif import format_whatif_table

        table = format_whatif_table(scores)
        assert "<== best" in table and scores[0].label in table

    def test_base_mapping_replay_matches_measured_windows(self, traced_run_result):
        """Replaying the run's own mapping reproduces the engine's counts."""
        net, engine, tr, candidates, cluster = traced_run_result
        base = candidates[Approach.HTOP]
        window = window_for_mapping(base.achieved_mll_s, DURATION)
        events, remotes = replay_counts(
            tr, base.assignment, base.num_engines, window, DURATION
        )
        # Every executed event lands in the trace (node == -1 goes to
        # LP 0 in both accountings), so re-binned totals reproduce the
        # engine's count exactly. Remote sends only approximately: the
        # engine also counts cross-LP mail without a link transmission
        # (agent-admitted live events), so the replay is a lower bound.
        assert events.sum() == engine.events_executed
        assert 0 < remotes.sum() <= int(engine.remote_sends_total().sum())


class TestBgpSpans:
    def test_convergence_span_recorded_when_enabled(self):
        from repro.routing.bgp import configure_bgp
        from repro.topology import generate_multi_as_network

        net = generate_multi_as_network(
            num_ases=3, routers_per_as=3, num_hosts=4, seed=1
        )
        with traced_run() as tr:
            engine = configure_bgp(net)
        spans = [s for s in tr.spans if s.kind == "bgp.convergence"]
        assert len(spans) == 1
        assert spans[0].elapsed_s >= 0.0
        assert spans[0].meta["iterations"] == engine.iterations
        assert spans[0].meta["speakers"] == len(engine.speakers)
