"""Tests for the extension features: calibration, failure injection,
ED workflow, and Pareto on/off traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    calibrated_cluster,
    measure_barrier_cost,
    measure_event_cost,
)
from repro.engine import SimKernel
from repro.netsim import NetworkSimulator, start_transfer
from repro.netsim.app import (
    GridNpbApp,
    ParetoOnOffStream,
    embarrassingly_distributed,
)
from repro.online import Agent
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


class TestCalibration:
    def test_event_cost_positive_and_small(self):
        cost = measure_event_cost(num_events=2_000, repeats=2)
        assert 0 < cost < 1e-3  # a no-op event is far under a millisecond

    def test_barrier_cost_positive(self):
        cost = measure_barrier_cost(4, num_windows=200, repeats=2)
        assert cost > 0

    def test_calibrated_cluster_usable(self):
        spec = calibrated_cluster(lp_counts=(2, 4), num_engine_nodes=4)
        assert spec.event_cost_s > 0
        assert spec.remote_event_cost_s > spec.event_cost_s
        assert spec.sync_cost_s(4) >= spec.sync_cost_s(2)
        assert spec.sync_cost_s(1) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            measure_event_cost(num_events=0)
        with pytest.raises(ValueError):
            measure_barrier_cost(0)


def path_net():
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    core = net.add_link(r0, r1, 1e9, 1e-3)
    net.add_link(h0, r0, 1e9, 20e-6)
    net.add_link(h1, r1, 1e9, 20e-6)
    return net, h0, h1, core


class TestFailureInjection:
    def test_failed_link_drops_everything(self):
        net, h0, h1, core = path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        sim.fail_link(core)
        done = []
        start_transfer(sim, h0, h1, 10_000, lambda t: done.append(t))
        k.run(until=5.0)
        assert not done
        assert sim.counters.packets_dropped_queue > 0

    def test_tcp_survives_transient_failure(self):
        net, h0, h1, core = path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        done = []
        start_transfer(sim, h0, h1, 200_000, lambda t: done.append(t))
        # Fail the core link mid-transfer for 1.5 s, then restore.
        k.schedule_at(0.002, lambda: sim.fail_link(core))
        k.schedule_at(1.5, lambda: sim.restore_link(core))
        k.run(until=120.0)
        assert done, "TCP must recover via RTO after the link returns"
        assert done[0] > 1.5

    def test_restore_is_clean(self):
        net, h0, h1, core = path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        sim.fail_link(core)
        sim.restore_link(core)
        done = []
        start_transfer(sim, h0, h1, 10_000, lambda t: done.append(t))
        k.run(until=5.0)
        assert done


class TestEdWorkflow:
    def test_structure(self):
        wf = embarrassingly_distributed(width=5)
        assert len(wf.tasks) == 6
        assert len(wf.sources) == 5
        assert wf.sinks == [5]
        wf.validate_acyclic()

    def test_executes(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        agent = Agent(sim)
        app = GridNpbApp(agent, flat_net.host_ids()[:4], embarrassingly_distributed())
        app.start()
        k.run(until=120.0)
        assert app.stats.finished

    def test_collector_waits_for_all(self):
        wf = embarrassingly_distributed(width=4)
        assert len(wf.tasks[4].predecessors) == 4


class TestParetoOnOff:
    def _run(self, **kwargs):
        net, h0, h1, _ = path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        got = []
        sim.udp_bind(h1, 5, lambda p: got.append(k.now))
        stream = ParetoOnOffStream(
            sim, h0, h1, rate_bps=2e6, stop_at=20.0, port=5, **kwargs
        )
        stream.start(at=0.0)
        k.run(until=20.0)
        return stream, got

    def test_sends_packets_in_bursts(self):
        stream, got = self._run(seed=1)
        assert stream.packets_sent > 10
        assert stream.on_periods >= 2
        # Burstiness: inter-arrival gaps are bimodal (within-burst spacing
        # vs off-period silences) — the max gap dwarfs the median gap.
        gaps = np.diff(got)
        assert gaps.max() > 10 * np.median(gaps)

    def test_respects_stop(self):
        stream, got = self._run(seed=2)
        assert all(t <= 20.0 for t in got)

    def test_heavier_tail_with_smaller_shape(self):
        # Pareto mean parameterization: both shapes keep the same mean ON
        # length, so total volume is comparable; the tail differs.
        a, _ = self._run(seed=3, shape=1.2)
        b, _ = self._run(seed=3, shape=5.0)
        assert a.packets_sent > 0 and b.packets_sent > 0

    def test_invalid_params(self):
        net, h0, h1, _ = path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        with pytest.raises(ValueError):
            ParetoOnOffStream(sim, h0, h1, rate_bps=0.0, stop_at=1.0)
        with pytest.raises(ValueError):
            ParetoOnOffStream(sim, h0, h1, rate_bps=1e6, stop_at=1.0, shape=0.9)
        with pytest.raises(ValueError):
            ParetoOnOffStream(sim, h0, h1, rate_bps=1e6, stop_at=1.0, mean_on_s=0.0)
