"""Tests for weight assignment and partition evaluation (E = Es * Ec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Approach,
    balance_efficiency,
    build_weighted_graph,
    evaluate_partition,
    latency_to_edge_weight,
    prof_edge_weights,
    prof_vertex_weights,
    sync_efficiency,
    top_edge_weights,
    top_vertex_weights,
)
from repro.profilers import TrafficProfile


def fake_profile(net, hot_node=None):
    events = np.ones(net.num_nodes)
    if hot_node is not None:
        events[hot_node] = 1000.0
    packets = np.ones(net.num_links)
    return TrafficProfile(
        node_events=events,
        link_bytes=packets * 1000,
        link_packets=packets,
        duration_s=1.0,
    )


class TestLatencyConversion:
    def test_smaller_latency_larger_weight(self):
        lats = np.array([0.1e-3, 1e-3, 10e-3])
        for scheme in ("base", "tuned"):
            w = latency_to_edge_weight(lats, scheme)
            assert w[0] > w[1] > w[2]

    def test_tuned_penalizes_harder(self):
        lats = np.array([0.05e-3, 1e-3])
        base = latency_to_edge_weight(lats, "base")
        tuned = latency_to_edge_weight(lats, "tuned")
        assert tuned[0] / tuned[1] > base[0] / base[1]

    def test_caps(self):
        tiny = np.array([1e-9])
        assert latency_to_edge_weight(tiny, "base")[0] == 1e3
        assert latency_to_edge_weight(tiny, "tuned")[0] == 1e8

    def test_invalid(self):
        with pytest.raises(ValueError):
            latency_to_edge_weight(np.array([0.0]))
        with pytest.raises(ValueError):
            latency_to_edge_weight(np.array([1e-3]), "bogus")


class TestVertexWeights:
    def test_top_tracks_bandwidth(self, flat_net):
        w = top_vertex_weights(flat_net)
        assert w.shape[0] == flat_net.num_nodes
        assert w.mean() == pytest.approx(1.0)
        hub = max(range(flat_net.num_nodes), key=flat_net.total_node_bandwidth)
        assert w[hub] == w.max()

    def test_prof_tracks_events(self, flat_net):
        p = fake_profile(flat_net, hot_node=3)
        w = prof_vertex_weights(flat_net, p)
        assert w[3] == w.max()
        assert w.mean() == pytest.approx(1.0)

    def test_prof_size_mismatch(self, flat_net):
        bad = TrafficProfile(np.ones(3), np.ones(1), np.ones(1), 1.0)
        with pytest.raises(ValueError):
            prof_vertex_weights(flat_net, bad)


class TestEdgeWeights:
    def test_top_edges_one_per_link(self, flat_net):
        w = top_edge_weights(flat_net)
        assert w.shape[0] == flat_net.num_links

    def test_prof_traffic_raises_weight(self, flat_net):
        p = fake_profile(flat_net)
        p.link_packets[0] = 10_000.0
        w_hot = prof_edge_weights(flat_net, p)
        p2 = fake_profile(flat_net)
        w_cold = prof_edge_weights(flat_net, p2)
        assert w_hot[0] > w_cold[0]

    def test_prof_latency_term_not_diluted(self, flat_net):
        """An idle small-latency edge must stay more expensive than a busy
        long-latency edge (the MLL protection property)."""
        p = fake_profile(flat_net)
        lats = np.array([l.latency_s for l in flat_net.links])
        short_idle = int(np.argmin(lats))
        long_busy = int(np.argmax(lats))
        p.link_packets[long_busy] = p.link_packets.sum() * 0.5
        w = prof_edge_weights(flat_net, p, scheme="tuned")
        if lats[long_busy] > 20 * lats[short_idle]:
            assert w[short_idle] > w[long_busy]

    def test_invalid_gain(self, flat_net):
        with pytest.raises(ValueError):
            prof_edge_weights(flat_net, fake_profile(flat_net), traffic_gain=-1.0)


class TestBuildWeightedGraph:
    def test_profile_required_for_prof(self, flat_net):
        with pytest.raises(ValueError, match="requires a traffic profile"):
            build_weighted_graph(flat_net, Approach.PROF)

    @pytest.mark.parametrize("approach", list(Approach))
    def test_all_approaches_build(self, flat_net, approach):
        profile = fake_profile(flat_net) if approach.uses_profile else None
        placement = flat_net.host_ids()[:4] if approach.uses_placement else None
        g = build_weighted_graph(flat_net, approach, profile, placement)
        assert g.num_vertices == flat_net.num_nodes
        assert g.num_edges == flat_net.num_links

    def test_placement_required_for_place(self, flat_net):
        with pytest.raises(ValueError, match="placement"):
            build_weighted_graph(flat_net, Approach.PLACE)

    def test_approach_flags(self):
        assert Approach.HPROF.hierarchical and Approach.HPROF.uses_profile
        assert Approach.HTOP.hierarchical and not Approach.HTOP.uses_profile
        assert not Approach.TOP.hierarchical
        assert Approach.TOP2.conversion_scheme == "tuned"
        assert Approach.HPROF.conversion_scheme == "base"
        assert Approach.PLACE.uses_placement and not Approach.PLACE.uses_profile


class TestPlaceWeights:
    def test_app_hosts_boosted(self, flat_net):
        from repro.core import place_vertex_weights, top_vertex_weights

        hosts = flat_net.host_ids()[:3]
        w_place = place_vertex_weights(flat_net, hosts, boost=10.0)
        w_top = top_vertex_weights(flat_net)
        # Relative to the mean, app hosts gain weight.
        for h in hosts:
            assert w_place[h] / w_place.mean() > w_top[h] / w_top.mean()

    def test_access_router_boosted_too(self, flat_net):
        from repro.core import place_vertex_weights, top_vertex_weights

        host = flat_net.host_ids()[0]
        router = next(n for n, _ in flat_net.neighbors(host))
        w_place = place_vertex_weights(flat_net, [host], boost=10.0)
        w_top = top_vertex_weights(flat_net)
        assert w_place[router] / w_top[router] > 1.0

    def test_invalid(self, flat_net):
        from repro.core import place_vertex_weights

        with pytest.raises(ValueError):
            place_vertex_weights(flat_net, [0], boost=-1.0)
        with pytest.raises(ValueError):
            place_vertex_weights(flat_net, [10**9])


class TestEfficiencyMetric:
    def test_sync_efficiency_bounds(self):
        assert sync_efficiency(np.inf, 1e-3) == 1.0
        assert sync_efficiency(1e-3, 1e-3) == 0.0
        assert sync_efficiency(2e-3, 1e-3) == pytest.approx(0.5)
        assert sync_efficiency(0.5e-3, 1e-3) == 0.0  # clamped

    def test_sync_efficiency_invalid(self):
        with pytest.raises(ValueError):
            sync_efficiency(0.0, 1e-3)

    def test_balance_efficiency(self):
        assert balance_efficiency(np.array([2.0, 2.0])) == 1.0
        assert balance_efficiency(np.array([1.0, 3.0])) == pytest.approx(2 / 3)
        assert balance_efficiency(np.zeros(2)) == 1.0

    def test_evaluate_partition(self, two_cluster_graph):
        part = np.array([0] * 10 + [1] * 10)
        ev = evaluate_partition(two_cluster_graph, part, 2, sync_cost_s=1e-3)
        assert ev.mll_s == pytest.approx(5e-3)
        assert ev.es == pytest.approx(0.8)
        assert ev.ec == 1.0
        assert ev.efficiency == pytest.approx(0.8)
        assert ev.predicted_imbalance == 0.0
        assert ev.edge_cut == pytest.approx(1.0)

    def test_evaluate_detects_imbalance(self, two_cluster_graph):
        part = np.array([0] * 15 + [1] * 5)
        ev = evaluate_partition(two_cluster_graph, part, 2, sync_cost_s=1e-4)
        assert ev.ec < 1.0
        assert ev.predicted_imbalance > 0.0

    def test_product_tradeoff(self, two_cluster_graph):
        """E must penalize both a tiny MLL and a bad balance."""
        balanced = np.array([0] * 10 + [1] * 10)  # cuts only the bridge
        ev_good = evaluate_partition(two_cluster_graph, balanced, 2, 1e-3)
        # split inside one clique: MLL collapses to 0.1 ms < sync cost
        bad_mll = balanced.copy()
        bad_mll[0:5] = 1
        bad_mll[10:] = 0
        ev_bad = evaluate_partition(two_cluster_graph, bad_mll, 2, 1e-3)
        assert ev_good.efficiency > ev_bad.efficiency
