"""Tests for the DES event queue, sequential kernel, and conservative
parallel engine — including sequential/parallel equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ConservativeEngine,
    EventQueue,
    LookaheadViolation,
    SimKernel,
)


class TestEventQueue:
    def test_fifo_for_equal_times(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("a"))
        q.push(1.0, lambda: order.append("b"))
        q.pop().fn()
        q.pop().fn()
        assert order == ["a", "b"]

    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        assert q.pop().time == 1.0

    def test_cancel_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()
        assert q.pop().time == 2.0
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        ev.cancel()
        assert q.peek_time() is None
        q.push(3.0, lambda: None)
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda: None)
        assert q and len(q) == 1


class TestSimKernel:
    def test_runs_in_time_order(self):
        k = SimKernel()
        seen = []
        k.schedule(2.0, lambda: seen.append(2))
        k.schedule(1.0, lambda: seen.append(1))
        k.run()
        assert seen == [1, 2]
        assert k.now == 2.0

    def test_until_excludes_boundary(self):
        k = SimKernel()
        seen = []
        k.schedule_at(5.0, lambda: seen.append(5))
        k.run(until=5.0)
        assert seen == []
        assert k.now == 5.0
        k.run(until=6.0)
        assert seen == [5]

    def test_windows_compose(self):
        k = SimKernel()
        seen = []
        for t in (0.5, 1.5, 2.5):
            k.schedule_at(t, lambda t=t: seen.append(t))
        k.run(until=1.0)
        k.run(until=2.0)
        k.run(until=3.0)
        assert seen == [0.5, 1.5, 2.5]

    def test_events_schedule_events(self):
        k = SimKernel()
        seen = []

        def cascade(i):
            seen.append(i)
            if i < 3:
                k.schedule(1.0, lambda: cascade(i + 1))

        k.schedule(0.0, lambda: cascade(0))
        k.run()
        assert seen == [0, 1, 2, 3]

    def test_cannot_schedule_past(self):
        k = SimKernel()
        k.schedule_at(1.0, lambda: None)
        k.run()
        with pytest.raises(ValueError):
            k.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            k.schedule(-0.1, lambda: None)

    def test_max_events(self):
        k = SimKernel()
        for t in range(5):
            k.schedule_at(float(t), lambda: None)
        assert k.run(max_events=3) == 3
        assert k.pending == 2

    def test_step(self):
        k = SimKernel()
        k.schedule_at(1.0, lambda: None)
        assert k.step()
        assert not k.step()

    def test_trace_records(self):
        k = SimKernel(record_trace=True)
        k.schedule_at(1.0, lambda: None, node=7)
        k.schedule_at(2.0, lambda: None, node=3)
        k.run()
        t, n = k.trace()
        assert t.tolist() == [1.0, 2.0]
        assert n.tolist() == [7, 3]

    def test_clear_trace(self):
        k = SimKernel(record_trace=True)
        k.schedule_at(1.0, lambda: None, node=7)
        k.run()
        k.clear_trace()
        t, n = k.trace()
        assert t.size == 0


class TestConservativeEngine:
    def test_window_count(self):
        eng = ConservativeEngine(np.zeros(1, dtype=np.int64), 1, lookahead=0.1)
        eng.run(until=1.0)
        assert len(eng.window_stats) == 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ConservativeEngine(np.zeros(2, dtype=np.int64), 1, lookahead=0.0)
        with pytest.raises(ValueError):
            ConservativeEngine(np.array([0, 5]), 2, lookahead=0.1)

    def test_cross_lp_violation_raises(self):
        eng = ConservativeEngine(np.array([0, 1]), 2, lookahead=0.1)

        def offender():
            # schedule onto the other LP *inside* the current window
            eng.schedule_at(eng.current_time + 0.01, lambda: None, node=1)

        eng.schedule_at(0.05, offender, node=0)
        with pytest.raises(LookaheadViolation):
            eng.run(until=1.0)

    def test_cross_lp_violation_tolerated_when_lenient(self):
        eng = ConservativeEngine(np.array([0, 1]), 2, lookahead=0.1, strict=False)
        seen = []

        def offender():
            eng.schedule_at(eng.current_time + 0.01, lambda: seen.append(1), node=1)

        eng.schedule_at(0.05, offender, node=0)
        eng.run(until=1.0)
        assert eng.lookahead_violations == 1
        assert seen == [1]  # delivered late, not lost

    def test_remote_counted(self):
        eng = ConservativeEngine(np.array([0, 1]), 2, lookahead=0.1)

        def sender():
            eng.schedule_at(eng.current_time + 0.1, lambda: None, node=1)

        eng.schedule_at(0.0, sender, node=0)
        eng.run(until=0.5)
        assert int(eng.remote_sends_total().sum()) == 1
        assert eng.remote_sends_total()[0] == 1  # charged to the sender

    def test_events_per_lp(self):
        eng = ConservativeEngine(np.array([0, 0, 1]), 2, lookahead=0.1)
        eng.schedule_at(0.05, lambda: None, node=0)
        eng.schedule_at(0.15, lambda: None, node=2)
        eng.run(until=1.0)
        assert eng.events_per_lp_total().tolist() == [1, 1]

    def test_rejects_schedule_into_lp_local_past(self):
        # Regression: validation must use the executing LP's local clock,
        # not the barrier clock. An event at t=0.05 runs inside window
        # [0, 0.1) while the barrier clock is still 0.0 — scheduling at
        # t=0.02 is after the barrier but before the LP's local now, and
        # silently inverts execution order unless rejected.
        eng = ConservativeEngine(np.array([0]), 1, lookahead=0.1)

        def offender():
            eng.schedule_at(0.02, lambda: None, node=0)

        eng.schedule_at(0.05, offender, node=0)
        with pytest.raises(ValueError, match="LP's past"):
            eng.run(until=0.1)

    def test_same_lp_future_within_window_allowed(self):
        # The LP-local floor must not over-reject: same-LP scheduling
        # ahead of the local clock but inside the current window is legal.
        eng = ConservativeEngine(np.array([0]), 1, lookahead=0.1)
        seen = []

        def sender():
            eng.schedule_at(0.06, lambda: seen.append(1), node=0)

        eng.schedule_at(0.05, sender, node=0)
        eng.run(until=0.1)
        assert seen == [1]

    def test_lookahead_guard_scales_with_simulated_time(self):
        # Regression: with an absolute epsilon (1e-15) the boundary
        # tolerance falls below one float ULP once simulated time passes
        # ~0.01 s, so a cross-LP event at window_end - 1e-11 near t=2000
        # was flagged as a violation. The relative epsilon
        # (1e-9 * lookahead = 5e-10 here) must accept it.
        eng = ConservativeEngine(np.array([0, 1]), 2, lookahead=0.5)
        seen = []

        def sender():
            eng.schedule_at(2000.0 - 1e-11, lambda: seen.append(1), node=1)

        eng.schedule_at(1999.6, sender, node=0)
        eng.run(until=2000.6)
        assert eng.lookahead_violations == 0
        assert seen == [1]

    def test_equivalence_with_sequential(self):
        """The conservative engine executes the same event sequence as the
        sequential kernel when cross-LP delays respect the lookahead."""
        rng = np.random.default_rng(0)
        num_nodes, num_lps, lookahead = 8, 3, 0.05
        assignment = rng.integers(0, num_lps, size=num_nodes)

        def build(engine, log):
            def fire(node, depth, t_sched):
                log.append((round(t_sched, 9), node, depth))
                if depth < 4:
                    # same-LP short hop
                    engine.schedule_at(
                        t_sched + 0.013, lambda: fire(node, depth + 1, t_sched + 0.013), node=node
                    )
                    # cross-LP hop with delay >= lookahead
                    target = (node + 3) % num_nodes
                    engine.schedule_at(
                        t_sched + 0.06,
                        lambda: fire(target, depth + 1, t_sched + 0.06),
                        node=target,
                    )

            for n in range(num_nodes):
                t0 = 0.001 * (n + 1)
                engine.schedule_at(t0, lambda n=n, t0=t0: fire(n, 0, t0), node=n)

        seq_log: list = []
        k = SimKernel()
        build(k, seq_log)
        k.run(until=1.0)

        par_log: list = []
        eng = ConservativeEngine(assignment, num_lps, lookahead)
        build(eng, par_log)
        eng.run(until=1.0)

        assert sorted(seq_log) == sorted(par_log)
        assert len(par_log) == eng.events_executed
