"""Unit tests for the experiment runner's evaluation step in isolation.

``evaluate_mappings`` is normally fed by full simulation runs; here it is
driven with hand-built traces so that the metric mechanics (window-max
cost, imbalance, PE) are pinned down precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import Approach, NetworkMapping, PartitionEvaluation
from repro.core.evaluate import PartitionEvaluation as PE_cls
from repro.experiments.runner import evaluate_mappings


@dataclass
class FakeKernel:
    times: np.ndarray
    nodes: np.ndarray

    def trace(self):
        return self.times, self.nodes


@dataclass
class FakeSim:
    tx: tuple[np.ndarray, np.ndarray, np.ndarray]

    def transmissions(self):
        return self.tx


def mk_mapping(approach, assignment, num_engines, mll_s):
    evaluation = PE_cls(
        mll_s=mll_s,
        es=0.5,
        ec=0.9,
        efficiency=0.45,
        predicted_imbalance=0.1,
        part_weights=np.ones(num_engines),
        edge_cut=1.0,
    )
    return NetworkMapping(
        approach=approach,
        assignment=np.asarray(assignment, dtype=np.int64),
        num_engines=num_engines,
        evaluation=evaluation,
        tmll_s=0.0,
    )


@pytest.fixture()
def cluster():
    return ClusterSpec(name="unit", num_engine_nodes=2)


class TestEvaluateMappings:
    def _fixtures(self, n_events=1000, duration=1.0, seed=0):
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0, duration, n_events))
        nodes = rng.integers(0, 4, n_events)
        kernel = FakeKernel(times, nodes)
        sim = FakeSim(
            (np.empty(0), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        return kernel, sim

    def test_balanced_beats_skewed(self, cluster):
        kernel, sim = self._fixtures()
        balanced = mk_mapping(Approach.HPROF, [0, 1, 0, 1], 2, 1e-2)
        skewed = mk_mapping(Approach.TOP, [0, 0, 0, 1], 2, 1e-2)
        rows = evaluate_mappings(
            kernel, sim, {Approach.HPROF: balanced, Approach.TOP: skewed},
            cluster, 2, 1.0,
        )
        t = {r.approach: r.sim_time_s for r in rows}
        imb = {r.approach: r.measured_imbalance for r in rows}
        assert t[Approach.HPROF] < t[Approach.TOP]
        assert imb[Approach.HPROF] < imb[Approach.TOP]

    def test_larger_mll_fewer_windows_less_sync(self, cluster):
        kernel, sim = self._fixtures()
        coarse = mk_mapping(Approach.HTOP, [0, 1, 0, 1], 2, 0.1)
        fine = mk_mapping(Approach.TOP, [0, 1, 0, 1], 2, 0.001)
        rows = evaluate_mappings(
            kernel, sim, {Approach.HTOP: coarse, Approach.TOP: fine}, cluster, 2, 1.0
        )
        t = {r.approach: r.sim_time_s for r in rows}
        assert t[Approach.HTOP] < t[Approach.TOP]
        sync = {r.approach: r.prediction.sync_s for r in rows}
        assert sync[Approach.HTOP] == pytest.approx(sync[Approach.TOP] / 100, rel=0.2)

    def test_infinite_mll_single_window(self, cluster):
        kernel, sim = self._fixtures()
        lone = mk_mapping(Approach.TOP, [0, 0, 0, 0], 1, float("inf"))
        rows = evaluate_mappings(kernel, sim, {Approach.TOP: lone}, cluster, 1, 1.0)
        assert rows[0].prediction.num_windows == 1
        assert rows[0].prediction.sync_s == 0.0

    def test_pe_decreases_with_engines_under_fixed_work(self, cluster):
        kernel, sim = self._fixtures()
        from dataclasses import replace

        rows2 = evaluate_mappings(
            kernel, sim, {Approach.TOP: mk_mapping(Approach.TOP, [0, 1, 0, 1], 2, 1e-2)},
            cluster, 2, 1.0,
        )
        cluster8 = replace(cluster, num_engine_nodes=8)
        rows8 = evaluate_mappings(
            kernel, sim,
            {Approach.TOP: mk_mapping(Approach.TOP, [0, 1, 2, 3], 8, 1e-2)},
            cluster8, 8, 1.0,
        )
        # Same total work spread over 4x the engines with the same MLL:
        # efficiency must drop (sync grows, per-engine work shrinks).
        assert rows8[0].parallel_eff < rows2[0].parallel_eff

    def test_remote_traffic_charged(self, cluster):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 1.0, 100))
        nodes = rng.integers(0, 4, 100)
        kernel = FakeKernel(times, nodes)
        tx_t = np.array([0.5, 0.6])
        tx_f = np.array([0, 2])  # LP0 -> LP1 and LP0 -> LP1 under [0,0,1,1]
        tx_to = np.array([2, 0])
        sim = FakeSim((tx_t, tx_f, tx_to))
        mapping = mk_mapping(Approach.PROF, [0, 0, 1, 1], 2, 1e-2)
        rows = evaluate_mappings(kernel, sim, {Approach.PROF: mapping}, cluster, 2, 1.0)
        assert rows[0].prediction.remote_per_lp.sum() == 2
