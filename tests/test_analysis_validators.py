"""Artifact-validator tests: one known-bad fixture per rule id.

Covers the topology (TOPO2xx), BGP-policy (BGP3xx), and partition
(PART4xx) validators, plus the construction-boundary hooks and the
clean pass over generated artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BgpPolicyError,
    PartitionValidationError,
    Severity,
    TopologyValidationError,
    check_bgp_policy,
    check_partition,
    check_topology,
    validate_bgp_policy,
    validate_partition,
    validate_topology,
)
from repro.partition import WeightedGraph
from repro.routing.bgp import configure_bgp
from repro.topology import generate_multi_as_network
from repro.topology.models import ASDomain, ASTier, Link, Network, NodeKind


def ids(findings):
    return sorted(f.rule_id for f in findings)


def two_as_net() -> Network:
    """Minimal symmetric 2-AS network: one router each, one border link."""
    net = Network()
    a = net.add_as(0, ASTier.CORE)
    b = net.add_as(1, ASTier.STUB)
    r0 = net.add_node(NodeKind.ROUTER, as_id=0)
    r1 = net.add_node(NodeKind.ROUTER, as_id=1)
    net.add_link(r0, r1, 1e9, 1e-3)
    a.routers, b.routers = [r0], [r1]
    a.customers.add(1)
    b.providers.add(0)
    a.border_links[1] = [(r0, r1)]
    b.border_links[0] = [(r1, r0)]
    return net


class TestTopologyValidator:
    def test_clean_two_as_net(self):
        assert check_topology(two_as_net()) == []

    def test_disconnected_fires_topo201(self):
        net = Network()
        net.add_node(NodeKind.ROUTER)
        net.add_node(NodeKind.ROUTER)
        findings = check_topology(net)
        assert ids(findings) == ["TOPO201"]
        with pytest.raises(TopologyValidationError, match="TOPO201"):
            validate_topology(net)

    def test_nonpositive_link_attrs_fire_topo202(self):
        net = Network()
        u = net.add_node(NodeKind.ROUTER)
        v = net.add_node(NodeKind.ROUTER)
        # add_link guards these at construction; corrupt the list directly
        # to model an artifact produced by an external loader.
        net.links.append(Link(0, u, v, bandwidth_bps=0.0, latency_s=-1.0))
        net._adj[u].append(0)
        net._adj[v].append(0)
        findings = check_topology(net)
        assert ids(findings) == ["TOPO202", "TOPO202"]

    def test_unmirrored_border_link_fires_topo203(self):
        net = two_as_net()
        net.as_domains[1].border_links = {}
        findings = check_topology(net)
        assert "TOPO203" in ids(findings)

    def test_phantom_border_link_fires_topo203(self):
        net = two_as_net()
        net.as_domains[0].border_links[1] = [(99, 100)]
        findings = check_topology(net)
        assert "TOPO203" in ids(findings)

    def test_conflicting_parallel_links_fire_topo204(self):
        net = Network()
        u = net.add_node(NodeKind.ROUTER)
        v = net.add_node(NodeKind.ROUTER)
        net.add_link(u, v, 1e9, 1e-3)
        net.add_link(u, v, 2e9, 1e-3)  # same pair, different bandwidth
        findings = check_topology(net)
        assert ids(findings) == ["TOPO204"]

    def test_wrong_as_membership_fires_topo205(self):
        net = two_as_net()
        net.as_domains[0].routers.append(net.as_domains[1].routers[0])
        findings = check_topology(net)
        assert "TOPO205" in ids(findings)

    def test_generated_multi_as_net_is_clean(self):
        net = generate_multi_as_network(
            num_ases=6, routers_per_as=5, num_hosts=8, seed=11
        )
        assert check_topology(net) == []


def sym_domains() -> dict[int, ASDomain]:
    """Three-AS chain: 0 provides to 1, 1 provides to 2, all symmetric."""
    d0 = ASDomain(0, ASTier.CORE, customers={1})
    d1 = ASDomain(1, ASTier.REGIONAL, providers={0}, customers={2})
    d2 = ASDomain(2, ASTier.STUB, providers={1})
    return {0: d0, 1: d1, 2: d2}


class TestBgpPolicyValidator:
    def test_clean_chain(self):
        assert check_bgp_policy(sym_domains()) == []

    def test_asymmetric_relationship_fires_bgp301(self):
        doms = sym_domains()
        doms[2].providers.clear()  # 1 still lists 2 as customer
        findings = check_bgp_policy(doms)
        assert ids(findings) == ["BGP301"]
        assert "AS 1" in findings[0].message and "AS 2" in findings[0].message
        with pytest.raises(BgpPolicyError, match="asymmetric"):
            validate_bgp_policy(doms)

    def test_unknown_neighbor_fires_bgp302(self):
        doms = sym_domains()
        doms[2].peers.add(77)
        findings = check_bgp_policy(doms)
        assert ids(findings) == ["BGP302"]
        assert "unknown AS 77" in findings[0].message

    def test_overlapping_roles_fire_bgp303(self):
        doms = sym_domains()
        doms[1].peers.add(0)  # 0 is already 1's provider
        doms[0].peers.add(1)
        findings = check_bgp_policy(doms)
        assert "BGP303" in ids(findings)

    def test_self_relationship_fires_bgp303(self):
        doms = sym_domains()
        doms[0].peers.add(0)
        assert "BGP303" in ids(check_bgp_policy(doms))

    def test_provider_cycle_fires_bgp304(self):
        # 0 -> 1 -> 2 -> 0 in the customer->provider digraph: each AS
        # pays the next — a dispute wheel.
        d0 = ASDomain(0, ASTier.REGIONAL, providers={1}, customers={2})
        d1 = ASDomain(1, ASTier.REGIONAL, providers={2}, customers={0})
        d2 = ASDomain(2, ASTier.REGIONAL, providers={0}, customers={1})
        findings = check_bgp_policy({0: d0, 1: d1, 2: d2})
        assert "BGP304" in ids(findings)
        [cycle] = [f for f in findings if f.rule_id == "BGP304"]
        assert "dispute wheel" in cycle.message

    def test_generated_multi_as_relationships_are_clean(self):
        net = generate_multi_as_network(
            num_ases=10, routers_per_as=4, num_hosts=8, seed=5
        )
        assert check_bgp_policy(net) == []

    def test_configure_bgp_rejects_asymmetric_network(self):
        net = two_as_net()
        net.as_domains[1].providers.clear()
        with pytest.raises(BgpPolicyError):
            configure_bgp(net)


class TestPartitionValidator:
    @pytest.fixture()
    def ring(self) -> WeightedGraph:
        n = 8
        u = np.arange(n)
        return WeightedGraph(n, u, (u + 1) % n, edge_latency=np.full(n, 1e-3))

    def test_clean_partition(self, ring):
        part = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert check_partition(ring, part, 2) == []
        ring.validate_partition(part, 2)  # raises on violation

    def test_wrong_length_fires_part401(self, ring):
        findings = check_partition(ring, np.zeros(3, dtype=np.int64), 2)
        assert ids(findings) == ["PART401"]

    def test_unassigned_vertex_fires_part401(self, ring):
        part = np.array([0, 0, -1, 0, 1, 1, 1, 1])
        findings = check_partition(ring, part, 2)
        assert "PART401" in ids(findings)
        with pytest.raises(PartitionValidationError, match="PART401"):
            validate_partition(ring, part, 2)

    def test_out_of_range_fires_part402(self, ring):
        part = np.array([0, 0, 5, 0, 1, 1, 1, 1])
        assert "PART402" in ids(check_partition(ring, part, 2))

    def test_empty_part_fires_part403(self, ring):
        part = np.zeros(8, dtype=np.int64)  # everything on engine 0 of 3
        findings = check_partition(ring, part, 3)
        assert ids(findings) == ["PART403"]
        assert "idle" in findings[0].message

    def test_weight_drift_fires_part404(self):
        # A NaN vertex weight poisons the accounting: per-part sums can
        # no longer reconcile against the graph total.
        n = 4
        u = np.arange(n)
        vw = np.array([1.0, 1.0, np.nan, 1.0])
        g = WeightedGraph(n, u, (u + 1) % n, edge_latency=np.full(n, 1e-3), vertex_weight=vw)
        findings = check_partition(g, np.array([0, 0, 1, 1]), 2)
        assert "PART404" in ids(findings)

    def test_fewer_vertices_than_parts_allowed(self):
        g = WeightedGraph(2, [0], [1], edge_latency=[1e-3])
        assert check_partition(g, np.array([0, 1]), 4) == []

    def test_findings_are_error_severity(self, ring):
        findings = check_partition(ring, np.zeros(8, dtype=np.int64), 3)
        assert all(f.severity is Severity.ERROR for f in findings)
