"""Unit tests for the online re-balancer's decision mechanics.

Everything here drives :class:`repro.partition.rebalance.Rebalancer`
directly with synthetic window counters — no engines, no processes — so
each trigger rule (threshold, patience, warm-up, cooldown, history
flush, budget retirement) and each candidate constraint (LP 0 pinned,
shards keep one LP, minimum relative gain) is pinned in isolation. The
cross-process byte-identity bar lives in the differential-determinism
suite; this file is about *when* and *what* the controller decides.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultKind
from repro.partition.rebalance import (
    MigrationDecision,
    RebalanceConfig,
    Rebalancer,
    lp_affinity,
    slowdown_spans,
    span_multipliers,
)

# Four LPs in two shards. Events [1, 1, 20, 1] put shard 1 far over
# threshold; the profitable single move is LP 3 off the blamed shard
# (moving hot LP 2 just relocates the straggler).
SHARDS = [[0, 1], [2, 3]]
HOT = [1, 1, 20, 1]
BALANCED = [5, 5, 5, 5]
ZEROS = [0, 0, 0, 0]


def _cfg(**overrides):
    defaults = dict(
        threshold=0.6, patience=2, cooldown=3, history=3, min_gain_fraction=0.0
    )
    defaults.update(overrides)
    return RebalanceConfig(**defaults)


def _feed(rb, events, windows=1, start=0.0, measured=None):
    """Feed identical windows; returns the last decision (or None)."""
    decision = None
    for k in range(windows):
        decision = rb.observe_window(
            rb._window_count if hasattr(rb, "_window_count") else k,
            start + k * 1e-3,
            start + (k + 1) * 1e-3,
            events,
            [0] * len(events),
            measured_shard_busy=measured,
        )
    return decision


class TestTriggerRules:
    def test_warmup_holds_trigger_until_history_is_full(self):
        rb = Rebalancer(_cfg(patience=1), SHARDS, 4)
        # history=3: the first two windows are ramp-up, no trigger even
        # at 100% concentration.
        assert _feed(rb, HOT, windows=2) is None
        assert rb.triggers == 0
        # Third window completes the history; patience=1 fires at once.
        assert _feed(rb, HOT) is not None

    def test_patience_requires_consecutive_hot_windows(self):
        rb = Rebalancer(_cfg(), SHARDS, 4)
        assert _feed(rb, HOT, windows=3) is None  # warm-up + streak 1
        assert rb.triggers == 0
        decision = _feed(rb, HOT)  # streak 2 == patience
        assert decision is not None
        assert decision.src_shard == 1 and decision.dst_shard == 0
        assert decision.lp == 3, "the fast LP moves, not the straggler"
        assert decision.predicted_gain_s > 0.0
        assert decision.concentration == pytest.approx(1.0)

    def test_balanced_windows_never_trigger(self):
        rb = Rebalancer(_cfg(patience=1), SHARDS, 4)
        # Equal shard busy -> zero wait -> exactly zero concentration.
        assert _feed(rb, BALANCED, windows=10) is None
        assert rb.triggers == 0 and not rb.migrations

    def test_concentration_drop_resets_the_streak(self):
        # The trigger watches *trailing* concentration, so hot windows
        # must rotate out of the history deque before the streak breaks.
        rb = Rebalancer(_cfg(patience=4), SHARDS, 4)
        _feed(rb, HOT, windows=3)  # warm-up done, streak 1
        assert rb._streak == 1
        # Two idle windows still see the hot window's trailing blame...
        _feed(rb, ZEROS, windows=2)
        assert rb._streak == 3
        # ...the third flushes it: concentration 0, streak reset.
        assert _feed(rb, ZEROS) is None
        assert rb._streak == 0 and not rb.migrations
        # The streak restarts from scratch: patience=4 hot windows.
        assert _feed(rb, HOT, windows=3) is None
        assert _feed(rb, HOT) is not None

    def test_accepted_migration_flushes_history_and_starts_cooldown(self):
        rb = Rebalancer(_cfg(), SHARDS, 4)
        decision = _feed(rb, HOT, windows=4)
        assert decision is not None
        assert list(rb.shard_of) == [0, 0, 1, 0]
        # The trailing history described the dead placement; it is gone.
        assert len(rb._busy_history) == 0
        # Warm-up refill (2 more windows) then cooldown (3) both hold
        # the trigger; only after that can a second decision arm.
        assert _feed(rb, HOT, windows=2 + 3 + 1) is None
        assert len(rb.migrations) == 1

    def test_budget_retirement_skips_bookkeeping(self):
        rb = Rebalancer(_cfg(max_migrations=0), SHARDS, 4)
        assert rb.retired
        assert _feed(rb, HOT, windows=5) is None
        # Retired observe_window returns before touching the history.
        assert len(rb._busy_history) == 0 and rb.triggers == 0

    def test_measured_source_feeds_the_trigger(self):
        # Modeled counters are perfectly balanced, but the measured
        # per-shard walls say shard 1 straggles: the trigger must arm
        # from the measured view (scoring still uses modeled history,
        # which calls every move a wash here, so nothing is accepted).
        rb = Rebalancer(_cfg(source="measured", patience=1), SHARDS, 4)
        _feed(rb, BALANCED, windows=4, measured=[1e-3, 9e-3])
        assert rb.triggers >= 1
        assert not rb.migrations


class TestCandidateConstraints:
    def test_lp0_is_pinned_to_the_control_shard(self):
        # Shard 0 blamed via a hot LP 0: only LP 1 may move.
        rb = Rebalancer(_cfg(), SHARDS, 4)
        decision = _feed(rb, [20, 1, 1, 1], windows=4)
        assert decision is not None and decision.lp == 1

    def test_blamed_shard_holding_only_lp0_yields_no_move(self):
        rb = Rebalancer(_cfg(), [[0], [1, 2, 3]], 4)
        assert _feed(rb, [20, 1, 1, 1], windows=6) is None
        assert rb.triggers > 0 and not rb.migrations

    def test_single_lp_shard_keeps_its_lp(self):
        rb = Rebalancer(_cfg(), [[0, 1], [2], [3]], 4)
        assert _feed(rb, [1, 1, 20, 1], windows=6) is None
        assert rb.triggers > 0 and not rb.migrations

    def test_min_gain_fraction_rejects_washes(self):
        # The LP-3 move saves 1 of 21 cost units (~4.8%); a 50% floor
        # must reject it even though the gain is positive.
        rb = Rebalancer(_cfg(min_gain_fraction=0.5), SHARDS, 4)
        assert _feed(rb, HOT, windows=6) is None
        assert rb.triggers > 0 and rb.candidates_scored > 0

    def test_affinity_breaks_score_ties_toward_chatty_neighbors(self):
        # Three shards, LP 2 blamed-shard-mate choices tie on score;
        # the chain affinity (2-3 linked) must steer LP 3's... here:
        # shard 1 = {2, 3} blamed, LP 3 can go to shard 0 or shard 2.
        # Shard 2 holds LP 4, linked to nothing; shard 0 holds 0,1 and
        # the chain links 1-2, so moving LP 3 anywhere scores equally —
        # affinity prefers the destination LP 3 actually talks to.
        aff = lp_affinity([(0, 1), (1, 2), (2, 3), (3, 4)], np.arange(5), 5)
        rb = Rebalancer(
            _cfg(), [[0, 1], [2, 3], [4]], 5, affinity=aff
        )
        decision = _feed(rb, [1, 1, 20, 1, 1], windows=4)
        assert decision is not None and decision.lp == 3
        # LP 3's only link goes to LP 4 on shard 2.
        assert decision.dst_shard == 2


class TestPureHelpers:
    def test_slowdown_spans_pair_and_extend(self):
        events = [
            FaultEvent(0.2, FaultKind.LP_SLOWDOWN_START, (1,), (("factor", 4.0),)),
            FaultEvent(0.5, FaultKind.LP_SLOWDOWN_END, (1,)),
            FaultEvent(0.7, FaultKind.LP_SLOWDOWN_START, (0,), (("factor", 2.0),)),
        ]
        spans = slowdown_spans(events, end_time=1.0)
        assert spans == [(1, 0.2, 0.5, 4.0), (0, 0.7, 1.0, 2.0)]

    def test_span_multipliers_apply_to_overlapping_windows_only(self):
        spans = [(1, 0.2, 0.5, 4.0)]
        assert span_multipliers(spans, 0.0, 0.1, 2).tolist() == [1.0, 1.0]
        assert span_multipliers(spans, 0.25, 0.35, 2).tolist() == [1.0, 4.0]
        assert span_multipliers(spans, 0.6, 0.7, 2).tolist() == [1.0, 1.0]

    def test_lp_affinity_counts_cross_lp_links_symmetrically(self):
        aff = lp_affinity([(0, 1), (1, 2), (2, 3)], np.array([0, 0, 1, 1]), 2)
        # One link (nodes 1-2) crosses LP 0 <-> LP 1.
        assert aff[0, 1] == aff[1, 0] == 1.0
        assert aff[0, 0] == aff[1, 1] == 0.0

    def test_decision_as_dict_is_flat_json(self):
        d = MigrationDecision(9, 3, 1, 0, 0.75, 1.5e-3)
        assert d.as_dict() == {
            "window_index": 9,
            "lp": 3,
            "src_shard": 1,
            "dst_shard": 0,
            "concentration": 0.75,
            "predicted_gain_s": 1.5e-3,
        }

    def test_config_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            RebalanceConfig(threshold=0.0)
        with pytest.raises(ValueError, match="patience"):
            RebalanceConfig(patience=0)
        with pytest.raises(ValueError, match="history"):
            RebalanceConfig(history=0)
        with pytest.raises(ValueError, match="source"):
            RebalanceConfig(source="psychic")
        with pytest.raises(ValueError, match="shards must cover"):
            Rebalancer(RebalanceConfig(), [[0, 1]], 4)
