"""Tests for traffic profiling and the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.metrics import load_imbalance, max_over_mean, parallel_efficiency, speedup
from repro.netsim import NetworkSimulator, send_datagram
from repro.profilers import TrafficProfile, node_rate_series


class TestTrafficProfile:
    def _profile(self):
        return TrafficProfile(
            node_events=np.array([10.0, 0.0, 5.0]),
            link_bytes=np.array([100.0, 200.0]),
            link_packets=np.array([1.0, 2.0]),
            duration_s=2.0,
        )

    def test_rates(self):
        p = self._profile()
        assert p.node_event_rates().tolist() == [5.0, 0.0, 2.5]
        assert p.total_events == 15.0

    def test_scaled(self):
        p = self._profile().scaled(3.0)
        assert p.total_events == 45.0
        assert p.link_bytes.tolist() == [300.0, 600.0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            TrafficProfile(np.array([1.0]), np.array([]), np.array([]), 0.0)
        with pytest.raises(ValueError):
            TrafficProfile(np.array([-1.0]), np.array([]), np.array([]), 1.0)
        with pytest.raises(ValueError):
            self._profile().scaled(0.0)

    def test_from_simulation(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        hosts = flat_net.host_ids()
        sim.udp_bind(hosts[1], 9, lambda p: None)
        send_datagram(sim, hosts[0], hosts[1], 5000, port=9)
        k.run(until=1.0)
        p = TrafficProfile.from_simulation(sim, 1.0)
        assert p.total_events > 0
        assert p.link_bytes.sum() > 0
        assert p.node_events.shape[0] == flat_net.num_nodes

    def test_snapshot_is_copy(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        p = TrafficProfile.from_simulation(sim, 1.0)
        sim.node_packets[0] = 999
        assert p.node_events[0] == 0


class TestProfileValidation:
    """The shape/consistency cross-checks added with the obs bridge."""

    def _profile(self, **overrides):
        kwargs = dict(
            node_events=np.array([10.0, 0.0, 5.0]),
            link_bytes=np.array([100.0, 200.0]),
            link_packets=np.array([1.0, 2.0]),
            duration_s=2.0,
        )
        kwargs.update(overrides)
        return TrafficProfile(**kwargs)

    def test_shape_properties(self):
        p = self._profile()
        assert p.num_nodes == 3
        assert p.num_links == 2

    def test_non_1d_arrays_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="node_events must be a 1-D"):
            self._profile(node_events=np.ones((3, 2)))
        with pytest.raises(ValueError, match="link_bytes must be a 1-D"):
            self._profile(link_bytes=np.ones((2, 2)))

    def test_link_array_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different link sets"):
            self._profile(link_packets=np.array([1.0, 2.0, 3.0]))

    def test_negative_link_traffic_rejected(self):
        with pytest.raises(ValueError, match="link_packets must be non-negative"):
            self._profile(link_packets=np.array([1.0, -2.0]))

    def test_rate_bins_must_match_node_count(self):
        good = self._profile(
            node_rate_bins=np.zeros((4, 3)), rate_bin_s=0.5
        )
        assert good.node_rate_bins.shape == (4, 3)
        with pytest.raises(ValueError, match=r"\[bins, 3\]"):
            self._profile(node_rate_bins=np.zeros((4, 2)), rate_bin_s=0.5)
        with pytest.raises(ValueError, match=r"\[bins, 3\]"):
            self._profile(node_rate_bins=np.zeros(3), rate_bin_s=0.5)

    def test_rate_bins_need_positive_bin_width(self):
        with pytest.raises(ValueError, match="rate_bin_s"):
            self._profile(node_rate_bins=np.zeros((4, 3)))

    def test_scaled_preserves_rate_bins(self):
        p = self._profile(node_rate_bins=np.ones((2, 3)), rate_bin_s=0.5)
        s = p.scaled(4.0)
        np.testing.assert_allclose(s.node_rate_bins, 4.0)
        assert s.rate_bin_s == 0.5

    def test_validate_topology_accepts_matching_network(self):
        self._profile().validate_topology(num_nodes=3, num_links=2)

    def test_validate_topology_names_the_mismatched_dimension(self):
        with pytest.raises(ValueError, match="covers 3 nodes.*has 7"):
            self._profile().validate_topology(num_nodes=7, num_links=2)
        with pytest.raises(ValueError, match="covers 2 links.*has 9"):
            self._profile().validate_topology(num_nodes=3, num_links=9)

    def test_weight_builder_rejects_foreign_profile(self, flat_net):
        from repro.core import Approach, build_weighted_graph

        foreign = self._profile()  # 3 nodes; flat_net is bigger
        with pytest.raises(ValueError, match="different network"):
            build_weighted_graph(flat_net, Approach.PROF, foreign)


class TestRateSeries:
    def test_binning(self):
        times = np.array([0.1, 0.2, 1.1, 2.9])
        nodes = np.array([0, 1, 0, 1])
        groups = np.array([0, 1])
        starts, rates = node_rate_series(times, nodes, groups, 2, 1.0, 3.0)
        assert starts.tolist() == [0.0, 1.0, 2.0]
        assert rates[0].tolist() == [1.0, 1.0]
        assert rates[1].tolist() == [1.0, 0.0]
        assert rates[2].tolist() == [0.0, 1.0]

    def test_internal_events_skipped(self):
        starts, rates = node_rate_series(
            np.array([0.5]), np.array([-1]), np.array([0]), 1, 1.0, 1.0
        )
        assert rates.sum() == 0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            node_rate_series(np.array([]), np.array([]), np.array([0]), 1, 0.0, 1.0)


class TestLoadImbalance:
    def test_perfect_balance_zero(self):
        assert load_imbalance(np.array([5.0, 5.0, 5.0])) == 0.0

    def test_known_value(self):
        rates = np.array([1.0, 3.0])
        assert load_imbalance(rates) == pytest.approx(0.5)

    def test_scale_invariant(self):
        a = np.array([1.0, 2.0, 3.0])
        assert load_imbalance(a) == pytest.approx(load_imbalance(a * 100))

    def test_all_zero(self):
        assert load_imbalance(np.zeros(4)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance(np.array([]))

    def test_max_over_mean(self):
        assert max_over_mean(np.array([1.0, 3.0])) == pytest.approx(1.5)
        assert max_over_mean(np.zeros(3)) == 1.0


class TestParallelEfficiency:
    def test_ideal(self):
        assert parallel_efficiency(100.0, 10, 10.0) == pytest.approx(1.0)

    def test_paper_range(self):
        # HPROF: ~40% at 90 nodes.
        assert parallel_efficiency(100.0, 90, 2.78) == pytest.approx(0.4, abs=0.01)

    def test_invalid(self):
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0, 1.0)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 2, 0.0)
        with pytest.raises(ValueError):
            parallel_efficiency(-1.0, 2, 1.0)

    def test_speedup(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
