"""End-to-end tests of the conservative parallel engine on real workloads.

The strongest integration evidence in the suite: the same network
simulation runs on the sequential kernel and on the barrier-synchronized
parallel engine, and (for background traffic, which is fully node-local
in its control flow) produces *identical* results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Approach, MappingPipeline
from repro.engine import ConservativeEngine, SimKernel
from repro.experiments import ExperimentScale, build_network, install_workload
from repro.experiments.parallel import predict_from_window_stats, run_parallel_workload
from repro.experiments.runner import cluster_for_scale
from repro.netsim import NetworkSimulator
from repro.netsim.app import HttpTraffic
from repro.online import Agent
from repro.topology import pick_clients_and_servers

SCALE = ExperimentScale(
    name="parallel-test",
    flat_routers=100,
    flat_hosts=40,
    num_ases=6,
    routers_per_as=10,
    multi_hosts=30,
    http_clients=18,
    http_servers=6,
    http_mean_gap_s=0.4,
    num_engines=4,
    app_processes=4,
    scalapack_iterations=2,
    duration_s=5.0,
    profile_duration_s=2.0,
)


@pytest.fixture(scope="module")
def mapped_network():
    net, fib = build_network("single-as", SCALE, seed=2)
    pipeline = MappingPipeline(net, SCALE.num_engines, cluster_for_scale(SCALE), seed=0)
    mapping = pipeline.run(Approach.HTOP)
    return net, fib, mapping


class TestHttpEquivalence:
    """Background HTTP is node-local in control flow: both engines must
    produce byte-identical results."""

    def _run(self, net, fib, engine_factory, clients, servers):
        sched = engine_factory()
        sim = NetworkSimulator(net, fib, sched)
        http = HttpTraffic(sim, clients, servers, seed=5, mean_gap_s=0.3, stop_at=4.0)
        http.start()
        if isinstance(sched, ConservativeEngine):
            sched.run(until=4.0)
            executed = sched.events_executed
        else:
            sched.run(until=4.0)
            executed = sched.events_executed
        return sim, http, executed

    def test_identical_behavior(self, mapped_network, rng):
        net, fib, mapping = mapped_network
        hosts = net.host_ids()
        clients, servers = hosts[:12], hosts[12:16]

        sim_a, http_a, events_a = self._run(net, fib, SimKernel, clients, servers)

        lookahead = min(mapping.achieved_mll_s, 4.0)
        sim_b, http_b, events_b = self._run(
            net,
            fib,
            lambda: ConservativeEngine(
                mapping.assignment, mapping.num_engines, lookahead, strict=True
            ),
            clients,
            servers,
        )

        assert events_a == events_b
        assert http_a.stats.requests_started == http_b.stats.requests_started
        assert http_a.stats.responses_completed == http_b.stats.responses_completed
        assert http_a.stats.bytes_served == http_b.stats.bytes_served
        assert np.allclose(
            sorted(http_a.stats.response_times), sorted(http_b.stats.response_times)
        )
        assert np.array_equal(sim_a.node_packets, sim_b.node_packets)
        assert sim_a.counters.as_dict() == sim_b.counters.as_dict()


class TestFullWorkloadParallel:
    @pytest.mark.parametrize("app_kind", ["scalapack", "gridnpb"])
    def test_runs_strict_without_violations(self, mapped_network, app_kind):
        net, fib, mapping = mapped_network
        engine, sim, handles = run_parallel_workload(
            net, fib, app_kind, SCALE, mapping, duration_s=8.0, seed=1, strict=True
        )
        assert engine.lookahead_violations == 0
        assert engine.events_executed > 1000
        assert handles.http.stats.responses_completed > 0
        # Cross-LP traffic actually flowed.
        assert int(engine.remote_sends_total().sum()) > 0

    def test_apps_complete_in_parallel_mode(self, mapped_network):
        net, fib, mapping = mapped_network
        engine, sim, handles = run_parallel_workload(
            net, fib, "scalapack", SCALE, mapping, duration_s=30.0, seed=1
        )
        assert handles.apps_finished

    def test_window_stats_account_all_events(self, mapped_network):
        net, fib, mapping = mapped_network
        engine, sim, handles = run_parallel_workload(
            net, fib, "gridnpb", SCALE, mapping, duration_s=6.0, seed=3
        )
        assert int(engine.events_per_lp_total().sum()) == engine.events_executed

    def test_prediction_from_measured_windows(self, mapped_network):
        net, fib, mapping = mapped_network
        engine, sim, handles = run_parallel_workload(
            net, fib, "scalapack", SCALE, mapping, duration_s=6.0, seed=1
        )
        cluster = cluster_for_scale(SCALE)
        pred = predict_from_window_stats(engine, cluster)
        assert pred.total_events == engine.events_executed
        assert pred.num_windows == len(engine.window_stats)
        assert pred.total_s > 0
        # Remote accounting agrees with the engine's own counters.
        assert np.allclose(pred.remote_per_lp, engine.remote_sends_total())

    def test_empty_engine_prediction(self):
        engine = ConservativeEngine(np.zeros(1, dtype=np.int64), 2, lookahead=1.0)
        cluster = cluster_for_scale(SCALE)
        pred = predict_from_window_stats(engine, cluster)
        assert pred.total_events == 0
