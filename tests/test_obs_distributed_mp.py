"""End-to-end distributed observability over real worker processes.

The headline invariant of ``obs.distributed``: for deterministic
instruments, the merge of N worker snapshots (plus the controller's own
capture) *equals* the single-process observed run on the same workload —
procs 1, 2, and 4, under both fork and spawn start methods. Plus the
``--backend mp --obs-out`` CLI path writing one merged JSON document.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.obs.registry as registry_mod
import repro.obs.trace as trace_mod
from repro.engine.parallel import ParallelConservativeEngine
from repro.experiments.shard import chain_spec, run_reference
from repro.obs.distributed import (
    RegistrySnapshot,
    merged_registry_snapshot,
    merged_trace_snapshot,
)
from repro.obs.registry import Registry, observed_run
from repro.obs.trace import TraceBuffer, get_tracer, traced_run

ASSIGNMENT = np.array([0, 0, 0, 0, 1, 1, 1, 1])
NUM_LPS = 2
LOOKAHEAD = 1e-4
DURATION = 0.02

#: Instruments only a distributed run records; excluded from the
#: single-process identity comparison by construction.
MP_ONLY = ("parallel.", "calibration.")


def spec():
    return chain_spec(num_nodes=8, latency_s=LOOKAHEAD, packets=20)


def deterministic_view(snap: RegistrySnapshot) -> dict:
    """Deterministic instrument values (timers are wall-clock; skipped)."""

    def keep(name: str) -> bool:
        return not name.startswith(MP_ONLY)

    return {
        "counters": {n: v for n, v in snap.counters.items() if keep(n)},
        "vectors": {n: v.tolist() for n, v in snap.vectors.items() if keep(n)},
        "histograms": {
            n: (h[0], h[1].tolist(), h[2])
            for n, h in snap.histograms.items()
            if keep(n)
        },
        "series": {
            n: (s[0], s[1], s[2].tolist())
            for n, s in snap.series.items()
            if keep(n)
        },
    }


@pytest.fixture(autouse=True)
def fresh_obs_globals(monkeypatch):
    """Fresh process-global registry/tracer per test.

    Other test modules register instruments sized to *their* scenarios
    in the process-global registry; `observed_run` resets values but
    keeps registrations, and the controller's capture of those
    foreign-shaped (zero-valued) vectors would collide with the
    workers' in merge. Fork workers inherit the patched globals.
    """
    monkeypatch.setattr(registry_mod, "_GLOBAL", Registry())
    monkeypatch.setattr(trace_mod, "_GLOBAL", TraceBuffer())


@pytest.fixture()
def single_process_view():
    with observed_run() as reg:
        run_reference(spec(), ASSIGNMENT, NUM_LPS, LOOKAHEAD, DURATION)
        return deterministic_view(RegistrySnapshot.capture(reg))


class TestMergedSnapshotIdentity:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_merged_equals_single_process(
        self, procs, start_method, single_process_view
    ):
        with observed_run():
            engine = ParallelConservativeEngine(
                ASSIGNMENT, NUM_LPS, LOOKAHEAD,
                procs=procs, start_method=start_method,
            )
            result = engine.run_scenario(spec(), until=DURATION)
            merged = merged_registry_snapshot(result)
        assert len(result.registry_snapshots) == procs
        assert deterministic_view(merged) == single_process_view

    def test_provenance_lists_controller_then_workers(self):
        with observed_run():
            engine = ParallelConservativeEngine(
                ASSIGNMENT, NUM_LPS, LOOKAHEAD, procs=2, start_method="fork"
            )
            result = engine.run_scenario(spec(), until=DURATION)
            merged = merged_registry_snapshot(result)
        assert [p["label"] for p in merged.provenance] == [
            "controller", "worker-0", "worker-1",
        ]


class TestMeasuredChannelEndToEnd:
    def test_workers_ship_measured_spans_for_every_window(self):
        with observed_run(), traced_run(get_tracer()):
            engine = ParallelConservativeEngine(
                ASSIGNMENT, NUM_LPS, LOOKAHEAD, procs=2, start_method="fork"
            )
            result = engine.run_scenario(spec(), until=DURATION)
            merged = merged_trace_snapshot(result)
        shards_by_window: dict[int, list[int]] = {}
        for m in merged.measured:
            shards_by_window.setdefault(m.window_index, []).append(m.shard_id)
        assert len(shards_by_window) == len(result.window_stats)
        assert all(sorted(v) == [0, 1] for v in shards_by_window.values())
        # the measured channel is self-consistent with the run totals
        assert sum(m.events for m in merged.measured) == result.events_executed
        assert sum(m.mail_bytes for m in merged.measured) == (
            result.total_mail_bytes
        )

    def test_incremental_deltas_accumulate_to_the_final_snapshot(self):
        with observed_run():
            engine = ParallelConservativeEngine(
                ASSIGNMENT, NUM_LPS, LOOKAHEAD,
                procs=2, start_method="fork", incremental_obs=True,
            )
            result = engine.run_scenario(spec(), until=DURATION)
            merged = merged_registry_snapshot(result)
        assert sum(result.obs_bytes) > 0
        with observed_run() as reg:
            run_reference(spec(), ASSIGNMENT, NUM_LPS, LOOKAHEAD, DURATION)
            single = deterministic_view(RegistrySnapshot.capture(reg))
        assert deterministic_view(merged) == single


class TestObsOutCli:
    def test_backend_mp_obs_out_writes_merged_document(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.__main__ import main
        from repro.experiments import SCALES
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale(
            name="small",
            flat_routers=24,
            flat_hosts=12,
            num_ases=2,
            routers_per_as=4,
            multi_hosts=8,
            http_clients=6,
            http_servers=2,
            http_mean_gap_s=0.5,
            num_engines=2,
            app_processes=2,
            scalapack_iterations=1,
            duration_s=1.0,
            profile_duration_s=0.5,
        )
        monkeypatch.setitem(SCALES, "small", tiny)
        rc = main(
            [
                "experiment", "single-as", "scalapack",
                "--backend", "mp", "--procs", "2",
                "--scale", "small", "--seed", "1",
                "--obs-out", str(tmp_path),
            ]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "obs_mp_snapshot.json").read_text())
        assert doc["meta"]["backend"] == "mp"
        labels = [s["label"] for s in doc["shards"]]
        assert labels[0] == "controller"
        assert {"worker-0", "worker-1"} <= set(labels)
        assert doc["measured_windows"]
        assert doc["calibration"]["windows"]
        assert doc["counters"]["engine.events.executed"] > 0
        out = capsys.readouterr().out
        assert "measured per-shard wall decomposition" in out
        assert "merged observability snapshot written to" in out
