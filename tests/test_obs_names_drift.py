"""Names-drift check: ``obs/names.py`` and the instrumented modules agree.

The canonical-name module is only useful while it is *complete* and
*authoritative*: every constant must be registered by some instrumented
component, and every instrument a component registers must come from the
module. This test constructs one of each instrumented component against
a fresh registry and compares the registered-name set to the constants —
in both directions — so adding a hook without a ``names`` constant (or a
constant nobody registers, or one without ``# HELP`` text) fails here
instead of silently drifting.
"""

from __future__ import annotations

import numpy as np

import repro.obs.registry as registry_mod
from repro.obs import names
from repro.obs.registry import Registry
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


def canonical_names() -> set[str]:
    """Every string instrument-name constant ``names.__all__`` exports."""
    return {
        getattr(names, const)
        for const in names.__all__
        if const.isupper() and isinstance(getattr(names, const), str)
    }


def registered_names(monkeypatch) -> set[str]:
    """Instrument names resolved by constructing each hooked component."""
    reg = Registry()
    monkeypatch.setattr(registry_mod, "_GLOBAL", reg)
    # Imports are deferred past the monkeypatch so each constructor's
    # get_registry() resolves against the fresh registry.
    from repro.analysis.lintstats import LintStats
    from repro.engine.conservative import ConservativeEngine
    from repro.engine.parallel import ParallelConservativeEngine, ShardEngine
    from repro.faults import FaultInjector, FaultSchedule
    from repro.netsim.simulator import NetworkSimulator
    from repro.engine.recovery import RecoveryConfig
    from repro.obs.distributed import CalibrationRecorder
    from repro.partition.rebalance import RebalanceConfig
    from repro.routing.bgp.engine import BgpEngine, BgpSpeaker

    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    net.add_link(r0, h0, 1e9, 1e-3)
    engine = ConservativeEngine(np.zeros(net.num_nodes, dtype=np.int64), 1, 1.0)
    # Constructing the controller registers the controller-side
    # parallel instruments (with a rebalance config, the rebalance.*
    # set too); the worker-side parallel.* set lives in ShardEngine
    # (per-worker recording with shard labels), and the calibration.*
    # set in the CalibrationRecorder. No worker processes start until
    # run_scenario().
    ParallelConservativeEngine(
        np.zeros(net.num_nodes, dtype=np.int64), 1, 1.0,
        rebalance=RebalanceConfig(),
    )
    # Recovery is mutually exclusive with rebalance, so the recovery.*
    # instrument set needs its own controller construction.
    ParallelConservativeEngine(
        np.zeros(net.num_nodes, dtype=np.int64), 1, 1.0,
        recovery=RecoveryConfig(),
    )
    ShardEngine(np.zeros(net.num_nodes, dtype=np.int64), 1, 1.0, owned_lps=[0])
    CalibrationRecorder()
    fib = ForwardingPlane(net)
    sim = NetworkSimulator(net, fib, engine)
    BgpEngine({1: BgpSpeaker(1, {2: "peer"}), 2: BgpSpeaker(2, {1: "peer"})})
    FaultInjector(sim, fib, FaultSchedule.from_events([]))
    LintStats()
    return (
        set(reg.counters())
        | set(reg.vectors())
        | set(reg.gauges())
        | set(reg.histograms())
        | set(reg.timers())
        | set(reg.series_map())
    )


def test_every_registered_instrument_has_a_names_constant(monkeypatch):
    rogue = registered_names(monkeypatch) - canonical_names()
    assert not rogue, (
        f"instruments registered without an obs/names.py constant: {sorted(rogue)}"
    )


def test_every_names_constant_is_registered_by_some_component(monkeypatch):
    dead = canonical_names() - registered_names(monkeypatch)
    assert not dead, (
        f"obs/names.py constants no instrumented module registers: {sorted(dead)}"
    )


def test_every_names_constant_has_help_text():
    missing = canonical_names() - set(names.HELP)
    assert not missing, f"instrument names without # HELP text: {sorted(missing)}"


def test_help_has_no_orphan_entries():
    orphans = set(names.HELP) - canonical_names()
    assert not orphans, f"# HELP entries for unknown instruments: {sorted(orphans)}"
