"""Additional edge-case coverage across modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_profiling_simulation
from repro.engine import ConservativeEngine, SimKernel
from repro.netsim import NetworkSimulator, Packet, Protocol, send_datagram
from repro.netsim.tcp import TcpReceiver
from repro.online import Agent
from repro.routing import ForwardingPlane
from repro.topology import (
    Network,
    NodeKind,
    attach_hosts,
    pick_clients_and_servers,
)


class TestHostsEdgeCases:
    def test_attach_hosts_no_routers(self):
        net = Network()
        net.add_node(NodeKind.HOST)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="no candidate routers"):
            attach_hosts(net, 2, rng, router_ids=[])

    def test_pick_clients_servers_scales_down(self, flat_net, rng):
        clients, servers = pick_clients_and_servers(flat_net, 10_000, 3_000, rng)
        assert len(clients) + len(servers) <= flat_net.num_hosts
        assert clients and servers
        assert not set(clients) & set(servers)

    def test_pick_needs_hosts(self, rng):
        net = Network()
        net.add_node(NodeKind.ROUTER)
        with pytest.raises(ValueError, match="no hosts"):
            pick_clients_and_servers(net, 1, 1, rng)


class TestUdpEdgeCases:
    def test_zero_payload_rejected(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        with pytest.raises(ValueError):
            send_datagram(sim, 0, 1, 0)

    def test_fragment_count(self, flat_net, flat_fib):
        k = SimKernel()
        sim = NetworkSimulator(flat_net, flat_fib, k)
        hosts = flat_net.host_ids()
        n = send_datagram(sim, hosts[0], hosts[1], 5000)
        assert n == 4  # ceil(5000/1472)


class TestConservativeEngineEdgeCases:
    def test_multiple_run_calls_accumulate(self):
        eng = ConservativeEngine(np.zeros(1, dtype=np.int64), 1, lookahead=0.5)
        eng.schedule_at(0.2, lambda: None, node=0)
        eng.schedule_at(1.2, lambda: None, node=0)
        assert eng.run(until=1.0) == 1
        assert eng.run(until=2.0) == 1
        assert eng.events_executed == 2
        assert len(eng.window_stats) == 4

    def test_schedule_into_past_rejected(self):
        eng = ConservativeEngine(np.zeros(1, dtype=np.int64), 1, lookahead=0.5)
        eng.run(until=1.0)
        with pytest.raises(ValueError):
            eng.schedule_at(0.5, lambda: None, node=0)

    def test_pending_counts_mailboxes(self):
        eng = ConservativeEngine(np.array([0, 1]), 2, lookahead=0.1)

        def sender():
            eng.schedule_at(eng.current_time + 0.5, lambda: None, node=1)

        eng.schedule_at(0.0, sender, node=0)
        eng.run(until=0.05)  # partial window processing is not possible;
        assert eng.pending >= 0  # but pending never goes negative


class TestProfilingHelper:
    def test_run_profiling_simulation(self, flat_net, flat_fib):
        calls = {}

        def setup(sim, agent):
            calls["sim"] = sim
            calls["agent"] = agent
            hosts = flat_net.host_ids()
            sim.sched.schedule_at(
                0.1,
                lambda: send_datagram(sim, hosts[0], hosts[1], 4000),
                node=hosts[0],
            )

        profile = run_profiling_simulation(flat_net, flat_fib, setup, 1.0)
        assert isinstance(calls["agent"], Agent)
        assert profile.duration_s == 1.0
        assert profile.total_events > 0


class TestTcpReceiverProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list(range(12))))
    def test_any_arrival_order_reconstructs(self, order):
        """Whatever order segments arrive in, the receiver's cumulative
        counter must end complete and on_complete must fire exactly once."""
        completions: list[float] = []

        class FakeSim:
            now = 0.0

            def inject(self, packet):  # swallow ACKs
                pass

        receiver = TcpReceiver(
            FakeSim(), 1, src=0, dst=1, total_segments=12,
            on_complete=completions.append,
        )
        for seq in order:
            receiver.receive(
                Packet(src=0, dst=1, size_bytes=100, protocol=Protocol.TCP,
                       flow_id=1, seq=seq)
            )
        assert receiver.cumulative == 12
        assert completions == [0.0]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=40))
    def test_duplicates_never_overcount(self, seqs):
        class FakeSim:
            now = 0.0

            def inject(self, packet):
                pass

        receiver = TcpReceiver(FakeSim(), 1, 0, 1, total_segments=12)
        for seq in seqs:
            receiver.receive(
                Packet(src=0, dst=1, size_bytes=100, protocol=Protocol.TCP,
                       flow_id=1, seq=seq)
            )
        # Cumulative == length of the longest contiguous prefix delivered.
        delivered = set(seqs)
        expected = 0
        while expected in delivered:
            expected += 1
        assert receiver.cumulative == expected


class TestForwardingPlaneCache:
    def test_cache_returns_none_consistently(self, flat_net):
        fib = ForwardingPlane(flat_net)
        h = flat_net.host_ids()[0]
        assert fib.next_hop(h, h) is None
        assert fib.next_hop(h, h) is None  # cached path
