"""Tests for coarsening, initial bisection, FM refinement, and k-way."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition import (
    WeightedGraph,
    balance_partition,
    best_bisection,
    coarsen,
    coarsen_once,
    fm_refine,
    greedy_graph_growing,
    heavy_edge_matching,
    multilevel_bisect,
    partition_kway,
)


def path_graph(n, weight=None):
    us = list(range(n - 1))
    vs = list(range(1, n))
    return WeightedGraph(n, us, vs, weight, np.full(n - 1, 1e-3))


class TestHeavyEdgeMatching:
    def test_labels_dense(self, grid_graph, rng):
        labels = heavy_edge_matching(grid_graph, rng)
        k = labels.max() + 1
        assert set(labels.tolist()) == set(range(k))

    def test_clusters_at_most_two(self, grid_graph, rng):
        labels = heavy_edge_matching(grid_graph, rng)
        _, counts = np.unique(labels, return_counts=True)
        assert counts.max() <= 2

    def test_matched_pairs_are_adjacent(self, grid_graph, rng):
        labels = heavy_edge_matching(grid_graph, rng)
        for lbl in range(labels.max() + 1):
            members = np.flatnonzero(labels == lbl)
            if len(members) == 2:
                a, b = members
                assert b in grid_graph.neighbors(int(a))

    def test_prefers_heavy_edges(self, rng):
        # Two heavy pairs (0,1) and (2,3) plus light cross edges: whatever
        # the visit order, every vertex's heaviest unmatched neighbor is
        # its heavy partner, so both heavy edges must be matched.
        g = WeightedGraph(
            4,
            [0, 2, 1, 0, 0, 1],
            [1, 3, 2, 3, 2, 3],
            edge_weight=[100.0, 100.0, 1.0, 1.0, 1.0, 1.0],
        )
        for seed in range(5):
            labels = heavy_edge_matching(g, np.random.default_rng(seed))
            assert labels[0] == labels[1]
            assert labels[2] == labels[3]

    def test_respects_weight_cap(self, rng):
        g = WeightedGraph(2, [0], [1], vertex_weight=[10.0, 10.0])
        labels = heavy_edge_matching(g, rng, max_vertex_weight=15.0)
        assert labels[0] != labels[1]

    def test_singleton_graph(self, rng):
        g = WeightedGraph(1, [], [])
        labels = heavy_edge_matching(g, rng)
        assert labels.tolist() == [0]


class TestCoarsen:
    def test_preserves_total_weight(self, grid_graph, rng):
        coarsest, levels = coarsen(grid_graph, 8, rng)
        assert coarsest.total_vertex_weight == pytest.approx(
            grid_graph.total_vertex_weight
        )

    def test_reaches_target(self, grid_graph, rng):
        coarsest, levels = coarsen(grid_graph, 8, rng)
        assert coarsest.num_vertices <= 16  # roughly halves per level
        assert len(levels) >= 2

    def test_projection_chain(self, grid_graph, rng):
        coarsest, levels = coarsen(grid_graph, 8, rng)
        part = np.zeros(coarsest.num_vertices, dtype=np.int64)
        part[: coarsest.num_vertices // 2] = 1
        for level in reversed(levels):
            part = level.contraction.project(part)
        assert part.shape[0] == grid_graph.num_vertices

    def test_invalid_target(self, grid_graph, rng):
        with pytest.raises(ValueError):
            coarsen(grid_graph, 1, rng)

    def test_coarsen_once_shrinks(self, grid_graph, rng):
        c = coarsen_once(grid_graph, rng)
        assert c.coarse.num_vertices < grid_graph.num_vertices


class TestInitialBisection:
    def test_balanced_split(self, grid_graph, rng):
        part = greedy_graph_growing(grid_graph, rng, 0.5)
        w = grid_graph.partition_weights(part, 2)
        assert abs(w[0] - w[1]) / grid_graph.total_vertex_weight < 0.25

    def test_uneven_target(self, grid_graph, rng):
        part = greedy_graph_growing(grid_graph, rng, 0.25)
        w = grid_graph.partition_weights(part, 2)
        assert w[0] < w[1]

    def test_invalid_fraction(self, grid_graph, rng):
        with pytest.raises(ValueError):
            greedy_graph_growing(grid_graph, rng, 0.0)

    def test_best_bisection_feasible(self, grid_graph, rng):
        part = best_bisection(grid_graph, rng, trials=4)
        w = grid_graph.partition_weights(part, 2)
        assert w.max() / (grid_graph.total_vertex_weight / 2) <= 1.25

    def test_two_cluster_graph_cut_is_bridge(self, two_cluster_graph, rng):
        part = best_bisection(two_cluster_graph, rng, trials=8)
        assert two_cluster_graph.edge_cut(part) == pytest.approx(1.0)

    def test_disconnected_graph_handled(self, rng):
        g = WeightedGraph(6, [0, 1, 3, 4], [1, 2, 4, 5])
        part = greedy_graph_growing(g, rng, 0.5)
        w = g.partition_weights(part, 2)
        assert w[0] > 0 and w[1] > 0

    def test_tiny_graphs(self, rng):
        assert greedy_graph_growing(WeightedGraph(0, [], []), rng).size == 0
        assert best_bisection(WeightedGraph(1, [], []), rng).tolist() == [0]


class TestFMRefine:
    def test_improves_random_partition(self, grid_graph, rng):
        bad = rng.integers(0, 2, size=grid_graph.num_vertices).astype(np.int64)
        refined = fm_refine(grid_graph, bad)
        assert grid_graph.edge_cut(refined) < grid_graph.edge_cut(bad)

    def test_keeps_balance(self, grid_graph, rng):
        part = best_bisection(grid_graph, rng)
        refined = fm_refine(grid_graph, part, imbalance_tolerance=1.05)
        w = grid_graph.partition_weights(refined, 2)
        assert w.max() <= 1.06 * grid_graph.total_vertex_weight / 2

    def test_optimal_partition_unchanged_cut(self, two_cluster_graph):
        part = np.array([0] * 10 + [1] * 10)
        refined = fm_refine(two_cluster_graph, part)
        assert two_cluster_graph.edge_cut(refined) == pytest.approx(1.0)

    def test_empty_graph(self):
        g = WeightedGraph(0, [], [])
        assert fm_refine(g, np.zeros(0, dtype=np.int64)).size == 0

    def test_balance_partition_fixes_skew(self, grid_graph):
        part = np.zeros(grid_graph.num_vertices, dtype=np.int64)  # all on side 0
        part[0] = 1
        fixed = balance_partition(grid_graph, part, imbalance_tolerance=1.10)
        w = grid_graph.partition_weights(fixed, 2)
        assert w.max() <= 1.11 * grid_graph.total_vertex_weight / 2


class TestMultilevelBisect:
    def test_quality_beats_random(self, grid_graph, rng):
        part = multilevel_bisect(grid_graph, np.random.default_rng(0))
        rand = rng.integers(0, 2, grid_graph.num_vertices).astype(np.int64)
        assert grid_graph.edge_cut(part) < grid_graph.edge_cut(rand)

    def test_grid_cut_near_optimal(self, grid_graph):
        # Optimal bisection of an 8x8 grid cuts 8 edges; allow slack 2x.
        part = multilevel_bisect(grid_graph, np.random.default_rng(0))
        assert grid_graph.edge_cut(part) <= 16

    def test_uneven_target_weights(self, grid_graph):
        part = multilevel_bisect(
            grid_graph, np.random.default_rng(0), target_fraction=0.75
        )
        w = grid_graph.partition_weights(part, 2)
        assert w[0] > w[1]
        assert w[0] / grid_graph.total_vertex_weight == pytest.approx(0.75, abs=0.08)


class TestPartitionKway:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_all_parts_used(self, grid_graph, k):
        res = partition_kway(grid_graph, k, seed=0)
        assert set(res.assignment.tolist()) == set(range(k))

    @pytest.mark.parametrize("k", [2, 3, 7])
    def test_balance_bound(self, grid_graph, k):
        res = partition_kway(grid_graph, k, seed=0)
        assert res.balance <= 1.35  # tolerance compounds over ~log2(k) levels

    def test_result_metrics_consistent(self, grid_graph):
        res = partition_kway(grid_graph, 4, seed=0)
        assert res.edge_cut == pytest.approx(grid_graph.edge_cut(res.assignment))
        assert res.min_cut_latency == pytest.approx(
            grid_graph.min_cut_latency(res.assignment)
        )

    def test_k1_trivial(self, grid_graph):
        res = partition_kway(grid_graph, 1)
        assert res.edge_cut == 0.0
        assert np.isinf(res.min_cut_latency)

    def test_invalid_k(self, grid_graph):
        with pytest.raises(ValueError):
            partition_kway(grid_graph, 0)

    def test_empty_graph(self):
        res = partition_kway(WeightedGraph(0, [], []), 4)
        assert res.assignment.size == 0

    def test_weighted_vertices_balanced(self, rng):
        # Heavy vertices must spread across parts.
        n = 40
        vw = np.ones(n)
        vw[:4] = 10.0
        us = list(range(n - 1))
        vs = list(range(1, n))
        g = WeightedGraph(n, us, vs, vertex_weight=vw)
        res = partition_kway(g, 4, seed=1)
        assert res.balance <= 1.5

    def test_deterministic_for_seed(self, grid_graph):
        a = partition_kway(grid_graph, 4, seed=3)
        b = partition_kway(grid_graph, 4, seed=3)
        assert np.array_equal(a.assignment, b.assignment)

    def test_star_graph_terminates(self):
        # Stars defeat matching (all edges share the hub); must not loop.
        n = 50
        g = WeightedGraph(n, [0] * (n - 1), list(range(1, n)))
        res = partition_kway(g, 4, seed=0)
        assert set(res.assignment.tolist()) == {0, 1, 2, 3}

    def test_dominant_vertex_leaves_no_part_empty(self):
        # One vertex carrying most of the weight used to starve a
        # recursion side below its part count (and kway_refine's
        # weight-based don't-empty guard could strip a one-vertex part),
        # producing empty parts on tiny graphs.
        g = WeightedGraph(
            3, [1, 2], [0, 1], [1.0, 1.0], [1e-3, 1e-3], [3.324, 0.102, 0.305]
        )
        res = partition_kway(g, 3, seed=0)
        assert set(res.assignment.tolist()) == {0, 1, 2}

    @pytest.mark.parametrize("seed", range(8))
    def test_tiny_paths_fill_every_part(self, seed):
        rng = np.random.default_rng(seed)
        for n, k in [(3, 3), (4, 3), (4, 4), (5, 3), (6, 4)]:
            vw = rng.uniform(0.1, 5.0, n)
            g = WeightedGraph(
                n,
                list(range(1, n)),
                list(range(n - 1)),
                rng.uniform(0.1, 10.0, n - 1),
                rng.uniform(1e-5, 1e-2, n - 1),
                vw,
            )
            res = partition_kway(g, k, seed=0)
            assert set(res.assignment.tolist()) == set(range(k)), (n, k, vw)
