"""Tests for OSPF shortest-path routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing import OspfRouting, ospf_link_metric
from repro.topology import Network, NodeKind


def diamond_net():
    """0 -(1ms)- 1 -(1ms)- 3 ; 0 -(5ms)- 2 -(1ms)- 3 : short path via 1."""
    net = Network()
    for _ in range(4):
        net.add_node(NodeKind.ROUTER)
    net.add_link(0, 1, 1e9, 1e-3)
    net.add_link(1, 3, 1e9, 1e-3)
    net.add_link(0, 2, 1e9, 5e-3)
    net.add_link(2, 3, 1e9, 1e-3)
    return net


class TestMetric:
    def test_latency_dominates(self):
        assert ospf_link_metric(1e-3, 1e9) < ospf_link_metric(2e-3, 1e9)

    def test_bandwidth_tiebreak(self):
        assert ospf_link_metric(1e-3, 10e9) < ospf_link_metric(1e-3, 100e6)

    def test_tiebreak_is_small(self):
        # Bandwidth must never override a latency difference.
        assert ospf_link_metric(1e-3, 10e9) > ospf_link_metric(0.9e-3, 100e6)


class TestNextHop:
    def test_prefers_short_path(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2, 3])
        assert ospf.next_hop(0, 3) == 1

    def test_next_hop_to_self_is_none(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2, 3])
        assert ospf.next_hop(2, 2) is None

    def test_unreachable_outside_domain(self):
        net = diamond_net()
        iso = net.add_node(NodeKind.ROUTER)
        ospf = OspfRouting(net, [0, 1, 2, 3, iso])
        assert ospf.next_hop(0, iso) is None

    def test_destination_not_member_raises(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2])
        with pytest.raises(KeyError):
            ospf.next_hop(0, 3)

    def test_paths_never_leave_member_set(self):
        # Restrict to {0, 2, 3}: route 0->3 must go via 2 despite cost.
        ospf = OspfRouting(diamond_net(), [0, 2, 3])
        assert ospf.next_hop(0, 3) == 2


class TestPathAndDistance:
    def test_path_endpoints(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2, 3])
        path = ospf.path(0, 3)
        assert path == [0, 1, 3]

    def test_distance_additive(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2, 3])
        d = ospf.distance(0, 3)
        assert d == pytest.approx(2e-3, rel=0.01)

    def test_distance_zero_to_self(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2, 3])
        assert ospf.distance(1, 1) == 0.0

    def test_distance_unreachable_is_inf(self):
        net = diamond_net()
        iso = net.add_node(NodeKind.ROUTER)
        ospf = OspfRouting(net, [0, 1, 2, 3, iso])
        assert ospf.distance(0, iso) == np.inf
        assert ospf.path(0, iso) is None

    def test_triangle_inequality_on_flat_net(self, flat_net):
        members = list(range(flat_net.num_nodes))
        ospf = OspfRouting(flat_net, members)
        rng = np.random.default_rng(0)
        ids = rng.choice(flat_net.num_nodes, size=6, replace=False)
        for a in ids[:3]:
            for b in ids[3:]:
                d_ab = ospf.distance(int(a), int(b))
                for c in ids:
                    if c in (a, b):
                        continue
                    assert d_ab <= ospf.distance(int(a), int(c)) + ospf.distance(
                        int(c), int(b)
                    ) + 1e-12

    def test_symmetric_distances(self, flat_net):
        ospf = OspfRouting(flat_net, list(range(flat_net.num_nodes)))
        assert ospf.distance(3, 77) == pytest.approx(ospf.distance(77, 3))

    def test_trees_cached(self):
        ospf = OspfRouting(diamond_net(), [0, 1, 2, 3])
        ospf.next_hop(0, 3)
        ospf.next_hop(1, 3)
        assert ospf.cached_destinations() == [3]
