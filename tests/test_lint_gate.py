"""CI lint gate: the repository must pass its own static analysis.

Runs ``python -m repro lint src/repro --format json`` as a subprocess
(the exact command CI uses) and fails on any error-severity finding, so
a determinism or scheduling regression fails ``pytest -x -q`` like any
other test. Also covers the lint CLI surface itself.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def run_lint(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=180,
    )


class TestRepositoryIsClean:
    def test_no_error_findings_on_src(self):
        proc = run_lint("src/repro", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        errors = [
            f for f in payload["findings"] if f["severity"] == "error"
        ]
        assert errors == [], f"lint errors in src/repro: {errors}"
        assert payload["counts"]["error"] == 0

    def test_no_warning_findings_on_src(self):
        # The tree is currently warning-free too; keep it that way.
        proc = run_lint("src/repro", "--format", "json", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestLintCli:
    def test_missing_path_exits_2(self):
        proc = run_lint("no/such/dir")
        assert proc.returncode == 2
        assert "no such path" in proc.stdout

    def test_unknown_rule_id_exits_2(self):
        proc = run_lint("src/repro", "--select", "SIM999")
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = run_lint("src/repro", "--list-rules")
        assert proc.returncode == 0
        for rule_id in ("SIM101", "SIM102", "SIM103", "SIM104", "SIM105", "SIM106"):
            assert rule_id in proc.stdout

    def test_list_rules_needs_no_path(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        assert "SIM101" in proc.stdout

    def test_no_path_no_list_rules_exits_2(self):
        proc = run_lint()
        assert proc.returncode == 2
        assert "PATH" in proc.stdout

    def test_bad_file_exits_1_human_format(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        proc = run_lint(str(bad))
        assert proc.returncode == 1
        assert "SIM101" in proc.stdout

    def test_select_filters_rules(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        proc = run_lint(str(bad), "--select", "SIM104")
        assert proc.returncode == 0
        assert "clean" in proc.stdout


@pytest.mark.parametrize("fmt", ["human", "json"])
def test_formats_are_parseable(fmt, tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("def f(x):\n    return x\n")
    proc = run_lint(str(clean), "--format", fmt)
    assert proc.returncode == 0
    if fmt == "json":
        json.loads(proc.stdout)
    else:
        assert "clean: no findings" in proc.stdout
