"""CI lint gate: the repository must pass its own static analysis.

Runs ``python -m repro lint src/repro --format json`` as a subprocess
(the exact command CI uses) and fails on any error-severity finding, so
a determinism or scheduling regression fails ``pytest -x -q`` like any
other test. The strict gate runs against the committed
``.simlint-baseline.json`` ratchet: pre-existing (baselined) findings
are tolerated, NEW findings fail the build. Also covers the lint CLI
surface itself.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / ".simlint-baseline.json"


def run_lint(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=180,
    )


class TestRepositoryIsClean:
    def test_no_error_findings_on_src(self):
        proc = run_lint("src/repro", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        errors = [
            f for f in payload["findings"] if f["severity"] == "error"
        ]
        assert errors == [], f"lint errors in src/repro: {errors}"
        assert payload["counts"]["error"] == 0

    def test_strict_gate_passes_against_committed_baseline(self):
        # The ratchet: warnings already in .simlint-baseline.json are
        # tolerated; anything new fails CI.
        proc = run_lint(
            "src/repro", "--strict", "--baseline", str(BASELINE)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "baseline" in proc.stdout

    def test_baseline_findings_still_exist(self):
        # A baseline entry whose finding was fixed should be pruned —
        # every key must still match a live finding, or the ratchet rots.
        baseline = json.loads(BASELINE.read_text())
        proc = run_lint("src/repro", "--strict", "--format", "json")
        payload = json.loads(proc.stdout)
        live = {
            f"{f['path']}::{f['rule_id']}::{f['message']}"
            for f in payload["findings"]
        }
        stale = set(baseline["findings"]) - live
        assert not stale, f"stale baseline entries (fixed findings): {stale}"

    def test_new_violation_fails_strict_baseline_gate(self, tmp_path):
        # A fresh SIM201 violation (module counter mutated from a
        # scheduled handler) must escape the baseline and exit non-zero.
        bad = tmp_path / "repro" / "engine" / "fresh.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import itertools\n"
            "_ids = itertools.count()\n"
            "class Kernel:\n"
            "    def schedule(self, fn):\n"
            "        pass\n"
            "    def boot(self):\n"
            "        self.schedule(self.on_tick)\n"
            "    def on_tick(self):\n"
            "        return next(_ids)\n"
        )
        proc = run_lint(
            str(tmp_path),
            "--strict",
            "--baseline",
            str(BASELINE),
            "--select",
            "SIM201",
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "SIM201" in proc.stdout

    def test_lint_runtime_stays_within_ci_budget(self):
        # The whole-program pass must stay fast enough for the tier-1
        # gate; the acceptance bound is < 10 s on src/repro.
        start = time.perf_counter()
        proc = run_lint("src/repro", "--strict", "--baseline", str(BASELINE))
        elapsed = time.perf_counter() - start
        assert proc.returncode == 0
        assert elapsed < 10.0, f"lint took {elapsed:.1f}s (budget 10s)"


class TestLintCli:
    def test_missing_path_exits_2(self):
        proc = run_lint("no/such/dir")
        assert proc.returncode == 2
        assert "no such path" in proc.stdout

    def test_unknown_rule_id_exits_2(self):
        proc = run_lint("src/repro", "--select", "SIM999")
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = run_lint("src/repro", "--list-rules")
        assert proc.returncode == 0
        for rule_id in ("SIM101", "SIM102", "SIM103", "SIM104", "SIM105", "SIM106"):
            assert rule_id in proc.stdout

    def test_list_rules_needs_no_path(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        assert "SIM101" in proc.stdout

    def test_no_path_no_list_rules_exits_2(self):
        proc = run_lint()
        assert proc.returncode == 2
        assert "PATH" in proc.stdout

    def test_bad_file_exits_1_human_format(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        proc = run_lint(str(bad))
        assert proc.returncode == 1
        assert "SIM101" in proc.stdout

    def test_select_filters_rules(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        proc = run_lint(str(bad), "--select", "SIM104")
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_missing_baseline_file_exits_2(self, tmp_path):
        proc = run_lint(
            "src/repro", "--baseline", str(tmp_path / "nope.json")
        )
        assert proc.returncode == 2
        assert "baseline" in proc.stdout

    def test_update_baseline_requires_baseline_path(self):
        proc = run_lint("src/repro", "--update-baseline")
        assert proc.returncode == 2

    def test_update_baseline_roundtrip(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "base.json"
        proc = run_lint(
            str(bad), "--baseline", str(baseline), "--update-baseline"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(baseline.read_text())["findings"]
        # The same tree now passes strict against its own baseline.
        proc = run_lint(str(bad), "--strict", "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_sarif_out_writes_valid_document(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        sarif = tmp_path / "out.sarif"
        proc = run_lint(str(bad), "--sarif-out", str(sarif))
        assert proc.returncode == 1
        doc = json.loads(sarif.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        assert any(r["ruleId"] == "SIM101" for r in run["results"])

    def test_obs_out_writes_analyzer_stats(self, tmp_path):
        snap = tmp_path / "obs.json"
        proc = run_lint("src/repro", "--select", "SIM104", "--obs-out", str(snap))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(snap.read_text())
        assert doc["meta"]["tool"] == "simlint"
        assert doc["counters"]["lint.files.scanned"] > 0
        assert doc["counters"]["lint.rules.run"] == 1
        assert doc["timers"]["lint.wall"]["count"] == 1


@pytest.mark.parametrize("fmt", ["human", "json"])
def test_formats_are_parseable(fmt, tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("def f(x):\n    return x\n")
    proc = run_lint(str(clean), "--format", fmt)
    assert proc.returncode == 0
    if fmt == "json":
        json.loads(proc.stdout)
    else:
        assert "clean: no findings" in proc.stdout
