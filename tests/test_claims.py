"""Tests for the programmatic paper-claim checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Approach, NetworkMapping
from repro.core.evaluate import PartitionEvaluation
from repro.engine.costmodel import WallclockPrediction
from repro.experiments import (
    ClaimCheck,
    PAPER_CLAIMS,
    evaluate_claims,
    format_claims,
)
from repro.experiments.runner import ApproachRow, ExperimentResult


def _row(approach, t, mll_ms, imb, pe):
    pred = WallclockPrediction(
        total_s=t, compute_s=t, sync_s=0.0, num_windows=1, num_lps=4,
        events_per_lp=np.ones(4), remote_per_lp=np.zeros(4),
    )
    ev = PartitionEvaluation(
        mll_s=mll_ms * 1e-3, es=0.5, ec=0.9, efficiency=0.45,
        predicted_imbalance=imb, part_weights=np.ones(4), edge_cut=1.0,
    )
    mapping = NetworkMapping(
        approach=approach, assignment=np.zeros(4, dtype=np.int64),
        num_engines=4, evaluation=ev,
    )
    return ApproachRow(
        approach=approach, sim_time_s=t, achieved_mll_ms=mll_ms,
        measured_imbalance=imb, parallel_eff=pe, prediction=pred, mapping=mapping,
    )


def mk_result(good=True):
    """A synthetic result where HPROF wins (or loses, good=False)."""
    if good:
        rows = [
            _row(Approach.HPROF, 50.0, 2.0, 0.2, 0.30),
            _row(Approach.HTOP, 60.0, 2.2, 0.5, 0.25),
            _row(Approach.TOP2, 100.0, 0.5, 0.6, 0.15),
        ]
    else:
        rows = [
            _row(Approach.HPROF, 120.0, 0.3, 0.9, 0.10),
            _row(Approach.HTOP, 60.0, 2.2, 0.5, 0.25),
            _row(Approach.TOP2, 100.0, 0.5, 0.6, 0.15),
        ]
    return ExperimentResult(
        network_kind="single-as", app_kind="scalapack", scale_name="fake",
        num_engines=4, total_events=1000, duration_s=10.0, rows=rows,
    )


class TestEvaluateClaims:
    def test_all_pass_on_winning_result(self):
        checks = evaluate_claims([mk_result(good=True)])
        assert len(checks) == len(PAPER_CLAIMS)
        assert all(c.holds for c in checks)

    def test_failures_detected(self):
        checks = evaluate_claims([mk_result(good=False)])
        failing = {c.claim_id for c in checks if not c.holds}
        assert "time-reduction" in failing
        assert "mll-dominance" in failing
        assert "efficiency-gain" in failing

    def test_measured_values(self):
        checks = {c.claim_id: c for c in evaluate_claims([mk_result(True)])}
        assert checks["time-reduction"].measured == pytest.approx(0.5)
        assert checks["efficiency-gain"].measured == pytest.approx(1.0)
        assert checks["mll-dominance"].measured == pytest.approx(3.0)  # 4x -> +300%

    def test_claim_subset(self):
        checks = evaluate_claims([mk_result(True)], claim_ids=["time-reduction"])
        assert len(checks) == 1
        with pytest.raises(KeyError):
            evaluate_claims([mk_result(True)], claim_ids=["warp-drive"])

    def test_multiple_results(self):
        checks = evaluate_claims([mk_result(True), mk_result(True)])
        assert len(checks) == 2 * len(PAPER_CLAIMS)

    def test_format(self):
        text = format_claims(evaluate_claims([mk_result(True)]))
        assert "PASS" in text
        assert "single-as/scalapack" in text
        text_bad = format_claims(evaluate_claims([mk_result(False)]))
        assert "FAIL" in text_bad
