"""Per-rule tests for the simlint AST rules.

Every rule gets one known-bad fixture asserting the *exact* rule id
fires, one clean fixture, and suppression coverage. Fixture paths are
synthetic but placed inside the rule's scope (e.g. ``repro/engine/``).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import Severity, all_rules, get_rule, lint_source


def ids(findings):
    return [f.rule_id for f in findings]


def lint(src: str, path: str = "src/repro/engine/snippet.py"):
    return lint_source(textwrap.dedent(src), path)


class TestRuleRegistry:
    def test_all_code_rules_registered(self):
        registered = {r.rule_id for r in all_rules()}
        assert {
            "SIM101", "SIM102", "SIM103", "SIM104", "SIM105", "SIM106",
            "SIM107", "SIM108"
        } <= registered

    def test_get_rule_unknown_id(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("SIM999")

    def test_rules_carry_descriptions(self):
        for r in all_rules():
            assert r.description, f"{r.rule_id} has no description"


class TestUnseededRandom:
    def test_stdlib_global_rng_fires(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert ids(findings) == ["SIM101"]
        assert findings[0].severity is Severity.ERROR
        assert "random.random" in findings[0].message

    def test_numpy_legacy_global_fires(self):
        findings = lint(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """
        )
        assert ids(findings) == ["SIM101"]

    def test_unseeded_default_rng_fires(self):
        findings = lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """
        )
        assert ids(findings) == ["SIM101"]
        assert "without a seed" in findings[0].message

    def test_from_import_alias_resolved(self):
        findings = lint(
            """
            from numpy.random import default_rng

            def make():
                return default_rng()
            """
        )
        assert ids(findings) == ["SIM101"]

    def test_seeded_default_rng_clean(self):
        findings = lint(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []

    def test_generator_draws_clean(self):
        findings = lint(
            """
            import numpy as np

            def draw(rng: np.random.Generator):
                return rng.random()
            """
        )
        assert findings == []

    def test_out_of_scope_path_clean(self):
        findings = lint_source(
            "import random\nx = random.random()\n",
            "src/repro/experiments/report_helpers.py",
        )
        assert findings == []


class TestWallClock:
    def test_time_time_fires(self):
        findings = lint(
            """
            import time

            def handler():
                return time.time()
            """
        )
        assert ids(findings) == ["SIM102"]
        assert "sim.now" in findings[0].message

    def test_datetime_now_fires(self):
        findings = lint(
            """
            from datetime import datetime

            def handler():
                return datetime.now()
            """,
            path="src/repro/netsim/handler.py",
        )
        assert ids(findings) == ["SIM102"]

    def test_sim_now_clean(self):
        findings = lint(
            """
            def handler(sim):
                return sim.now
            """
        )
        assert findings == []


class TestFloatEqTime:
    def test_timestamp_equality_fires(self):
        findings = lint(
            """
            def same(ev, other):
                return ev.time == other.arrival_time
            """
        )
        assert ids(findings) == ["SIM103"]
        assert findings[0].severity is Severity.WARNING

    def test_not_eq_fires(self):
        findings = lint(
            """
            def differs(a, deadline):
                return a.now != deadline
            """
        )
        assert ids(findings) == ["SIM103"]

    def test_plain_float_compare_clean(self):
        findings = lint(
            """
            def check(a, b):
                return a.count == b.count and a.time <= b.time
            """
        )
        assert findings == []

    def test_string_comparison_clean(self):
        findings = lint(
            """
            def kind_is_time(kind):
                return kind == "time"
            """
        )
        assert findings == []


class TestMutableDefault:
    def test_list_literal_fires(self):
        findings = lint(
            """
            def collect(items=[]):
                return items
            """
        )
        assert ids(findings) == ["SIM104"]
        assert "collect" in findings[0].message

    def test_dict_constructor_fires(self):
        findings = lint(
            """
            def configure(*, opts=dict()):
                return opts
            """
        )
        assert ids(findings) == ["SIM104"]

    def test_none_default_clean(self):
        findings = lint(
            """
            def collect(items=None):
                return items or []
            """
        )
        assert findings == []


class TestScheduleNode:
    def test_missing_node_fires(self):
        findings = lint(
            """
            def arm(sim, fn):
                sim.sched.schedule(0.1, fn)
            """
        )
        assert ids(findings) == ["SIM105"]

    def test_schedule_at_missing_node_fires(self):
        findings = lint(
            """
            def arm(sim, fn):
                sim.sched.schedule_at(2.0, fn)
            """,
            path="src/repro/online/helper.py",
        )
        assert ids(findings) == ["SIM105"]

    def test_keyword_node_clean(self):
        findings = lint(
            """
            def arm(sim, fn):
                sim.sched.schedule(0.1, fn, node=4)
            """
        )
        assert findings == []

    def test_positional_node_clean(self):
        findings = lint(
            """
            def arm(sim, fn):
                sim.sched.schedule(0.1, fn, 4)
            """
        )
        assert findings == []

    def test_out_of_scope_clean(self):
        findings = lint_source(
            "def arm(sim, fn):\n    sim.sched.schedule(0.1, fn)\n",
            "src/repro/experiments/driver.py",
        )
        assert findings == []


class TestRawPerfCounter:
    def test_perf_counter_outside_obs_fires(self):
        findings = lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            path="src/repro/experiments/timing.py",
        )
        assert ids(findings) == ["SIM106"]
        assert findings[0].severity is Severity.ERROR
        assert "repro.obs" in findings[0].message

    def test_perf_counter_ns_fires(self):
        findings = lint(
            """
            import time

            def measure():
                return time.perf_counter_ns()
            """,
            path="src/repro/cluster/calibrate_helper.py",
        )
        assert ids(findings) == ["SIM106"]

    def test_from_import_alias_fires(self):
        findings = lint(
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """,
            path="src/repro/metrics/bench.py",
        )
        assert ids(findings) == ["SIM106"]

    def test_engine_path_fires_both_wall_clock_rules(self):
        # In engine/ code a raw perf_counter violates both the simulated-time
        # rule (SIM102) and the obs boundary (SIM106).
        findings = lint(
            """
            import time

            def handler():
                return time.perf_counter()
            """
        )
        assert sorted(ids(findings)) == ["SIM102", "SIM106"]

    def test_obs_package_is_sanctioned(self):
        findings = lint(
            """
            import time

            def read():
                return time.perf_counter()
            """,
            path="src/repro/obs/timers.py",
        )
        assert findings == []

    def test_outside_repro_clean(self):
        findings = lint_source(
            "import time\nt = time.perf_counter()\n",
            "scripts/bench.py",
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import time

            t = time.perf_counter()  # simlint: disable=SIM106
            """,
            path="src/repro/experiments/timing.py",
        )
        assert findings == []


class TestSilentExcept:
    def test_bare_except_fires(self):
        findings = lint(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """
        )
        assert ids(findings) == ["SIM107"]
        assert findings[0].severity is Severity.ERROR
        assert "bare `except:`" in findings[0].message

    def test_silent_broad_exception_fires(self):
        findings = lint(
            """
            def tick(handlers):
                for h in handlers:
                    try:
                        h()
                    except Exception:
                        pass
            """
        )
        assert ids(findings) == ["SIM107"]
        assert "empty body" in findings[0].message

    def test_silent_base_exception_in_tuple_fires(self):
        findings = lint(
            """
            def tick(h):
                try:
                    h()
                except (ValueError, BaseException):
                    ...
            """
        )
        assert ids(findings) == ["SIM107"]

    def test_narrow_silent_handler_clean(self):
        # Swallowing a *specific* exception is a deliberate, reviewable
        # decision; the rule targets catch-everything sinks.
        findings = lint(
            """
            def cleanup(path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            """
        )
        assert findings == []

    def test_broad_handler_with_real_body_clean(self):
        findings = lint(
            """
            def guard(fn, log):
                try:
                    fn()
                except Exception as exc:
                    log.error(exc)
            """
        )
        assert findings == []

    def test_outside_repro_clean(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept:\n    pass\n",
            "scripts/helper.py",
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            def probe(fn):
                try:
                    fn()
                except Exception:  # simlint: disable=SIM107
                    pass
            """
        )
        assert findings == []


class TestSuppression:
    def test_inline_disable(self):
        findings = lint(
            """
            import random

            x = random.random()  # simlint: disable=SIM101
            """
        )
        assert findings == []

    def test_inline_disable_all(self):
        findings = lint(
            """
            import time

            t = time.time()  # simlint: disable=all
            """
        )
        assert findings == []

    def test_inline_disable_wrong_id_still_fires(self):
        findings = lint(
            """
            import random

            x = random.random()  # simlint: disable=SIM102
            """
        )
        assert ids(findings) == ["SIM101"]

    def test_file_level_disable(self):
        findings = lint(
            """
            # simlint: disable-file=SIM101
            import random

            x = random.random()
            y = random.choice([1, 2])
            """
        )
        assert findings == []


class TestDriver:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "src/repro/engine/bad.py")
        assert ids(findings) == ["SIM000"]
        assert findings[0].severity is Severity.ERROR

    def test_multiple_rules_in_one_module(self):
        findings = lint(
            """
            import random
            import time

            def handler(items=[]):
                random.shuffle(items)
                return time.time()
            """
        )
        assert sorted(ids(findings)) == ["SIM101", "SIM102", "SIM104"]


class TestWorkerRegistryMutation:
    """SIM108: worker-side code must not mutate the global registry."""

    MP_PATH = "src/repro/engine/parallel.py"

    def test_chained_reset_fires(self):
        findings = lint(
            """
            from repro.obs.registry import get_registry

            def worker_main(config):
                get_registry().reset()
            """,
            path=self.MP_PATH,
        )
        assert ids(findings) == ["SIM108"]
        assert "configure_worker_observability" in findings[0].message

    def test_mutation_via_local_handle_fires(self):
        findings = lint(
            """
            from repro.obs.registry import get_registry

            def worker_main(config):
                reg = get_registry()
                reg.clear()
                reg.enabled = True
            """,
            path=self.MP_PATH,
        )
        assert ids(findings) == ["SIM108", "SIM108"]

    def test_tracer_mutation_fires(self):
        findings = lint(
            """
            from repro.obs.trace import get_tracer

            def worker_main(config):
                get_tracer().enable()
            """,
            path=self.MP_PATH,
        )
        assert ids(findings) == ["SIM108"]

    def test_configure_layer_is_clean(self):
        findings = lint(
            """
            from repro.obs.distributed import configure_worker_observability

            def worker_main(config):
                configure_worker_observability(config.get("obs"))
            """,
            path=self.MP_PATH,
        )
        assert ids(findings) == []

    def test_out_of_scope_module_is_exempt(self):
        # Controller-side experiment code legitimately toggles the global
        # registry (reference-run shielding); the rule is worker-scoped.
        findings = lint(
            """
            from repro.obs.registry import get_registry

            def shield():
                reg = get_registry()
                reg.enabled = False
            """,
            path="src/repro/experiments/parallel.py",
        )
        assert ids(findings) == []

    def test_private_registry_is_clean(self):
        findings = lint(
            """
            from repro.obs.registry import Registry

            def fresh():
                reg = Registry()
                reg.reset()
                return reg
            """,
            path=self.MP_PATH,
        )
        assert ids(findings) == []

    def test_suppression_comment_honored(self):
        findings = lint(
            """
            from repro.obs.registry import get_registry

            def worker_main(config):
                get_registry().reset()  # simlint: disable=SIM108
            """,
            path=self.MP_PATH,
        )
        assert ids(findings) == []

    def test_repo_worker_paths_have_no_findings(self):
        # The shipped worker modules must themselves satisfy the rule —
        # zero findings, so the committed baseline stays unchanged.
        from pathlib import Path

        from repro.analysis import lint_source

        for rel in ("src/repro/engine/parallel.py", "src/repro/experiments/shard.py"):
            src = Path(rel).read_text()
            found = [f for f in lint_source(src, rel) if f.rule_id == "SIM108"]
            assert not found, [f.message for f in found]
