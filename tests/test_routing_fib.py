"""Tests for the composed forwarding plane (OSPF + BGP + defaults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing import ForwardingPlane
from repro.routing.bgp import configure_bgp, is_valley_free, render_dml
from repro.topology import ASTier


class TestSingleAs:
    def test_paths_complete(self, flat_net, flat_fib):
        hosts = flat_net.host_ids()
        path = flat_fib.node_path(hosts[0], hosts[-1])
        assert path is not None
        assert path[0] == hosts[0] and path[-1] == hosts[-1]

    def test_consecutive_hops_adjacent(self, flat_net, flat_fib):
        hosts = flat_net.host_ids()
        path = flat_fib.node_path(hosts[1], hosts[-2])
        for a, b in zip(path, path[1:]):
            assert flat_net.link_between(a, b) is not None

    def test_next_hop_to_self_none(self, flat_fib, flat_net):
        h = flat_net.host_ids()[0]
        assert flat_fib.next_hop(h, h) is None

    def test_path_latency_positive(self, flat_net, flat_fib):
        hosts = flat_net.host_ids()
        assert 0 < flat_fib.path_latency(hosts[0], hosts[3]) < 1.0

    def test_caching_stable(self, flat_net, flat_fib):
        hosts = flat_net.host_ids()
        a = flat_fib.next_hop(hosts[0], hosts[5])
        b = flat_fib.next_hop(hosts[0], hosts[5])
        assert a == b

    def test_as_level_path_single(self, flat_net, flat_fib):
        hosts = flat_net.host_ids()
        assert flat_fib.as_level_path(hosts[0], hosts[1]) == [0]


class TestMultiAs:
    def test_bgp_converged(self, multi_bgp, multi_net):
        assert multi_bgp.converged
        n = len(multi_net.as_domains)
        # All ASes reach all prefixes (the repaired hierarchy guarantees it).
        for a, reach in multi_bgp.reachability_matrix().items():
            assert len(reach) == n

    def test_all_host_pairs_reachable(self, multi_net, multi_fib):
        hosts = multi_net.host_ids()
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b = rng.choice(hosts, 2, replace=False)
            path = multi_fib.node_path(int(a), int(b))
            assert path is not None
            assert path[0] == a and path[-1] == b

    def test_paths_valley_free(self, multi_net, multi_fib, multi_bgp):
        def rel(a, b):
            return multi_net.as_domains[a].relationship_to(b)

        hosts = multi_net.host_ids()
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b = rng.choice(hosts, 2, replace=False)
            as_path = multi_fib.as_level_path(int(a), int(b))
            assert as_path is not None
            dest_as = multi_net.nodes[int(b)].as_id
            assert is_valley_free(tuple(as_path[1:]), dest_as, rel), as_path

    def test_as_path_matches_bgp(self, multi_net, multi_fib, multi_bgp):
        hosts = multi_net.host_ids()
        a, b = hosts[0], hosts[-1]
        as_a = multi_net.nodes[a].as_id
        as_b = multi_net.nodes[b].as_id
        if as_a != as_b:
            fwd = multi_fib.as_level_path(a, b)
            # Stub default routing may deviate from the BGP best path only
            # at the first hop toward the provider; both must end at as_b.
            assert fwd[0] == as_a and fwd[-1] == as_b

    def test_intra_as_stays_local(self, multi_net, multi_fib):
        # Two routers of one AS never route through another AS.
        some_as = next(iter(multi_net.as_domains.values()))
        r0, r1 = some_as.routers[0], some_as.routers[-1]
        as_path = multi_fib.as_level_path(r0, r1)
        assert as_path == [some_as.as_id]

    def test_stub_external_goes_to_provider_first(self, multi_net, multi_fib):
        stubs = [d for d in multi_net.as_domains.values() if d.tier is ASTier.STUB]
        if not stubs:
            pytest.skip("no stub AS at this size")
        stub = stubs[0]
        target_as = next(
            a for a, d in multi_net.as_domains.items()
            if a != stub.as_id and a not in stub.neighbor_ases
        )
        target = multi_net.as_domains[target_as].routers[0]
        as_path = multi_fib.as_level_path(stub.routers[0], target)
        assert as_path is not None
        assert as_path[1] in stub.providers  # default route: via a provider

    def test_hot_potato_no_loops(self, multi_net, multi_fib):
        # node_path returning non-None already proves loop-freedom (it
        # bounds hops); hammer a broader sample.
        hosts = multi_net.host_ids()
        routers = [d.routers[0] for d in multi_net.as_domains.values()]
        rng = np.random.default_rng(3)
        for _ in range(30):
            a = int(rng.choice(routers))
            b = int(rng.choice(hosts))
            assert multi_fib.node_path(a, b) is not None


class TestDmlRendering:
    def test_render_structure(self, multi_net):
        doc = render_dml(multi_net)
        ases = doc["Net"]["AS"]
        assert len(ases) == len(multi_net.as_domains)
        for entry in ases:
            dom = multi_net.as_domains[entry["id"]]
            assert len(entry["bgp"]["import_policy"]) == len(dom.neighbor_ases)
            for rule in entry["bgp"]["import_policy"]:
                assert rule["action"] == "permit"
            for rule in entry["bgp"]["export_policy"]:
                rel = dom.relationship_to(rule["neighbor_as"])
                expected = "all" if rel == "customer" else "local+customer"
                assert rule["announce"] == expected

    def test_stub_entries_have_default_route(self, multi_net):
        doc = render_dml(multi_net)
        for entry in doc["Net"]["AS"]:
            dom = multi_net.as_domains[entry["id"]]
            if dom.tier is ASTier.STUB and dom.default_routes:
                assert "default_route" in entry
                assert entry["default_route"]["provider_as"] in dom.providers
