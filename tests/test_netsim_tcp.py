"""Tests for TCP Reno: handshake, transfer, loss recovery, congestion."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.netsim import (
    NetworkSimulator,
    TCP_MSS_BYTES,
    start_transfer,
)
from repro.netsim.tcp import TcpSender
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


def make_path_net(bw=1e9, lat=1e-3, queue=64 * 1024):
    """h0 - r0 - r1 - h1, with the router link parameterized."""
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, bw, lat, queue)
    net.add_link(h0, r0, 1e9, 20e-6)
    net.add_link(h1, r1, 1e9, 20e-6)
    return net, h0, h1


def run_transfer(net, h0, h1, nbytes, until=60.0):
    k = SimKernel()
    sim = NetworkSimulator(net, ForwardingPlane(net), k)
    done = []
    sender = start_transfer(sim, h0, h1, nbytes, lambda t: done.append(t))
    k.run(until=until)
    return k, sim, sender, done


class TestCleanPath:
    def test_completes(self):
        net, h0, h1 = make_path_net()
        _, _, sender, done = run_transfer(net, h0, h1, 100_000)
        assert done
        assert sender.stats.completed

    def test_no_retransmits_without_loss(self):
        net, h0, h1 = make_path_net()
        _, sim, sender, _ = run_transfer(net, h0, h1, 100_000)
        assert sender.stats.retransmits == 0
        assert sender.stats.timeouts == 0
        assert sim.counters.packets_dropped_queue == 0

    def test_segment_count(self):
        net, h0, h1 = make_path_net()
        _, _, sender, _ = run_transfer(net, h0, h1, 100_000)
        assert sender.stats.segments_sent == math.ceil(100_000 / TCP_MSS_BYTES)

    def test_completion_time_sane(self):
        # 100 KB over ~1 ms RTT path: slow start from 2 needs ~6 RTTs.
        net, h0, h1 = make_path_net()
        _, _, _, done = run_transfer(net, h0, h1, 100_000)
        assert 2e-3 < done[0] < 0.1

    def test_tiny_transfer(self):
        net, h0, h1 = make_path_net()
        _, _, sender, done = run_transfer(net, h0, h1, 10)
        assert done and sender.stats.segments_sent == 1

    def test_throughput_reasonable(self):
        # 1 MB over a fat short path should finish in well under a second.
        net, h0, h1 = make_path_net(bw=1e9, lat=0.5e-3)
        _, _, _, done = run_transfer(net, h0, h1, 1_000_000)
        assert done
        assert done[0] < 1.0

    def test_endpoints_deregistered_after_completion(self):
        net, h0, h1 = make_path_net()
        k, sim, sender, done = run_transfer(net, h0, h1, 10_000)
        assert not sim._tcp_endpoints


class TestCongestion:
    def test_bottleneck_causes_loss_and_recovery(self):
        # Narrow bottleneck with a small queue: drops are inevitable, yet
        # the transfer completes via retransmission.
        net, h0, h1 = make_path_net(bw=5e6, lat=5e-3, queue=8_000)
        _, sim, sender, done = run_transfer(net, h0, h1, 400_000, until=120.0)
        assert sim.counters.packets_dropped_queue > 0
        assert sender.stats.retransmits > 0
        assert done, "transfer must complete despite loss"

    def test_fast_retransmit_used(self):
        net, h0, h1 = make_path_net(bw=5e6, lat=5e-3, queue=8_000)
        _, _, sender, _ = run_transfer(net, h0, h1, 400_000, until=120.0)
        assert sender.stats.fast_retransmits > 0

    def test_competing_flows_share(self):
        net, h0, h1 = make_path_net(bw=20e6, lat=2e-3, queue=32_000)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        finished = []
        senders = [
            start_transfer(sim, h0, h1, 200_000, lambda t, i=i: finished.append(i))
            for i in range(4)
        ]
        k.run(until=60.0)
        assert len(finished) == 4

    def test_burst_loss_repairs_via_go_back_n(self):
        """Regression: when a whole flight is lost (small queue, several
        flows bursting from one host), an RTO must repair the full window
        at cwnd pace — not one segment per exponentially backed-off
        timeout (which once stalled flows for tens of seconds)."""
        net = Network()
        r0 = net.add_node(NodeKind.ROUTER)
        r1 = net.add_node(NodeKind.ROUTER)
        h0 = net.add_node(NodeKind.HOST)
        peers = [net.add_node(NodeKind.HOST) for _ in range(3)]
        net.add_link(r0, r1, 1e9, 1e-3)
        net.add_link(h0, r0, 100e6, 20e-6, queue_bytes=16_000)
        for p in peers:
            net.add_link(p, r1, 1e9, 20e-6)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        done: list[float] = []
        for p in peers:
            start_transfer(sim, h0, p, 200_000, lambda t: done.append(t))
        k.run(until=10.0)
        assert len(done) == 3
        assert max(done) < 5.0, "burst loss must not stall into RTO backoff"

    def test_loopback_transfer(self):
        net, h0, h1 = make_path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        done = []
        start_transfer(sim, h0, h0, 50_000, lambda t: done.append(t))
        k.run(until=10.0)
        assert done
        assert done[0] < 0.1


class TestRenoStateMachine:
    def _sim(self):
        net, h0, h1 = make_path_net()
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k)
        return sim, h0, h1

    def test_slow_start_doubles(self):
        sim, h0, h1 = self._sim()
        sender = TcpSender(sim, 999, h0, h1, 100_000)
        sender._established = True
        sender.cwnd = 2.0
        sender._fill_window()
        assert sender.next_seq == 2
        sender._on_ack(1)
        assert sender.cwnd == pytest.approx(3.0)

    def test_congestion_avoidance_linear(self):
        sim, h0, h1 = self._sim()
        sender = TcpSender(sim, 998, h0, h1, 10_000_000)
        sender._established = True
        sender.cwnd = 10.0
        sender.ssthresh = 5.0
        sender.next_seq = 10
        sender._on_ack(1)
        assert sender.cwnd == pytest.approx(10.1)

    def test_triple_dupack_enters_recovery(self):
        sim, h0, h1 = self._sim()
        sender = TcpSender(sim, 997, h0, h1, 10_000_000)
        sender._established = True
        sender.cwnd = 8.0
        sender._fill_window()
        before = sender.stats.segments_sent
        for _ in range(3):
            sender._on_ack(0)
        assert sender.in_recovery
        assert sender.ssthresh == pytest.approx(4.0)
        assert sender.stats.fast_retransmits == 1

    def test_recovery_exit_deflates(self):
        sim, h0, h1 = self._sim()
        sender = TcpSender(sim, 996, h0, h1, 10_000_000)
        sender._established = True
        sender.cwnd = 8.0
        sender._fill_window()
        for _ in range(3):
            sender._on_ack(0)
        recover = sender.recover_point
        sender._on_ack(recover)
        assert not sender.in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)

    def test_rto_resets_to_slow_start(self):
        sim, h0, h1 = self._sim()
        sender = TcpSender(sim, 995, h0, h1, 10_000_000)
        sender._established = True
        sender.cwnd = 16.0
        sender._fill_window()
        sender._on_rto()
        assert sender.cwnd == 1.0
        assert sender.stats.timeouts == 1

    def test_rtt_estimator_converges(self):
        sim, h0, h1 = self._sim()
        sender = TcpSender(sim, 994, h0, h1, 10_000_000)
        for _ in range(20):
            sender._measure_rtt(0.05)
        assert sender.srtt == pytest.approx(0.05, rel=0.01)
        assert sender.rto >= 0.2  # MIN_RTO floor
