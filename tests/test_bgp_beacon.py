"""Tests for BGP beacon experiments and RIB comparison (paper §7)."""

from __future__ import annotations

import pytest

from repro.routing.bgp import BgpEngine, BgpSpeaker, configure_bgp
from repro.routing.bgp.beacon import BeaconExperiment, compare_ribs


def chain_engine():
    """1 (core) provides to 2, 2 provides to 3 (stub)."""
    speakers = {
        1: BgpSpeaker(1, {2: "customer"}),
        2: BgpSpeaker(2, {1: "provider", 3: "customer"}),
        3: BgpSpeaker(3, {2: "provider"}),
    }
    eng = BgpEngine(speakers)
    eng.run()
    return eng


class TestBeacon:
    def test_withdraw_removes_routes_everywhere(self):
        eng = chain_engine()
        beacon = BeaconExperiment(eng, beacon_as=3)
        record = beacon.withdraw()
        assert record.action == "withdraw"
        assert record.reachable_from == frozenset()
        for a in (1, 2):
            assert eng.route(a, 3) is None

    def test_announce_restores_reachability(self):
        eng = chain_engine()
        beacon = BeaconExperiment(eng, beacon_as=3)
        beacon.withdraw()
        record = beacon.announce()
        assert record.reachable_from == frozenset({1, 2, 3})
        assert eng.as_path(1, 3) == (1, 2, 3)

    def test_affected_ases_tracked(self):
        eng = chain_engine()
        beacon = BeaconExperiment(eng, beacon_as=3)
        record = beacon.withdraw()
        # every AS that held a route to 3 changed state (incl. 3 itself)
        assert record.affected_ases == frozenset({1, 2, 3})

    def test_announce_convergence_scales_with_distance(self):
        eng = chain_engine()
        beacon = BeaconExperiment(eng, beacon_as=3)
        beacon.withdraw()
        record = beacon.announce()
        # route must travel 2 AS hops + 1 quiescent round
        assert record.iterations >= 2

    def test_schedule(self):
        eng = chain_engine()
        beacon = BeaconExperiment(eng, beacon_as=3)
        records = beacon.run_schedule(["withdraw", "announce", "withdraw"])
        assert [r.action for r in records] == ["withdraw", "announce", "withdraw"]
        assert beacon.history == records
        assert records[-1].reachable_from == frozenset()

    def test_unknown_as_rejected(self):
        eng = chain_engine()
        with pytest.raises(ValueError):
            BeaconExperiment(eng, beacon_as=99)

    def test_invalid_action_rejected(self):
        eng = chain_engine()
        beacon = BeaconExperiment(eng, beacon_as=3)
        with pytest.raises(ValueError):
            beacon.run_schedule(["flap"])

    def test_beacon_on_generated_network(self, multi_net):
        eng = configure_bgp(multi_net)
        stub = max(multi_net.as_domains)  # any AS works
        beacon = BeaconExperiment(eng, beacon_as=stub)
        down = beacon.withdraw()
        assert stub not in {a for rec in [down] for a in rec.reachable_from}
        up = beacon.announce()
        assert len(up.reachable_from) == len(multi_net.as_domains)


class TestCompareRibs:
    def test_identical_engines_agree(self):
        a, b = chain_engine(), chain_engine()
        sim = compare_ribs(a, b)
        assert sim == {
            "coverage": 1.0,
            "next_hop_agreement": 1.0,
            "path_agreement": 1.0,
        }

    def test_withdrawn_prefix_lowers_coverage(self):
        a = chain_engine()
        b = chain_engine()
        BeaconExperiment(b, beacon_as=3).withdraw()
        sim = compare_ribs(a, b)
        assert sim["coverage"] < 1.0
        assert sim["path_agreement"] < 1.0

    def test_empty_engines(self):
        a = BgpEngine({1: BgpSpeaker(1, {})})
        b = BgpEngine({2: BgpSpeaker(2, {})})
        sim = compare_ribs(a, b)
        assert sim["coverage"] == 1.0  # vacuous


class TestOriginationFlag:
    def test_non_originating_speaker_has_empty_rib(self):
        sp = BgpSpeaker(5, {}, originates=False)
        assert sp.rib == {}

    def test_originating_speaker_seeds_rib(self):
        sp = BgpSpeaker(5, {})
        assert 5 in sp.rib
