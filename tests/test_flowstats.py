"""Tests for per-flow statistics collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator
from repro.netsim.flowstats import FlowLog
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


@pytest.fixture()
def env():
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, 100e6, 2e-3)
    net.add_link(h0, r0, 1e9, 20e-6)
    net.add_link(h1, r1, 1e9, 20e-6)
    k = SimKernel()
    sim = NetworkSimulator(net, ForwardingPlane(net), k)
    return k, sim, h0, h1


class TestFlowLog:
    def test_records_completed_flow(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        log.transfer(h0, h1, 50_000)
        k.run(until=10.0)
        log.finalize()
        assert len(log.records) == 1
        rec = log.records[0]
        assert rec.completed
        assert rec.payload_bytes == 50_000
        assert rec.duration_s > 0
        assert rec.goodput_bps > 0
        assert log.completion_rate() == 1.0

    def test_callbacks_still_fire(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        done, received = [], []
        log.transfer(h0, h1, 10_000, on_complete=done.append,
                     on_received=received.append)
        k.run(until=10.0)
        assert done and received

    def test_incomplete_flow_swept(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        log.transfer(h0, h1, 10_000_000)  # will not finish in 1 ms
        k.run(until=0.001)
        log.finalize()
        assert len(log.records) == 1
        assert not log.records[0].completed
        assert log.completion_rate() == 0.0
        with pytest.raises(ValueError):
            log.records[0].duration_s

    def test_percentiles(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        for size in (5_000, 50_000, 500_000):
            log.transfer(h0, h1, size)
        k.run(until=30.0)
        log.finalize()
        p = log.fct_percentiles((50.0, 99.0))
        assert p[50.0] <= p[99.0]

    def test_percentiles_require_completions(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        with pytest.raises(ValueError):
            log.fct_percentiles()
        with pytest.raises(ValueError):
            log.mean_goodput_bps()

    def test_retransmit_fraction_zero_on_clean_path(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        log.transfer(h0, h1, 100_000)
        k.run(until=10.0)
        log.finalize()
        assert log.total_retransmit_fraction() == 0.0

    def test_many_flows_tracked_independently(self, env):
        k, sim, h0, h1 = env
        log = FlowLog(sim)
        for _ in range(10):
            log.transfer(h0, h1, 20_000)
        k.run(until=30.0)
        log.finalize()
        assert len(log.records) == 10
        assert len({r.flow_id for r in log.records}) == 10
        assert log.completion_rate() == 1.0
