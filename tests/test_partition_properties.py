"""Property-based invariants of the partitioning stack (hypothesis).

Random connected weighted graphs exercise :func:`partition_kway`,
:func:`evaluate_partition`, and :func:`hierarchical_partition` over a far
wider input space than the hand-built fixtures:

- totality: every vertex is assigned exactly one partition in range, and
  partition weights conserve the total vertex weight;
- metric bounds: ``0 <= Es, Ec <= 1`` and ``E == Es * Ec`` exactly;
- sweep shape: thresholds strictly increase, the dumped graph only ever
  shrinks, and the reported best is the argmax of the sweep;
- grid-coverage monotonicity: halving the Tmll step makes the candidate
  set a superset, so the best efficiency can only improve.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate_partition, hierarchical_partition
from repro.partition.graph import WeightedGraph
from repro.partition.kway import partition_kway

#: Link-latency classes (seconds) — a LAN/MAN/WAN-like mix whose spread
#: gives the Tmll sweep several distinct collapse levels.
LATENCIES = (0.05e-3, 0.1e-3, 0.25e-3, 0.5e-3, 1.0e-3, 2.0e-3)

SYNC_COST_S = 0.02e-3


@st.composite
def connected_graphs(draw) -> WeightedGraph:
    """A random connected graph: spanning tree plus random chords."""
    n = draw(st.integers(min_value=8, max_value=24))
    edges: set[tuple[int, int]] = set()
    for child in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        edges.add((parent, child))
    num_chords = draw(st.integers(min_value=0, max_value=n))
    for _ in range(num_chords):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    u, v = zip(*sorted(edges))
    lat = [draw(st.sampled_from(LATENCIES)) for _ in edges]
    vwgt = [
        draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
        for _ in range(n)
    ]
    return WeightedGraph(
        n, list(u), list(v), edge_latency=lat, vertex_weight=vwgt
    )


common_settings = settings(max_examples=20, deadline=None)


class TestAssignmentTotality:
    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=3),
    )
    @common_settings
    def test_every_vertex_assigned_exactly_once_in_range(
        self, graph, num_parts, seed
    ):
        result = hierarchical_partition(
            graph, num_parts, sync_cost_s=SYNC_COST_S, seed=seed
        )
        assignment = result.assignment
        assert assignment.shape == (graph.num_vertices,)
        assert np.all(assignment >= 0)
        assert np.all(assignment < num_parts)
        # Weight accounting: partition weights conserve the total load,
        # which fails if any vertex were double-counted or dropped.
        weights = graph.partition_weights(assignment, num_parts)
        assert weights.shape == (num_parts,)
        np.testing.assert_allclose(weights.sum(), graph.vwgt.sum())

    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=3),
    )
    @common_settings
    def test_flat_partitioner_totality(self, graph, num_parts, seed):
        result = partition_kway(graph, num_parts, seed=seed)
        graph.validate_partition(result.assignment, num_parts)


class TestEfficiencyBounds:
    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=3),
    )
    @common_settings
    def test_e_is_es_times_ec_within_unit_interval(self, graph, num_parts, seed):
        result = hierarchical_partition(
            graph, num_parts, sync_cost_s=SYNC_COST_S, seed=seed
        )
        for rec in result.sweep:
            ev = rec.evaluation
            assert 0.0 <= ev.es <= 1.0
            assert 0.0 <= ev.ec <= 1.0
            assert 0.0 <= ev.efficiency <= 1.0
            assert ev.efficiency == ev.es * ev.ec

    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=3),
    )
    @common_settings
    def test_random_assignment_evaluation_bounds(self, graph, num_parts, seed):
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, num_parts, size=graph.num_vertices)
        ev = evaluate_partition(graph, assignment, num_parts, SYNC_COST_S)
        assert 0.0 <= ev.es <= 1.0
        assert 0.0 <= ev.ec <= 1.0
        assert ev.efficiency == ev.es * ev.ec
        assert ev.mll_s > 0.0
        assert ev.predicted_imbalance >= 0.0


class TestSweepShape:
    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=3),
    )
    @common_settings
    def test_thresholds_increase_and_dumped_graph_shrinks(
        self, graph, num_parts, seed
    ):
        result = hierarchical_partition(
            graph, num_parts, sync_cost_s=SYNC_COST_S, seed=seed
        )
        sweep = result.sweep
        assert sweep, "sweep always contains at least the flat baseline"
        assert sweep[0].tmll_s == 0.0
        assert sweep[0].coarse_vertices == graph.num_vertices
        tmlls = [rec.tmll_s for rec in sweep]
        assert tmlls == sorted(tmlls)
        assert len(set(tmlls)) == len(tmlls)
        coarse = [rec.coarse_vertices for rec in sweep]
        assert all(a >= b for a, b in zip(coarse, coarse[1:]))

    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=3),
    )
    @common_settings
    def test_reported_best_is_sweep_argmax(self, graph, num_parts, seed):
        result = hierarchical_partition(
            graph, num_parts, sync_cost_s=SYNC_COST_S, seed=seed
        )
        best = max(rec.evaluation.efficiency for rec in result.sweep)
        assert result.evaluation.efficiency == best
        assert result.tmll_s in {rec.tmll_s for rec in result.sweep}


class TestGridCoverageMonotonicity:
    @given(
        graph=connected_graphs(),
        num_parts=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=2),
    )
    @common_settings
    def test_finer_tmll_grid_never_scores_worse(self, graph, num_parts, seed):
        # Every multiple of the coarse step is a multiple of the halved
        # step, so the finer sweep evaluates a superset of candidate
        # contractions (same seed -> same partition per contraction);
        # its best efficiency therefore dominates.
        step = 0.1e-3
        coarse = hierarchical_partition(
            graph, num_parts, sync_cost_s=SYNC_COST_S, seed=seed,
            tmll_step_s=step,
        )
        fine = hierarchical_partition(
            graph, num_parts, sync_cost_s=SYNC_COST_S, seed=seed,
            tmll_step_s=step / 2,
        )
        assert fine.evaluation.efficiency >= coarse.evaluation.efficiency - 1e-12
        coarse_counts = {rec.coarse_vertices for rec in coarse.sweep}
        fine_counts = {rec.coarse_vertices for rec in fine.sweep}
        assert coarse_counts <= fine_counts
