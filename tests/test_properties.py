"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core.evaluate import balance_efficiency, sync_efficiency
from repro.engine import (
    bucket_event_counts,
    predict_from_trace,
    predict_wallclock,
    remote_send_counts,
)
from repro.metrics import load_imbalance
from repro.partition import WeightedGraph, partition_kway
from repro.routing.bgp import BgpEngine, BgpSpeaker, best_route, decision_key, Route

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------
@st.composite
def weighted_graphs(draw, max_n=24):
    n = draw(st.integers(min_value=2, max_value=max_n))
    # random spanning tree (guarantees one component) + extra edges
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    us = list(range(1, n))
    vs = [int(rng.integers(0, i)) for i in range(1, n)]
    for _ in range(extra):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            us.append(int(a))
            vs.append(int(b))
    m = len(us)
    weights = rng.uniform(0.1, 10.0, m)
    lats = rng.uniform(1e-5, 1e-2, m)
    vw = rng.uniform(0.1, 5.0, n)
    return WeightedGraph(n, us, vs, weights, lats, vw)


class TestGraphProperties:
    @SETTINGS
    @given(weighted_graphs())
    def test_total_weight_preserved_by_contraction(self, g):
        labels = g.connected_components()  # trivially dense labels
        c = g.contract(labels)
        assert c.coarse.total_vertex_weight == pytest.approx(g.total_vertex_weight)

    @SETTINGS
    @given(weighted_graphs(), st.floats(min_value=1e-5, max_value=1e-2))
    def test_collapse_respects_threshold(self, g, threshold):
        c = g.collapse_below_latency(threshold)
        _, _, _, lat = c.coarse.edge_list()
        assert np.all(lat >= threshold)

    @SETTINGS
    @given(weighted_graphs(), st.floats(min_value=1e-5, max_value=1e-2))
    def test_collapsed_partition_mll_at_least_threshold(self, g, threshold):
        c = g.collapse_below_latency(threshold)
        k = c.coarse.num_vertices
        rng = np.random.default_rng(0)
        coarse_part = rng.integers(0, 2, size=k)
        part = c.project(coarse_part)
        mll = g.min_cut_latency(part)
        assert mll >= threshold or np.isinf(mll)

    @SETTINGS
    @given(weighted_graphs())
    def test_edge_cut_nonnegative_and_bounded(self, g):
        rng = np.random.default_rng(1)
        part = rng.integers(0, 3, size=g.num_vertices)
        cut = g.edge_cut(part)
        _, _, w, _ = g.edge_list()
        assert 0.0 <= cut <= w.sum() + 1e-9

    @SETTINGS
    @given(weighted_graphs(), st.integers(min_value=1, max_value=6))
    def test_partition_weights_sum_to_total(self, g, k):
        rng = np.random.default_rng(2)
        part = rng.integers(0, k, size=g.num_vertices)
        weights = g.partition_weights(part, k)
        assert weights.sum() == pytest.approx(g.total_vertex_weight)


class TestPartitionerProperties:
    @SETTINGS
    @given(weighted_graphs(), st.integers(min_value=1, max_value=5))
    def test_kway_valid_assignment(self, g, k):
        res = partition_kway(g, k, seed=0)
        assert res.assignment.shape == (g.num_vertices,)
        assert res.assignment.min() >= 0
        assert res.assignment.max() < k

    @SETTINGS
    @given(weighted_graphs())
    def test_kway_cut_consistent(self, g):
        res = partition_kway(g, 2, seed=0)
        assert res.edge_cut == pytest.approx(g.edge_cut(res.assignment))


class TestCostModelProperties:
    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=1e-4, max_value=0.5),
    )
    def test_sparse_equals_dense(self, n_events, num_lps, window):
        rng = np.random.default_rng(n_events * 7 + num_lps)
        cluster = ClusterSpec(name="t", num_engine_nodes=num_lps)
        end = 1.0
        times = rng.uniform(0, end, n_events)
        nodes = rng.integers(0, 10, n_events)
        assignment = rng.integers(0, num_lps, 10)
        dense = predict_wallclock(
            bucket_event_counts(times, nodes, assignment, num_lps, window, end),
            np.zeros_like(
                bucket_event_counts(times, nodes, assignment, num_lps, window, end),
                dtype=float,
            ),
            cluster,
            num_lps,
        )
        sparse = predict_from_trace(
            times, nodes, assignment, num_lps, window, end, cluster
        )
        assert sparse.total_s == pytest.approx(dense.total_s)

    @SETTINGS
    @given(st.integers(min_value=2, max_value=8))
    def test_all_events_accounted(self, num_lps):
        rng = np.random.default_rng(num_lps)
        cluster = ClusterSpec(name="t", num_engine_nodes=num_lps)
        times = rng.uniform(0, 1.0, 300)
        nodes = rng.integers(0, 20, 300)
        assignment = rng.integers(0, num_lps, 20)
        pred = predict_from_trace(times, nodes, assignment, num_lps, 0.01, 1.0, cluster)
        assert pred.total_events == 300

    @SETTINGS
    @given(st.floats(min_value=1e-4, max_value=1.0))
    def test_finer_windows_never_faster(self, window):
        """More windows => more barriers => total time monotonically grows
        as the window shrinks (same trace)."""
        rng = np.random.default_rng(3)
        cluster = ClusterSpec(name="t", num_engine_nodes=4)
        times = rng.uniform(0, 1.0, 200)
        nodes = rng.integers(0, 12, 200)
        assignment = rng.integers(0, 4, 12)
        t_fine = predict_from_trace(
            times, nodes, assignment, 4, window / 2, 1.0, cluster
        ).total_s
        t_coarse = predict_from_trace(
            times, nodes, assignment, 4, window, 1.0, cluster
        ).total_s
        assert t_fine >= t_coarse - 1e-9


class TestMetricProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_imbalance_nonnegative(self, rates):
        assert load_imbalance(np.asarray(rates)) >= 0.0

    @SETTINGS
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=30),
        st.floats(min_value=1.001, max_value=100.0),
    )
    def test_imbalance_scale_invariant(self, rates, factor):
        a = np.asarray(rates)
        assert load_imbalance(a) == pytest.approx(load_imbalance(a * factor), abs=1e-9)

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_balance_efficiency_in_unit_interval(self, weights):
        e = balance_efficiency(np.asarray(weights))
        assert 0.0 <= e <= 1.0 + 1e-12

    @SETTINGS
    @given(
        st.floats(min_value=1e-6, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_sync_efficiency_in_unit_interval(self, mll, cost):
        e = sync_efficiency(mll, cost)
        assert 0.0 <= e <= 1.0


class TestHierarchicalProperties:
    @settings(max_examples=15, deadline=None)
    @given(weighted_graphs(max_n=18), st.integers(min_value=2, max_value=3))
    def test_achieved_mll_at_least_threshold(self, g, k):
        """The hierarchical result's achieved MLL is never below its chosen
        collapse threshold — the algorithm's core guarantee."""
        from repro.core import hierarchical_partition

        res = hierarchical_partition(
            g, k, sync_cost_s=1e-4, tmll_step_s=5e-4, seed=0
        )
        mll = g.min_cut_latency(res.assignment)
        assert mll >= res.tmll_s or np.isinf(mll)

    @settings(max_examples=15, deadline=None)
    @given(weighted_graphs(max_n=18))
    def test_best_efficiency_is_sweep_max(self, g):
        from repro.core import hierarchical_partition

        res = hierarchical_partition(g, 2, sync_cost_s=1e-4, tmll_step_s=5e-4, seed=0)
        assert res.evaluation.efficiency == pytest.approx(
            max(r.evaluation.efficiency for r in res.sweep)
        )


class TestKwayRefineProperties:
    @SETTINGS
    @given(weighted_graphs(max_n=20), st.integers(min_value=2, max_value=4))
    def test_refine_never_increases_cut(self, g, k):
        from repro.partition import kway_refine, random_partition

        base = random_partition(g, k, seed=3)
        refined = kway_refine(g, base.assignment, k, imbalance_tolerance=1.5)
        assert g.edge_cut(refined) <= base.edge_cut + 1e-9


class TestBgpProperties:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_decision_total_order(self, seed):
        rng = np.random.default_rng(seed)
        routes = [
            Route(
                prefix=9,
                as_path=tuple(rng.integers(1, 50, size=rng.integers(1, 5)).tolist()),
                local_pref=int(rng.choice([80, 90, 100])),
                next_hop_as=int(rng.integers(1, 50)),
                med=int(rng.integers(0, 3)),
            )
            for _ in range(5)
        ]
        best = best_route(routes)
        assert all(decision_key(best) <= decision_key(r) for r in routes)

    @SETTINGS
    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=1000))
    def test_random_hierarchy_converges_loop_free(self, n, seed):
        """Random provider trees + peer edges always converge, and best
        routes never contain the deciding AS (loop freedom)."""
        rng = np.random.default_rng(seed)
        rels: dict[int, dict[int, str]] = {i: {} for i in range(n)}
        # provider tree: parent(i) provides to i
        for i in range(1, n):
            p = int(rng.integers(0, i))
            rels[i][p] = "provider"
            rels[p][i] = "customer"
        # a few peer edges between unrelated nodes
        for _ in range(n // 2):
            a, b = rng.integers(0, n, size=2)
            a, b = int(a), int(b)
            if a != b and b not in rels[a]:
                rels[a][b] = "peer"
                rels[b][a] = "peer"
        engine = BgpEngine({i: BgpSpeaker(i, rels[i]) for i in range(n)})
        iters = engine.run(max_iterations=200)
        assert iters <= 200
        for a, sp in engine.speakers.items():
            for prefix, route in sp.rib.items():
                assert a not in route.as_path
                if not route.is_local:
                    assert route.as_path[-1] == prefix
