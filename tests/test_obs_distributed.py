"""Unit tests for the distributed observability layer (``obs.distributed``).

Snapshot/merge/diff/restore per instrument kind, trace-channel merging,
measured blame decomposition, measured-vs-modeled calibration, and the
``--obs-out`` document — all pure in-process, no worker processes.
The end-to-end merge-identity proof lives in
``tests/test_obs_distributed_mp.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.serialization as ser
from repro.obs import blame, names, trace_export
from repro.obs.counters import HistogramMergeError
from repro.obs.distributed import (
    CALIBRATION_RATIO_BOUNDS,
    CalibrationRecorder,
    RegistrySnapshot,
    SnapshotMergeError,
    TraceSnapshot,
    configure_worker_observability,
    merged_snapshot_document,
    window_calibration,
    worker_obs_config,
)
from repro.obs.registry import Registry
from repro.obs.trace import MeasuredWindowRecord, TraceBuffer

BOUNDS = (1.0, 2.0, 4.0)


def populated_registry(scale: float = 1.0) -> Registry:
    """A registry with one instrument of every kind, scaled values."""
    reg = Registry(enabled=True, bin_s=0.5)
    reg.counter("c.events").inc(10 * scale)
    vec = reg.vector_counter("v.per_lp", 4)
    vec.add_array(np.array([1.0, 2.0, 3.0, 4.0]) * scale)
    gauge = reg.max_gauge("g.depth", 3)
    gauge.observe(0, 5.0 * scale)
    gauge.observe(2, 1.0 * scale)
    hist = reg.histogram("h.wait", BOUNDS)
    hist.observe(0.5 * scale)
    hist.observe(3.0 * scale)
    timer = reg.timer("t.span")
    timer.add(0.25 * scale)
    series = reg.series("s.rate", 2)
    series.observe(0.1, 0, 2.0 * scale)
    series.observe(0.7, 1, 1.0 * scale)
    return reg


class TestRegistrySnapshotCapture:
    def test_capture_copies_every_instrument_kind(self):
        snap = RegistrySnapshot.capture(populated_registry(), shard_id=3, label="w3")
        assert snap.provenance == ({"shard_id": 3, "label": "w3"},)
        assert snap.counters["c.events"] == 10.0
        assert snap.vectors["v.per_lp"].tolist() == [1.0, 2.0, 3.0, 4.0]
        assert snap.gauges["g.depth"].tolist() == [5.0, 0.0, 1.0]
        bounds, counts, total = snap.histograms["h.wait"]
        assert bounds == BOUNDS
        assert counts.tolist() == [1, 0, 1, 0]
        assert total == 3.5
        assert snap.timers["t.span"] == (1, 0.25)
        size, bin_s, matrix = snap.series["s.rate"]
        assert (size, bin_s) == (2, 0.5)
        assert matrix.shape == (2, 2)

    def test_capture_is_a_copy_not_a_view(self):
        reg = populated_registry()
        snap = RegistrySnapshot.capture(reg)
        reg.get_counter("c.events").inc(99)
        reg.get_vector("v.per_lp").inc(0, 99)
        assert snap.counters["c.events"] == 10.0
        assert snap.vectors["v.per_lp"][0] == 1.0

    def test_pickle_round_trip_over_the_wire_codec(self):
        snap = RegistrySnapshot.capture(populated_registry(), shard_id=1, label="w1")
        back = ser.decode_snapshot(ser.encode_snapshot(snap))
        assert back.provenance == snap.provenance
        assert back.counters == snap.counters
        assert back.histograms["h.wait"][0] == BOUNDS
        np.testing.assert_array_equal(
            back.vectors["v.per_lp"], snap.vectors["v.per_lp"]
        )


class TestRegistrySnapshotMerge:
    def test_merge_semantics_per_kind(self):
        a = RegistrySnapshot.capture(populated_registry(1.0), shard_id=0, label="w0")
        b = RegistrySnapshot.capture(populated_registry(2.0), shard_id=1, label="w1")
        merged = RegistrySnapshot.merge([a, b])
        # counters / vectors / histograms / timers / series sum
        assert merged.counters["c.events"] == 30.0
        assert merged.vectors["v.per_lp"].tolist() == [3.0, 6.0, 9.0, 12.0]
        # scale=1 observed (0.5, 3.0) -> [1,0,1,0]; scale=2 observed
        # (1.0, 6.0) -> [1,0,0,1] (bounds are upper-inclusive)
        assert merged.histograms["h.wait"][1].tolist() == [2, 0, 1, 1]
        assert merged.histograms["h.wait"][2] == 3.5 + 7.0
        assert merged.timers["t.span"] == (2, 0.75)
        # high-water gauges take the element-wise max
        assert merged.gauges["g.depth"].tolist() == [10.0, 0.0, 2.0]
        # provenance concatenates in merge order
        assert [p["label"] for p in merged.provenance] == ["w0", "w1"]

    def test_merge_handles_disjoint_instruments(self):
        reg = Registry(enabled=True)
        reg.counter("only.here").inc(7)
        a = RegistrySnapshot.capture(reg)
        b = RegistrySnapshot.capture(populated_registry())
        merged = RegistrySnapshot.merge([a, b])
        assert merged.counters["only.here"] == 7.0
        assert merged.counters["c.events"] == 10.0

    def test_vector_size_mismatch_is_a_typed_error(self):
        ra, rb = Registry(enabled=True), Registry(enabled=True)
        ra.vector_counter("v", 2).inc(0)
        rb.vector_counter("v", 3).inc(0)
        with pytest.raises(SnapshotMergeError, match="vector 'v'"):
            RegistrySnapshot.merge(
                [RegistrySnapshot.capture(ra), RegistrySnapshot.capture(rb)]
            )

    def test_histogram_bounds_mismatch_is_a_typed_error(self):
        ra, rb = Registry(enabled=True), Registry(enabled=True)
        ra.histogram("h", (1.0, 2.0)).observe(0.5)
        rb.histogram("h", (1.0, 3.0)).observe(0.5)
        with pytest.raises(HistogramMergeError, match="histogram 'h' bounds"):
            RegistrySnapshot.merge(
                [RegistrySnapshot.capture(ra), RegistrySnapshot.capture(rb)]
            )

    def test_series_pad_to_longest_run(self):
        ra, rb = Registry(enabled=True), Registry(enabled=True)
        ra.series("s", 2, 1.0).observe(0.5, 0, 1.0)  # one bin
        sb = rb.series("s", 2, 1.0)
        sb.observe(0.5, 0, 2.0)
        sb.observe(2.5, 1, 4.0)  # three bins
        merged = RegistrySnapshot.merge(
            [RegistrySnapshot.capture(ra), RegistrySnapshot.capture(rb)]
        )
        _, _, matrix = merged.series["s"]
        assert matrix.shape == (3, 2)
        assert matrix[0].tolist() == [3.0, 0.0]
        assert matrix[2].tolist() == [0.0, 4.0]


class TestHistogramMergeExact:
    """Satellite: bin-wise-exact histogram merging at the instrument level."""

    def test_same_bounds_merge_is_binwise_sum(self):
        ra, rb = Registry(enabled=True), Registry(enabled=True)
        ha = ra.histogram("h", BOUNDS)
        hb = rb.histogram("h", BOUNDS)
        for v in (0.5, 1.5, 3.0, 100.0):
            ha.observe(v)
        for v in (0.2, 8.0):
            hb.observe(v)
        ha.merge_from(hb)
        assert ha.counts.tolist() == [2, 1, 1, 2]
        assert ha.count == 6
        assert ha.sum == pytest.approx(113.2)

    def test_mismatched_bounds_raise_without_mutating(self):
        ra, rb = Registry(enabled=True), Registry(enabled=True)
        ha = ra.histogram("h", BOUNDS)
        ha.observe(0.5)
        hb = rb.histogram("h", (9.0,))
        hb.observe(0.5)
        before = ha.counts.copy()
        with pytest.raises(HistogramMergeError):
            ha.merge_from(hb)
        assert ha.counts.tolist() == before.tolist()

    def test_quantile_correct_on_merged_data(self):
        # 50 values below 1.0 in one histogram, 50 above 4.0 in the other:
        # the merged median sits exactly at the 1.0 boundary.
        ra, rb = Registry(enabled=True), Registry(enabled=True)
        ha = ra.histogram("h", BOUNDS)
        hb = rb.histogram("h", BOUNDS)
        for _ in range(50):
            ha.observe(0.5)
            hb.observe(5.0)
        ha.merge_from(hb)
        assert ha.quantile(0.5) == pytest.approx(1.0)
        assert ha.quantile(0.25) <= 1.0
        assert ha.quantile(0.9) >= 4.0


class TestRegistrySnapshotDiff:
    def test_diff_prunes_unchanged_instruments(self):
        reg = populated_registry()
        base = RegistrySnapshot.capture(reg)
        reg.get_counter("c.events").inc(5)
        delta = RegistrySnapshot.capture(reg).diff(base)
        assert delta.counters == {"c.events": 5.0}
        assert delta.vectors == {}
        assert delta.histograms == {}
        assert delta.timers == {}
        assert delta.series == {}

    def test_quiet_window_delta_is_empty(self):
        reg = populated_registry()
        base = RegistrySnapshot.capture(reg)
        delta = RegistrySnapshot.capture(reg).diff(base)
        assert not delta.counters and not delta.vectors and not delta.gauges
        assert not delta.histograms and not delta.timers and not delta.series

    def test_accumulated_deltas_restore_the_final_snapshot(self):
        reg = populated_registry()
        base = RegistrySnapshot.capture(reg, shard_id=0, label="w0")
        accumulated = base
        prev = base
        for step in range(3):
            reg.get_counter("c.events").inc(step + 1)
            reg.get_vector("v.per_lp").inc(step % 4)
            reg.get_histogram("h.wait").observe(float(step))
            snap = RegistrySnapshot.capture(reg, shard_id=0, label="w0")
            delta = snap.diff(prev)
            # the controller merges each delta into its running total
            accumulated = RegistrySnapshot.merge([accumulated, delta])
            prev = snap
        final = RegistrySnapshot.capture(reg)
        assert accumulated.counters == final.counters
        np.testing.assert_array_equal(
            accumulated.vectors["v.per_lp"], final.vectors["v.per_lp"]
        )
        np.testing.assert_array_equal(
            accumulated.histograms["h.wait"][1], final.histograms["h.wait"][1]
        )


class TestRegistrySnapshotRestore:
    def test_restore_round_trips_every_kind(self):
        snap = RegistrySnapshot.capture(populated_registry())
        reg = snap.restore(bin_s=0.5)
        again = RegistrySnapshot.capture(reg)
        assert again.counters == snap.counters
        np.testing.assert_array_equal(
            again.vectors["v.per_lp"], snap.vectors["v.per_lp"]
        )
        np.testing.assert_array_equal(
            again.gauges["g.depth"], snap.gauges["g.depth"]
        )
        assert again.histograms["h.wait"][1].tolist() == (
            snap.histograms["h.wait"][1].tolist()
        )
        assert again.timers == snap.timers
        np.testing.assert_array_equal(
            again.series["s.rate"][2], snap.series["s.rate"][2]
        )

    def test_restored_registry_is_disabled(self):
        reg = RegistrySnapshot.capture(populated_registry()).restore()
        assert not reg.enabled
        reg.get_counter("c.events").inc()  # guarded: must be a no-op
        assert reg.get_counter("c.events").value == 10.0


def measured(w, shard, execute, wait=0.0, encode=0.0, decode=0.0, events=10, mb=0):
    return MeasuredWindowRecord(w, shard, execute, wait, encode, decode, events, mb)


def tracer_with(records, windows=(), capacity=64) -> TraceBuffer:
    tr = TraceBuffer(capacity=capacity, enabled=True)
    for r in records:
        tr.measured_window(
            r.window_index, r.shard_id, r.execute_s, r.barrier_wait_s,
            r.mail_encode_s, r.mail_decode_s, r.events, r.mail_bytes,
        )
    for w, start, end, ev, rem in windows:
        tr.window(w, start, end, np.array(ev), np.array(rem))
    tr.disable()
    return tr


class TestTraceSnapshotMerge:
    def test_windows_with_same_index_sum_per_lp_vectors(self):
        ta = tracer_with([], windows=[(0, 0.0, 1.0, [3, 0], [1, 0])])
        tb = tracer_with([], windows=[(0, 0.0, 1.0, [0, 5], [0, 2])])
        merged = TraceSnapshot.merge(
            [TraceSnapshot.capture(ta, 0, "w0"), TraceSnapshot.capture(tb, 1, "w1")]
        )
        assert len(merged.windows) == 1
        assert merged.windows[0].events_per_lp.tolist() == [3, 5]
        assert merged.windows[0].remote_per_lp.tolist() == [1, 2]

    def test_window_bounds_mismatch_is_a_typed_error(self):
        ta = tracer_with([], windows=[(0, 0.0, 1.0, [1, 0], [0, 0])])
        tb = tracer_with([], windows=[(0, 0.0, 2.0, [1, 0], [0, 0])])
        with pytest.raises(SnapshotMergeError, match="window 0 bounds"):
            TraceSnapshot.merge(
                [TraceSnapshot.capture(ta), TraceSnapshot.capture(tb)]
            )

    def test_measured_records_sort_by_window_then_shard(self):
        ta = tracer_with([measured(1, 1, 0.2), measured(0, 1, 0.1)])
        tb = tracer_with([measured(0, 0, 0.3)])
        merged = TraceSnapshot.merge(
            [TraceSnapshot.capture(ta), TraceSnapshot.capture(tb)]
        )
        assert [(m.window_index, m.shard_id) for m in merged.measured] == [
            (0, 0), (0, 1), (1, 1),
        ]

    def test_replayed_faults_deduplicate(self):
        ta = tracer_with([])
        tb = tracer_with([])
        for tr in (ta, tb):
            tr.enable()
            tr.fault(1.0, "link_down", "inject", (3, 4))
            tr.disable()
        merged = TraceSnapshot.merge(
            [TraceSnapshot.capture(ta), TraceSnapshot.capture(tb)]
        )
        assert len(merged.faults) == 1

    def test_restore_feeds_the_blame_pipeline(self):
        tr = tracer_with(
            [measured(0, 0, 0.5, wait=0.1), measured(0, 1, 0.2, wait=0.4)]
        )
        snap = TraceSnapshot.capture(tr, None, "merged")
        report = blame.analyze_measured(snap.restore(), num_shards=2)
        assert report.num_shards == 2
        assert report.num_windows == 1
        assert report.shard_execute_s.tolist() == [0.5, 0.2]
        # shard 0's 0.6s total beats shard 1's 0.6s tie -> max picks one;
        # critical path is the straggler's total
        assert report.critical_s == pytest.approx(0.6)
        table = blame.format_measured_table(report)
        assert "shard" in table and "critical path" in table


class TestWorkerObsConfig:
    def test_disabled_registry_and_tracer_yield_none(self):
        reg = Registry(enabled=False)
        tr = TraceBuffer(capacity=4, enabled=False)
        assert worker_obs_config(reg, tr) is None

    def test_enabled_stanza_carries_settings(self):
        reg = Registry(enabled=True, bin_s=0.25)
        tr = TraceBuffer(capacity=128, enabled=True)
        tr.set_costs(1e-6, 2e-6)
        cfg = worker_obs_config(reg, tr, incremental=True)
        assert cfg == {
            "registry": True,
            "bin_s": 0.25,
            "trace": True,
            "capacity": 128,
            "event_cost_s": 1e-6,
            "remote_event_cost_s": 2e-6,
            "incremental": True,
        }

    def test_configure_none_is_inert_and_false(self):
        assert configure_worker_observability(None) is False

    def test_configure_clears_inherited_state(self, monkeypatch):
        import repro.obs.registry as registry_mod
        import repro.obs.trace as trace_mod

        reg = Registry(enabled=True)
        reg.counter("inherited").inc(5)
        tr = TraceBuffer(capacity=8, enabled=True)
        tr.event(0.1, 0)
        monkeypatch.setattr(registry_mod, "_GLOBAL", reg)
        monkeypatch.setattr(trace_mod, "_GLOBAL", tr)
        on = configure_worker_observability(
            {"registry": True, "trace": True, "capacity": 8}
        )
        assert on is True
        assert "inherited" not in reg.counters()
        assert len(tr.events) == 0


class TestWindowCalibration:
    def test_measured_is_the_straggler_and_ratios_are_per_window(self):
        records = [
            measured(0, 0, 0.10), measured(0, 1, 0.30),
            measured(1, 0, 0.20), measured(1, 1, 0.05),
        ]
        reg = Registry(enabled=True)
        table = window_calibration(records, {0: 0.15, 1: 0.10}, registry=reg)
        assert [r["window"] for r in table["windows"]] == [0, 1]
        assert table["windows"][0]["measured_s"] == pytest.approx(0.30)
        assert table["windows"][0]["ratio"] == pytest.approx(2.0)
        assert table["windows"][1]["measured_s"] == pytest.approx(0.20)
        assert table["measured_total_s"] == pytest.approx(0.50)
        assert table["overall_ratio"] == pytest.approx(2.0)
        assert table["worst_window"]["window"] == 0
        assert table["worst_window"]["deviation_s"] == pytest.approx(0.15)
        # the calibration.* instruments got fed
        assert reg.get_counter(names.CALIBRATION_WINDOWS).value == 2
        assert reg.get_counter(names.CALIBRATION_MEASURED_WALL).value == (
            pytest.approx(0.50)
        )
        hist = reg.get_histogram(names.CALIBRATION_RATIO)
        assert hist.bounds == CALIBRATION_RATIO_BOUNDS
        assert hist.count == 2

    def test_windows_without_predictions_are_skipped(self):
        table = window_calibration(
            [measured(0, 0, 0.1), measured(7, 0, 0.2)],
            {0: 0.1},
            registry=Registry(enabled=True),
        )
        assert [r["window"] for r in table["windows"]] == [0]

    def test_empty_measured_channel_yields_empty_table(self):
        table = window_calibration([], {0: 0.1}, registry=Registry(enabled=True))
        assert table["windows"] == []
        assert table["overall_ratio"] is None
        assert table["worst_window"] is None

    def test_recorder_is_guarded_when_registry_disabled(self):
        reg = Registry(enabled=False)
        recorder = CalibrationRecorder(reg)
        recorder.record(0.1, 0.2)
        reg.enable()
        assert reg.get_counter(names.CALIBRATION_WINDOWS).value == 0


class TestMergedSnapshotDocument:
    def test_document_schema_and_json_round_trip(self):
        reg_snap = RegistrySnapshot.capture(
            populated_registry(), shard_id=0, label="worker-0"
        )
        tr_snap = TraceSnapshot.capture(
            tracer_with([measured(0, 0, 0.1, mb=64)]), 0, "worker-0"
        )
        calibration = window_calibration(
            tr_snap.measured, {0: 0.1}, registry=Registry(enabled=True)
        )
        doc = merged_snapshot_document(
            reg_snap, tr_snap, meta={"backend": "mp"}, calibration=calibration
        )
        assert doc["shards"] == [{"shard_id": 0, "label": "worker-0"}]
        assert doc["measured_windows"][0]["mail_bytes"] == 64
        assert doc["calibration"]["overall_ratio"] == pytest.approx(1.0)
        assert doc["meta"]["backend"] == "mp"
        assert doc["counters"]["c.events"] == 10.0
        json.loads(json.dumps(doc))  # strictly JSON-serializable

    def test_trace_and_calibration_sections_are_optional(self):
        doc = merged_snapshot_document(
            RegistrySnapshot.capture(populated_registry())
        )
        assert "measured_windows" not in doc
        assert "calibration" not in doc


class TestMeasuredPerfettoTracks:
    def test_measured_records_emit_worker_tracks(self):
        tr = tracer_with(
            [
                measured(0, 0, 0.1, wait=0.05, encode=0.01, decode=0.02),
                measured(0, 1, 0.2, wait=0.01),
            ]
        )
        doc = trace_export.to_chrome_trace(tr)
        events = doc["traceEvents"]
        worker_pids = {e["pid"] for e in events if e.get("cat") == "measured"}
        assert worker_pids == {trace_export._MEASURED_PID}
        slices = [e for e in events if e.get("cat") == "measured" and e["ph"] == "X"]
        assert {e["name"] for e in slices} >= {"execute", "barrier-wait"}
        threads = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name" and e["pid"] == trace_export._MEASURED_PID
        }
        assert threads == {"worker 0", "worker 1"}

    def test_no_measured_records_means_no_worker_tracks(self):
        tr = tracer_with([], windows=[(0, 0.0, 1.0, [1, 0], [0, 0])])
        doc = trace_export.to_chrome_trace(tr)
        assert all(e.get("cat") != "measured" for e in doc["traceEvents"])
