"""Tests for the packet simulator core: forwarding, delivery, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ConservativeEngine, SimKernel
from repro.netsim import (
    LOOPBACK_LATENCY_S,
    NetworkSimulator,
    Packet,
    Protocol,
    new_flow_id,
    send_datagram,
)
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


@pytest.fixture()
def line_net():
    """h0 - r0 - r1 - h1 with 1 ms router link, 20 us access links."""
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, 1e9, 1e-3)
    net.add_link(h0, r0, 100e6, 20e-6)
    net.add_link(h1, r1, 100e6, 20e-6)
    return net, (r0, r1, h0, h1)


def mk_sim(net, record=False):
    k = SimKernel(record_trace=True)
    sim = NetworkSimulator(net, ForwardingPlane(net), k, record_transmissions=record)
    return k, sim


class TestForwarding:
    def test_udp_end_to_end(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net)
        got = []
        sim.udp_bind(h1, 9, lambda p: got.append((p.seq, sim.now)))
        send_datagram(sim, h0, h1, 1000, port=9)
        k.run(until=1.0)
        assert len(got) == 1
        # latency >= propagation path (20us + 1ms + 20us)
        assert got[0][1] >= 1.04e-3

    def test_hop_count(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net)
        seen = []
        sim.udp_bind(h1, 9, lambda p: seen.append(p.hops))
        send_datagram(sim, h0, h1, 500, port=9)
        k.run(until=1.0)
        assert seen == [3]  # h0->r0, r0->r1, r1->h1

    def test_node_packets_counted_along_path(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net)
        sim.udp_bind(h1, 9, lambda p: None)
        send_datagram(sim, h0, h1, 500, port=9)
        k.run(until=1.0)
        for node in (h0, r0, r1, h1):
            assert sim.node_packets[node] == 1

    def test_ttl_expiry(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net)
        p = Packet(src=h0, dst=h1, size_bytes=100, protocol=Protocol.UDP,
                   flow_id=new_flow_id(), ttl=1)
        sim.inject(p)
        k.run(until=1.0)
        assert sim.counters.packets_dropped_ttl == 1
        assert sim.counters.packets_delivered == 0

    def test_unroutable_counted(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        iso = net.add_node(NodeKind.HOST)  # no link
        k, sim = mk_sim(net)
        p = Packet(src=h0, dst=iso, size_bytes=100, protocol=Protocol.UDP,
                   flow_id=new_flow_id())
        sim.inject(p)
        k.run(until=1.0)
        assert sim.counters.packets_unroutable == 1

    def test_loopback_delivery(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net)
        got = []
        sim.udp_bind(h0, 9, lambda p: got.append(sim.now))
        send_datagram(sim, h0, h0, 100, port=9)
        k.run(until=1.0)
        assert got == [pytest.approx(LOOPBACK_LATENCY_S)]

    def test_transmissions_recorded(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net, record=True)
        sim.udp_bind(h1, 9, lambda p: None)
        send_datagram(sim, h0, h1, 500, port=9)
        k.run(until=1.0)
        t, f, to = sim.transmissions()
        assert f.tolist() == [h0, r0, r1]
        assert to.tolist() == [r0, r1, h1]
        assert np.all(np.diff(t) > 0)

    def test_link_byte_counters(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim = mk_sim(net)
        sim.udp_bind(h1, 9, lambda p: None)
        send_datagram(sim, h0, h1, 1000, port=9)
        k.run(until=1.0)
        assert sim.link_bytes().sum() == pytest.approx(3 * 1028)  # 3 hops

    def test_udp_bind_conflict(self, line_net):
        net, (_, _, h0, _) = line_net
        _, sim = mk_sim(net)
        sim.udp_bind(h0, 5, lambda p: None)
        with pytest.raises(ValueError):
            sim.udp_bind(h0, 5, lambda p: None)
        sim.udp_unbind(h0, 5)
        sim.udp_bind(h0, 5, lambda p: None)


class TestOnConservativeEngine:
    def test_runs_when_lookahead_below_cut_latency(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        # Partition across the 1 ms router link; lookahead 0.5 ms is safe.
        assignment = np.array([0, 1, 0, 1])
        eng = ConservativeEngine(assignment, 2, lookahead=0.5e-3)
        sim = NetworkSimulator(net, ForwardingPlane(net), eng)
        got = []
        sim.udp_bind(h1, 9, lambda p: got.append(eng.current_time))
        eng.schedule_at(0.0, lambda: send_datagram(sim, h0, h1, 500, port=9), node=h0)
        eng.run(until=0.01)
        assert len(got) == 1
        assert int(eng.remote_sends_total().sum()) == 1

    def test_same_delivery_time_as_sequential(self, line_net):
        net, (r0, r1, h0, h1) = line_net
        k, sim_seq = mk_sim(net)
        t_seq = []
        sim_seq.udp_bind(h1, 9, lambda p: t_seq.append(sim_seq.now))
        k.schedule_at(0.0, lambda: send_datagram(sim_seq, h0, h1, 500, port=9), node=h0)
        k.run(until=0.01)

        assignment = np.array([0, 1, 0, 1])
        eng = ConservativeEngine(assignment, 2, lookahead=0.5e-3)
        sim_par = NetworkSimulator(net, ForwardingPlane(net), eng)
        t_par = []
        sim_par.udp_bind(h1, 9, lambda p: t_par.append(eng.current_time))
        eng.schedule_at(0.0, lambda: send_datagram(sim_par, h0, h1, 500, port=9), node=h0)
        eng.run(until=0.01)
        assert t_par == pytest.approx(t_seq)
