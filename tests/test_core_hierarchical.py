"""Tests for the hierarchical partitioning algorithm (paper §3.4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Approach,
    MappingPipeline,
    build_weighted_graph,
    hierarchical_partition,
)
from repro.cluster import ClusterSpec
from repro.partition import WeightedGraph


def latency_tiers_graph(seed=0):
    """12 cliques of 4 vertices; intra-clique latency 0.05 ms, inter-clique
    ring + chords at 2 ms. Collapsing at any threshold in (0.05 ms, 2 ms]
    yields 12 super-vertices — plenty of parallelism for 3 parts."""
    us, vs, lat = [], [], []
    groups = 12
    for g in range(groups):
        base = g * 4
        for i in range(4):
            for j in range(i + 1, 4):
                us.append(base + i)
                vs.append(base + j)
                lat.append(0.05e-3)
    for g in range(groups):
        us.append(g * 4)
        vs.append(((g + 1) % groups) * 4)
        lat.append(2e-3)
        us.append(g * 4 + 1)
        vs.append(((g + 3) % groups) * 4 + 1)
        lat.append(2e-3)
    return WeightedGraph(groups * 4, us, vs, np.ones(len(us)), np.asarray(lat))


class TestHierarchicalPartition:
    def test_mll_guarantee(self):
        g = latency_tiers_graph()
        res = hierarchical_partition(g, 3, sync_cost_s=0.1e-3, seed=0)
        # Best partition should avoid the 0.05 ms edges entirely.
        assert res.achieved_mll_s >= res.tmll_s
        assert res.achieved_mll_s == pytest.approx(2e-3)

    def test_beats_flat_on_e_metric(self):
        from repro.core import evaluate_partition
        from repro.partition import partition_kway

        g = latency_tiers_graph()
        sync = 0.1e-3
        res = hierarchical_partition(g, 3, sync_cost_s=sync, seed=0)
        flat = partition_kway(g, 3, seed=0)
        flat_eval = evaluate_partition(g, flat.assignment, 3, sync)
        assert res.evaluation.efficiency >= flat_eval.efficiency

    def test_sweep_records(self):
        g = latency_tiers_graph()
        res = hierarchical_partition(g, 3, sync_cost_s=0.1e-3, seed=0)
        assert len(res.sweep) >= 2
        assert res.sweep[0].tmll_s == 0.0  # flat baseline always evaluated
        tmlls = [s.tmll_s for s in res.sweep]
        assert tmlls == sorted(tmlls)

    def test_best_is_argmax_of_sweep(self):
        g = latency_tiers_graph()
        res = hierarchical_partition(g, 3, sync_cost_s=0.1e-3, seed=0)
        best_e = max(s.evaluation.efficiency for s in res.sweep)
        assert res.evaluation.efficiency == pytest.approx(best_e)

    def test_sweep_starts_above_sync_cost(self):
        g = latency_tiers_graph()
        sync = 0.35e-3
        res = hierarchical_partition(g, 3, sync_cost_s=sync, tmll_step_s=0.1e-3, seed=0)
        nonzero = [s.tmll_s for s in res.sweep if s.tmll_s > 0]
        assert min(nonzero) > sync

    def test_stops_when_parallelism_exhausted(self):
        g = latency_tiers_graph()
        # 3 coarse vertices < 2*4 parts: threshold beyond 0.05 ms is skipped.
        res = hierarchical_partition(
            g, 4, sync_cost_s=0.01e-3, tmll_step_s=0.02e-3, seed=0
        )
        assert all(s.coarse_vertices >= 8 for s in res.sweep if s.tmll_s > 0)

    def test_all_parts_populated(self):
        g = latency_tiers_graph()
        res = hierarchical_partition(g, 3, sync_cost_s=0.1e-3, seed=0)
        assert set(res.assignment.tolist()) == {0, 1, 2}

    def test_invalid_args(self):
        g = latency_tiers_graph()
        with pytest.raises(ValueError):
            hierarchical_partition(g, 0, 1e-3)
        with pytest.raises(ValueError):
            hierarchical_partition(g, 2, 1e-3, tmll_step_s=0.0)
        with pytest.raises(ValueError):
            hierarchical_partition(g, 2, -1.0)

    def test_custom_partitioner_injected(self):
        from repro.partition import round_robin_partition

        calls = []

        def fake_partitioner(graph, k, seed=0, imbalance_tolerance=1.05):
            calls.append(graph.num_vertices)
            return round_robin_partition(graph, k)

        g = latency_tiers_graph()
        hierarchical_partition(g, 3, sync_cost_s=0.1e-3, partitioner=fake_partitioner)
        assert calls  # partitioner actually used
        assert calls[0] == 48  # flat baseline first


class TestMappingPipeline:
    def test_flat_and_hierarchical_paths(self, flat_net):
        pipe = MappingPipeline.for_network(flat_net, num_engines=4)
        m_top = pipe.run(Approach.TOP)
        assert m_top.tmll_s == 0.0
        assert not m_top.sweep
        m_htop = pipe.run(Approach.HTOP)
        assert m_htop.sweep
        assert set(m_htop.assignment.tolist()) <= set(range(4))

    def test_hierarchical_mll_at_least_flat(self, flat_net):
        pipe = MappingPipeline.for_network(flat_net, num_engines=4)
        m_top = pipe.run(Approach.TOP)
        m_htop = pipe.run(Approach.HTOP)
        assert m_htop.achieved_mll_s >= m_top.achieved_mll_s

    def test_run_all(self, flat_net):
        from repro.profilers import TrafficProfile

        profile = TrafficProfile(
            node_events=np.ones(flat_net.num_nodes),
            link_bytes=np.ones(flat_net.num_links),
            link_packets=np.ones(flat_net.num_links),
            duration_s=1.0,
        )
        pipe = MappingPipeline.for_network(flat_net, num_engines=4)
        mappings = pipe.run_all([Approach.TOP2, Approach.HPROF], profile)
        assert set(mappings) == {Approach.TOP2, Approach.HPROF}

    def test_invalid_engines(self, flat_net):
        with pytest.raises(ValueError):
            MappingPipeline.for_network(flat_net, num_engines=0)

    def test_sync_cost_exposed(self, flat_net):
        pipe = MappingPipeline.for_network(flat_net, num_engines=16)
        assert pipe.sync_cost_s == pipe.cluster.sync_cost_s(16)
