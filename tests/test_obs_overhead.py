"""Overhead guarantees of the observability layer.

Two contracts from ``docs/observability.md``:

1. **Disabled means no writes.** Every instrument splits its write path
   into a guarded public method and a private ``_record``; with the
   registry disabled, a full simulation run must never reach any
   ``_record``. Monkeypatching all of them to raise proves it. The
   structured tracer (:class:`repro.obs.trace.TraceBuffer`) follows the
   same contract through its single ``_append`` write layer.
2. **Enabled is cheap.** An instrumented >=1k-event run stays within a
   generous wall-clock factor of the uninstrumented run (the hot path is
   one attribute load + branch + numpy scalar add per hook point).
"""

from __future__ import annotations

import pytest

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator, send_datagram
from repro.obs.counters import (
    BinnedSeries,
    Counter,
    Histogram,
    MaxGauge,
    VectorCounter,
)
from repro.obs.registry import get_registry, observed_run
from repro.obs.timers import SpanTimer, Stopwatch
from repro.obs.trace import TraceBuffer, get_tracer
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind

#: (class, method) of every private write layer in the instrument set.
RECORD_METHODS = [
    (Counter, "_record"),
    (VectorCounter, "_record"),
    (VectorCounter, "_record_array"),
    (MaxGauge, "_record"),
    (Histogram, "_record"),
    (BinnedSeries, "_record"),
    (SpanTimer, "_record"),
    (TraceBuffer, "_append"),
]

NUM_PACKETS = 300  # 4 events per packet -> comfortably over 1k events


def run_line_scenario():
    """A >=1k-event UDP run over a 4-node line network."""
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, 1e9, 1e-3)
    net.add_link(h0, r0, 100e6, 20e-6)
    net.add_link(h1, r1, 100e6, 20e-6)

    kernel = SimKernel()
    sim = NetworkSimulator(net, ForwardingPlane(net), kernel)
    sim.udp_bind(h1, 9, lambda p: None)
    for i in range(NUM_PACKETS):
        kernel.schedule_at(
            i * 1e-4,
            lambda: send_datagram(sim, h0, h1, 200, port=9),
            node=h0,
        )
    kernel.run(until=1.0)
    return kernel, sim


class TestDisabledMeansNoWrites:
    def test_disabled_run_never_reaches_a_record_method(self, monkeypatch):
        # Both the aggregate registry AND the structured tracer are off:
        # the run must not append a single trace record either.
        monkeypatch.setattr(get_registry(), "enabled", False)
        monkeypatch.setattr(get_tracer(), "enabled", False)
        for cls, meth in RECORD_METHODS:
            def tripwire(self, *a, _cls=cls, _meth=meth, **kw):
                raise AssertionError(
                    f"{_cls.__name__}.{_meth} written with registry disabled"
                )
            monkeypatch.setattr(cls, meth, tripwire)
        kernel, sim = run_line_scenario()
        assert kernel.events_executed >= 1000
        assert sim.counters.packets_delivered == NUM_PACKETS

    def test_enabled_run_does_record(self):
        with observed_run() as reg:
            kernel, sim = run_line_scenario()
        from repro.obs import names

        node_events = reg.get_vector(names.NETSIM_NODE_EVENTS)
        assert node_events.total == sim.node_packets.sum()
        assert reg.get_counter(names.NETSIM_PACKETS_DELIVERED).value == NUM_PACKETS
        assert reg.get_series(names.NETSIM_NODE_RATE_BINS).num_bins >= 1


class TestEnabledOverheadIsBounded:
    #: Generous ceiling: the instrumented run may take this many times the
    #: uninstrumented run (plus a floor absorbing timer jitter on runs
    #: this short). The real ratio is ~1.2x; 10x only catches grossly
    #: accidental hot-path work (a dict lookup or allocation per event).
    MAX_FACTOR = 10.0
    MIN_BASELINE_S = 0.005

    @staticmethod
    def _best_of(n: int, fn) -> float:
        best = float("inf")
        for _ in range(n):
            watch = Stopwatch()
            fn()
            best = min(best, watch.elapsed())
        return best

    def test_instrumented_run_within_factor_of_baseline(self, monkeypatch):
        monkeypatch.setattr(get_registry(), "enabled", False)
        baseline = self._best_of(3, run_line_scenario)

        def instrumented():
            with observed_run():
                run_line_scenario()

        enabled = self._best_of(3, instrumented)
        budget = self.MAX_FACTOR * max(baseline, self.MIN_BASELINE_S)
        assert enabled <= budget, (
            f"instrumented run took {enabled:.4f}s vs baseline "
            f"{baseline:.4f}s (budget {budget:.4f}s)"
        )

    def test_scenario_is_big_enough_to_be_meaningful(self):
        kernel, _ = run_line_scenario()
        assert kernel.events_executed >= 1000


@pytest.mark.parametrize("cls,meth", RECORD_METHODS, ids=lambda x: getattr(x, "__name__", x))
def test_every_instrument_has_its_record_layer(cls, meth):
    # The monkeypatch proof above silently weakens if a write layer is
    # renamed; pin the public/_record split per class.
    assert callable(getattr(cls, meth))


# ----------------------------------------------------------------------
# Multi-process backend: the same contract, across the pipe
# ----------------------------------------------------------------------
import numpy as np

import repro.engine.parallel as parallel_mod
from repro.engine.parallel import ParallelConservativeEngine
from repro.experiments.shard import chain_spec, delivery_log_bytes, merge_collected
from repro.obs.distributed import RegistrySnapshot, TraceSnapshot
from repro.obs.trace import traced_run

CHAIN_ASSIGNMENT = np.array([0, 0, 0, 0, 1, 1, 1, 1])
CHAIN_DURATION = 0.02


def run_chain_mp(procs: int = 2, incremental: bool = False):
    spec = chain_spec(num_nodes=8, latency_s=1e-4, packets=20)
    engine = ParallelConservativeEngine(
        CHAIN_ASSIGNMENT,
        2,
        1e-4,
        procs=procs,
        start_method="fork",  # fork propagates monkeypatched tripwires
        incremental_obs=incremental,
    )
    return engine.run_scenario(spec, until=CHAIN_DURATION)


class TestDistributedDisabledMeansNoObs:
    """Disabled-mode mp runs never touch the snapshot layer at all."""

    def test_disabled_mp_run_never_builds_a_snapshot(self, monkeypatch):
        monkeypatch.setattr(get_registry(), "enabled", False)
        monkeypatch.setattr(get_tracer(), "enabled", False)
        for cls in (RegistrySnapshot, TraceSnapshot):
            def tripwire(*a, _cls=cls, **kw):
                raise AssertionError(
                    f"{_cls.__name__}.capture reached with obs disabled"
                )
            monkeypatch.setattr(cls, "capture", tripwire)
        result = run_chain_mp()
        assert result.registry_snapshots == []
        assert result.trace_snapshots == []
        assert result.obs_bytes == [0, 0]
        assert result.events_executed > 0

    def test_disabled_mail_is_byte_identical_without_obs_layer(self, monkeypatch):
        import repro.serialization as ser

        monkeypatch.setattr(get_registry(), "enabled", False)
        monkeypatch.setattr(get_tracer(), "enabled", False)
        with_layer = run_chain_mp()

        # Re-run with the `obs` stanza stripped from every worker config:
        # the wire a build without the observability layer would speak.
        orig = ParallelConservativeEngine._worker_config

        def stripped(self, shard_id, spec, until, **kwargs):
            cfg = ser.decode_payload(orig(self, shard_id, spec, until, **kwargs))
            cfg.pop("obs", None)
            return ser.encode_payload(cfg)

        monkeypatch.setattr(ParallelConservativeEngine, "_worker_config", stripped)
        without_layer = run_chain_mp()

        assert with_layer.mail_bytes == without_layer.mail_bytes
        merged_with = merge_collected(with_layer.collected)
        merged_without = merge_collected(without_layer.collected)
        assert delivery_log_bytes(merged_with) == delivery_log_bytes(merged_without)
        assert merged_with["counters"] == merged_without["counters"]

    def test_enabled_obs_adds_zero_mail_bytes(self, monkeypatch):
        monkeypatch.setattr(get_registry(), "enabled", False)
        monkeypatch.setattr(get_tracer(), "enabled", False)
        disabled = run_chain_mp()

        with observed_run(), traced_run(get_tracer()):
            enabled = run_chain_mp()
            incremental = run_chain_mp(incremental=True)

        # Positive control: the enabled runs really shipped snapshots...
        assert len(enabled.registry_snapshots) == 2
        assert len(enabled.trace_snapshots) == 2
        assert sum(incremental.obs_bytes) > 0
        # ...and none of it rode the mail batches. Snapshots and deltas
        # travel the control plane; mail volume is invariant.
        assert enabled.mail_bytes == disabled.mail_bytes
        assert incremental.mail_bytes == disabled.mail_bytes

    def test_worker_snapshots_carry_provenance(self):
        with observed_run(), traced_run(get_tracer()):
            result = run_chain_mp()
        provenance = [p for s in result.registry_snapshots for p in s.provenance]
        assert [p["shard_id"] for p in provenance] == [0, 1]
        assert [p["label"] for p in provenance] == ["worker-0", "worker-1"]
