"""Tests for the cluster cost model (dense + sparse paths) and sync model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, SyncCostModel, teragrid_cluster
from repro.engine import (
    bucket_event_counts,
    predict_from_trace,
    predict_wallclock,
    remote_send_counts,
    sequential_time_estimate,
)


@pytest.fixture()
def cluster():
    return ClusterSpec(name="test", num_engine_nodes=4)


class TestSyncCostModel:
    def test_single_node_free(self):
        assert SyncCostModel()(1) == 0.0

    def test_monotone(self):
        m = SyncCostModel()
        values = [m(n) for n in (2, 8, 32, 64, 100, 128, 200)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_anchor_near_paper(self):
        # ~0.58 ms at 100 nodes (paper Section 3.4.1).
        assert SyncCostModel()(100) == pytest.approx(0.58e-3, rel=0.05)

    def test_interpolation(self):
        m = SyncCostModel(points={10: 100e-6, 20: 200e-6})
        assert m(15) == pytest.approx(150e-6)

    def test_extrapolation_beyond_table(self):
        m = SyncCostModel(points={10: 100e-6, 20: 200e-6})
        assert m(30) == pytest.approx(300e-6)

    def test_rejects_bad_tables(self):
        with pytest.raises(ValueError):
            SyncCostModel(points={10: 1e-4})
        with pytest.raises(ValueError):
            SyncCostModel(points={10: 2e-4, 20: 1e-4})
        with pytest.raises(ValueError):
            SyncCostModel(points={10: -1e-4, 20: 1e-4})

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            SyncCostModel()(0)

    def test_teragrid_spec(self):
        spec = teragrid_cluster(90)
        assert spec.num_engine_nodes == 90
        assert spec.num_app_nodes == 7
        assert spec.sync_cost_s() > 0
        assert spec.max_event_rate_per_node == pytest.approx(1 / spec.event_cost_s)


class TestBucketing:
    def test_event_counts(self):
        times = np.array([0.05, 0.15, 0.15, 0.25])
        nodes = np.array([0, 1, 0, 1])
        assignment = np.array([0, 1])
        counts = bucket_event_counts(times, nodes, assignment, 2, 0.1, 0.3)
        assert counts.shape == (3, 2)
        assert counts[0].tolist() == [1, 0]
        assert counts[1].tolist() == [1, 1]
        assert counts[2].tolist() == [0, 1]

    def test_internal_events_to_lp0(self):
        counts = bucket_event_counts(
            np.array([0.05]), np.array([-1]), np.array([1, 1]), 2, 0.1, 0.2
        )
        assert counts[0, 0] == 1

    def test_events_at_end_ignored(self):
        counts = bucket_event_counts(
            np.array([0.2]), np.array([0]), np.array([0]), 1, 0.1, 0.2
        )
        assert counts.sum() == 0

    def test_remote_counts_only_cross(self):
        times = np.array([0.05, 0.05])
        frm = np.array([0, 0])
        to = np.array([1, 2])
        assignment = np.array([0, 0, 1])
        counts = remote_send_counts(times, frm, to, assignment, 2, 0.1, 0.1)
        assert counts.sum() == 1
        assert counts[0, 0] == 1  # charged to sender LP 0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            bucket_event_counts(np.array([]), np.array([]), np.array([0]), 1, 0.0, 1.0)


class TestPredictWallclock:
    def test_window_max_rule(self, cluster):
        events = np.array([[10, 2], [4, 4]], dtype=float)
        remotes = np.zeros_like(events)
        pred = predict_wallclock(events, remotes, cluster, 2)
        expected_compute = (10 + 4) * cluster.event_cost_s
        assert pred.compute_s == pytest.approx(expected_compute)
        assert pred.sync_s == pytest.approx(2 * cluster.sync_cost_s(2))
        assert pred.total_s == pytest.approx(pred.compute_s + pred.sync_s)

    def test_remote_cost_added(self, cluster):
        events = np.array([[10, 10]], dtype=float)
        remotes = np.array([[5, 0]], dtype=float)
        pred = predict_wallclock(events, remotes, cluster, 2)
        assert pred.compute_s == pytest.approx(
            10 * cluster.event_cost_s + 5 * cluster.remote_event_cost_s
        )

    def test_single_lp_no_sync(self, cluster):
        events = np.array([[10]], dtype=float)
        pred = predict_wallclock(events, np.zeros_like(events), cluster, 1)
        assert pred.sync_s == 0.0

    def test_shape_mismatch(self, cluster):
        with pytest.raises(ValueError):
            predict_wallclock(np.zeros((2, 2)), np.zeros((1, 2)), cluster)

    def test_totals(self, cluster):
        events = np.array([[3, 1], [0, 2]], dtype=float)
        pred = predict_wallclock(events, np.zeros_like(events), cluster, 2)
        assert pred.total_events == 6
        assert pred.events_per_lp.tolist() == [3, 3]

    def test_sync_fraction(self, cluster):
        events = np.zeros((4, 2))
        pred = predict_wallclock(events, events.copy(), cluster, 2)
        assert pred.sync_fraction == pytest.approx(1.0)


class TestSparseTracePath:
    def test_matches_dense(self, cluster):
        rng = np.random.default_rng(0)
        n_events = 500
        times = np.sort(rng.uniform(0, 1.0, n_events))
        nodes = rng.integers(0, 20, n_events)
        assignment = rng.integers(0, 4, 20)
        tx_t = np.sort(rng.uniform(0, 1.0, 200))
        tx_f = rng.integers(0, 20, 200)
        tx_to = rng.integers(0, 20, 200)
        window, end = 0.05, 1.0

        dense_events = bucket_event_counts(times, nodes, assignment, 4, window, end)
        dense_remote = remote_send_counts(tx_t, tx_f, tx_to, assignment, 4, window, end)
        dense = predict_wallclock(dense_events, dense_remote, cluster, 4)
        sparse = predict_from_trace(
            times, nodes, assignment, 4, window, end, cluster, tx_t, tx_f, tx_to
        )
        assert sparse.total_s == pytest.approx(dense.total_s)
        assert sparse.compute_s == pytest.approx(dense.compute_s)
        assert sparse.sync_s == pytest.approx(dense.sync_s)
        assert np.allclose(sparse.events_per_lp, dense.events_per_lp)
        assert np.allclose(sparse.remote_per_lp, dense.remote_per_lp)

    def test_empty_trace(self, cluster):
        pred = predict_from_trace(
            np.array([]), np.array([]), np.array([0]), 2, 0.1, 1.0, cluster
        )
        assert pred.compute_s == 0.0
        assert pred.num_windows == 10
        assert pred.sync_s == pytest.approx(10 * cluster.sync_cost_s(2))

    def test_millions_of_windows_cheap(self, cluster):
        # Tiny MLL -> millions of windows; must not allocate densely.
        times = np.array([0.5])
        nodes = np.array([0])
        pred = predict_from_trace(
            times, nodes, np.array([0]), 4, 1e-6, 10.0, cluster
        )
        assert pred.num_windows == 10_000_000
        assert pred.compute_s == pytest.approx(cluster.event_cost_s)


class TestSequentialEstimate:
    def test_formula(self, cluster):
        assert sequential_time_estimate(1000, cluster) == pytest.approx(
            1000 * cluster.event_cost_s
        )

    def test_better_mapping_never_slower(self, cluster):
        """Under identical windows, a balanced mapping's prediction is
        at most the imbalanced one's."""
        balanced = np.full((10, 4), 25.0)
        skewed = np.zeros((10, 4))
        skewed[:, 0] = 100.0
        zeros = np.zeros_like(balanced)
        t_bal = predict_wallclock(balanced, zeros, cluster, 4).total_s
        t_skew = predict_wallclock(skewed, zeros, cluster, 4).total_s
        assert t_bal < t_skew
