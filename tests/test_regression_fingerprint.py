"""Deterministic regression fingerprint of the single-AS scenario.

Runs the small single-AS ScaLapack scenario twice with the same seed and
asserts the runs are *identical* — same executed-event count, same
forwarding-decision digest, same per-node event vector — then compares
against the committed fingerprint in ``tests/data/``. Any change to the
simulator that alters event outcomes (an RNG reorder, a float tweak in
TCP pacing, a forwarding change) fails here with a precise diff of what
moved.

To re-baseline after an *intentional* behavior change::

    REPRO_UPDATE_FINGERPRINT=1 PYTHONPATH=src python -m pytest \
        tests/test_regression_fingerprint.py

and commit the regenerated JSON alongside the change that explains it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import SCALES
from repro.experiments.runner import build_network, run_workload_simulation
from repro.experiments.workloads import install_workload
from repro.faults import FaultInjector, FaultSchedule
from repro.netsim import NetworkSimulator
from repro.online import Agent
from repro.engine import SimKernel

DATA_PATH = Path(__file__).parent / "data" / "regression_fingerprint.json"

#: Short fixed horizon — long enough for HTTP + ScaLapack traffic to mix,
#: short enough to run twice per test session.
DURATION_S = 1.0
SEED = 0


def run_scenario():
    """One full measured run of the fingerprint scenario."""
    scale = SCALES["small"]
    net, fib = build_network("single-as", scale, seed=SEED)
    kernel, sim, _handles = run_workload_simulation(
        net, fib, "scalapack", scale, DURATION_S, seed=SEED
    )
    return kernel, sim, fib


def fingerprint(kernel, sim, fib) -> dict:
    """Collapse one run into its comparable identity."""
    vec = np.asarray(sim.node_packets, dtype=np.int64)
    return {
        "scenario": "single-as/scalapack",
        "scale": "small",
        "duration_s": DURATION_S,
        "seed": SEED,
        "events_executed": int(kernel.events_executed),
        "fib_digest": fib.digest(),
        "node_events_sha256": hashlib.sha256(
            vec.astype("<i8").tobytes()
        ).hexdigest(),
        "node_events_total": int(vec.sum()),
        "traffic": sim.counters.as_dict(),
    }


@pytest.fixture(scope="module")
def two_runs():
    a = run_scenario()
    b = run_scenario()
    return a, b


class TestSameSeedSameRun:
    def test_fingerprints_identical(self, two_runs):
        (ka, sa, fa), (kb, sb, fb) = two_runs
        assert fingerprint(ka, sa, fa) == fingerprint(kb, sb, fb)

    def test_per_node_event_vectors_identical(self, two_runs):
        (_, sa, _), (_, sb, _) = two_runs
        assert np.array_equal(sa.node_packets, sb.node_packets)

    def test_run_is_nontrivial(self, two_runs):
        # Guard against the fingerprint silently degenerating to an idle run.
        (kernel, sim, _), _ = two_runs
        assert kernel.events_executed > 10_000
        assert sim.counters.packets_delivered > 1_000


class TestNoFaultBitIdentity:
    def test_inert_fault_layer_leaves_fingerprint_unchanged(self, two_runs):
        """The fault layer is off by default: installing a FaultInjector
        with an *empty* schedule must leave the run bit-identical —
        same events, same forwarding digest, same per-node vector."""
        scale = SCALES["small"]
        net, fib = build_network("single-as", scale, seed=SEED)
        kernel = SimKernel(record_trace=True)
        sim = NetworkSimulator(net, fib, kernel, record_transmissions=True)
        agent = Agent(sim)
        injector = FaultInjector(sim, fib, FaultSchedule.from_events([]))
        injector.install(kernel)
        install_workload(sim, agent, net, "scalapack", scale, SEED, DURATION_S)
        kernel.run(until=DURATION_S)
        assert injector.counts.injected == 0
        assert sim.dropped_fault == 0
        (ka, sa, fa), _ = two_runs
        assert fingerprint(kernel, sim, fib) == fingerprint(ka, sa, fa)


class TestStoredFingerprint:
    def test_matches_committed_baseline(self, two_runs):
        (kernel, sim, fib), _ = two_runs
        current = fingerprint(kernel, sim, fib)
        if os.environ.get("REPRO_UPDATE_FINGERPRINT"):
            DATA_PATH.parent.mkdir(parents=True, exist_ok=True)
            DATA_PATH.write_text(json.dumps(current, indent=2) + "\n")
            pytest.skip(f"baseline regenerated at {DATA_PATH}")
        assert DATA_PATH.exists(), (
            f"missing {DATA_PATH}; regenerate with REPRO_UPDATE_FINGERPRINT=1"
        )
        expected = json.loads(DATA_PATH.read_text())
        assert current == expected, (
            "simulation behavior changed; if intentional, re-baseline with "
            "REPRO_UPDATE_FINGERPRINT=1 and commit the new fingerprint"
        )
