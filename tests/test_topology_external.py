"""Tests for loading measured AS-relationship datasets (§7 validation)."""

from __future__ import annotations

import pytest

from repro.routing.bgp import configure_bgp, is_valley_free
from repro.topology import (
    ASTier,
    build_multi_as_network,
    infer_tiers,
    load_as_relationships,
    parse_as_relationships,
)
from repro.topology.sample_data import SAMPLE_AS_RELATIONSHIPS

SIMPLE = """
# provider 100 serves customers 200 and 300; 200 peers 300
100|200|-1
100|300|-1
200|300|0
"""


class TestParsing:
    def test_simple(self):
        topo, mapping = parse_as_relationships(SIMPLE)
        assert topo.num_ases == 3
        a, b, c = mapping[100], mapping[200], mapping[300]
        assert topo.customers[a] == {b, c}
        assert topo.providers[b] == {a}
        assert topo.peers[b] == {c}
        assert topo.tiers[a] is ASTier.CORE
        assert topo.tiers[b] is ASTier.STUB

    def test_whitespace_format(self):
        topo, mapping = parse_as_relationships("10 20 -1\n20 30 0\n")
        assert topo.num_ases == 3
        assert topo.customers[mapping[10]] == {mapping[20]}

    def test_reverse_code(self):
        # rel == 1 means customer->provider.
        topo, mapping = parse_as_relationships("200|100|1\n")
        assert topo.providers[mapping[200]] == {mapping[100]}

    def test_comments_and_blank_lines_skipped(self):
        topo, _ = parse_as_relationships("# hi\n\n1|2|-1\n")
        assert topo.num_ases == 2

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_as_relationships("1|2\n")
        with pytest.raises(ValueError, match="non-integer"):
            parse_as_relationships("a|b|-1\n")
        with pytest.raises(ValueError, match="self"):
            parse_as_relationships("5|5|-1\n")
        with pytest.raises(ValueError, match="unknown relationship"):
            parse_as_relationships("1|2|7\n")

    def test_conflicting_records_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            parse_as_relationships("1|2|-1\n1|2|0\n")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "rels.txt"
        path.write_text(SIMPLE)
        topo, _ = load_as_relationships(path)
        assert topo.num_ases == 3


class TestInferTiers:
    def test_peer_only_island_is_stub(self):
        tiers = infer_tiers(2, {0: set(), 1: set()}, {0: set(), 1: set()})
        assert tiers[0] is ASTier.STUB

    def test_middle_is_regional(self):
        tiers = infer_tiers(
            3,
            {0: set(), 1: {0}, 2: {1}},
            {0: {1}, 1: {2}, 2: set()},
        )
        assert tiers[0] is ASTier.CORE
        assert tiers[1] is ASTier.REGIONAL
        assert tiers[2] is ASTier.STUB


class TestSampleDataset:
    def test_parses(self):
        topo, mapping = parse_as_relationships(SAMPLE_AS_RELATIONSHIPS)
        assert topo.num_ases == 40
        assert len(topo.edges) > 40
        # Realistic mix: few cores, many stubs.
        from collections import Counter

        tiers = Counter(topo.tiers.values())
        assert tiers[ASTier.CORE] <= 4
        assert tiers[ASTier.STUB] >= 10

    def test_builds_network_and_routes(self):
        topo, _ = parse_as_relationships(SAMPLE_AS_RELATIONSHIPS)
        net = build_multi_as_network(topo, routers_per_as=5, num_hosts=20, rng=None)
        assert net.is_connected()
        bgp = configure_bgp(net)
        assert bgp.converged
        # All best routes valley-free under the measured relationships.
        def rel(a, b):
            return net.as_domains[a].relationship_to(b)

        for a, sp in bgp.speakers.items():
            for prefix, route in sp.rib.items():
                if route.is_local:
                    continue
                assert is_valley_free(route.as_path, prefix, rel)

    def test_relationship_symmetry(self):
        topo, _ = parse_as_relationships(SAMPLE_AS_RELATIONSHIPS)
        for a in range(topo.num_ases):
            for p in topo.providers[a]:
                assert a in topo.customers[p]
            for q in topo.peers[a]:
                assert a in topo.peers[q]
