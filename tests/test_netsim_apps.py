"""Tests for the traffic applications: HTTP, CBR, ScaLapack, GridNPB."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator, send_datagram
from repro.netsim.app import (
    CbrStream,
    GridNpbApp,
    HttpTraffic,
    ScaLapackApp,
    helical_chain,
    mixed_bag,
    visualization_pipeline,
)
from repro.online import Agent
from repro.routing import ForwardingPlane


@pytest.fixture()
def sim_env(flat_net, flat_fib):
    k = SimKernel()
    sim = NetworkSimulator(flat_net, flat_fib, k)
    return k, sim


class TestHttp:
    def test_requests_flow(self, sim_env, flat_net):
        k, sim = sim_env
        hosts = flat_net.host_ids()
        http = HttpTraffic(sim, hosts[:10], hosts[10:14], seed=0,
                           mean_gap_s=0.5, stop_at=10.0)
        http.start()
        k.run(until=10.0)
        assert http.stats.requests_started > 10
        assert http.stats.responses_completed > 0
        assert http.stats.bytes_served > 0

    def test_response_times_recorded(self, sim_env, flat_net):
        k, sim = sim_env
        hosts = flat_net.host_ids()
        http = HttpTraffic(sim, hosts[:5], hosts[5:7], seed=1,
                           mean_gap_s=0.5, stop_at=5.0)
        http.start()
        k.run(until=8.0)
        assert http.stats.mean_response_time > 0
        assert all(t > 0 for t in http.stats.response_times)

    def test_stop_at_freezes(self, sim_env, flat_net):
        k, sim = sim_env
        hosts = flat_net.host_ids()
        http = HttpTraffic(sim, hosts[:5], hosts[5:7], seed=1,
                           mean_gap_s=0.2, stop_at=2.0)
        http.start()
        k.run(until=2.0)
        count_at_stop = http.stats.requests_started
        k.run(until=10.0)
        assert http.stats.requests_started == count_at_stop

    def test_empty_sets_rejected(self, sim_env, flat_net):
        k, sim = sim_env
        with pytest.raises(ValueError):
            HttpTraffic(sim, [], flat_net.host_ids()[:2])

    def test_deterministic(self, flat_net, flat_fib):
        counts = []
        for _ in range(2):
            k = SimKernel()
            sim = NetworkSimulator(flat_net, flat_fib, k)
            hosts = flat_net.host_ids()
            http = HttpTraffic(sim, hosts[:5], hosts[5:7], seed=42,
                               mean_gap_s=0.3, stop_at=5.0)
            http.start()
            k.run(until=5.0)
            counts.append(http.stats.requests_started)
        assert counts[0] == counts[1]


class TestCbr:
    def test_packet_pacing(self, sim_env, flat_net):
        k, sim = sim_env
        hosts = flat_net.host_ids()
        stream = CbrStream(sim, hosts[0], hosts[1], rate_bps=1e6,
                           stop_at=1.0, packet_bytes=1250)
        stream.start(at=0.0)
        k.run(until=2.0)
        # 1 Mb/s at 1250 B/pkt = 100 pkt/s for 1 s
        assert stream.packets_sent == pytest.approx(100, abs=2)

    def test_rejects_bad_params(self, sim_env, flat_net):
        k, sim = sim_env
        h = flat_net.host_ids()
        with pytest.raises(ValueError):
            CbrStream(sim, h[0], h[1], rate_bps=0.0, stop_at=1.0)
        with pytest.raises(ValueError):
            CbrStream(sim, h[0], h[1], rate_bps=1e6, stop_at=1.0, packet_bytes=10_000)


class TestScaLapack:
    def test_completes_iterations(self, sim_env, flat_net):
        k, sim = sim_env
        agent = Agent(sim)
        hosts = flat_net.host_ids()[:4]
        app = ScaLapackApp(agent, hosts, iterations=3, compute_s=0.05,
                           panel_bytes=20_000, block_bytes=10_000)
        app.start()
        k.run(until=60.0)
        assert app.stats.finished
        assert app.stats.iterations_completed == 3

    def test_communication_pattern(self, sim_env, flat_net):
        k, sim = sim_env
        agent = Agent(sim)
        hosts = flat_net.host_ids()[:4]
        app = ScaLapackApp(agent, hosts, iterations=2, compute_s=0.01,
                           panel_bytes=10_000, block_bytes=5_000)
        app.start()
        k.run(until=60.0)
        # per iteration: (P-1) broadcasts + P ring transfers
        assert app.stats.transfers == 2 * (3 + 4)

    def test_shrinking_panels(self, sim_env, flat_net):
        k, sim = sim_env
        agent = Agent(sim)
        app = ScaLapackApp(agent, flat_net.host_ids()[:3], iterations=10)
        assert app._scaled(100_000, 0) > app._scaled(100_000, 8)

    def test_needs_two_processes(self, sim_env, flat_net):
        k, sim = sim_env
        agent = Agent(sim)
        with pytest.raises(ValueError):
            ScaLapackApp(agent, flat_net.host_ids()[:1])

    def test_finish_callback(self, sim_env, flat_net):
        k, sim = sim_env
        agent = Agent(sim)
        finished = []
        app = ScaLapackApp(agent, flat_net.host_ids()[:3], iterations=1,
                           compute_s=0.01, on_finish=lambda t: finished.append(t))
        app.start()
        k.run(until=60.0)
        assert finished == [app.stats.finished_at]


class TestWorkflows:
    def test_helical_chain_structure(self):
        wf = helical_chain(rounds=3)
        assert len(wf.tasks) == 9
        assert wf.sources == [0]
        assert wf.sinks == [8]
        wf.validate_acyclic()

    def test_visualization_pipeline_structure(self):
        wf = visualization_pipeline(width=3, depth=3)
        assert len(wf.tasks) == 9
        assert len(wf.sources) == 3
        wf.validate_acyclic()

    def test_mixed_bag_structure(self):
        wf = mixed_bag(seed=1)
        assert len(wf.tasks) == 9
        wf.validate_acyclic()

    def test_mixed_bag_uneven_sizes(self):
        wf = mixed_bag(seed=1)
        sizes = [t.output_bytes for t in wf.tasks]
        assert max(sizes) > 1.5 * min(sizes)

    def test_cycle_detection(self):
        wf = helical_chain(rounds=1)
        wf.add_edge(2, 0)  # close a cycle
        with pytest.raises(ValueError, match="cycle"):
            wf.validate_acyclic()

    @pytest.mark.parametrize("factory", [helical_chain, visualization_pipeline, mixed_bag])
    def test_all_workflows_execute(self, sim_env, flat_net, factory):
        k, sim = sim_env
        agent = Agent(sim)
        hosts = flat_net.host_ids()[:3]
        app = GridNpbApp(agent, hosts, factory())
        app.start()
        k.run(until=120.0)
        assert app.stats.finished
        assert app.stats.iterations_completed == len(app.workflow.tasks)

    def test_tasks_wait_for_all_inputs(self, sim_env, flat_net):
        k, sim = sim_env
        agent = Agent(sim)
        wf = mixed_bag(seed=0)
        app = GridNpbApp(agent, flat_net.host_ids()[:5], wf)
        app.start()
        k.run(until=120.0)
        assert app.stats.finished
        assert app.stats.transfers == sum(len(t.successors) for t in wf.tasks)

    def test_colocated_tasks_ok(self, sim_env, flat_net):
        # All tasks on ONE host: pure loopback, must still complete.
        k, sim = sim_env
        agent = Agent(sim)
        app = GridNpbApp(agent, flat_net.host_ids()[:1], helical_chain())
        app.start()
        k.run(until=120.0)
        assert app.stats.finished
