"""CI smoke for ``python -m repro bench``.

One real ``--quick`` run through the CLI validates the written document
against the ``repro-bench/1`` schema; the comparison/threshold logic is
then exercised with synthetic documents (no second benchmark run, no
timing noise in CI).
"""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.bench import SCHEMA, write_bench

REQUIRED_METRICS = {
    "queue.legacy_ops_s",
    "queue.heap_ops_s",
    "queue.calendar_ops_s",
    "queue.adaptive_ops_s",
    "hotpath.legacy_packets_s",
    "hotpath.packets_s",
    "macro.fig6_events",
    "macro.fig6_events_s",
    "macro.fig6_wall_s",
    "parallel.ref_wall_s",
    "parallel.mp_wall_s",
    "parallel.predicted_wall_s",
    "parallel.mp_events_s",
    "parallel.mail_bytes",
    "parallel.run_events",
    "parallel.obs_wall_s",
    "parallel.obs_mail_delta_bytes",
    "parallel.obs_snapshot_shards",
    "parallel.rebalance.static_wall_s",
    "parallel.rebalance.wall_s",
    "parallel.rebalance.static_mail_bytes",
    "parallel.rebalance.mail_bytes",
    "parallel.rebalance.migrations",
    "parallel.recovery.wall_s",
    "parallel.recovery.mail_delta_bytes",
    "parallel.recovery.checkpoints",
    "parallel.recovery.checkpoint_bytes",
}

#: Metrics whose healthy value is exactly zero: enabling the obs layer
#: must add no mail bytes (snapshots ride the control plane), and
#: checkpoints must ride the control plane too (zero barrier-mail delta).
ZERO_BY_DESIGN = {
    "parallel.obs_mail_delta_bytes",
    "parallel.recovery.mail_delta_bytes",
}


def _doc(results: dict, date: str, quick: bool = True) -> dict:
    """A synthetic benchmark document (schema-shaped, fabricated numbers)."""
    return {
        "schema": SCHEMA,
        "date": date,
        "quick": quick,
        "seed": 0,
        "results": dict(results),
        "speedups": {
            "queue_ops": 1.0,
            "queue_ops_adaptive": 1.0,
            "hop_throughput": 1.0,
        },
        "comparison": None,
    }


_BASE = {m: 100.0 for m in REQUIRED_METRICS}


class TestQuickBenchCli:
    def test_quick_run_writes_valid_document(self, tmp_path, capsys):
        rc = main(["bench", "--quick", "--out-dir", str(tmp_path)])
        assert rc == 0
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["schema"] == SCHEMA
        assert doc["quick"] is True
        assert REQUIRED_METRICS <= set(doc["results"])
        assert all(
            v > 0
            for m, v in doc["results"].items()
            if m not in ZERO_BY_DESIGN
        )
        assert all(doc["results"][m] == 0.0 for m in ZERO_BY_DESIGN)
        assert set(doc["speedups"]) == {
            "queue_ops",
            "queue_ops_adaptive",
            "hop_throughput",
            "mp_measured",
            "mp_predicted",
            "obs_overhead",
            "rebalance_gain",
            "recovery_overhead",
        }
        assert doc["comparison"] is None  # first point in an empty dir
        out = capsys.readouterr().out
        assert "speedup vs pre-PR baseline" in out
        assert "multi-process speedup" in out


class TestComparison:
    def test_second_point_compares_against_first(self, tmp_path):
        write_bench(_doc(_BASE, "2000-01-01"), tmp_path)
        doc2 = _doc(_BASE, "2000-01-02")
        write_bench(doc2, tmp_path)
        cmp = doc2["comparison"]
        assert cmp is not None
        assert cmp["previous"] == "BENCH_2000-01-01.json"
        assert cmp["ok"] and cmp["regressions"] == []

    def test_rate_regression_detected(self, tmp_path):
        write_bench(_doc(_BASE, "2000-01-01"), tmp_path)
        degraded = dict(_BASE)
        degraded["queue.adaptive_ops_s"] = 50.0  # 0.5x < 0.8 threshold
        doc2 = _doc(degraded, "2000-01-02")
        write_bench(doc2, tmp_path, threshold=0.8)
        cmp = doc2["comparison"]
        assert not cmp["ok"]
        assert [r["metric"] for r in cmp["regressions"]] == ["queue.adaptive_ops_s"]
        assert cmp["regressions"][0]["ratio"] == 0.5

    def test_wall_clock_is_lower_is_better(self, tmp_path):
        write_bench(_doc(_BASE, "2000-01-01"), tmp_path)
        slower = dict(_BASE)
        slower["macro.fig6_wall_s"] = 200.0  # doubled wall time = 0.5x
        doc2 = _doc(slower, "2000-01-02")
        write_bench(doc2, tmp_path, threshold=0.8)
        assert not doc2["comparison"]["ok"]
        assert doc2["comparison"]["regressions"][0]["metric"] == "macro.fig6_wall_s"

    def test_event_counts_are_not_performance(self, tmp_path):
        write_bench(_doc(_BASE, "2000-01-01"), tmp_path)
        fewer = dict(_BASE)
        fewer["macro.fig6_events"] = 1.0  # determinism signal, not perf
        doc2 = _doc(fewer, "2000-01-02")
        write_bench(doc2, tmp_path)
        assert doc2["comparison"]["ok"]

    def test_quick_and_full_runs_never_compared(self, tmp_path):
        write_bench(_doc(_BASE, "2000-01-01", quick=False), tmp_path)
        doc2 = _doc(_BASE, "2000-01-02", quick=True)
        write_bench(doc2, tmp_path)
        assert doc2["comparison"] is None  # workloads differ


class TestCliExitCode:
    def test_bench_cli_exits_nonzero_on_regression(self, tmp_path, monkeypatch, capsys):
        """The regression gate must be an *exit code*, not just report text,
        so CI pipelines fail without parsing output."""
        import repro.bench as bench_mod

        write_bench(_doc(_BASE, "2000-01-01"), tmp_path)
        degraded = dict(_BASE)
        degraded["hotpath.packets_s"] = 10.0  # 0.1x, far below threshold
        monkeypatch.setattr(
            bench_mod,
            "run_bench",
            lambda quick=False, seed=0, suite="all": _doc(degraded, "2000-01-02"),
        )
        rc = main(["bench", "--quick", "--out-dir", str(tmp_path)])
        assert rc == 1
        capsys.readouterr()  # swallow the report

    def test_bench_cli_exits_zero_without_regression(self, tmp_path, monkeypatch, capsys):
        import repro.bench as bench_mod

        write_bench(_doc(_BASE, "2000-01-01"), tmp_path)
        monkeypatch.setattr(
            bench_mod,
            "run_bench",
            lambda quick=False, seed=0, suite="all": _doc(_BASE, "2000-01-02"),
        )
        rc = main(["bench", "--quick", "--out-dir", str(tmp_path)])
        assert rc == 0
        capsys.readouterr()
