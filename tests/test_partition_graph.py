"""Unit tests for the CSR weighted graph substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition import WeightedGraph


def simple_triangle():
    return WeightedGraph(
        3, [0, 1, 2], [1, 2, 0], edge_weight=[1.0, 2.0, 3.0], edge_latency=[1e-3, 2e-3, 3e-3]
    )


class TestConstruction:
    def test_basic_counts(self):
        g = simple_triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.total_vertex_weight == 3.0

    def test_empty_graph(self):
        g = WeightedGraph(0, [], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.is_connected()

    def test_isolated_vertices(self):
        g = WeightedGraph(4, [0], [1])
        assert g.num_edges == 1
        assert g.degree(2) == 0
        assert not g.is_connected()

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            WeightedGraph(2, [0], [0])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            WeightedGraph(2, [0], [2])

    def test_negative_edge_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WeightedGraph(2, [0], [1], edge_weight=[-1.0])

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedGraph(2, [0], [1], edge_latency=[0.0])

    def test_negative_vertex_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(2, [0], [1], vertex_weight=[1.0, -2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(3, [0, 1], [1])
        with pytest.raises(ValueError):
            WeightedGraph(3, [0], [1], edge_weight=[1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedGraph(3, [0], [1], vertex_weight=[1.0])

    def test_parallel_edges_merged(self):
        g = WeightedGraph(
            2,
            [0, 1, 0],
            [1, 0, 1],
            edge_weight=[1.0, 2.0, 4.0],
            edge_latency=[3e-3, 1e-3, 2e-3],
        )
        assert g.num_edges == 1
        u, v, w, lat = g.edge_list()
        assert w[0] == pytest.approx(7.0)  # weights summed
        assert lat[0] == pytest.approx(1e-3)  # min latency kept

    def test_default_weights(self):
        g = WeightedGraph(3, [0, 1], [1, 2])
        assert np.all(g.vwgt == 1.0)
        u, v, w, lat = g.edge_list()
        assert np.all(w == 1.0)
        assert np.all(np.isinf(lat))


class TestAccessors:
    def test_neighbors_symmetric(self):
        g = simple_triangle()
        for v in g:
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_degree(self):
        g = simple_triangle()
        assert all(g.degree(v) == 2 for v in range(3))

    def test_edge_list_each_edge_once(self):
        g = simple_triangle()
        u, v, w, lat = g.edge_list()
        assert len(u) == 3
        assert np.all(u < v)

    def test_neighbor_weights_match_edges(self):
        g = simple_triangle()
        # vertex 0 connects to 1 (w=1) and 2 (w=3)
        nbrs = list(g.neighbors(0))
        wts = list(g.neighbor_weights(0))
        got = dict(zip(nbrs, wts))
        assert got[1] == pytest.approx(1.0)
        assert got[2] == pytest.approx(3.0)

    def test_neighbor_latencies(self):
        g = simple_triangle()
        lats = dict(zip(g.neighbors(0), g.neighbor_latencies(0)))
        assert lats[1] == pytest.approx(1e-3)
        assert lats[2] == pytest.approx(3e-3)


class TestPartitionQuantities:
    def test_edge_cut_all_same_part(self):
        g = simple_triangle()
        assert g.edge_cut([0, 0, 0]) == 0.0

    def test_edge_cut_value(self):
        g = simple_triangle()
        # part {0,1} vs {2}: cuts edges (1,2) w=2 and (0,2) w=3
        assert g.edge_cut([0, 0, 1]) == pytest.approx(5.0)

    def test_min_cut_latency(self):
        g = simple_triangle()
        assert g.min_cut_latency([0, 0, 1]) == pytest.approx(2e-3)
        assert g.min_cut_latency([0, 0, 0]) == np.inf

    def test_partition_weights(self):
        g = WeightedGraph(3, [0], [1], vertex_weight=[1.0, 2.0, 4.0])
        w = g.partition_weights([0, 1, 1], 2)
        assert w.tolist() == [1.0, 6.0]

    def test_balance_perfect(self):
        g = WeightedGraph(4, [0, 1, 2], [1, 2, 3])
        assert g.balance([0, 0, 1, 1], 2) == pytest.approx(1.0)

    def test_balance_skewed(self):
        g = WeightedGraph(4, [0, 1, 2], [1, 2, 3])
        assert g.balance([0, 0, 0, 1], 2) == pytest.approx(1.5)

    def test_partition_length_mismatch(self):
        g = simple_triangle()
        with pytest.raises(ValueError):
            g.edge_cut([0, 1])

    def test_cut_edges_content(self):
        g = simple_triangle()
        u, v, w, lat = g.cut_edges([0, 1, 0])
        # edges (0,1) and (1,2) are cut
        pairs = set(zip(u.tolist(), v.tolist()))
        assert pairs == {(0, 1), (1, 2)}


class TestStructureOps:
    def test_connected_components_single(self):
        g = simple_triangle()
        assert g.connected_components().max() == 0

    def test_connected_components_multi(self):
        g = WeightedGraph(5, [0, 2], [1, 3])
        labels = g.connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_contract_merges_weights(self):
        g = WeightedGraph(
            4,
            [0, 1, 2, 0],
            [1, 2, 3, 3],
            edge_weight=[1.0, 2.0, 3.0, 4.0],
            edge_latency=[1e-3, 2e-3, 3e-3, 4e-3],
            vertex_weight=[1.0, 2.0, 3.0, 4.0],
        )
        c = g.contract([0, 0, 1, 1])
        assert c.coarse.num_vertices == 2
        assert c.coarse.vwgt.tolist() == [3.0, 7.0]
        # cross edges (1,2) w=2 and (0,3) w=4 merge into one: w=6, lat=min
        u, v, w, lat = c.coarse.edge_list()
        assert len(u) == 1
        assert w[0] == pytest.approx(6.0)
        assert lat[0] == pytest.approx(2e-3)

    def test_contract_rejects_sparse_labels(self):
        g = simple_triangle()
        with pytest.raises(ValueError, match="dense"):
            g.contract([0, 2, 2])

    def test_contract_project_roundtrip(self):
        g = simple_triangle()
        c = g.contract([0, 0, 1])
        part = c.project(np.array([5, 9]))
        assert part.tolist() == [5, 5, 9]

    def test_collapse_below_latency(self):
        g = simple_triangle()
        c = g.collapse_below_latency(1.5e-3)  # collapses the 1 ms edge
        assert c.coarse.num_vertices == 2
        # remaining latencies all >= threshold
        _, _, _, lat = c.coarse.edge_list()
        assert np.all(lat >= 1.5e-3)

    def test_collapse_threshold_below_min_is_noop(self):
        g = simple_triangle()
        c = g.collapse_below_latency(0.5e-3)
        assert c.coarse.num_vertices == 3

    def test_collapse_everything(self):
        g = simple_triangle()
        c = g.collapse_below_latency(1.0)
        assert c.coarse.num_vertices == 1
        assert c.coarse.total_vertex_weight == pytest.approx(3.0)

    def test_collapse_guarantees_mll(self, two_cluster_graph):
        c = two_cluster_graph.collapse_below_latency(1e-3)
        assert c.coarse.num_vertices == 2
        part = c.project(np.array([0, 1]))
        assert two_cluster_graph.min_cut_latency(part) == pytest.approx(5e-3)


class TestConversions:
    def test_networkx_roundtrip(self):
        g = simple_triangle()
        nx_g = g.to_networkx()
        g2 = WeightedGraph.from_networkx(nx_g)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        u1, v1, w1, l1 = g.edge_list()
        u2, v2, w2, l2 = g2.edge_list()
        assert np.allclose(w1, w2)
        assert np.allclose(l1, l2)

    def test_from_networkx_requires_dense_ids(self):
        import networkx as nx

        h = nx.Graph()
        h.add_edge("a", "b")
        with pytest.raises(ValueError):
            WeightedGraph.from_networkx(h)

    def test_with_weights_replaces_vertex(self):
        g = simple_triangle()
        g2 = g.with_weights(vertex_weight=[5.0, 5.0, 5.0])
        assert g2.total_vertex_weight == pytest.approx(15.0)
        assert g.total_vertex_weight == pytest.approx(3.0)  # original intact

    def test_with_weights_replaces_edges(self):
        g = simple_triangle()
        u, v, w, lat = g.edge_list()
        g2 = g.with_weights(edge_weight=w * 10)
        _, _, w2, lat2 = g2.edge_list()
        assert np.allclose(w2, w * 10)
        assert np.allclose(lat2, lat)  # latencies preserved
