"""Tests for baseline partitioners (random, round-robin, BFS, greedy
k-cluster, spectral)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition import (
    WeightedGraph,
    bfs_block_partition,
    greedy_k_cluster,
    partition_kway,
    random_partition,
    round_robin_partition,
    spectral_bisect,
    spectral_partition_kway,
)


class TestRandomAndRoundRobin:
    def test_random_assignment_range(self, grid_graph):
        res = random_partition(grid_graph, 4, seed=0)
        assert res.assignment.min() >= 0
        assert res.assignment.max() < 4

    def test_random_deterministic_per_seed(self, grid_graph):
        a = random_partition(grid_graph, 4, seed=5)
        b = random_partition(grid_graph, 4, seed=5)
        assert np.array_equal(a.assignment, b.assignment)

    def test_round_robin_counts(self, grid_graph):
        res = round_robin_partition(grid_graph, 4)
        _, counts = np.unique(res.assignment, return_counts=True)
        assert counts.max() - counts.min() <= 1

    def test_round_robin_poor_cut(self, grid_graph):
        rr = round_robin_partition(grid_graph, 4)
        ml = partition_kway(grid_graph, 4, seed=0)
        assert ml.edge_cut < rr.edge_cut


class TestBfsBlocks:
    def test_balance(self, grid_graph):
        res = bfs_block_partition(grid_graph, 4, seed=0)
        assert res.balance <= 1.3

    def test_all_parts_used(self, grid_graph):
        res = bfs_block_partition(grid_graph, 4, seed=0)
        assert set(res.assignment.tolist()) == {0, 1, 2, 3}

    def test_locality_beats_random(self, grid_graph):
        bfs = bfs_block_partition(grid_graph, 4, seed=0)
        rnd = random_partition(grid_graph, 4, seed=0)
        assert bfs.edge_cut < rnd.edge_cut

    def test_disconnected_graph(self):
        g = WeightedGraph(8, [0, 1, 4, 5], [1, 2, 5, 6])
        res = bfs_block_partition(g, 2, seed=0)
        assert set(res.assignment.tolist()) <= {0, 1}


class TestGreedyKCluster:
    def test_covers_all_vertices(self, grid_graph):
        res = greedy_k_cluster(grid_graph, 4, seed=0)
        assert res.assignment.min() >= 0

    def test_all_clusters_nonempty(self, grid_graph):
        res = greedy_k_cluster(grid_graph, 4, seed=0)
        assert len(set(res.assignment.tolist())) == 4

    def test_handles_more_parts_than_vertices(self):
        g = WeightedGraph(3, [0, 1], [1, 2])
        res = greedy_k_cluster(g, 5, seed=0)
        assert res.assignment.shape == (3,)

    def test_empty_graph(self):
        res = greedy_k_cluster(WeightedGraph(0, [], []), 3)
        assert res.assignment.size == 0

    def test_orphans_swept_in_disconnected_graph(self):
        g = WeightedGraph(10, [0, 1], [1, 2])
        res = greedy_k_cluster(g, 2, seed=1)
        assert np.all(res.assignment >= 0)


class TestSpectral:
    def test_bisect_balanced(self, grid_graph):
        part = spectral_bisect(grid_graph)
        w = grid_graph.partition_weights(part, 2)
        assert abs(w[0] - w[1]) <= 2.0

    def test_bisect_grid_cut_reasonable(self, grid_graph):
        part = spectral_bisect(grid_graph)
        assert grid_graph.edge_cut(part) <= 20

    def test_two_cluster_finds_bridge(self, two_cluster_graph):
        part = spectral_bisect(two_cluster_graph)
        assert two_cluster_graph.edge_cut(part) == pytest.approx(1.0)

    def test_tiny_graphs(self):
        assert spectral_bisect(WeightedGraph(1, [], [])).tolist() == [0]
        part = spectral_bisect(WeightedGraph(2, [0], [1]))
        assert sorted(part.tolist()) == [0, 1]

    def test_kway_all_parts(self, grid_graph):
        res = spectral_partition_kway(grid_graph, 4)
        assert set(res.assignment.tolist()) == {0, 1, 2, 3}

    def test_kway_invalid(self, grid_graph):
        with pytest.raises(ValueError):
            spectral_partition_kway(grid_graph, 0)
