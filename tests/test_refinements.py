"""Tests for k-way boundary refinement and RED queue management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator, RedParams, start_transfer
from repro.netsim.link import LinkRuntime
from repro.partition import WeightedGraph, kway_refine, partition_kway, round_robin_partition
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind
from repro.topology.models import Link


class TestKwayRefine:
    def test_improves_bad_partition(self, grid_graph):
        from repro.partition import random_partition

        rnd = random_partition(grid_graph, 4, seed=1)
        refined = kway_refine(grid_graph, rnd.assignment, 4, imbalance_tolerance=1.3)
        assert grid_graph.edge_cut(refined) < rnd.edge_cut

    def test_respects_balance_cap(self, grid_graph):
        rr = round_robin_partition(grid_graph, 4)
        refined = kway_refine(grid_graph, rr.assignment, 4, imbalance_tolerance=1.10)
        weights = grid_graph.partition_weights(refined, 4)
        cap = 1.10 * grid_graph.total_vertex_weight / 4
        assert weights.max() <= cap + 1e-9

    def test_never_worsens_good_partition(self, two_cluster_graph):
        part = np.array([0] * 10 + [1] * 10)
        refined = kway_refine(two_cluster_graph, part, 2)
        assert two_cluster_graph.edge_cut(refined) <= two_cluster_graph.edge_cut(part)

    def test_no_parts_emptied(self, grid_graph):
        rr = round_robin_partition(grid_graph, 8)
        refined = kway_refine(grid_graph, rr.assignment, 8, imbalance_tolerance=1.5)
        assert len(np.unique(refined)) == 8

    def test_trivial_inputs(self):
        g = WeightedGraph(0, [], [])
        assert kway_refine(g, np.zeros(0, dtype=np.int64), 4).size == 0
        g1 = WeightedGraph(3, [0, 1], [1, 2])
        part = np.zeros(3, dtype=np.int64)
        assert np.array_equal(kway_refine(g1, part, 1), part)

    def test_partition_kway_flag(self, grid_graph):
        with_ref = partition_kway(grid_graph, 4, seed=0, kway_refinement=True)
        without = partition_kway(grid_graph, 4, seed=0, kway_refinement=False)
        assert with_ref.edge_cut <= without.edge_cut


class TestRedParams:
    def test_valid_defaults(self):
        RedParams()

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            RedParams(min_th_fraction=0.5, max_th_fraction=0.3)
        with pytest.raises(ValueError):
            RedParams(max_p=0.0)
        with pytest.raises(ValueError):
            RedParams(max_th_fraction=1.5)


class TestRedQueue:
    def _link(self, discipline):
        return LinkRuntime(
            Link(0, 1, 2, 1e6, 1e-3, 20_000), discipline=discipline
        )

    def _pkt(self):
        from repro.netsim import Packet, Protocol

        return Packet(src=1, dst=2, size_bytes=1000, protocol=Protocol.UDP, flow_id=1)

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            self._link("codel")

    def test_no_early_drop_below_min_threshold(self):
        lr = self._link("red")
        # queue 20k, min_th = 1k: first packet sees zero backlog.
        res = lr.transmit(1, self._pkt(), 0.0)
        assert res.accepted

    def test_red_drops_before_buffer_full(self):
        red = self._link("red")
        tail = self._link("droptail")
        pkt = self._pkt()
        for _ in range(18):  # backlog stays below queue_bytes
            red.transmit(1, self._pkt(), 0.0)
            tail.transmit(1, self._pkt(), 0.0)
        assert tail.total_drops == 0
        assert red.total_drops > 0  # early random drops occurred

    def test_red_deterministic_per_link(self):
        a = self._link("red")
        b = self._link("red")
        drops_a = [a.transmit(1, self._pkt(), 0.0).accepted for _ in range(30)]
        drops_b = [b.transmit(1, self._pkt(), 0.0).accepted for _ in range(30)]
        assert drops_a == drops_b

    def test_tcp_completes_over_red(self):
        net = Network()
        r0 = net.add_node(NodeKind.ROUTER)
        r1 = net.add_node(NodeKind.ROUTER)
        h0 = net.add_node(NodeKind.HOST)
        h1 = net.add_node(NodeKind.HOST)
        net.add_link(r0, r1, 5e6, 5e-3, 16_000)
        net.add_link(h0, r0, 1e9, 20e-6)
        net.add_link(h1, r1, 1e9, 20e-6)
        k = SimKernel()
        sim = NetworkSimulator(net, ForwardingPlane(net), k, queue_discipline="red")
        done = []
        sender = start_transfer(sim, h0, h1, 300_000, lambda t: done.append(t))
        k.run(until=120.0)
        assert done, "transfer must survive RED"
        assert sim.counters.packets_dropped_queue > 0  # RED was active
