"""Tests for RFC-1122-style delayed acknowledgements."""

from __future__ import annotations

import pytest

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator, start_transfer
from repro.routing import ForwardingPlane
from repro.topology import Network, NodeKind


def mk_env():
    net = Network()
    r0 = net.add_node(NodeKind.ROUTER)
    r1 = net.add_node(NodeKind.ROUTER)
    h0 = net.add_node(NodeKind.HOST)
    h1 = net.add_node(NodeKind.HOST)
    net.add_link(r0, r1, 1e9, 2e-3, queue_bytes=10**7)
    net.add_link(h0, r0, 1e9, 20e-6)
    net.add_link(h1, r1, 1e9, 20e-6)
    k = SimKernel()
    sim = NetworkSimulator(net, ForwardingPlane(net), k)
    return k, sim, h0, h1


def run_one(delayed_ack: bool, nbytes: int = 300_000):
    k, sim, h0, h1 = mk_env()
    done = []
    sender = start_transfer(
        sim, h0, h1, nbytes, lambda t: done.append(t), delayed_ack=delayed_ack
    )
    k.run(until=60.0)
    receiver = None  # endpoints deregistered on completion; use stats
    return sender, done, k.events_executed


class TestDelayedAck:
    def test_transfer_completes(self):
        sender, done, _ = run_one(True)
        assert done
        assert sender.stats.retransmits == 0

    def test_fewer_events_than_per_packet_acks(self):
        s_imm, done_imm, ev_imm = run_one(False)
        s_del, done_del, ev_del = run_one(True)
        assert done_imm and done_del
        # Delayed ACKs roughly halve the ACK stream: clearly fewer events.
        assert ev_del < 0.9 * ev_imm

    def test_slower_ramp_than_immediate(self):
        _, done_imm, _ = run_one(False)
        _, done_del, _ = run_one(True)
        # Fewer ACKs -> slower cwnd growth -> the delayed-ACK transfer is
        # never faster.
        assert done_del[0] >= done_imm[0] * 0.999

    def test_final_segment_acked_immediately(self):
        # A 1-segment transfer must not wait for a second segment.
        k, sim, h0, h1 = mk_env()
        done = []
        start_transfer(sim, h0, h1, 500, lambda t: done.append(t), delayed_ack=True)
        k.run(until=5.0)
        assert done

    def test_odd_segment_count_completes(self):
        # 3 segments: second is delayed, third (final) forces the ACK.
        k, sim, h0, h1 = mk_env()
        done = []
        start_transfer(sim, h0, h1, 3 * 1460, lambda t: done.append(t), delayed_ack=True)
        k.run(until=5.0)
        assert done
