"""Cross-seed robustness of the paper's core orderings.

The figure benchmarks assert orderings at seed 0; this test repeats the
single-AS experiment at micro scale over two more seeds and checks that
the load-bearing orderings (hierarchical MLL dominance, HPROF time and
efficiency advantages) are not seed artifacts.
"""

from __future__ import annotations

import pytest

from repro.core import Approach
from repro.experiments import ExperimentScale, run_experiment

MICRO = ExperimentScale(
    name="robustness",
    flat_routers=120,
    flat_hosts=60,
    num_ases=8,
    routers_per_as=12,
    multi_hosts=48,
    http_clients=36,
    http_servers=10,
    http_mean_gap_s=0.4,
    num_engines=8,
    app_processes=4,
    scalapack_iterations=3,
    duration_s=6.0,
    profile_duration_s=2.5,
    event_cost_s=75e-6,
    remote_event_cost_s=190e-6,
)

APPROACHES = [Approach.HPROF, Approach.HTOP, Approach.TOP2]


@pytest.fixture(scope="module", params=[11, 23])
def result(request):
    return run_experiment(
        "single-as", "scalapack", approaches=list(APPROACHES),
        scale=MICRO, seed=request.param,
    )


class TestOrderingsAcrossSeeds:
    def test_hierarchical_mll_dominates(self, result):
        mll = {r.approach: r.achieved_mll_ms for r in result.rows}
        assert mll[Approach.HPROF] >= mll[Approach.TOP2]
        assert mll[Approach.HTOP] >= mll[Approach.TOP2]

    def test_hprof_not_slower_than_top2(self, result):
        t = {r.approach: r.sim_time_s for r in result.rows}
        assert t[Approach.HPROF] <= t[Approach.TOP2] * 1.02

    def test_hprof_balance_no_worse_than_htop(self, result):
        # At micro scale with a 2.5 s profile the estimates are noisy and
        # HPROF may trade a sliver of balance for synchronization (its E
        # metric optimizes the product); allow a 10 % band — the strict
        # ordering is asserted at benchmark scale (Figs. 8/12).
        imb = {r.approach: r.measured_imbalance for r in result.rows}
        assert imb[Approach.HPROF] <= imb[Approach.HTOP] * 1.10

    def test_hprof_pe_at_least_top2(self, result):
        pe = {r.approach: r.parallel_eff for r in result.rows}
        assert pe[Approach.HPROF] >= pe[Approach.TOP2]

    def test_workload_healthy(self, result):
        assert result.http_responses > 0
        assert result.total_events > 10_000
