"""Failure modes and edge cases of the multi-process backend.

The differential suite proves the happy path is byte-identical; this
file pins the guard rails: out-of-order mail is rejected, the lookahead
epsilon behaves exactly at window boundaries, a crashed or raising
worker surfaces as a typed error instead of a hung barrier, empty
shards no-op cleanly, and cross-shard mail refuses unregistered
handlers on both the sending and receiving side.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.engine.conservative import LookaheadViolation
from repro.engine.parallel import (
    LocalShardGroup,
    MailOrderError,
    ParallelBackendError,
    ParallelConservativeEngine,
    ParallelWorkerError,
    ScenarioSpec,
    ShardEngine,
    ShardScenario,
    UnregisteredHandlerError,
    WorkerCrashError,
    _deliver_encoded_mail,
    _encode_outbound,
    shard_lps,
    validate_mail_batch,
)
from repro.experiments.shard import chain_spec, delivery_log_bytes, merge_collected, run_reference
from repro.serialization import encode_mail_batch

ASSIGNMENT = [0, 0, 1, 1]
LOOKAHEAD = 1.0


def _sink(*args):
    """A no-op handler target for hand-built events."""


# ----------------------------------------------------------------------
# Builders resolved by name inside forked workers
# ----------------------------------------------------------------------
def crash_builder(engine, params):
    """Schedules a handler that kills the worker process outright."""

    def die():
        os._exit(3)

    engine.schedule_at(0.25, die, node=0)
    return ShardScenario(handlers={}, collect=None)


def hang_builder(engine, params):
    """Schedules a handler that stops responding but stays alive."""

    def stall():
        while True:
            time.sleep(3600.0)

    engine.schedule_at(0.25, stall, node=0)
    return ShardScenario(handlers={}, collect=None)


def raise_builder(engine, params):
    """Schedules a handler that raises inside the worker."""

    def boom():
        raise RuntimeError("boom from the shard")

    engine.schedule_at(0.25, boom, node=0)
    return ShardScenario(handlers={}, collect=None)


class TestMailValidation:
    def test_in_order_mail_passes(self):
        items = [(0, 0, 2.0, (1, 0, 1), "h", ()), (0, 0, 2.5, (1, 0, 2), "h", ())]
        assert validate_mail_batch(items, 2.0, LOOKAHEAD) == 0

    def test_behind_barrier_raises_in_strict_mode(self):
        items = [(0, 0, 1.5, (1, 0, 1), "h", ())]
        with pytest.raises(MailOrderError):
            validate_mail_batch(items, 2.0, LOOKAHEAD, strict=True)

    def test_non_strict_counts_instead_of_raising(self):
        items = [
            (0, 0, 1.5, (1, 0, 1), "h", ()),
            (0, 0, 2.0, (1, 0, 2), "h", ()),
            (0, 0, 0.5, (1, 0, 3), "h", ()),
        ]
        assert validate_mail_batch(items, 2.0, LOOKAHEAD, strict=False) == 2

    def test_epsilon_tolerance_at_the_barrier(self):
        # Float drift inside the shared relative epsilon is not a
        # causality violation; anything beyond it is.
        eps = 1e-9 * LOOKAHEAD
        ok = [(0, 0, 2.0 - 0.5 * eps, (1, 0, 1), "h", ())]
        assert validate_mail_batch(ok, 2.0, LOOKAHEAD) == 0
        bad = [(0, 0, 2.0 - 3.0 * eps, (1, 0, 1), "h", ())]
        with pytest.raises(MailOrderError):
            validate_mail_batch(bad, 2.0, LOOKAHEAD)

    def test_receiver_side_gate_rejects_stale_mail(self):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[0])
        engine.seal_setup()
        engine.run_window(0, 1.0)
        stale = encode_mail_batch([(0, 0, 0.2, (1, 1, 1), "sink", ())])
        with pytest.raises(MailOrderError):
            _deliver_encoded_mail(engine, [stale], 1.0, {"sink": _sink})


class TestLookaheadFence:
    def _engine_with_emitter(self, send_time: float, strict: bool = True):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[0], strict=strict)

        def emit():
            engine.schedule_at(send_time, _sink, node=2)  # node 2 -> LP 1

        engine.schedule_at(0.5, emit, node=0)
        engine.seal_setup()
        return engine

    def test_send_exactly_at_window_end_is_legal(self):
        engine = self._engine_with_emitter(1.0)
        engine.run_window(0, 1.0)
        out = engine.drain_outbound()
        assert [(lp, ev.time) for lp, ev in out] == [(1, 1.0)]
        assert engine.lookahead_violations == 0

    def test_send_inside_the_window_raises_in_strict_mode(self):
        engine = self._engine_with_emitter(1.0 - 1e-3)
        with pytest.raises(LookaheadViolation):
            engine.run_window(0, 1.0)

    def test_send_inside_the_window_counts_when_tolerant(self):
        engine = self._engine_with_emitter(1.0 - 1e-3, strict=False)
        engine.run_window(0, 1.0)
        assert engine.lookahead_violations == 1

    def test_send_within_epsilon_of_the_boundary_is_tolerated(self):
        engine = self._engine_with_emitter(1.0 - 0.5e-9 * LOOKAHEAD)
        engine.run_window(0, 1.0)
        assert engine.lookahead_violations == 0


class TestShardEngineProtocol:
    def test_setup_discards_unowned_but_advances_the_key_counter(self):
        # Replayed construction must advance the tiebreak counter even
        # for events this shard discards — key alignment across workers.
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[1])
        engine.schedule_at(0.5, _sink, node=0)  # unowned: discarded
        engine.schedule_at(0.5, _sink, node=2)  # owned: kept
        assert engine.pending == 1
        assert engine._kcount == 2

    def test_barrier_time_cross_shard_scheduling_is_rejected(self):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[1])
        engine.seal_setup()
        with pytest.raises(ParallelBackendError):
            engine.schedule_at(0.5, _sink, node=0)

    def test_control_replay_must_not_touch_real_nodes(self):
        # A control handler that schedules onto an owned node would run
        # on the owner's shard too — double execution. The replica
        # rejects it loudly instead of corrupting the run.
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[1])

        def rogue_control():
            engine.schedule_at(0.9, _sink, node=2)

        engine.schedule_at(0.5, rogue_control, node=-1)
        engine.seal_setup()
        with pytest.raises(ParallelBackendError):
            engine.run_window(0, 1.0)

    def test_empty_shard_runs_windows_as_a_noop(self):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[])
        engine.seal_setup()
        assert engine.run_window(0, 1.0) == 0
        assert engine.pending == 0
        assert not engine.has_control

    def test_misrouted_mail_is_rejected(self):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[0])
        from repro.engine.events import Event

        with pytest.raises(ParallelBackendError):
            engine.push_remote(1, Event(1.0, (1, 0, 1), _sink, (), 2))

    def test_unregistered_handler_rejected_when_encoding(self):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[0])

        def emit():
            engine.schedule_at(1.0, _sink, node=2)

        engine.schedule_at(0.5, emit, node=0)
        engine.seal_setup()
        engine.run_window(0, 1.0)
        with pytest.raises(UnregisteredHandlerError):
            _encode_outbound(engine, [0, 0, 1, 1][:2] + [1, 1], {}, 2)

    def test_unregistered_handler_rejected_when_decoding(self):
        engine = ShardEngine(ASSIGNMENT, 2, LOOKAHEAD, owned_lps=[0])
        engine.seal_setup()
        engine.run_window(0, 1.0)
        mail = encode_mail_batch([(0, 0, 1.0, (1, 1, 1), "ghost", ())])
        with pytest.raises(UnregisteredHandlerError):
            _deliver_encoded_mail(engine, [mail], 1.0, {})


class TestShardSplit:
    def test_contiguous_partition_covers_every_lp(self):
        shards = shard_lps(10, 3)
        assert [lp for part in shards for lp in part] == list(range(10))
        assert max(len(p) for p in shards) - min(len(p) for p in shards) <= 1

    def test_more_procs_than_lps_yields_empty_shards(self):
        shards = shard_lps(2, 4)
        assert sorted(lp for part in shards for lp in part) == [0, 1]
        assert sum(1 for part in shards if not part) == 2

    def test_invalid_proc_count_is_rejected(self):
        with pytest.raises(ValueError):
            shard_lps(4, 0)


class TestWorkerFailureModes:
    """A dead or raising worker must produce a typed error promptly —
    never a barrier that hangs until the CI timeout."""

    def test_worker_hard_crash_raises_typed_error(self):
        engine = ParallelConservativeEngine(
            ASSIGNMENT, 2, LOOKAHEAD, procs=2, window_timeout_s=30.0
        )
        spec = ScenarioSpec(builder=f"{__name__}:crash_builder")
        with pytest.raises(WorkerCrashError):
            engine.run_scenario(spec, until=1.0)

    def test_dead_worker_detected_early_with_exit_code(self):
        # A dead process surfaces on the next liveness tick — with its
        # exit code — not after the full window timeout.
        engine = ParallelConservativeEngine(
            ASSIGNMENT, 2, LOOKAHEAD, procs=2, window_timeout_s=30.0
        )
        spec = ScenarioSpec(builder=f"{__name__}:crash_builder")
        watch = time.monotonic()
        with pytest.raises(WorkerCrashError) as err:
            engine.run_scenario(spec, until=1.0)
        assert time.monotonic() - watch < 25.0
        assert err.value.exitcode == 3
        assert err.value.hung is False
        assert "exitcode 3" in str(err.value)

    def test_hung_worker_detected_as_hang_not_crash(self):
        engine = ParallelConservativeEngine(
            ASSIGNMENT, 2, LOOKAHEAD, procs=2, window_timeout_s=1.5
        )
        spec = ScenarioSpec(builder=f"{__name__}:hang_builder")
        with pytest.raises(WorkerCrashError) as err:
            engine.run_scenario(spec, until=1.0)
        assert err.value.hung is True
        assert "hang suspected" in str(err.value)

    def test_failed_run_leaves_no_live_workers(self):
        # The teardown path must close both pipe ends and escalate
        # join -> terminate -> kill even when the run aborts.
        engine = ParallelConservativeEngine(
            ASSIGNMENT, 2, LOOKAHEAD, procs=2, window_timeout_s=30.0
        )
        spec = ScenarioSpec(builder=f"{__name__}:crash_builder")
        with pytest.raises(WorkerCrashError):
            engine.run_scenario(spec, until=1.0)
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_worker_exception_carries_remote_traceback(self):
        engine = ParallelConservativeEngine(
            ASSIGNMENT, 2, LOOKAHEAD, procs=2, window_timeout_s=30.0
        )
        spec = ScenarioSpec(builder=f"{__name__}:raise_builder")
        with pytest.raises(ParallelWorkerError) as err:
            engine.run_scenario(spec, until=1.0)
        assert "boom from the shard" in str(err.value)
        assert err.value.remote_traceback

    def test_unknown_builder_fails_loudly(self):
        group = LocalShardGroup([0], 1, LOOKAHEAD, procs=1)
        with pytest.raises(ParallelBackendError):
            group.run_scenario(ScenarioSpec(builder="no.such.module:fn"), until=1.0)


class TestEmptyShardsEndToEnd:
    def test_more_procs_than_lps_matches_reference(self):
        spec = chain_spec(num_nodes=8, latency_s=1e-4, packets=20)
        assignment = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        _, ref = run_reference(spec, assignment, 2, 1e-4, 0.02)
        group = LocalShardGroup(assignment, 2, 1e-4, procs=4)
        assert sum(1 for part in group.shards if not part) == 2
        result = group.run_scenario(spec, until=0.02)
        merged = merge_collected(result.collected)
        assert delivery_log_bytes(merged) == delivery_log_bytes(ref)
        assert merged["counters"] == ref["counters"]


class TestFromMapping:
    def _mapping(self, mll_s):
        from repro.core.approaches import Approach
        from repro.core.evaluate import PartitionEvaluation
        from repro.core.mapping import NetworkMapping

        evaluation = PartitionEvaluation(
            mll_s=mll_s, es=1.0, ec=1.0, efficiency=1.0,
            predicted_imbalance=0.0, part_weights=np.ones(2), edge_cut=1.0,
        )
        return NetworkMapping(
            approach=Approach.TOP,
            assignment=np.array(ASSIGNMENT),
            num_engines=2,
            evaluation=evaluation,
        )

    def test_lookahead_defaults_to_achieved_mll(self):
        engine = ParallelConservativeEngine.from_mapping(self._mapping(0.5))
        assert engine.lookahead == 0.5
        assert engine.num_lps == 2

    def test_infinite_mll_requires_explicit_lookahead(self):
        with pytest.raises(ValueError):
            ParallelConservativeEngine.from_mapping(self._mapping(float("inf")))
        engine = ParallelConservativeEngine.from_mapping(
            self._mapping(float("inf")), lookahead=1.0
        )
        assert engine.lookahead == 1.0
