"""Tests for the online layer: IP mapping, Agent, WrapSocket, real-time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.engine.costmodel import WallclockPrediction
from repro.netsim import NetworkSimulator
from repro.online import (
    Agent,
    OnlineTimeoutError,
    SocketClosed,
    VirtualIpMapper,
    VirtualTimeController,
    WrapSocket,
    required_slowdown,
)


class TestVirtualIpMapper:
    def test_roundtrip(self):
        for node in (0, 1, 255, 256, 65_536, 1_000_000):
            ip = VirtualIpMapper.virtual_ip(node)
            assert VirtualIpMapper.node_of(ip) == node

    def test_format(self):
        assert VirtualIpMapper.virtual_ip(0) == "10.0.0.0"
        assert VirtualIpMapper.virtual_ip(257) == "10.0.1.1"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            VirtualIpMapper.virtual_ip(1 << 24)
        with pytest.raises(ValueError):
            VirtualIpMapper.virtual_ip(-1)

    def test_invalid_parse(self):
        with pytest.raises(ValueError):
            VirtualIpMapper.node_of("192.168.0.1")
        with pytest.raises(ValueError):
            VirtualIpMapper.node_of("10.0.0")
        with pytest.raises(ValueError):
            VirtualIpMapper.node_of("10.0.0.999")

    def test_registration(self):
        m = VirtualIpMapper()
        ip = m.register("proc1:5000", 42)
        assert ip == VirtualIpMapper.virtual_ip(42)
        assert m.resolve_real("proc1:5000") == 42
        assert m.real_endpoint_of(42) == "proc1:5000"
        assert len(m) == 1

    def test_duplicate_rejected(self):
        m = VirtualIpMapper()
        m.register("a", 1)
        with pytest.raises(ValueError):
            m.register("a", 2)
        with pytest.raises(ValueError):
            m.register("b", 1)

    def test_unregister(self):
        m = VirtualIpMapper()
        m.register("a", 1)
        m.unregister("a")
        assert len(m) == 0
        m.register("a", 1)  # can re-register


@pytest.fixture()
def agent_env(flat_net, flat_fib):
    k = SimKernel()
    sim = NetworkSimulator(flat_net, flat_fib, k)
    return k, sim, Agent(sim)


class TestAgent:
    def test_transfer_completes_with_stats(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        done = []
        agent.transfer(hosts[0], hosts[1], 30_000, lambda t: done.append(t))
        k.run(until=10.0)
        assert done
        assert agent.stats.streams_opened == 1
        assert agent.stats.streams_completed == 1
        assert agent.stats.bytes_requested == 30_000

    def test_datagram(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        got = []
        sim.udp_bind(hosts[1], 3, lambda p: got.append(p))
        agent.datagram(hosts[0], hosts[1], 2000, port=3)
        k.run(until=1.0)
        assert got
        assert agent.stats.datagrams_sent == 1

    def test_schedule(self, agent_env):
        k, sim, agent = agent_env
        fired = []
        agent.schedule(0.5, lambda: fired.append(agent.now))
        k.run(until=1.0)
        assert fired == [pytest.approx(0.5)]

    def test_attach_process(self, agent_env):
        k, sim, agent = agent_env
        ip = agent.attach_process("rank0@test", 5)
        assert VirtualIpMapper.node_of(ip) == 5


class TestWrapSocket:
    def test_send_and_listen(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        a = WrapSocket(agent, hosts[0], "a@test")
        b = WrapSocket(agent, hosts[1], "b@test")
        received = []
        b.listen(lambda src, n, t: received.append((src, n)))
        a.connect(b.virtual_ip)
        sent = []
        a.send(10_000, lambda t: sent.append(t))
        k.run(until=10.0)
        assert received == [(hosts[0], 10_000)]
        assert sent

    def test_unconnected_send_raises(self, agent_env, flat_net):
        k, sim, agent = agent_env
        a = WrapSocket(agent, flat_net.host_ids()[0], "x@test")
        with pytest.raises(SocketClosed):
            a.send(100)

    def test_closed_socket_raises(self, agent_env, flat_net):
        k, sim, agent = agent_env
        a = WrapSocket(agent, flat_net.host_ids()[0], "y@test")
        a.close()
        with pytest.raises(SocketClosed):
            a.connect_node(3)

    def test_reopen_same_node_reuses_ip(self, agent_env, flat_net):
        k, sim, agent = agent_env
        h = flat_net.host_ids()[0]
        a = WrapSocket(agent, h, "p@test")
        b = WrapSocket(agent, h, "q@test")  # same node, new process
        assert a.virtual_ip == b.virtual_ip

    def test_close_removes_listener(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        b = WrapSocket(agent, hosts[1], "l@test")
        received = []
        b.listen(lambda *a: received.append(a))
        b.close()
        a = WrapSocket(agent, hosts[0], "m@test")
        a.connect_node(hosts[1])
        a.send(1000)
        k.run(until=5.0)
        assert received == []


class TestSendTimeout:
    """send(timeout_s=...): the watchdog-with-backoff path.

    A black-holed peer (node marked down, as router-crash faults do)
    never acknowledges, so every attempt times out; a healthy peer
    completes before the first watchdog and no retry happens.
    """

    def test_send_completes_without_retry(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        a = WrapSocket(agent, hosts[0], "to@test")
        a.connect_node(hosts[1])
        sent, timeouts = [], []
        a.send(10_000, lambda t: sent.append(t), timeout_s=30.0,
               on_timeout=timeouts.append)
        k.run(until=60.0)
        assert len(sent) == 1
        assert timeouts == []
        assert agent.stats.streams_opened == 1  # no retransmission

    def test_blackhole_exhausts_retries_into_callback(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        sim.set_node_down(hosts[1])
        a = WrapSocket(agent, hosts[0], "bh@test")
        a.connect_node(hosts[1])
        sent, timeouts = [], []
        a.send(5_000, lambda t: sent.append(t), timeout_s=0.1, max_retries=2,
               on_timeout=timeouts.append)
        k.run(until=30.0)
        assert sent == []
        assert len(timeouts) == 1
        err = timeouts[0]
        assert isinstance(err, OnlineTimeoutError)
        assert err.attempts == 3  # initial attempt + 2 retries
        assert err.waited_s > 0.1  # backed-off waits accumulate
        assert "send 5000B" in err.operation
        assert agent.stats.streams_opened == 3

    def test_blackhole_raises_without_callback(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        sim.set_node_down(hosts[1])
        a = WrapSocket(agent, hosts[0], "br@test")
        a.connect_node(hosts[1])
        a.send(1_000, timeout_s=0.05, max_retries=1)
        with pytest.raises(OnlineTimeoutError):
            k.run(until=30.0)

    def test_invalid_timeout_rejected(self, agent_env, flat_net):
        k, sim, agent = agent_env
        a = WrapSocket(agent, flat_net.host_ids()[0], "iv@test")
        a.connect_node(flat_net.host_ids()[1])
        with pytest.raises(ValueError):
            a.send(100, timeout_s=0.0)

    def test_backoff_is_bounded_and_deterministic(self, agent_env, flat_net):
        k, sim, agent = agent_env
        h = flat_net.host_ids()[0]
        a = WrapSocket(agent, h, "bd@test")
        timeouts = [a._backoff_timeout(1.0, k) for k in range(1, 10)]
        assert all(t <= 8.0 * 1.1 + 1e-12 for t in timeouts)
        assert all(t >= 1.0 for t in timeouts)
        b = WrapSocket(agent, h, "bd2@test")  # same node, same stream
        assert timeouts == [b._backoff_timeout(1.0, k) for k in range(1, 10)]


class TestWaitForVirtual:
    """wait_for_virtual with injected clocks: deterministic pacing tests."""

    def _fake_clock(self, start: float = 0.0):
        state = {"now": start}
        sleeps: list[float] = []

        def now() -> float:
            return state["now"]

        def sleep(d: float) -> None:
            sleeps.append(d)
            state["now"] += d

        return now, sleep, sleeps

    def test_waits_until_deadline(self):
        vtc = VirtualTimeController(slowdown=1.0)
        now, sleep, sleeps = self._fake_clock()
        waited = vtc.wait_for_virtual(1.0, now_fn=now, sleep_fn=sleep, timeout_s=10.0)
        assert waited == pytest.approx(1.0)
        assert sleeps[0] == pytest.approx(1e-3)  # starts at min_sleep_s
        assert all(0.0 < d <= 0.25 for d in sleeps)  # bounded backoff

    def test_backoff_doubles_then_caps(self):
        vtc = VirtualTimeController(slowdown=1.0)
        now, sleep, sleeps = self._fake_clock()
        vtc.wait_for_virtual(5.0, now_fn=now, sleep_fn=sleep, timeout_s=60.0)
        doubling = sleeps[: sleeps.index(0.25)]
        assert doubling == [pytest.approx(1e-3 * 2**i) for i in range(len(doubling))]
        assert max(sleeps) == pytest.approx(0.25)

    def test_returns_immediately_when_already_past(self):
        vtc = VirtualTimeController(slowdown=1.0)
        now, sleep, sleeps = self._fake_clock(start=10.0)
        assert vtc.wait_for_virtual(1.0, now_fn=now, sleep_fn=sleep) == 0.0
        assert sleeps == []

    def test_timeout_raises_typed_error(self):
        vtc = VirtualTimeController(slowdown=1.0)
        now, sleep, _sleeps = self._fake_clock()
        with pytest.raises(OnlineTimeoutError) as ei:
            vtc.wait_for_virtual(100.0, now_fn=now, sleep_fn=sleep, timeout_s=0.5)
        assert ei.value.waited_s >= 0.5
        assert ei.value.attempts > 0
        assert "virtual t=100" in ei.value.operation

    def test_parameter_validation(self):
        vtc = VirtualTimeController()
        with pytest.raises(ValueError):
            vtc.wait_for_virtual(1.0, timeout_s=0.0)
        with pytest.raises(ValueError):
            vtc.wait_for_virtual(1.0, min_sleep_s=0.5, max_sleep_s=0.1)


class TestRealTime:
    def test_identity_at_slowdown_1(self):
        vtc = VirtualTimeController(slowdown=1.0)
        assert vtc.virtual_elapsed(5.0) == 5.0
        assert vtc.wallclock_deadline(5.0) == 5.0

    def test_slowdown_scales(self):
        vtc = VirtualTimeController(slowdown=8.0)
        assert vtc.virtual_elapsed(8.0) == pytest.approx(1.0)
        assert vtc.wallclock_deadline(1.0) == pytest.approx(8.0)

    def test_epoch_offset(self):
        vtc = VirtualTimeController(slowdown=2.0, wallclock_epoch=10.0)
        assert vtc.virtual_elapsed(14.0) == pytest.approx(2.0)

    def test_behind_schedule(self):
        vtc = VirtualTimeController(slowdown=1.0)
        assert vtc.behind_schedule(10.0, 8.0) == pytest.approx(2.0)
        assert vtc.behind_schedule(10.0, 12.0) == pytest.approx(-2.0)

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            VirtualTimeController(slowdown=0.0)

    def _pred(self, total):
        return WallclockPrediction(
            total_s=total, compute_s=total, sync_s=0.0, num_windows=1,
            num_lps=4, events_per_lp=np.zeros(4), remote_per_lp=np.zeros(4),
        )

    def test_required_slowdown(self):
        assert required_slowdown(self._pred(80.0), 10.0) == pytest.approx(8.0)

    def test_realtime_feasible_clamps_to_1(self):
        assert required_slowdown(self._pred(5.0), 10.0) == 1.0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            required_slowdown(self._pred(1.0), 0.0)
