"""Tests for the online layer: IP mapping, Agent, WrapSocket, real-time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.engine.costmodel import WallclockPrediction
from repro.netsim import NetworkSimulator
from repro.online import (
    Agent,
    SocketClosed,
    VirtualIpMapper,
    VirtualTimeController,
    WrapSocket,
    required_slowdown,
)


class TestVirtualIpMapper:
    def test_roundtrip(self):
        for node in (0, 1, 255, 256, 65_536, 1_000_000):
            ip = VirtualIpMapper.virtual_ip(node)
            assert VirtualIpMapper.node_of(ip) == node

    def test_format(self):
        assert VirtualIpMapper.virtual_ip(0) == "10.0.0.0"
        assert VirtualIpMapper.virtual_ip(257) == "10.0.1.1"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            VirtualIpMapper.virtual_ip(1 << 24)
        with pytest.raises(ValueError):
            VirtualIpMapper.virtual_ip(-1)

    def test_invalid_parse(self):
        with pytest.raises(ValueError):
            VirtualIpMapper.node_of("192.168.0.1")
        with pytest.raises(ValueError):
            VirtualIpMapper.node_of("10.0.0")
        with pytest.raises(ValueError):
            VirtualIpMapper.node_of("10.0.0.999")

    def test_registration(self):
        m = VirtualIpMapper()
        ip = m.register("proc1:5000", 42)
        assert ip == VirtualIpMapper.virtual_ip(42)
        assert m.resolve_real("proc1:5000") == 42
        assert m.real_endpoint_of(42) == "proc1:5000"
        assert len(m) == 1

    def test_duplicate_rejected(self):
        m = VirtualIpMapper()
        m.register("a", 1)
        with pytest.raises(ValueError):
            m.register("a", 2)
        with pytest.raises(ValueError):
            m.register("b", 1)

    def test_unregister(self):
        m = VirtualIpMapper()
        m.register("a", 1)
        m.unregister("a")
        assert len(m) == 0
        m.register("a", 1)  # can re-register


@pytest.fixture()
def agent_env(flat_net, flat_fib):
    k = SimKernel()
    sim = NetworkSimulator(flat_net, flat_fib, k)
    return k, sim, Agent(sim)


class TestAgent:
    def test_transfer_completes_with_stats(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        done = []
        agent.transfer(hosts[0], hosts[1], 30_000, lambda t: done.append(t))
        k.run(until=10.0)
        assert done
        assert agent.stats.streams_opened == 1
        assert agent.stats.streams_completed == 1
        assert agent.stats.bytes_requested == 30_000

    def test_datagram(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        got = []
        sim.udp_bind(hosts[1], 3, lambda p: got.append(p))
        agent.datagram(hosts[0], hosts[1], 2000, port=3)
        k.run(until=1.0)
        assert got
        assert agent.stats.datagrams_sent == 1

    def test_schedule(self, agent_env):
        k, sim, agent = agent_env
        fired = []
        agent.schedule(0.5, lambda: fired.append(agent.now))
        k.run(until=1.0)
        assert fired == [pytest.approx(0.5)]

    def test_attach_process(self, agent_env):
        k, sim, agent = agent_env
        ip = agent.attach_process("rank0@test", 5)
        assert VirtualIpMapper.node_of(ip) == 5


class TestWrapSocket:
    def test_send_and_listen(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        a = WrapSocket(agent, hosts[0], "a@test")
        b = WrapSocket(agent, hosts[1], "b@test")
        received = []
        b.listen(lambda src, n, t: received.append((src, n)))
        a.connect(b.virtual_ip)
        sent = []
        a.send(10_000, lambda t: sent.append(t))
        k.run(until=10.0)
        assert received == [(hosts[0], 10_000)]
        assert sent

    def test_unconnected_send_raises(self, agent_env, flat_net):
        k, sim, agent = agent_env
        a = WrapSocket(agent, flat_net.host_ids()[0], "x@test")
        with pytest.raises(SocketClosed):
            a.send(100)

    def test_closed_socket_raises(self, agent_env, flat_net):
        k, sim, agent = agent_env
        a = WrapSocket(agent, flat_net.host_ids()[0], "y@test")
        a.close()
        with pytest.raises(SocketClosed):
            a.connect_node(3)

    def test_reopen_same_node_reuses_ip(self, agent_env, flat_net):
        k, sim, agent = agent_env
        h = flat_net.host_ids()[0]
        a = WrapSocket(agent, h, "p@test")
        b = WrapSocket(agent, h, "q@test")  # same node, new process
        assert a.virtual_ip == b.virtual_ip

    def test_close_removes_listener(self, agent_env, flat_net):
        k, sim, agent = agent_env
        hosts = flat_net.host_ids()
        b = WrapSocket(agent, hosts[1], "l@test")
        received = []
        b.listen(lambda *a: received.append(a))
        b.close()
        a = WrapSocket(agent, hosts[0], "m@test")
        a.connect_node(hosts[1])
        a.send(1000)
        k.run(until=5.0)
        assert received == []


class TestRealTime:
    def test_identity_at_slowdown_1(self):
        vtc = VirtualTimeController(slowdown=1.0)
        assert vtc.virtual_elapsed(5.0) == 5.0
        assert vtc.wallclock_deadline(5.0) == 5.0

    def test_slowdown_scales(self):
        vtc = VirtualTimeController(slowdown=8.0)
        assert vtc.virtual_elapsed(8.0) == pytest.approx(1.0)
        assert vtc.wallclock_deadline(1.0) == pytest.approx(8.0)

    def test_epoch_offset(self):
        vtc = VirtualTimeController(slowdown=2.0, wallclock_epoch=10.0)
        assert vtc.virtual_elapsed(14.0) == pytest.approx(2.0)

    def test_behind_schedule(self):
        vtc = VirtualTimeController(slowdown=1.0)
        assert vtc.behind_schedule(10.0, 8.0) == pytest.approx(2.0)
        assert vtc.behind_schedule(10.0, 12.0) == pytest.approx(-2.0)

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            VirtualTimeController(slowdown=0.0)

    def _pred(self, total):
        return WallclockPrediction(
            total_s=total, compute_s=total, sync_s=0.0, num_windows=1,
            num_lps=4, events_per_lp=np.zeros(4), remote_per_lp=np.zeros(4),
        )

    def test_required_slowdown(self):
        assert required_slowdown(self._pred(80.0), 10.0) == pytest.approx(8.0)

    def test_realtime_feasible_clamps_to_1(self):
        assert required_slowdown(self._pred(5.0), 10.0) == 1.0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            required_slowdown(self._pred(1.0), 0.0)
