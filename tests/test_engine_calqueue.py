"""Tests for the calendar queue and the density-adaptive pending set.

The load-bearing property is *exact pop parity* with the binary heap:
the engines treat the backend as interchangeable, so CalendarQueue must
reproduce EventQueue's ``(time, seq)`` total order bit-for-bit under any
interleaving of pushes, cancellations, and pops — proven here unit-wise
and by a hypothesis property, and end-to-end by
test_differential_determinism.py.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import AdaptiveQueue, CalendarQueue, EventQueue, make_queue


def _noop():
    return None


class TestCalendarQueue:
    def test_time_order(self):
        q = CalendarQueue()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            q.push(t, _noop)
        assert [q.pop().time for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert q.pop() is None

    def test_fifo_for_equal_times(self):
        q = CalendarQueue()
        order = []
        q.push(1.0, order.append, args=("a",))
        q.push(1.0, order.append, args=("b",))
        for _ in range(2):
            ev = q.pop()
            ev.fn(*ev.args)
        assert order == ["a", "b"]

    def test_cancel_skipped(self):
        q = CalendarQueue()
        ev = q.push(1.0, _noop)
        q.push(2.0, _noop)
        ev.cancel()
        assert q.pop().time == 2.0
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = CalendarQueue()
        ev = q.push(1.0, _noop)
        ev.cancel()
        assert q.peek_time() is None
        q.push(3.0, _noop)
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = CalendarQueue()
        assert not q
        q.push(1.0, _noop)
        assert q and len(q) == 1

    def test_pop_until_boundary_exclusive(self):
        q = CalendarQueue()
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert q.pop_until(1.0) is None  # head at the bound stays queued
        assert q.pop_until(1.5).time == 1.0
        assert q.pop_until(1.5) is None
        assert q.pop_until(float("inf")).time == 2.0

    def test_grows_and_shrinks(self):
        q = CalendarQueue()
        times = [(i * 37) % 1000 / 10.0 for i in range(1000)]
        for t in times:
            q.push(t, _noop)
        assert q.rebuilds > 0  # grew well past the initial 8 buckets
        popped = [q.pop().time for _ in range(1000)]
        assert popped == sorted(times)

    def test_sparse_clusters_jump_years(self):
        # Two tight clusters far apart: the sweep must jump the empty
        # years between them instead of scanning bucket by bucket.
        q = CalendarQueue()
        times = [i * 1e-4 for i in range(32)] + [5_000.0 + i * 1e-4 for i in range(32)]
        for t in reversed(times):
            q.push(t, _noop)
        assert [q.pop().time for _ in range(len(times))] == sorted(times)

    def test_rewind_on_push_behind_cursor(self):
        q = CalendarQueue()
        q.push(10.0, _noop)
        assert q.peek_time() == 10.0  # sweep advances to 10.0's bucket
        q.push(1.0, _noop)  # placed behind the cursor: must rewind
        assert q.pop().time == 1.0
        assert q.pop().time == 10.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(nbuckets=0)

    def test_drain_and_extend_roundtrip(self):
        q = CalendarQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(t, _noop)
        entries = q.drain_entries()
        assert len(q) == 0 and q.pop() is None
        q2 = CalendarQueue()
        q2.extend_entries(entries)
        assert [q2.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]


class _TinyAdaptive(AdaptiveQueue):
    """AdaptiveQueue with thresholds small enough to exercise in a test."""

    PROMOTE_SIZE = 64
    DEMOTE_SIZE = 8
    CHECK_INTERVAL = 16
    MIN_SWITCH_DISTANCE = 32


class TestAdaptiveQueue:
    def test_starts_on_heap(self):
        q = AdaptiveQueue()
        assert q.kind == "heap"
        assert q.switches == 0

    def test_promotes_under_dense_backlog(self):
        q = _TinyAdaptive()
        times = [(i * 17) % 256 / 10.0 for i in range(256)]
        for t in times:
            q.push(t, _noop)
        assert q.kind == "calendar"
        assert q.switches == 1
        # order is preserved across the migration
        assert [q.pop().time for _ in range(256)] == sorted(times)

    def test_demotes_when_backlog_thins(self):
        q = _TinyAdaptive()
        for i in range(256):
            q.push(float(i), _noop)
        assert q.kind == "calendar"
        # Drain below DEMOTE_SIZE, then keep a small backlog while
        # pushing enough to cross the next density evaluation.
        for _ in range(252):
            q.pop()
        t = 1000.0
        for _ in range(20):  # bounded: must demote within a few checks
            if q.kind == "heap":
                break
            for _ in range(q.CHECK_INTERVAL):
                q.push(t, _noop)
                q.pop()
                t += 1.0
        assert q.kind == "heap"
        assert q.switches == 2

    def test_cancelled_events_survive_migration_as_cancelled(self):
        q = _TinyAdaptive()
        cancelled = q.push(50.0, _noop)
        cancelled.cancel()
        for i in range(256):
            q.push(float(i % 40), _noop)
        assert q.kind == "calendar"
        while True:
            ev = q.pop()
            if ev is None:
                break
            assert ev is not cancelled

    def test_pop_until_binds_through(self):
        q = AdaptiveQueue()
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert q.pop_until(1.0) is None
        assert q.pop_until(3.0).time == 1.0


class TestMakeQueue:
    def test_kinds(self):
        assert isinstance(make_queue("heap"), EventQueue)
        assert isinstance(make_queue("calendar"), CalendarQueue)
        assert isinstance(make_queue("adaptive"), AdaptiveQueue)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_queue("fifo")


# Each op is (kind, value): push at a time, cancel a previously returned
# handle (index derived from the value), or pop. Both queues see the
# identical logical sequence; their pops must agree exactly.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "cancel"]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32),
    ),
    max_size=200,
)


class TestHeapCalendarParity:
    @settings(max_examples=200, deadline=None)
    @given(ops=_OPS)
    def test_pop_parity_under_interleavings(self, ops):
        heap, cal = EventQueue(), CalendarQueue()
        handles: list = []
        payload = 0
        for op, value in ops:
            if op == "push":
                h = heap.push(value, _noop, args=(payload,))
                c = cal.push(value, _noop, args=(payload,))
                handles.append((h, c))
                payload += 1
            elif op == "cancel" and handles:
                h, c = handles[int(value * 1e3) % len(handles)]
                h.cancel()
                c.cancel()
            else:
                he, ce = heap.pop(), cal.pop()
                if he is None:
                    assert ce is None
                else:
                    assert ce is not None
                    assert (he.time, he.args) == (ce.time, ce.args)
        # drain whatever remains: identical tails
        while True:
            he, ce = heap.pop(), cal.pop()
            if he is None:
                assert ce is None
                break
            assert ce is not None
            assert (he.time, he.args) == (ce.time, ce.args)
