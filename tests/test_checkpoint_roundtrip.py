"""Checkpoint round-trip properties: capture -> encode -> restore is exact.

The recovery protocol's correctness rests on one invariant: restoring a
shard from its checkpoint blob reproduces the captured barrier state
*exactly* — same pending events in the same canonical order, same
clock, same tiebreak counter, same scenario dynamics — so a respawned
worker re-derives bit-identical windows. These properties drive a real
shard (the chain workload on a `ShardEngine`) to a randomized barrier,
checkpoint it, rebuild from the blob, and demand a fixpoint: the
rebuilt shard's own checkpoint must be byte-equal to the original, and
the sha256 digest must be stable across repeated encodes and across
processes.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.parallel import (
    ShardEngine,
    _build_shard,
    _encode_worker_checkpoint,
    _restore_shard_from_blob,
)
from repro.engine.recovery import checkpoint_digest
from repro.engine.windows import iter_windows
from repro.experiments.shard import chain_spec
from repro.serialization import decode_checkpoint

NUM_NODES = 8
LATENCY_S = 1e-4
UNTIL = 0.05
ASSIGNMENT = np.array([0, 0, 0, 0, 1, 1, 1, 1])


def _run_to_window(packets: int, seed: int, stop_window: int):
    """One shard owning every LP, run to the end of ``stop_window``."""
    spec = chain_spec(
        num_nodes=NUM_NODES, latency_s=LATENCY_S, packets=packets, seed=seed
    )
    engine = ShardEngine(
        ASSIGNMENT, 2, LATENCY_S, owned_lps=[0, 1], shard_id=0, num_shards=1
    )
    scenario, fn_to_name, name_to_fn = _build_shard(engine, spec)
    engine.seal_setup()
    last = 0
    for w, _start, end in iter_windows(0.0, LATENCY_S, UNTIL):
        if w > stop_window:
            break
        engine.run_window(w, end)
        last = w
    return spec, engine, scenario, fn_to_name, last


@settings(max_examples=12, deadline=None)
@given(
    packets=st.integers(min_value=5, max_value=30),
    seed=st.integers(min_value=0, max_value=20),
    stop_window=st.integers(min_value=0, max_value=400),
)
def test_capture_encode_decode_restore_is_a_fixpoint(packets, seed, stop_window):
    spec, engine, scenario, fn_to_name, w = _run_to_window(
        packets, seed, stop_window
    )
    blob = _encode_worker_checkpoint(engine, scenario, fn_to_name, w, 0)

    # Restore into a freshly built shard and re-checkpoint: byte-equal.
    r_engine, r_scenario, r_f2n, _n2f, payload = _restore_shard_from_blob(
        blob, ASSIGNMENT, 2, LATENCY_S, spec, True, "adaptive", 1
    )
    again = _encode_worker_checkpoint(r_engine, r_scenario, r_f2n, w, 0)
    assert again == blob
    assert checkpoint_digest(again) == checkpoint_digest(blob)
    assert payload["window_index"] == w
    assert payload["engine"]["now"] == engine.now
    assert payload["engine"]["kcount"] == engine._kcount

    # Encoding the same barrier twice is deterministic (the canonical
    # queue ordering is independent of heap layout).
    assert _encode_worker_checkpoint(engine, scenario, fn_to_name, w, 0) == blob


@settings(max_examples=12, deadline=None)
@given(
    packets=st.integers(min_value=5, max_value=30),
    seed=st.integers(min_value=0, max_value=20),
    stop_window=st.integers(min_value=0, max_value=400),
)
def test_restored_shard_replays_identical_windows(packets, seed, stop_window):
    # Beyond the static fixpoint: the restored shard must *behave*
    # identically — running both engines one more window produces the
    # same event count, clock, and a byte-equal next checkpoint.
    spec, engine, scenario, fn_to_name, w = _run_to_window(
        packets, seed, stop_window
    )
    blob = _encode_worker_checkpoint(engine, scenario, fn_to_name, w, 0)
    r_engine, r_scenario, r_f2n, _n2f, _payload = _restore_shard_from_blob(
        blob, ASSIGNMENT, 2, LATENCY_S, spec, True, "adaptive", 1
    )
    windows = list(iter_windows(0.0, LATENCY_S, UNTIL))
    if w + 1 < len(windows):
        nxt, _start, end = windows[w + 1]
        ran = engine.run_window(nxt, end)
        r_ran = r_engine.run_window(nxt, end)
        assert r_ran == ran
        assert r_engine.now == engine.now
        assert r_engine._kcount == engine._kcount
        after = _encode_worker_checkpoint(engine, scenario, fn_to_name, nxt, 0)
        r_after = _encode_worker_checkpoint(r_engine, r_scenario, r_f2n, nxt, 0)
        assert r_after == after


def _digest_in_subprocess(blob: bytes) -> str:
    with multiprocessing.get_context("fork").Pool(1) as pool:
        return pool.apply(checkpoint_digest, (blob,))


def test_digest_is_stable_across_processes():
    # The controller verifies worker-computed digests; a digest that
    # depended on process identity (hash randomization, id()s) would
    # poison every cross-process checkpoint verification.
    spec, engine, scenario, fn_to_name, w = _run_to_window(20, 7, 100)
    blob = _encode_worker_checkpoint(engine, scenario, fn_to_name, w, 0)
    assert _digest_in_subprocess(blob) == checkpoint_digest(blob)
    payload = decode_checkpoint(blob)
    assert payload["shard_id"] == 0
    assert sorted(payload["engine"]["queues"]) == [0, 1]
