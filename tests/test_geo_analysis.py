"""Tests for coordinate bisection and the traffic analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimKernel
from repro.netsim import (
    NetworkSimulator,
    as_traffic_matrix,
    drop_report,
    send_datagram,
    top_links,
)
from repro.partition import WeightedGraph, coordinate_bisection
from repro.routing import ForwardingPlane


class TestCoordinateBisection:
    def _positions_grid(self, n=8):
        xs, ys = np.meshgrid(np.arange(n, dtype=float), np.arange(n, dtype=float))
        return np.column_stack([xs.ravel(), ys.ravel()])

    def test_splits_spatially(self, grid_graph):
        pos = self._positions_grid()
        res = coordinate_bisection(grid_graph, pos, 2)
        # Sides are spatially separated: mean x (the wider axis is a tie;
        # argmax picks axis 0) differs strongly between parts.
        mean0 = pos[res.assignment == 0, 0].mean()
        mean1 = pos[res.assignment == 1, 0].mean()
        assert abs(mean0 - mean1) > 2.0

    def test_balanced(self, grid_graph):
        res = coordinate_bisection(grid_graph, self._positions_grid(), 4)
        assert res.balance <= 1.1

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_arbitrary_k(self, grid_graph, k):
        res = coordinate_bisection(grid_graph, self._positions_grid(), k)
        assert set(res.assignment.tolist()) == set(range(k))

    def test_geographic_cut_quality_on_grid(self, grid_graph):
        # On a grid, a spatial cut is near-optimal (like the multilevel one).
        res = coordinate_bisection(grid_graph, self._positions_grid(), 2)
        assert res.edge_cut <= 10

    def test_validates_inputs(self, grid_graph):
        with pytest.raises(ValueError):
            coordinate_bisection(grid_graph, np.zeros((3, 2)), 2)
        with pytest.raises(ValueError):
            coordinate_bisection(grid_graph, self._positions_grid(), 0)

    def test_on_real_network(self, flat_net):
        g = flat_net.to_graph()
        pos = np.array([n.position for n in flat_net.nodes])
        res = coordinate_bisection(g, pos, 8)
        assert res.balance < 1.2
        # Spatial locality: never a worse cut than a random assignment.
        # (MLL is NOT asserted — hosts share their router's coordinates,
        # so median splits can still separate an access link.)
        from repro.partition import random_partition

        rnd = random_partition(g, 8, seed=0)
        assert res.edge_cut <= rnd.edge_cut


class TestAnalysis:
    @pytest.fixture()
    def loaded_sim(self, multi_net, multi_fib):
        k = SimKernel()
        sim = NetworkSimulator(multi_net, multi_fib, k)
        hosts = multi_net.host_ids()
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.choice(hosts, 2, replace=False)
            sim.udp_bind(int(b), 1, lambda p: None) if (int(b), 1) not in sim._udp_handlers else None
            send_datagram(sim, int(a), int(b), 3000, port=1)
        k.run(until=5.0)
        return sim

    def test_traffic_matrix_shape_and_symmetry(self, loaded_sim, multi_net):
        m = as_traffic_matrix(loaded_sim, multi_net)
        k = max(multi_net.as_domains) + 1
        assert m.shape == (k, k)
        assert np.allclose(m, m.T)
        assert m.sum() > 0

    def test_diagonal_holds_intra_as_traffic(self, loaded_sim, multi_net):
        m = as_traffic_matrix(loaded_sim, multi_net)
        assert np.trace(m) > 0  # access links are intra-AS

    def test_top_links_sorted(self, loaded_sim):
        ranked = top_links(loaded_sim, count=5)
        byte_counts = [b for _, b, _ in ranked]
        assert byte_counts == sorted(byte_counts, reverse=True)
        with pytest.raises(ValueError):
            top_links(loaded_sim, 0)

    def test_drop_report_consistent(self, loaded_sim):
        rep = drop_report(loaded_sim)
        assert 0.0 <= rep["drop_rate"] <= 1.0
        assert rep["offered_packet_hops"] >= rep["dropped_packet_hops"]
