"""Behavioral tests for stub-AS default routing (paper step 6c/6d).

Default routing is deliberately blind: a stub ships all external traffic
to its provider regardless of the global routing state (that is the point
— no full BGP table in the stub). These tests pin that behavior,
including what happens around withdrawals and multi-homing.
"""

from __future__ import annotations

import pytest

from repro.routing import ForwardingPlane
from repro.routing.bgp import BeaconExperiment, configure_bgp
from repro.topology import ASTier, generate_multi_as_network


@pytest.fixture(scope="module")
def env():
    net = generate_multi_as_network(num_ases=14, routers_per_as=10, num_hosts=40, seed=5)
    bgp = configure_bgp(net)
    fib = ForwardingPlane(net, bgp)
    return net, bgp, fib


def _find_stub(net, multihomed=False):
    for dom in net.as_domains.values():
        if dom.tier is ASTier.STUB:
            if multihomed and len({p for _, p in dom.default_routes}) < 2:
                continue
            return dom
    return None


class TestDefaultRouting:
    def test_external_traffic_exits_via_provider(self, env):
        net, bgp, fib = env
        stub = _find_stub(net)
        assert stub is not None
        src = stub.routers[0]
        # A destination neither local nor a direct neighbor of the stub.
        target_as = next(
            a for a in net.as_domains
            if a != stub.as_id and a not in stub.neighbor_ases
        )
        dst = net.as_domains[target_as].routers[0]
        as_path = fib.as_level_path(src, dst)
        assert as_path is not None
        assert as_path[1] in stub.providers

    def test_direct_peer_bypasses_default(self, env):
        net, bgp, fib = env
        # A stub with a peer gets peer routes directly, not via provider.
        for dom in net.as_domains.values():
            if dom.tier is ASTier.STUB and dom.peers:
                peer = next(iter(dom.peers))
                if peer not in dom.border_links:
                    continue
                src = dom.routers[0]
                dst = net.as_domains[peer].routers[0]
                as_path = fib.as_level_path(src, dst)
                assert as_path == [dom.as_id, peer]
                return
        pytest.skip("no stub with a directly-linked peer at this seed")

    def test_multihomed_stub_has_backup(self, env):
        net, bgp, fib = env
        stub = _find_stub(net, multihomed=True)
        if stub is None:
            pytest.skip("no multi-homed stub at this seed")
        providers = {p for _, p in stub.default_routes}
        assert len(providers) >= 2  # primary + backup (paper step 6d)

    def test_default_is_blind_to_withdrawal(self, env):
        """Withdrawing a remote prefix does not change the stub's first
        hop — default routing has no per-prefix state. The traffic then
        dies deeper in the network (unroutable at the provider), which is
        exactly what blind defaults do."""
        net, bgp, fib = env
        stub = _find_stub(net)
        target_as = next(
            a for a in net.as_domains
            if a != stub.as_id and a not in stub.neighbor_ases
        )
        src = stub.routers[0]
        dst = net.as_domains[target_as].routers[0]
        first_hop_before = fib.next_hop(src, dst)

        beacon = BeaconExperiment(bgp, target_as)
        beacon.withdraw()
        fresh_fib = ForwardingPlane(net, bgp)  # no stale cache
        assert fresh_fib.next_hop(src, dst) == first_hop_before
        # But the provider (which relies on real BGP) drops it eventually:
        assert fresh_fib.node_path(src, dst) is None
        beacon.announce()

    def test_reannounce_restores_end_to_end(self, env):
        net, bgp, fib = env
        stub = _find_stub(net)
        target_as = next(
            a for a in net.as_domains
            if a != stub.as_id and a not in stub.neighbor_ases
        )
        src = stub.routers[0]
        dst = net.as_domains[target_as].routers[0]
        beacon = BeaconExperiment(bgp, target_as)
        beacon.withdraw()
        beacon.announce()
        fresh = ForwardingPlane(net, bgp)
        path = fresh.node_path(src, dst)
        assert path is not None and path[-1] == dst
