"""Tests for the geographic plane and latency derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    MILES_TO_METERS,
    SIGNAL_SPEED_MPS,
    Plane,
    latency_from_miles,
    pairwise_distance_miles,
)


class TestLatency:
    def test_continental_span_about_40ms(self):
        assert latency_from_miles(5000.0) == pytest.approx(40e-3, rel=0.05)

    def test_zero_distance(self):
        assert latency_from_miles(0.0) == 0.0

    def test_linear_in_distance(self):
        assert latency_from_miles(200.0) == pytest.approx(2 * latency_from_miles(100.0))

    def test_vectorized(self):
        lat = latency_from_miles(np.array([100.0, 200.0]))
        assert lat.shape == (2,)
        assert lat[1] == pytest.approx(2 * lat[0])

    def test_physical_constants(self):
        # One mile of fiber at 2e8 m/s.
        assert latency_from_miles(1.0) == pytest.approx(MILES_TO_METERS / SIGNAL_SPEED_MPS)


class TestPlane:
    def test_random_points_in_bounds(self, rng):
        plane = Plane(1000.0, 500.0)
        pts = plane.random_points(200, rng)
        assert pts.shape == (200, 2)
        assert pts[:, 0].max() <= 1000.0
        assert pts[:, 1].max() <= 500.0
        assert pts.min() >= 0.0

    def test_clustered_points_in_bounds(self, rng):
        plane = Plane()
        pts = plane.clustered_points(300, rng)
        assert pts.shape == (300, 2)
        assert pts.min() >= 0.0
        assert pts[:, 0].max() <= plane.width_miles

    def test_clustered_points_actually_cluster(self, rng):
        plane = Plane()
        clustered = plane.clustered_points(400, rng, num_clusters=4, cluster_radius_miles=20.0)
        uniform = plane.random_points(400, rng)
        # Mean nearest-neighbor distance should be much smaller when clustered.
        def mean_nn(pts):
            d = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=2)
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()

        assert mean_nn(clustered) < 0.5 * mean_nn(uniform)

    def test_clustered_zero_count(self, rng):
        assert Plane().clustered_points(0, rng).shape == (0, 2)

    def test_region_points_near_center(self, rng):
        plane = Plane()
        pts = plane.region_points(100, rng, center=(2500.0, 2500.0), radius_miles=50.0)
        dist = np.linalg.norm(pts - np.array([2500.0, 2500.0]), axis=1)
        assert np.median(dist) < 100.0

    def test_region_points_clipped(self, rng):
        plane = Plane()
        pts = plane.region_points(100, rng, center=(0.0, 0.0), radius_miles=100.0)
        assert pts.min() >= 0.0

    def test_pairwise_distance(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distance_miles(pts, np.array([0]), np.array([1]))
        assert d[0] == pytest.approx(5.0)
