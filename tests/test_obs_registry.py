"""Unit tests for the observability layer: registry, instruments,
exporters, and the registry -> TrafficProfile bridge."""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_BIN_S,
    Registry,
    Stopwatch,
    export,
    names,
    observed_run,
    profile_from_registry,
    rate_series_from_registry,
)
from repro.obs.registry import get_registry


@pytest.fixture
def reg():
    return Registry(enabled=True)


class TestRegistryLifecycle:
    def test_starts_disabled_by_default(self):
        assert Registry().enabled is False

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_factories_are_idempotent_by_name(self, reg):
        assert reg.counter("a") is reg.counter("a")
        assert reg.vector_counter("v", 4) is reg.vector_counter("v", 4)
        assert reg.timer("t") is reg.timer("t")

    def test_vector_resized_on_topology_change(self, reg):
        small = reg.vector_counter("v", 4)
        big = reg.vector_counter("v", 9)
        assert big is not small
        assert big.size == 9
        assert reg.get_vector("v") is big

    def test_lookup_unknown_name_lists_known(self, reg):
        reg.counter("known.counter")
        with pytest.raises(KeyError, match="known.counter"):
            reg.get_counter("nope")

    def test_reset_zeroes_but_keeps_registrations(self, reg):
        c = reg.counter("c")
        v = reg.vector_counter("v", 3)
        c.inc(5)
        v.inc(1, 2.0)
        reg.reset()
        assert c.value == 0
        assert v.total == 0
        assert reg.get_counter("c") is c

    def test_clear_drops_registrations(self, reg):
        reg.counter("c")
        reg.clear()
        with pytest.raises(KeyError):
            reg.get_counter("c")

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ValueError, match="bin_s"):
            Registry(bin_s=0.0)


class TestInstruments:
    def test_counter_accumulates_only_when_enabled(self, reg):
        c = reg.counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        reg.disable()
        c.inc(100)
        assert c.value == 3.5

    def test_vector_counter_inc_and_add_array(self, reg):
        v = reg.vector_counter("v", 3)
        v.inc(0)
        v.inc(2, 4.0)
        v.add_array(np.array([1.0, 1.0, 1.0]))
        np.testing.assert_allclose(v.values, [2.0, 1.0, 5.0])
        assert v.total == 8.0

    def test_max_gauge_keeps_high_water_mark(self, reg):
        g = reg.max_gauge("g", 2)
        g.observe(0, 5.0)
        g.observe(0, 3.0)
        g.observe(1, 7.0)
        np.testing.assert_allclose(g.values, [5.0, 7.0])

    def test_histogram_bucketing_and_overflow(self, reg):
        h = reg.histogram("h", (1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 1000.0):
            h.observe(value)
        assert h.counts.tolist() == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(1056.5)

    def test_histogram_rejects_unsorted_bounds(self, reg):
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("bad", (10.0, 1.0))

    def test_binned_series_bins_by_simulated_time(self, reg):
        s = reg.series("s", 2, bin_s=1.0)
        s.observe(0.2, 0)
        s.observe(0.9, 1)
        s.observe(2.5, 0, 3.0)
        mat = s.matrix()
        assert mat.shape == (3, 2)
        np.testing.assert_allclose(mat[0], [1.0, 1.0])
        np.testing.assert_allclose(mat[1], [0.0, 0.0])
        np.testing.assert_allclose(mat[2], [3.0, 0.0])
        starts, rates = s.rates()
        np.testing.assert_allclose(starts, [0.0, 1.0, 2.0])
        np.testing.assert_allclose(rates, mat)  # bin_s=1 -> rates == counts

    def test_series_default_bin_width_comes_from_registry(self, reg):
        assert reg.series("s", 2).bin_s == DEFAULT_BIN_S

    def test_span_timer_protocol(self, reg):
        t = reg.timer("t")
        token = t.start()
        assert token >= 0.0
        t.stop(token)
        with t.span():
            pass
        assert t.count == 2
        assert t.total_s >= 0.0
        assert t.mean_s == t.total_s / 2

    def test_span_timer_disabled_token_is_noop(self, reg):
        t = reg.timer("t")
        reg.disable()
        token = t.start()
        assert token == -1.0
        t.stop(token)
        assert t.count == 0

    def test_stopwatch_is_registry_independent(self):
        watch = Stopwatch()
        assert watch.elapsed() >= 0.0
        watch.restart()
        assert watch.elapsed() >= 0.0


class TestObservedRun:
    def test_enables_resets_and_restores(self):
        reg = Registry(enabled=False)
        c = reg.counter("c")
        c._record(7)  # simulate stale state from a previous run
        with observed_run(reg) as inner:
            assert inner is reg
            assert reg.enabled
            assert c.value == 0  # reset_first zeroed the stale state
            c.inc()
        assert reg.enabled is False
        assert c.value == 1  # reads remain valid after exit

    def test_nested_observation_stays_enabled(self):
        reg = Registry(enabled=True)
        with observed_run(reg, reset_first=False):
            pass
        assert reg.enabled is True


class TestExport:
    def _populated(self) -> Registry:
        reg = Registry(enabled=True)
        reg.counter("pkts.sent").inc(3)
        v = reg.vector_counter("node.events", 2)
        v.inc(0, 2.0)
        v.inc(1, 1.0)
        reg.max_gauge("queue.hwm", 1).observe(0, 9.5)
        reg.histogram("win.events", (1.0, 10.0)).observe(5.0)
        t = reg.timer("barrier.wait")
        t.stop(t.start())
        reg.series("rate", 2, bin_s=1.0).observe(0.5, 1)
        return reg

    def test_json_snapshot_roundtrip(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "snap.json"
        export.write_snapshot(str(path), reg, meta={"seed": 7})
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["meta"] == {"seed": 7}
        assert data["counters"]["pkts.sent"] == 3
        assert data["vectors"]["node.events"]["values"] == [2.0, 1.0]
        assert data["gauges"]["queue.hwm"]["values"] == [9.5]
        assert data["histograms"]["win.events"]["bucket_counts"] == [0, 1, 0]
        assert data["timers"]["barrier.wait"]["count"] == 1
        assert data["series"]["rate"]["bins"] == [[0.0, 1.0]]

    def test_prometheus_exposition(self):
        text = export.to_prometheus(self._populated())
        assert "# TYPE repro_pkts_sent counter" in text
        assert "repro_pkts_sent 3" in text
        assert 'repro_node_events{index="1"} 1' in text
        assert 'repro_win_events_bucket{le="+Inf"} 1' in text
        assert "repro_barrier_wait_spans_total 1" in text
        # cumulative-le convention: the 10.0 bucket includes the 1.0 bucket
        assert 'repro_win_events_bucket{le="10"} 1' in text

    def test_prom_format_via_write_snapshot(self, tmp_path):
        path = tmp_path / "snap.prom"
        export.write_snapshot(str(path), self._populated(), fmt="prom")
        assert path.read_text().startswith("# HELP")

    #: metric family sample line: name, optional one-label set, value
    _SAMPLE = re.compile(
        r'^[a-zA-Z_][a-zA-Z0-9_]*(\{(index|le)="[^"]+"\})? [0-9eE.+-]+$|'
        r"^[a-zA-Z_][a-zA-Z0-9_]* [0-9eE.+-]+$"
    )

    def test_prometheus_help_type_sample_roundtrip(self):
        """Every # TYPE has a preceding # HELP; samples are well-formed."""
        text = export.to_prometheus(self._populated())
        helped: set[str] = set()
        typed: set[str] = set()
        for line in text.strip().splitlines():
            if line.startswith("# HELP "):
                helped.add(line.split(" ", 3)[2])
            elif line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                assert name in helped, f"# TYPE {name} has no preceding # HELP"
                typed.add(name)
            else:
                assert self._SAMPLE.match(line), f"malformed sample line: {line!r}"
        assert typed == helped
        # one family per instrument, two for the timer's counter pair
        assert "repro_barrier_wait_seconds_total" in typed
        assert "repro_barrier_wait_spans_total" in typed

    def test_prometheus_help_uses_canonical_text(self):
        reg = Registry(enabled=True)
        reg.counter(names.ENGINE_EVENTS).inc()
        text = export.to_prometheus(reg)
        assert f"# HELP repro_engine_events_executed {names.HELP[names.ENGINE_EVENTS]}" in text

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown snapshot format"):
            export.write_snapshot(str(tmp_path / "x"), self._populated(), fmt="xml")


class TestHistogramQuantile:
    def _hist(self, bounds, observations):
        reg = Registry(enabled=True)
        h = reg.histogram("q.test", bounds)
        for v in observations:
            h.observe(v)
        return h

    def test_linear_interpolation_within_first_bucket(self):
        h = self._hist((10.0, 20.0), (1.0, 2.0, 3.0, 4.0))
        # Uniform-in-bucket assumption over (0, 10]: rank 2 of 4 -> 5.0
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)
        assert h.quantile(0.0) == pytest.approx(0.0)

    def test_interpolation_uses_previous_bound_as_lower_edge(self):
        h = self._hist((10.0, 20.0), (5.0, 15.0))
        assert h.quantile(0.5) == pytest.approx(10.0)
        assert h.quantile(0.75) == pytest.approx(15.0)
        assert h.quantile(1.0) == pytest.approx(20.0)

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        # The +Inf bucket cannot be interpolated; the documented behavior
        # is a clamp to bounds[-1] (the histogram knows nothing more).
        h = self._hist((10.0, 20.0), (5.0, 100.0, 200.0))
        assert h.quantile(0.9) == 20.0
        assert h.quantile(1.0) == 20.0

    def test_empty_and_out_of_range_raise(self):
        h = self._hist((10.0,), ())
        with pytest.raises(ValueError, match="empty"):
            h.quantile(0.5)
        with pytest.raises(ValueError, match="0, 1"):
            self._hist((10.0,), (1.0,)).quantile(1.5)

    def test_quantiles_are_monotone(self):
        rng = np.random.default_rng(0)
        h = self._hist((0.5, 1.0, 2.0, 4.0, 8.0), rng.exponential(2.0, 500))
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_rank_on_cumulative_boundary_does_not_skip_empty_buckets(self):
        # 7 obs in (0, 1], none in (1, 2], 93 in (2, 3]. quantile(0.07)
        # asks for rank 7 of 100 — exactly the last observation of the
        # first bucket, so the answer is its bound, 1.0. In floats
        # 0.07 * 100 == 7.000000000000001; without the boundary snap the
        # overshoot skips the completing bucket and lands at fraction
        # ~0 of the (2, 3] bucket, jumping the estimate to 2.0.
        h = self._hist((1.0, 2.0, 3.0), [0.5] * 7 + [2.5] * 93)
        assert h.quantile(0.07) == pytest.approx(1.0)

    def test_non_positive_first_bound_is_its_own_lower_edge(self):
        # A first bucket bounded at <= 0 has no usable width: every rank
        # inside it resolves to the bound itself, never below it.
        h = self._hist((-5.0, 10.0), (-7.0, -6.0))
        assert h.quantile(0.25) == pytest.approx(-5.0)
        assert h.quantile(1.0) == pytest.approx(-5.0)

    def test_quantile_matches_sorted_sample_reference(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        bounds = (0.5, 1.0, 2.0, 4.0, 8.0)

        def bucket_range(value):
            """Bucket edges of ``value`` under the quantile convention."""
            for i, b in enumerate(bounds):
                if value <= b:
                    lo = bounds[i - 1] if i else min(0.0, b)
                    return lo, b
            return bounds[-1], bounds[-1]  # overflow clamps

        @hypothesis.given(
            sample=st.lists(
                st.floats(0.001, 16.0, allow_nan=False), min_size=1, max_size=60
            ),
            qs=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
        )
        def check(sample, qs):
            h = self._hist(bounds, sample)
            ordered = sorted(sample)
            estimates = [(q, h.quantile(q)) for q in sorted(qs)]
            for q, est in estimates:
                # The estimate must land within the bucket bounds of the
                # true sample quantile: rank ceil(q*n) in 1-indexed
                # order statistics (rank 0 -> the first observation's
                # bucket, lower edge side).
                rank = max(1, int(np.ceil(q * len(ordered) - 1e-9)))
                lo, hi = bucket_range(ordered[rank - 1])
                assert lo - 1e-9 <= est <= hi + 1e-9
            values = [est for _, est in estimates]
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

        check()


class TestProfileBridge:
    def _simulated_registry(self, num_nodes=4, num_links=3) -> Registry:
        reg = Registry(enabled=True)
        nodes = reg.vector_counter(names.NETSIM_NODE_EVENTS, num_nodes)
        link_b = reg.vector_counter(names.NETSIM_LINK_BYTES, num_links)
        link_p = reg.vector_counter(names.NETSIM_LINK_PACKETS, num_links)
        series = reg.series(names.NETSIM_NODE_RATE_BINS, num_nodes, bin_s=1.0)
        for node, t in ((0, 0.1), (1, 0.2), (1, 1.4), (3, 1.9)):
            nodes.inc(node)
            series.observe(t, node)
        link_b.inc(0, 1500.0)
        link_p.inc(0)
        return reg

    def test_bridge_builds_consistent_profile(self):
        reg = self._simulated_registry()
        profile = profile_from_registry(2.0, reg)
        assert profile.num_nodes == 4
        assert profile.num_links == 3
        assert profile.total_events == 4
        assert profile.node_rate_bins.shape == (2, 4)
        # the binned series and the totals agree observation-for-observation
        np.testing.assert_allclose(
            profile.node_rate_bins.sum(axis=0), profile.node_events
        )
        assert profile.rate_bin_s == 1.0

    def test_bridge_rejects_empty_run(self):
        reg = self._simulated_registry()
        reg.reset()
        with pytest.raises(ValueError, match="zero node events"):
            profile_from_registry(2.0, reg)

    def test_bridge_without_instrumented_simulator(self):
        with pytest.raises(KeyError, match="netsim.node.events"):
            profile_from_registry(1.0, Registry(enabled=True))

    def test_rate_series_grouped_by_assignment(self):
        reg = self._simulated_registry()
        starts, grouped = rate_series_from_registry(
            reg, groups=np.array([0, 0, 1, 1]), num_groups=2
        )
        np.testing.assert_allclose(starts, [0.0, 1.0])
        assert grouped.shape == (2, 2)
        # bin 0 holds nodes 0+1 (group 0); bin 1 holds node 1 (g0) + 3 (g1)
        np.testing.assert_allclose(grouped, [[2.0, 0.0], [1.0, 1.0]])

    def test_rate_series_group_length_mismatch(self):
        reg = self._simulated_registry()
        with pytest.raises(ValueError, match="4 nodes"):
            rate_series_from_registry(reg, groups=np.array([0, 1]))
