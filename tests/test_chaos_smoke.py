"""Tier-1 chaos smoke: a fault scenario heals, end to end.

One tiny multi-AS run with a link flap, a router restart, and a BGP
session reset. The acceptance story from the robustness issue: the
faults trace shows the injections, OSPF recomputes routes around the
topology faults, BGP withdraws and then re-advertises over the reset
session, and the run ends RECOVERED. A second run with the same seed
must reproduce the schedule, the fault trace, and the delivery counters
exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import run_chaos_experiment
from repro.experiments.config import SCALES
from repro.faults import FaultScenario

TINY = replace(
    SCALES["small"],
    name="tiny-chaos",
    num_ases=6,
    routers_per_as=6,
    multi_hosts=48,
    http_clients=24,
    http_servers=8,
    app_processes=4,
    scalapack_iterations=3,
    duration_s=10.0,
)

SCENARIO = FaultScenario(
    name="smoke",
    start_s=1.0,
    end_s=5.0,
    link_flaps=1,
    flap_cycles=1,
    flap_down_s=0.4,
    router_restarts=1,
    restart_down_s=0.8,
    bgp_resets=1,
    bgp_down_s=1.0,
)


def _run(seed: int = 0):
    return run_chaos_experiment(
        "multi-as", "scalapack", SCENARIO, scale=TINY, seed=seed, duration_s=10.0
    )


@pytest.fixture(scope="module")
def result():
    return _run()


class TestChaosSmoke:
    def test_run_recovers(self, result):
        assert result.links_restored
        assert result.routers_restored
        assert result.sessions_recovered
        assert result.routes_recomputed
        assert result.recovered

    def test_faults_were_injected_and_traced(self, result):
        assert result.num_fault_events == 5  # flap pair + restart pair + reset
        assert result.counts.injected == 5
        kinds = {r.kind for r in result.fault_records}
        assert {"link.down", "link.up", "router.down", "router.up"} <= kinds

    def test_ospf_reconverges_around_topology_faults(self, result):
        # Each of the four topology transitions invalidates routes and the
        # forwarding plane rebuilds trees on demand afterwards.
        assert result.route_recompute["invalidations"] >= 4
        assert result.route_recompute["trees_built"] > 0

    def test_bgp_withdraws_then_readvertises(self, result):
        kinds = [r.kind for r in result.fault_records]
        assert "bgp.withdrawn" in kinds
        assert "bgp.reestablished" in kinds
        assert kinds.index("bgp.withdrawn") < kinds.index("bgp.reestablished")
        assert result.bgp is not None
        assert result.bgp.resets >= 1
        assert result.bgp.reestablished == result.bgp.resets
        assert result.bgp.gave_up == 0
        assert result.bgp.withdraw_iterations >= 1
        assert result.bgp.readvertise_iterations >= 1

    def test_traffic_flows_despite_faults(self, result):
        assert result.traffic["sent"] > 0
        assert result.traffic["delivered"] > 0

    def test_same_seed_reproduces_run_exactly(self, result):
        again = _run()
        assert again.schedule_digest == result.schedule_digest
        assert again.fault_trace_digest == result.fault_trace_digest
        assert again.traffic == result.traffic
        assert again.dropped_fault == result.dropped_fault
        assert again.counts.as_dict() == result.counts.as_dict()


class TestProcessChaosSmoke:
    """``repro chaos --kill-workers``: SIGKILLed workers, byte-identity."""

    def test_kill_workers_cli_recovers_and_exits_zero(self, capsys):
        from repro.__main__ import main

        code = main([
            "chaos", "single-as", "scalapack",
            "--kill-workers", "2", "--procs", "2",
            "--duration", "1.0", "--checkpoint-every", "32",
            "--scale", "small",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict        : RECOVERED" in out
        assert "byte-identical to the 1-process reference" in out
        assert "proc.sigkill" in out
        assert "respawn(s)" in out
