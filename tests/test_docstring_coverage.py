"""Documentation quality gate: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
walks the package and enforces it so the property cannot regress.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.topology.sample_data"}  # data-only module


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES or info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        # Only objects *defined in this module* — re-exports are checked
        # once, at their definition site.
        if getattr(obj, "__module__", None) == module.__name__:
            yield name, obj


def test_all_modules_have_docstrings():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_and_functions_documented():
    missing: list[str] = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_public_methods_documented():
    """Public methods of public classes need docstrings too (dataclass
    auto-methods and dunder/inherited members excluded)."""
    missing: list[str] = []
    for module in _walk_modules():
        for cname, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for mname, member in vars(cls).items():
                if mname.startswith("_"):
                    continue
                fn = member.fget if isinstance(member, property) else member
                if not inspect.isfunction(fn):
                    continue
                if not (inspect.getdoc(fn) or "").strip():
                    missing.append(f"{module.__name__}.{cname}.{mname}")
    offenders = sorted(set(missing))
    assert not offenders, f"undocumented methods ({len(offenders)}): {offenders}"
