"""Tests for network/profile/mapping/result persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import Approach, MappingPipeline
from repro.profilers import TrafficProfile
from repro.routing import ForwardingPlane
from repro.routing.bgp import configure_bgp
from repro.serialization import (
    load_mapping_assignment,
    load_network,
    load_profile,
    mapping_to_dict,
    network_from_dict,
    network_to_dict,
    result_to_dict,
    save_mapping,
    save_network,
    save_profile,
    save_result,
)


class TestNetworkRoundTrip:
    def test_flat_network(self, flat_net, tmp_path):
        path = tmp_path / "net.json"
        save_network(flat_net, path)
        loaded = load_network(path)
        assert loaded.num_nodes == flat_net.num_nodes
        assert loaded.num_links == flat_net.num_links
        for a, b in zip(flat_net.nodes, loaded.nodes):
            assert (a.node_id, a.kind, a.as_id, a.position) == (
                b.node_id, b.kind, b.as_id, b.position
            )
        for a, b in zip(flat_net.links, loaded.links):
            assert (a.u, a.v, a.bandwidth_bps, a.latency_s, a.queue_bytes) == (
                b.u, b.v, b.bandwidth_bps, b.latency_s, b.queue_bytes
            )

    def test_multi_as_preserves_relationships(self, multi_net, tmp_path):
        path = tmp_path / "multi.json"
        save_network(multi_net, path)
        loaded = load_network(path)
        assert set(loaded.as_domains) == set(multi_net.as_domains)
        for as_id, dom in multi_net.as_domains.items():
            got = loaded.as_domains[as_id]
            assert got.tier == dom.tier
            assert got.providers == dom.providers
            assert got.customers == dom.customers
            assert got.peers == dom.peers
            assert got.border_links == dom.border_links
            assert got.default_routes == dom.default_routes

    def test_loaded_network_routes_identically(self, multi_net, tmp_path):
        path = tmp_path / "multi.json"
        save_network(multi_net, path)
        loaded = load_network(path)
        bgp_a = configure_bgp(multi_net)
        bgp_b = configure_bgp(loaded)
        hosts = multi_net.host_ids()
        fib_a = ForwardingPlane(multi_net, bgp_a)
        fib_b = ForwardingPlane(loaded, bgp_b)
        assert fib_a.node_path(hosts[0], hosts[-1]) == fib_b.node_path(
            hosts[0], hosts[-1]
        )

    def test_version_check(self, flat_net):
        doc = network_to_dict(flat_net)
        doc["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            network_from_dict(doc)


class TestProfileRoundTrip:
    def test_npz(self, tmp_path):
        profile = TrafficProfile(
            node_events=np.arange(5.0),
            link_bytes=np.array([10.0, 20.0]),
            link_packets=np.array([1.0, 2.0]),
            duration_s=3.5,
        )
        path = tmp_path / "profile.npz"
        save_profile(profile, path)
        loaded = load_profile(path)
        assert np.array_equal(loaded.node_events, profile.node_events)
        assert np.array_equal(loaded.link_bytes, profile.link_bytes)
        assert loaded.duration_s == 3.5


class TestMappingRoundTrip:
    def test_save_load(self, flat_net, tmp_path):
        pipeline = MappingPipeline.for_network(flat_net, num_engines=4)
        mapping = pipeline.run(Approach.HTOP)
        path = tmp_path / "mapping.json"
        save_mapping(mapping, path)
        approach, assignment, engines = load_mapping_assignment(path)
        assert approach is Approach.HTOP
        assert engines == 4
        assert np.array_equal(assignment, mapping.assignment)

    def test_dict_includes_sweep_and_eval(self, flat_net):
        pipeline = MappingPipeline.for_network(flat_net, num_engines=4)
        mapping = pipeline.run(Approach.HTOP)
        doc = mapping_to_dict(mapping)
        assert doc["evaluation"]["efficiency"] == pytest.approx(
            mapping.evaluation.efficiency
        )
        assert len(doc["sweep"]) == len(mapping.sweep)
        json.dumps(doc)  # JSON-serializable

    def test_infinite_mll_serializes(self, flat_net, tmp_path):
        pipeline = MappingPipeline.for_network(flat_net, num_engines=1)
        mapping = pipeline.run(Approach.TOP)
        doc = mapping_to_dict(mapping)
        assert doc["evaluation"]["mll_s"] is None  # inf -> null
        json.dumps(doc)


class TestResultSerialization:
    def test_result_dict(self, tmp_path):
        from repro.experiments import ExperimentScale, run_experiment
        from repro.core import Approach

        scale = ExperimentScale(
            name="io-test",
            flat_routers=60,
            flat_hosts=24,
            num_ases=4,
            routers_per_as=8,
            multi_hosts=16,
            http_clients=10,
            http_servers=4,
            http_mean_gap_s=0.5,
            num_engines=4,
            app_processes=3,
            scalapack_iterations=1,
            duration_s=3.0,
            profile_duration_s=1.5,
        )
        result = run_experiment(
            "single-as", "scalapack", approaches=[Approach.HTOP], scale=scale
        )
        doc = result_to_dict(result)
        assert doc["rows"][0]["approach"] == "HTOP"
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["network_kind"] == "single-as"
        assert loaded["total_events"] == result.total_events
