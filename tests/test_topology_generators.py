"""Tests for BRITE-style and maBrite topology generation."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.topology import (
    ASTier,
    MIN_LINK_LATENCY_S,
    NodeKind,
    Plane,
    assign_relationships,
    classify_ases,
    generate_as_level_topology,
    generate_flat_network,
    generate_multi_as_network,
    powerlaw_edges,
    waxman_edges,
)
from repro.topology.brite import assign_bandwidths, CAPACITY_LADDER_BPS


class TestPowerlawEdges:
    def test_connected(self):
        rng = np.random.default_rng(0)
        u, v = powerlaw_edges(100, 2, rng)
        from repro.partition import WeightedGraph

        assert WeightedGraph(100, u, v).is_connected()

    def test_edge_count(self):
        rng = np.random.default_rng(0)
        u, v = powerlaw_edges(100, 2, rng)
        # clique seed C(3,2)=3 edges + 97 nodes x 2
        assert len(u) == 3 + 97 * 2

    def test_heavy_tail_degree(self):
        rng = np.random.default_rng(1)
        u, v = powerlaw_edges(500, 2, rng)
        deg = np.zeros(500)
        np.add.at(deg, u, 1)
        np.add.at(deg, v, 1)
        # Preferential attachment: max degree far above the mean.
        assert deg.max() > 5 * deg.mean()

    def test_tiny_inputs(self):
        rng = np.random.default_rng(0)
        u, v = powerlaw_edges(1, 2, rng)
        assert len(u) == 0
        u, v = powerlaw_edges(2, 5, rng)
        assert len(u) == 1  # m clamped to n-1


class TestWaxmanEdges:
    def test_connected_by_construction(self, rng):
        pts = Plane(100, 100).random_points(60, rng)
        u, v = waxman_edges(pts, np.random.default_rng(3))
        from repro.partition import WeightedGraph

        assert WeightedGraph(60, u, v).is_connected()

    def test_distance_bias(self, rng):
        # With strong locality (small beta), short edges dominate.
        pts = Plane(1000, 1000).random_points(80, rng)
        u, v = waxman_edges(pts, np.random.default_rng(5), alpha=0.9, beta=0.05)
        d = np.linalg.norm(pts[u] - pts[v], axis=1)
        all_d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        assert np.median(d) < np.median(all_d[np.triu_indices(80, 1)])

    def test_tiny(self):
        u, v = waxman_edges(np.zeros((1, 2)), np.random.default_rng(0))
        assert len(u) == 0


class TestBandwidthAssignment:
    def test_values_from_ladder(self, rng):
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 0])
        deg = np.array([2, 2, 2])
        bw = assign_bandwidths(u, v, deg, rng)
        assert all(b in CAPACITY_LADDER_BPS for b in bw)

    def test_high_degree_gets_fat_pipes(self):
        rng = np.random.default_rng(0)
        # Edges sorted by degree-sum: endpoint degrees 1..100
        m = 200
        u = np.zeros(m, dtype=np.int64)
        v = np.arange(m, dtype=np.int64)
        deg = np.arange(m + 1)
        bw = assign_bandwidths(u, v, deg, rng)
        assert bw[-20:].mean() > bw[:20].mean()

    def test_empty(self, rng):
        out = assign_bandwidths(np.empty(0, int), np.empty(0, int), np.empty(0), rng)
        assert out.size == 0


class TestFlatNetwork:
    def test_counts(self, flat_net):
        assert flat_net.num_routers == 150
        assert flat_net.num_hosts == 50
        assert flat_net.is_connected()

    def test_single_as(self, flat_net):
        assert set(n.as_id for n in flat_net.nodes) == {0}
        assert 0 in flat_net.as_domains

    def test_latency_floor(self, flat_net):
        assert flat_net.min_link_latency() >= MIN_LINK_LATENCY_S * 0.999

    def test_hosts_attached_to_routers(self, flat_net):
        for h in flat_net.host_ids():
            nbrs = list(flat_net.neighbors(h))
            assert len(nbrs) == 1
            assert flat_net.nodes[nbrs[0][0]].kind is NodeKind.ROUTER

    def test_deterministic(self):
        a = generate_flat_network(num_routers=50, num_hosts=10, seed=9)
        b = generate_flat_network(num_routers=50, num_hosts=10, seed=9)
        assert a.num_links == b.num_links
        assert [l.latency_s for l in a.links] == [l.latency_s for l in b.links]

    def test_waxman_model(self):
        net = generate_flat_network(num_routers=60, num_hosts=10, seed=2, model="waxman")
        assert net.is_connected()

    def test_default_host_count(self):
        net = generate_flat_network(num_routers=40, seed=1)
        assert net.num_hosts == 20


class TestASClassification:
    def test_tiers_cover_all(self):
        rng = np.random.default_rng(0)
        edges = generate_as_level_topology(50, rng)
        tiers = classify_ases(50, edges)
        assert set(tiers) == set(range(50))

    def test_core_is_top_degree(self):
        rng = np.random.default_rng(0)
        edges = generate_as_level_topology(50, rng)
        tiers = classify_ases(50, edges, core_fraction=0.04)
        deg = Counter()
        for a, b in edges:
            deg[a] += 1
            deg[b] += 1
        cores = [a for a, t in tiers.items() if t is ASTier.CORE]
        non_core_max = max(deg[a] for a, t in tiers.items() if t is not ASTier.CORE)
        assert min(deg[c] for c in cores) >= non_core_max * 0.5
        assert len(cores) == 2

    def test_stubs_low_degree(self):
        rng = np.random.default_rng(1)
        edges = generate_as_level_topology(60, rng)
        tiers = classify_ases(60, edges)
        deg = Counter()
        for a, b in edges:
            deg[a] += 1
            deg[b] += 1
        for a, t in tiers.items():
            if t is ASTier.STUB:
                assert deg[a] <= 2


class TestRelationships:
    def _topo(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        edges = generate_as_level_topology(n, rng)
        tiers = classify_ases(n, edges)
        return assign_relationships(n, edges, tiers, rng)

    def test_symmetry(self):
        topo = self._topo()
        for a in range(topo.num_ases):
            for p in topo.providers[a]:
                assert a in topo.customers[p]
            for c in topo.customers[a]:
                assert a in topo.providers[c]
            for q in topo.peers[a]:
                assert a in topo.peers[q]

    def test_every_non_core_has_provider(self):
        topo = self._topo()
        for a in range(topo.num_ases):
            if topo.tiers[a] is not ASTier.CORE:
                assert topo.providers[a], f"AS {a} has no provider"

    def test_core_clique(self):
        topo = self._topo()
        cores = [a for a in range(topo.num_ases) if topo.tiers[a] is ASTier.CORE]
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                assert b in topo.peers[a]

    def test_provider_path_to_core(self):
        topo = self._topo()
        for a in range(topo.num_ases):
            seen = set()
            frontier = {a}
            reached_core = topo.tiers[a] is ASTier.CORE
            while frontier and not reached_core:
                nxt = set()
                for x in frontier:
                    for p in topo.providers[x]:
                        if topo.tiers[p] is ASTier.CORE:
                            reached_core = True
                        if p not in seen:
                            seen.add(p)
                            nxt.add(p)
                frontier = nxt
            assert reached_core, f"AS {a} cannot climb to the core"


class TestMultiAsNetwork:
    def test_structure(self, multi_net):
        assert len(multi_net.as_domains) == 12
        assert multi_net.num_routers == 144
        assert multi_net.is_connected()

    def test_hosts_on_stubs_only(self, multi_net):
        stub_ases = {
            a for a, d in multi_net.as_domains.items() if d.tier is ASTier.STUB
        }
        if stub_ases:  # tiny nets may classify no stubs
            for h in multi_net.host_ids():
                assert multi_net.nodes[h].as_id in stub_ases

    def test_border_links_symmetric(self, multi_net):
        for as_id, dom in multi_net.as_domains.items():
            for nbr, links in dom.border_links.items():
                other = multi_net.as_domains[nbr].border_links[as_id]
                assert {(b, a) for a, b in links} == set(other)

    def test_border_links_match_relationships(self, multi_net):
        for as_id, dom in multi_net.as_domains.items():
            assert set(dom.border_links) == dom.neighbor_ases

    def test_stub_default_routes(self, multi_net):
        for as_id, dom in multi_net.as_domains.items():
            if dom.tier is ASTier.STUB:
                assert dom.default_routes
                for egress, provider in dom.default_routes:
                    assert provider in dom.providers
                    assert egress in dom.routers

    def test_border_routers_in_their_as(self, multi_net):
        for as_id, dom in multi_net.as_domains.items():
            for nbr, links in dom.border_links.items():
                for local, remote in links:
                    assert multi_net.nodes[local].as_id == as_id
                    assert multi_net.nodes[remote].as_id == nbr
