"""Ablation 2: the multilevel partitioner vs simpler baselines.

The hierarchical scheme assumes a partitioner with METIS's contract
(balanced weights, small cut, fast). This ablation compares our
multilevel k-way against random, round-robin, BFS blocks, ModelNet's
greedy k-cluster, and spectral bisection on the experiment network graph,
and times the multilevel partitioner (the paper's feasibility argument:
"METIS can partition a graph with 10,000 vertexes in about 10 seconds").
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import Approach, build_weighted_graph
from repro.experiments import build_network, default_scale
from repro.partition import (
    bfs_block_partition,
    coordinate_bisection,
    greedy_k_cluster,
    partition_kway,
    random_partition,
    round_robin_partition,
    spectral_partition_kway,
)

BASELINES = {
    "random": lambda g, k, pos: random_partition(g, k, seed=0),
    "round-robin": lambda g, k, pos: round_robin_partition(g, k),
    "bfs-blocks": lambda g, k, pos: bfs_block_partition(g, k, seed=0),
    "greedy-k-cluster": lambda g, k, pos: greedy_k_cluster(g, k, seed=0),
    "geographic": lambda g, k, pos: coordinate_bisection(g, pos, k),
    "spectral": lambda g, k, pos: spectral_partition_kway(g, k, seed=0),
    "multilevel": lambda g, k, pos: partition_kway(g, k, seed=0),
}


def test_ablation_partitioner_quality(benchmark):
    scale = default_scale()
    net, _fib = build_network("single-as", scale, seed=0)
    graph = build_weighted_graph(net, Approach.TOP)
    positions = np.array([n.position for n in net.nodes])
    k = scale.num_engines

    rows = {}
    for name, fn in BASELINES.items():
        t0 = time.perf_counter()
        res = fn(graph, k, positions)
        rows[name] = (res.edge_cut, res.balance, time.perf_counter() - t0)

    benchmark(partition_kway, graph, k, 0)

    print("\nAblation 2: partitioner comparison "
          f"(n={graph.num_vertices}, m={graph.num_edges}, k={k})")
    print(f"{'partitioner':<18}{'edge cut':>14}{'balance':>10}{'time (s)':>10}")
    for name, (cut, bal, dt) in rows.items():
        print(f"{name:<18}{cut:>14.1f}{bal:>10.3f}{dt:>10.3f}")

    ml_cut, ml_bal, _ = rows["multilevel"]
    assert ml_cut < rows["random"][0], "multilevel beats random on cut"
    assert ml_cut < rows["round-robin"][0]
    assert ml_bal < 1.6, "multilevel stays balanced"
    # The best cut among all candidates belongs to multilevel or spectral
    # (the two that optimize the cut objective).
    best = min(cut for cut, _, _ in rows.values())
    assert ml_cut <= best * 1.5
