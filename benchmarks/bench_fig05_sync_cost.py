"""Figure 5: synchronization cost of the TeraGrid cluster vs node count.

Paper series: cost grows monotonically over 6..112 nodes, ~0.58 ms near
100 nodes. The benchmark times the model evaluation (it is called once
per candidate threshold inside the HPROF sweep, so it must be cheap).
"""

from __future__ import annotations

from repro.cluster import SyncCostModel


def test_fig05_sync_cost_series(benchmark):
    model = SyncCostModel()
    nodes = [6, 16, 48, 80, 112]

    def evaluate():
        return [model(n) for n in nodes]

    costs = benchmark(evaluate)

    print("\nFigure 5: Synchronization Cost of the TeraGrid Cluster")
    print(f"{'nodes':>8}{'cost (us)':>12}")
    for n, c in zip(nodes, costs):
        print(f"{n:>8}{c * 1e6:>12.0f}")

    assert all(b > a for a, b in zip(costs, costs[1:])), "must grow with N"
    assert 0.4e-3 < model(100) < 0.8e-3, "paper anchor: ~0.58 ms at 100 nodes"
