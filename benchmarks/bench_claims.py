"""Headline claims (abstract / Section 7), aggregated over the figures.

Paper: "HPROF can improve load imbalance by 40%, and reduce the
simulation time by about 50% in our 20,000 router simulations ... The
parallel efficiency achieved by these simulations is over 40%."

At sub-paper scale the *directions* must hold and the magnitudes are
recorded (EXPERIMENTS.md tabulates paper-vs-measured).
"""

from __future__ import annotations

import numpy as np

from repro.core import Approach
from repro.experiments import ExperimentResult


def _gain(result: ExperimentResult, metric: str, better: Approach, worse: Approach) -> float:
    b = result.metric(better, metric)
    w = result.metric(worse, metric)
    return (w - b) / w if w else 0.0


def test_claim_simulation_time_reduction(
    benchmark,
    single_as_scalapack,
    single_as_gridnpb,
    multi_as_scalapack,
    multi_as_gridnpb,
):
    results = [
        single_as_scalapack,
        single_as_gridnpb,
        multi_as_scalapack,
        multi_as_gridnpb,
    ]
    gains = benchmark(
        lambda: [_gain(r, "sim_time_s", Approach.HPROF, Approach.TOP2) for r in results]
    )
    print("\nClaim: HPROF reduces simulation time vs TOP2 (paper: ~50%)")
    for r, g in zip(results, gains):
        print(f"  {r.network_kind:>10}/{r.app_kind:<10} {g * 100:6.1f}%")
    assert all(g > 0 for g in gains), "HPROF must reduce time in every experiment"
    assert max(gains) > 0.10, "at least one experiment shows a double-digit gain"


def test_claim_load_imbalance_improvement(
    benchmark,
    single_as_scalapack,
    single_as_gridnpb,
    multi_as_scalapack,
    multi_as_gridnpb,
):
    results = [
        single_as_scalapack,
        single_as_gridnpb,
        multi_as_scalapack,
        multi_as_gridnpb,
    ]
    gains = benchmark(
        lambda: [
            _gain(r, "load_imbalance", Approach.HPROF, Approach.HTOP) for r in results
        ]
    )
    print("\nClaim: HPROF improves load imbalance vs HTOP (paper: ~40% overall)")
    for r, g in zip(results, gains):
        print(f"  {r.network_kind:>10}/{r.app_kind:<10} {g * 100:6.1f}%")
    assert all(g > 0 for g in gains)
    assert np.mean(gains) > 0.10


def test_claim_parallel_efficiency(
    benchmark,
    single_as_scalapack,
    single_as_gridnpb,
    multi_as_scalapack,
    multi_as_gridnpb,
):
    results = [
        single_as_scalapack,
        single_as_gridnpb,
        multi_as_scalapack,
        multi_as_gridnpb,
    ]
    pes = benchmark(
        lambda: [r.metric(Approach.HPROF, "parallel_efficiency") for r in results]
    )
    print("\nClaim: HPROF parallel efficiency (paper: >40% at 90 engines)")
    for r, pe in zip(results, pes):
        improvement = (
            pe / r.metric(Approach.TOP2, "parallel_efficiency") - 1.0
        ) * 100.0
        print(
            f"  {r.network_kind:>10}/{r.app_kind:<10} PE={pe:.3f} "
            f"(+{improvement:.0f}% vs TOP2)"
        )
    assert all(pe > 0.05 for pe in pes)
    for r, pe in zip(results, pes):
        assert pe > r.metric(Approach.TOP2, "parallel_efficiency")
