"""Figures 6-9: the single-AS (flat OSPF) evaluation.

- Fig 6: application simulation time per mapping approach,
- Fig 7: achieved MLL (including the untuned TOP/PROF),
- Fig 8: load imbalance,
- Fig 9: parallel efficiency.

Paper shapes asserted (Section 4.3): hierarchical MLL >> flat; HPROF's
simulation time below PROF2 below TOP2; profile-based imbalance below
topology-based; HPROF's parallel efficiency the best, well above TOP2.

The `benchmark` fixture times the *mapping evaluation* step (scoring one
mapping against the recorded run) — the operation a user iterates on.
"""

from __future__ import annotations

import numpy as np

from repro.core import Approach
from repro.engine.costmodel import predict_from_trace
from repro.experiments import format_figure


def _print(results, metric):
    print()
    print(format_figure(results, metric))


def test_fig06_simulation_time(benchmark, single_as_scalapack, single_as_gridnpb):
    results = [single_as_scalapack, single_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "sim_time_s") for r in results])
    _print(results, "sim_time_s")
    for r in results:
        t = {row.approach: row.sim_time_s for row in r.rows}
        assert t[Approach.HPROF] < t[Approach.TOP2], "HPROF must beat TOP2"
        assert t[Approach.HPROF] <= t[Approach.PROF2] * 1.02, "HPROF <= PROF2"
        assert t[Approach.PROF2] < t[Approach.TOP2], "PROF2 must beat TOP2 (Fig 6)"


def test_fig07_achieved_mll(benchmark, single_as_scalapack, single_as_gridnpb):
    results = [single_as_scalapack, single_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "achieved_mll_ms") for r in results])
    _print(results, "achieved_mll_ms")
    for r in results:
        mll = {row.approach: row.achieved_mll_ms for row in r.rows}
        flat = [mll[a] for a in (Approach.TOP, Approach.TOP2, Approach.PROF, Approach.PROF2)]
        # Hierarchical approaches lift the MLL above every flat approach
        # (the paper's tiny-TOP/PROF-MLL story; at 20k routers the gap is
        # 0.1 ms vs 3 ms — at small scale the direction is what survives).
        assert mll[Approach.HPROF] >= max(flat)
        assert mll[Approach.HTOP] >= 0.9 * max(flat)
        # And at least one flat mapping sits at half the HPROF MLL or less.
        assert min(flat) <= 0.5 * mll[Approach.HPROF]


def test_fig08_load_imbalance(benchmark, single_as_scalapack, single_as_gridnpb):
    results = [single_as_scalapack, single_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "load_imbalance") for r in results])
    _print(results, "load_imbalance")
    for r in results:
        imb = {row.approach: row.measured_imbalance for row in r.rows}
        assert imb[Approach.PROF2] < imb[Approach.TOP2], "profiles improve balance"
        assert imb[Approach.HPROF] < imb[Approach.HTOP], "HPROF beats HTOP (Fig 8)"


def test_fig09_parallel_efficiency(benchmark, single_as_scalapack, single_as_gridnpb):
    results = [single_as_scalapack, single_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "parallel_efficiency") for r in results])
    _print(results, "parallel_efficiency")
    for r in results:
        pe = {row.approach: row.parallel_eff for row in r.rows}
        assert pe[Approach.HPROF] > pe[Approach.TOP2], "HPROF PE above TOP2 (Fig 9)"
        assert pe[Approach.HPROF] == max(pe.values()), "HPROF PE is the best"


def test_mapping_evaluation_cost(benchmark, single_as_scalapack):
    """Time one mapping evaluation against the recorded trace (the inner
    loop of the figure pipeline)."""
    result = single_as_scalapack
    row = result.row(Approach.HPROF)
    # Reconstruct the evaluation inputs from the stored prediction.
    events = row.prediction.events_per_lp
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, result.duration_s, 50_000))
    nodes = rng.integers(0, len(row.mapping.assignment), 50_000)
    from repro.experiments.runner import cluster_for_scale
    from repro.experiments import default_scale

    cluster = cluster_for_scale(default_scale())
    benchmark(
        predict_from_trace,
        times,
        nodes,
        row.mapping.assignment,
        result.num_engines,
        row.mapping.achieved_mll_s,
        result.duration_s,
        cluster,
    )
    assert events.sum() > 0
