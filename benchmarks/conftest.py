"""Shared experiment cache for the figure benchmarks.

Each (network, application) experiment is expensive (a full packet-level
simulation run); all figure benchmarks of one network kind share it.
Scale is selected with ``REPRO_SCALE`` (default ``small``).
"""

from __future__ import annotations

import pytest

from repro.core import Approach
from repro.experiments import default_scale, run_experiment

_cache: dict = {}

#: Figures 7/11 include TOP and PROF (whose tiny MLL is the motivation for
#: the hierarchical approaches), so every cached run maps all six.
ALL_APPROACHES = [
    Approach.HPROF,
    Approach.PROF2,
    Approach.HTOP,
    Approach.TOP2,
    Approach.PROF,
    Approach.TOP,
]


def cached_experiment(network_kind: str, app_kind: str, seed: int = 0):
    key = (network_kind, app_kind, seed, default_scale().name)
    if key not in _cache:
        _cache[key] = run_experiment(
            network_kind, app_kind, approaches=list(ALL_APPROACHES), seed=seed
        )
    return _cache[key]


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def single_as_scalapack():
    return cached_experiment("single-as", "scalapack")


@pytest.fixture(scope="session")
def single_as_gridnpb():
    return cached_experiment("single-as", "gridnpb")


@pytest.fixture(scope="session")
def multi_as_scalapack():
    return cached_experiment("multi-as", "scalapack")


@pytest.fixture(scope="session")
def multi_as_gridnpb():
    return cached_experiment("multi-as", "gridnpb")
