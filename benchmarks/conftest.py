"""Shared experiment cache for the figure benchmarks.

Each (network, application) experiment is expensive (a full packet-level
simulation run); all figure benchmarks of one network kind share it.
Scale is selected with ``REPRO_SCALE`` (default ``small``).

Pass ``--obs-out DIR`` to record every cached experiment's observability
snapshot (per-node/per-link counters, the Figure 3 rate series) as
``DIR/<network>_<app>_seed<seed>_<scale>.json`` — the PROF/HPROF input
of each benchmark run, captured live (see docs/observability.md).
"""

from __future__ import annotations

import os

import pytest

from repro.core import Approach
from repro.experiments import default_scale, run_experiment

_cache: dict = {}
_obs_dir: str | None = None

#: Figures 7/11 include TOP and PROF (whose tiny MLL is the motivation for
#: the hierarchical approaches), so every cached run maps all six.
ALL_APPROACHES = [
    Approach.HPROF,
    Approach.PROF2,
    Approach.HTOP,
    Approach.TOP2,
    Approach.PROF,
    Approach.TOP,
]


def pytest_addoption(parser):
    parser.addoption(
        "--obs-out",
        default=None,
        metavar="DIR",
        help="directory to write per-experiment observability snapshots (JSON)",
    )


def pytest_configure(config):
    global _obs_dir
    _obs_dir = config.getoption("--obs-out", default=None)
    if _obs_dir:
        os.makedirs(_obs_dir, exist_ok=True)


def cached_experiment(network_kind: str, app_kind: str, seed: int = 0):
    key = (network_kind, app_kind, seed, default_scale().name)
    if key not in _cache:
        obs_out = None
        if _obs_dir:
            obs_out = os.path.join(
                _obs_dir,
                f"{network_kind}_{app_kind}_seed{seed}_{default_scale().name}.json",
            )
        _cache[key] = run_experiment(
            network_kind,
            app_kind,
            approaches=list(ALL_APPROACHES),
            seed=seed,
            obs_out=obs_out,
        )
    return _cache[key]


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def single_as_scalapack():
    return cached_experiment("single-as", "scalapack")


@pytest.fixture(scope="session")
def single_as_gridnpb():
    return cached_experiment("single-as", "gridnpb")


@pytest.fixture(scope="session")
def multi_as_scalapack():
    return cached_experiment("multi-as", "scalapack")


@pytest.fixture(scope="session")
def multi_as_gridnpb():
    return cached_experiment("multi-as", "gridnpb")
