"""Figure 3: load variation over the lifetime of the simulation.

The paper's Figure 3 motivates profile-based balance: per-engine event
rates vary greatly over time and across engines. We regenerate the
series from the recorded single-AS run bucketed under the HPROF mapping
and verify the variation is real (the coefficient of variation across
time and engines is substantial).
"""

from __future__ import annotations

import numpy as np

from repro.core import Approach
from repro.experiments import build_network, default_scale, run_workload_simulation
from repro.profilers import node_rate_series


def test_fig03_load_variation(benchmark, single_as_scalapack):
    result = single_as_scalapack
    mapping = result.row(Approach.HPROF).mapping

    # Re-run a short version of the workload to get a fresh trace (the
    # cached experiment does not retain its trace arrays).
    scale = default_scale()
    net, fib = build_network("single-as", scale, seed=0)
    duration = min(scale.duration_s, 8.0)
    kernel, sim, _ = run_workload_simulation(net, fib, "scalapack", scale, duration, 0)
    times, nodes = kernel.trace()

    bin_s = duration / 16
    starts, rates = benchmark(
        node_rate_series,
        times,
        nodes,
        mapping.assignment,
        result.num_engines,
        bin_s,
        duration,
    )

    print("\nFigure 3: per-engine event rate over time (events/s)")
    print(f"{'t (s)':>7}" + "".join(f"lp{j:<2}{'':>4}" for j in range(min(6, rates.shape[1]))))
    for t, row in zip(starts, rates):
        cells = "".join(f"{v:>8.0f}" for v in row[:6])
        print(f"{t:>7.2f}{cells}")

    assert rates.shape == (16, result.num_engines)
    assert rates.sum() > 0
    # Load varies over time (aggregate CV visibly non-zero; the warm-up
    # ramp alone guarantees the first bins differ from steady state)...
    per_bin = rates.sum(axis=1)
    assert per_bin.std() / per_bin.mean() > 0.05
    assert per_bin.max() > 1.15 * per_bin.mean()
    # ...and much more across engines within a bin — the skew that load
    # balance has to fight (Figure 3's point).
    busiest = int(np.argmax(per_bin))
    row = rates[busiest]
    assert row.max() > 1.3 * row.mean()
