"""Ablation 3: BGP policy routing vs flat shortest-path routing.

Section 5's premise: "connectivity does not equal reachability" and
policy routing shapes traffic differently from shortest paths, which is
why multi-AS load balance is harder. This ablation runs at the paper's
AS-level scale (100 ASes) — path inflation is a large-graph phenomenon
that a handful of ASes with a dense repaired core cannot show — and
measures:

- BGP convergence cost (benchmark target),
- AS-path inflation: policy paths are never shorter than shortest
  AS-graph paths and strictly longer for a visible fraction of pairs,
- valley-free compliance of every best route,
- that removing the relationship repair step breaks reachability
  ("connectivity does not equal reachability").
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.routing.bgp import BgpEngine, BgpSpeaker, is_valley_free
from repro.topology import (
    assign_relationships,
    classify_ases,
    generate_as_level_topology,
)

NUM_ASES = 100  # the paper's AS count


def _build_topology(seed: int = 0):
    rng = np.random.default_rng(seed)
    edges = generate_as_level_topology(NUM_ASES, rng)
    tiers = classify_ases(NUM_ASES, edges)
    return assign_relationships(NUM_ASES, edges, tiers, rng)


def _speakers(topo):
    speakers = {}
    for a in range(topo.num_ases):
        rels: dict[int, str] = {}
        for p in topo.providers[a]:
            rels[p] = "provider"
        for c in topo.customers[a]:
            rels[c] = "customer"
        for q in topo.peers[a]:
            rels[q] = "peer"
        speakers[a] = BgpSpeaker(a, rels)
    return speakers


def test_ablation_bgp_policy_vs_shortest_path(benchmark):
    topo = _build_topology(seed=0)

    def converge():
        engine = BgpEngine(_speakers(topo))
        engine.run()
        return engine

    engine = benchmark.pedantic(converge, rounds=1, iterations=1)

    as_graph = nx.Graph()
    as_graph.add_nodes_from(range(topo.num_ases))
    as_graph.add_edges_from(topo.edges)
    sp_len = dict(nx.all_pairs_shortest_path_length(as_graph))

    def rel(a, b):
        if b in topo.providers[a]:
            return "provider"
        if b in topo.customers[a]:
            return "customer"
        return "peer"

    inflated = total = violations = unreachable = 0
    for a in range(topo.num_ases):
        for b in range(topo.num_ases):
            if a == b:
                continue
            total += 1
            path = engine.as_path(a, b)
            if path is None:
                unreachable += 1
                continue
            hops = len(path) - 1
            assert hops >= sp_len[a][b], "policy path cannot undercut shortest"
            if hops > sp_len[a][b]:
                inflated += 1
            if not is_valley_free(tuple(path[1:]), b, rel):
                violations += 1

    print(f"\nAblation 3: BGP policy vs shortest path ({NUM_ASES} ASes)")
    print(f"  converged in:        {engine.iterations} iterations")
    print(f"  AS pairs:            {total}")
    print(f"  unreachable pairs:   {unreachable}")
    print(f"  inflated paths:      {inflated} ({100 * inflated / total:.1f}%)")
    print(f"  valley violations:   {violations}")

    assert violations == 0, "all best routes must be valley-free"
    assert unreachable == 0, "repaired hierarchy guarantees reachability"
    assert inflated > 0.01 * total, "policy must inflate a visible share of paths"


def test_ablation_connectivity_is_not_reachability(benchmark):
    """Without the repair step, stub-only neighborhoods lose global
    reachability even though the raw graph is connected — the paper's
    motivating observation for realistic routing configuration."""
    # Stub chain under one provider pair with NO peering between providers:
    # 2 - 0 and 3 - 1 are provider links; 0 - 1 is a stub peer link.
    def converge():
        speakers = {
            0: BgpSpeaker(0, {2: "provider", 1: "peer"}),
            1: BgpSpeaker(1, {3: "provider", 0: "peer"}),
            2: BgpSpeaker(2, {0: "customer"}),
            3: BgpSpeaker(3, {1: "customer"}),
        }
        engine = BgpEngine(speakers)
        engine.run()
        return engine

    engine = benchmark(converge)
    # 0 and 1 reach each other via the peer link...
    assert engine.route(0, 1) is not None
    # ...but their providers cannot see across (no transit over peers):
    # the underlying graph is connected, yet 2 cannot reach 3.
    assert engine.route(2, 3) is None
    assert engine.route(3, 2) is None
