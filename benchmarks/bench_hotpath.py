"""Hot-path benchmarks: pending-event-set ops and per-hop packet cost.

The `benchmark` fixture times the overhauled path; each test also runs
the frozen pre-overhaul replica (`repro.bench.baseline`) once and
asserts the overhaul's speedup still holds, with deliberately loose
bounds — the committed ``BENCH_<date>.json`` trajectory
(``python -m repro bench``) tracks the precise numbers, this guards the
direction under pytest-benchmark's timing.
"""

from __future__ import annotations

from repro.bench.micro import bench_hop_throughput, bench_queue_ops


def test_queue_ops_adaptive_vs_legacy(benchmark):
    r = benchmark(
        lambda: bench_queue_ops("adaptive", prefill=4096, iterations=30_000)
    )
    legacy = bench_queue_ops("legacy", prefill=4096, iterations=30_000)
    speedup = r["ops_s"] / legacy["ops_s"]
    print(f"\nqueue ops: {r['ops_s']:,.0f}/s vs legacy {legacy['ops_s']:,.0f}/s "
          f"({speedup:.2f}x)")
    assert speedup > 2.0, "tuple-heap queue must stay well ahead of the legacy heap"


def test_hop_throughput_vs_legacy(benchmark):
    r = benchmark(lambda: bench_hop_throughput("new", packets=1_000, chain_nodes=33))
    legacy = bench_hop_throughput("legacy", packets=1_000, chain_nodes=33)
    speedup = r["packets_s"] / legacy["packets_s"]
    print(f"\nhop throughput: {r['packets_s']:,.0f} hops/s vs legacy "
          f"{legacy['packets_s']:,.0f} hops/s ({speedup:.2f}x)")
    assert speedup > 1.2, "closure-free hop path must stay ahead of the legacy path"
