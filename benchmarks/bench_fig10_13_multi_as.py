"""Figures 10-13: the multi-AS (100-AS BGP4+OSPF, scaled) evaluation.

- Fig 10: application simulation time per mapping approach,
- Fig 11: achieved MLL (hierarchical up to ~10x the flat approaches),
- Fig 12: load imbalance (larger than single-AS; profile gains bigger),
- Fig 13: parallel efficiency (HPROF ~best).

Robust paper shapes are asserted; the PROF2-vs-TOP2 *time* ordering is
printed but not asserted — it rides on the flat partitioner's achieved
MLL, which the paper could only stabilize by manual per-topology tuning
(the non-generality HPROF was invented to fix). See EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core import Approach
from repro.experiments import format_figure


def _print(results, metric):
    print()
    print(format_figure(results, metric))


def test_fig10_simulation_time(benchmark, multi_as_scalapack, multi_as_gridnpb):
    results = [multi_as_scalapack, multi_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "sim_time_s") for r in results])
    _print(results, "sim_time_s")
    for r in results:
        t = {row.approach: row.sim_time_s for row in r.rows}
        assert t[Approach.HPROF] == min(
            t[a] for a in (Approach.HPROF, Approach.PROF2, Approach.HTOP, Approach.TOP2)
        ), "HPROF is the fastest mapping (Fig 10)"
        assert t[Approach.HPROF] < t[Approach.TOP2]


def test_fig11_achieved_mll(benchmark, multi_as_scalapack, multi_as_gridnpb):
    results = [multi_as_scalapack, multi_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "achieved_mll_ms") for r in results])
    _print(results, "achieved_mll_ms")
    for r in results:
        mll = {row.approach: row.achieved_mll_ms for row in r.rows}
        flat = [mll[a] for a in (Approach.TOP, Approach.TOP2, Approach.PROF, Approach.PROF2)]
        # "The hierarchical approaches achieve much larger MLLs, in some
        # cases ten times larger."
        assert mll[Approach.HPROF] >= max(flat)
        assert mll[Approach.HTOP] >= 0.9 * max(flat)
        assert min(flat) <= 0.5 * mll[Approach.HPROF]


def test_fig12_load_imbalance(benchmark, multi_as_scalapack, multi_as_gridnpb):
    results = [multi_as_scalapack, multi_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "load_imbalance") for r in results])
    _print(results, "load_imbalance")
    for r in results:
        imb = {row.approach: row.measured_imbalance for row in r.rows}
        assert imb[Approach.PROF2] < imb[Approach.TOP2], "Fig 12: PROF2 < TOP2"
        assert imb[Approach.HPROF] < imb[Approach.HTOP], "Fig 12: HPROF < HTOP"


def test_fig12_multi_as_harder_than_single_as(
    benchmark, multi_as_scalapack, single_as_scalapack
):
    """"The load imbalance for this multi-AS network is much larger than
    the single-AS network due to the use of BGP routing" — compared on
    the topology-based mappings, where no profile compensates."""
    multi = benchmark(multi_as_scalapack.metric, Approach.HTOP, "load_imbalance")
    single = single_as_scalapack.metric(Approach.HTOP, "load_imbalance")
    print(f"\nHTOP imbalance: single-AS {single:.3f} vs multi-AS {multi:.3f}")
    assert multi > 0.75 * single  # at least comparable; typically larger


def test_fig13_parallel_efficiency(benchmark, multi_as_scalapack, multi_as_gridnpb):
    results = [multi_as_scalapack, multi_as_gridnpb]
    benchmark(lambda: [r.metric(Approach.HPROF, "parallel_efficiency") for r in results])
    _print(results, "parallel_efficiency")
    for r in results:
        pe = {row.approach: row.parallel_eff for row in r.rows}
        assert pe[Approach.HPROF] > pe[Approach.TOP2], "Fig 13: HPROF above TOP2"
        hier_best = max(pe[Approach.HPROF], pe[Approach.HTOP])
        assert hier_best == max(pe.values()), "hierarchical PE dominates"
