"""Ablation 1: the Tmll sweep — the mechanism behind HPROF (§3.4.3).

Regenerates the E(Tmll) = Es(Tmll) * Ec(Tmll) curve on the single-AS
network and verifies the paper's two design arguments:

1. the argmax of E beats the flat partition (threshold 0), and
2. maximizing Es or Ec *alone* picks a worse partition than maximizing
   their product ("Maximizing Es and Ec separately does not work").
"""

from __future__ import annotations

import numpy as np

from repro.core import Approach, build_weighted_graph, hierarchical_partition
from repro.core.mapping import run_profiling_simulation
from repro.experiments import build_network, default_scale, install_workload
from repro.experiments.runner import cluster_for_scale


def test_ablation_tmll_sweep(benchmark):
    scale = default_scale()
    net, fib = build_network("single-as", scale, seed=0)

    def setup(sim, agent):
        install_workload(
            sim, agent, net, "scalapack", scale, 0, duration_s=scale.profile_duration_s
        )

    profile = run_profiling_simulation(net, fib, setup, scale.profile_duration_s)
    graph = build_weighted_graph(net, Approach.HPROF, profile)
    cluster = cluster_for_scale(scale)
    sync = cluster.sync_cost_s(scale.num_engines)

    result = benchmark.pedantic(
        hierarchical_partition,
        args=(graph, scale.num_engines),
        kwargs={"sync_cost_s": sync, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print("\nAblation 1: E(Tmll) sweep (single-AS, HPROF weights)")
    print(f"{'Tmll (ms)':>10}{'coarse n':>10}{'Es':>8}{'Ec':>8}{'E':>8}{'MLL (ms)':>10}")
    for rec in result.sweep:
        e = rec.evaluation
        print(
            f"{rec.tmll_s * 1e3:>10.2f}{rec.coarse_vertices:>10}"
            f"{e.es:>8.3f}{e.ec:>8.3f}{e.efficiency:>8.3f}{e.mll_s * 1e3:>10.3f}"
        )
    print(f"chosen Tmll: {result.tmll_s * 1e3:.2f} ms -> E={result.evaluation.efficiency:.3f}")

    # (1) the argmax beats the flat baseline
    flat = result.sweep[0]
    assert flat.tmll_s == 0.0
    assert result.evaluation.efficiency >= flat.evaluation.efficiency

    # (2) product beats single-factor maximization
    by_es = max(result.sweep, key=lambda r: r.evaluation.es)
    by_ec = max(result.sweep, key=lambda r: r.evaluation.ec)
    assert result.evaluation.efficiency >= by_es.evaluation.efficiency - 1e-12
    assert result.evaluation.efficiency >= by_ec.evaluation.efficiency - 1e-12
    # The sweep must actually explore a range of thresholds.
    assert len(result.sweep) >= 3
    # Es grows with the threshold while Ec degrades toward the tail —
    # the tradeoff the product balances.
    es_vals = [r.evaluation.es for r in result.sweep if r.tmll_s > 0]
    assert es_vals[-1] >= es_vals[0]
