"""Ablation 4: partitioner scaling — the paper's feasibility claim.

"The METIS graph partitioner used in MaSSF can partition a graph with
10,000 vertexes in about 10 seconds. Thus it is fast enough to enable us
to consider thousands of possible Tmll." The hierarchical sweep is only
viable if partitioning is cheap; this benchmark times our multilevel
partitioner across graph sizes up to the paper's 10k-vertex reference
and holds it to the paper's own 10-second bar (on hardware two decades
newer, it should be far under).
"""

from __future__ import annotations

import time

from repro.partition import partition_kway
from repro.topology import generate_flat_network

SIZES = (1_000, 2_500, 5_000, 10_000)
K = 16


def test_ablation_partitioner_scaling(benchmark):
    rows = []
    graphs = {}
    for n in SIZES:
        net = generate_flat_network(num_routers=n, num_hosts=max(1, n // 10), seed=1)
        graphs[n] = net.to_graph()

    for n, g in graphs.items():
        t0 = time.perf_counter()
        res = partition_kway(g, K, seed=0)
        rows.append((n, g.num_edges, time.perf_counter() - t0, res.edge_cut, res.balance))

    # Benchmark target: the paper's 10k-vertex reference case.
    benchmark.pedantic(
        partition_kway, args=(graphs[10_000], K), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )

    print(f"\nAblation 4: multilevel partitioner scaling (k={K})")
    print(f"{'vertices':>10}{'edges':>10}{'time (s)':>10}{'edge cut':>12}{'balance':>10}")
    for n, m, dt, cut, bal in rows:
        print(f"{n:>10}{m:>10}{dt:>10.2f}{cut:>12.0f}{bal:>10.3f}")

    times = {n: dt for n, _, dt, _, _ in rows}
    assert times[10_000] < 10.0, "the paper's 10k-vertex / 10-second bar"
    # Near-linear scaling: 10x the vertices costs well under 100x the time.
    assert times[10_000] < 30 * times[1_000] + 1.0
    balances = [bal for *_, bal in rows]
    assert max(balances) < 1.5
