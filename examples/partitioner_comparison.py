#!/usr/bin/env python
"""Compare the METIS-like multilevel partitioner against the baselines.

The hierarchical load balance needs a fast, high-quality partitioner —
this example pits the from-scratch multilevel k-way implementation
against random, round-robin, BFS-block, ModelNet-style greedy k-cluster,
and spectral partitioning on an Internet-like router graph, reporting
edge cut, balance, achieved MLL, and wall-clock time.

Run:  python examples/partitioner_comparison.py [num_routers]
"""

from __future__ import annotations

import sys
import time

from repro.core import Approach, build_weighted_graph
import numpy as np

from repro.partition import (
    bfs_block_partition,
    coordinate_bisection,
    greedy_k_cluster,
    partition_kway,
    random_partition,
    round_robin_partition,
    spectral_partition_kway,
)
from repro.topology import generate_flat_network

K = 16


def main() -> None:
    num_routers = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    net = generate_flat_network(num_routers=num_routers, num_hosts=num_routers // 3, seed=3)
    graph = build_weighted_graph(net, Approach.TOP)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, k={K}\n")

    positions = np.array([n.position for n in net.nodes])
    partitioners = {
        "random": lambda: random_partition(graph, K, seed=0),
        "geographic": lambda: coordinate_bisection(graph, positions, K),
        "round-robin": lambda: round_robin_partition(graph, K),
        "bfs-blocks": lambda: bfs_block_partition(graph, K, seed=0),
        "greedy-k-cluster": lambda: greedy_k_cluster(graph, K, seed=0),
        "spectral": lambda: spectral_partition_kway(graph, K, seed=0),
        "multilevel (ours)": lambda: partition_kway(graph, K, seed=0),
    }

    print(f"{'partitioner':<20}{'edge cut':>14}{'balance':>10}{'MLL (ms)':>10}{'time (s)':>10}")
    print("-" * 64)
    for name, fn in partitioners.items():
        t0 = time.perf_counter()
        res = fn()
        dt = time.perf_counter() - t0
        mll = res.min_cut_latency * 1e3
        print(f"{name:<20}{res.edge_cut:>14.1f}{res.balance:>10.3f}{mll:>10.4f}{dt:>10.3f}")

    print(
        "\nThe multilevel partitioner should dominate on edge cut at comparable "
        "balance —\nthe property the paper relies on when sweeping thousands of "
        "collapse thresholds."
    )


if __name__ == "__main__":
    main()
