#!/usr/bin/env python
"""Feed a *measured* AS topology into the BGP configuration procedure.

The paper's Section 7: "use the AS level topology of the real Internet
and feed it into our BGP configuration procedure, allowing direct
comparison of routing in the Internet and our generated configuration."
This example runs that pipeline on the bundled CAIDA-format sample
dataset (swap in a real as-rel file for actual Internet validation):

1. parse inferred provider/customer/peer records,
2. infer the tier structure from the relationships,
3. build the router-level network and auto-configure BGP,
4. report routing realism (reachability, valley-freeness, path lengths)
   side by side with a maBrite-generated topology of the same size.

Run:  python examples/measured_topology_validation.py [as-rel-file]
"""

from __future__ import annotations

import sys
from collections import Counter

import numpy as np

from repro.routing.bgp import configure_bgp, is_valley_free
from repro.topology import (
    build_multi_as_network,
    generate_multi_as_network,
    load_as_relationships,
    parse_as_relationships,
)
from repro.topology.sample_data import SAMPLE_AS_RELATIONSHIPS


def routing_report(net, bgp, label):
    n = len(net.as_domains)
    reach = bgp.reachability_matrix()
    full = sum(1 for s in reach.values() if len(s) == n)

    def rel(a, b):
        return net.as_domains[a].relationship_to(b)

    lengths = []
    violations = 0
    for a in net.as_domains:
        for b in net.as_domains:
            if a == b:
                continue
            path = bgp.as_path(a, b)
            if path is None:
                continue
            lengths.append(len(path) - 1)
            if not is_valley_free(tuple(path[1:]), b, rel):
                violations += 1
    print(f"{label}:")
    print(f"  ASes: {n}, BGP iterations: {bgp.iterations}")
    print(f"  full reachability: {full}/{n}")
    print(f"  mean AS path length: {np.mean(lengths):.2f} "
          f"(max {max(lengths)})")
    print(f"  valley violations: {violations}")
    return np.mean(lengths)


def main() -> None:
    if len(sys.argv) > 1:
        topo, mapping = load_as_relationships(sys.argv[1])
        print(f"loaded {len(mapping)} ASes from {sys.argv[1]}")
    else:
        topo, mapping = parse_as_relationships(SAMPLE_AS_RELATIONSHIPS)
        print(f"using bundled sample dataset ({len(mapping)} ASes)")
    tiers = Counter(t.value for t in topo.tiers.values())
    print(f"inferred tiers: {dict(tiers)}\n")

    measured_net = build_multi_as_network(topo, routers_per_as=6, num_hosts=30)
    measured_bgp = configure_bgp(measured_net)
    mean_measured = routing_report(measured_net, measured_bgp, "measured topology")

    generated_net = generate_multi_as_network(
        num_ases=topo.num_ases, routers_per_as=6, num_hosts=30, seed=4
    )
    generated_bgp = configure_bgp(generated_net)
    mean_generated = routing_report(generated_net, generated_bgp, "\nmaBrite-generated")

    print(
        f"\npath-length agreement: measured {mean_measured:.2f} vs "
        f"generated {mean_generated:.2f} AS hops — the static comparison "
        "the paper proposes,\nready to run against a real as-rel snapshot."
    )


if __name__ == "__main__":
    main()
