#!/usr/bin/env python
"""Run a workload on the conservative *parallel* engine, end to end.

The figure pipeline models parallel execution from a sequential trace;
this example runs the real thing: per-LP event queues, cross-LP
mailboxes, and barrier windows of one achieved-MLL, with live traffic
admitted at barriers through the Agent. It then compares the wall-clock
the cost model predicts from the engine's *measured* window counters
against the trace-based prediction the figure pipeline would have made.

Run:  python examples/parallel_engine_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Approach, MappingPipeline
from repro.experiments import ExperimentScale, build_network
from repro.experiments.parallel import predict_from_window_stats, run_parallel_workload
from repro.experiments.runner import cluster_for_scale
from repro.metrics import load_imbalance

SCALE = ExperimentScale(
    name="demo",
    flat_routers=150,
    flat_hosts=60,
    num_ases=6,
    routers_per_as=12,
    multi_hosts=40,
    http_clients=30,
    http_servers=8,
    http_mean_gap_s=0.4,
    num_engines=6,
    app_processes=4,
    scalapack_iterations=3,
    duration_s=14.0,
    profile_duration_s=3.0,
    event_cost_s=75e-6,
    remote_event_cost_s=190e-6,
)


def main() -> None:
    net, fib = build_network("single-as", SCALE, seed=3)
    cluster = cluster_for_scale(SCALE)
    pipeline = MappingPipeline(net, SCALE.num_engines, cluster, seed=0)
    mapping = pipeline.run(Approach.HTOP)
    print(f"network: {net}")
    print(f"HTOP mapping: {SCALE.num_engines} LPs, "
          f"achieved MLL {mapping.achieved_mll_ms:.3f} ms")

    engine, sim, handles = run_parallel_workload(
        net, fib, "scalapack", SCALE, mapping, duration_s=SCALE.duration_s, seed=3
    )

    print(f"\nparallel run: {engine.events_executed} events over "
          f"{len(engine.window_stats)} synchronization windows")
    print(f"lookahead violations: {engine.lookahead_violations} (strict mode)")
    per_lp = engine.events_per_lp_total()
    print(f"events per LP: {per_lp.tolist()}")
    print(f"cross-LP sends: {int(engine.remote_sends_total().sum())}")
    print(f"measured load imbalance: {load_imbalance(per_lp.astype(float)):.3f}")
    print(f"HTTP responses completed: {handles.http.stats.responses_completed}; "
          f"app finished: {handles.apps_finished}")

    pred = predict_from_window_stats(engine, cluster)
    print(f"\ncost model on measured windows: T = {pred.total_s:.2f}s "
          f"(compute {pred.compute_s:.2f}s + sync {pred.sync_s:.2f}s, "
          f"{pred.sync_fraction * 100:.0f}% synchronization)")

    # The busiest few windows, for a feel of the max-per-window rule.
    busiest = sorted(
        engine.window_stats, key=lambda ws: ws.events_per_lp.max(), reverse=True
    )[:5]
    print("\nbusiest windows (start time: events per LP):")
    for ws in busiest:
        print(f"  t={ws.start * 1e3:8.1f} ms: {ws.events_per_lp.tolist()}")


if __name__ == "__main__":
    main()
