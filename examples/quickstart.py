#!/usr/bin/env python
"""Quickstart: map a virtual network onto simulation engines with HPROF.

Generates a small single-AS network, profiles a web workload, runs the
hierarchical profile-based load balance (the paper's HPROF), and prints
the partition quality against the flat topology-based baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Approach, MappingPipeline, generate_flat_network
from repro.core import run_profiling_simulation
from repro.netsim.app import HttpTraffic
from repro.routing import ForwardingPlane
from repro.topology import pick_clients_and_servers


def main() -> None:
    # 1. A virtual network: 300 routers + 100 hosts on a continental plane.
    net = generate_flat_network(num_routers=300, num_hosts=100, seed=42)
    fib = ForwardingPlane(net)
    print(f"network: {net}")

    # 2. Profile a short run of background web traffic (the PROF bootstrap).
    rng = np.random.default_rng(0)
    clients, servers = pick_clients_and_servers(net, 60, 15, rng)

    def setup(sim, agent):
        HttpTraffic(sim, clients, servers, seed=1, mean_gap_s=0.5, stop_at=5.0).start()

    profile = run_profiling_simulation(net, fib, setup, duration_s=5.0)
    print(f"profiled {profile.total_events:.0f} events over {profile.duration_s:.0f}s")

    # 3. Map the network onto 12 simulation engines.
    pipeline = MappingPipeline.for_network(net, num_engines=12)
    print(f"cluster sync cost C(12) = {pipeline.sync_cost_s * 1e3:.3f} ms\n")

    for approach in (Approach.TOP, Approach.TOP2, Approach.HPROF):
        mapping = pipeline.run(approach, profile if approach.uses_profile else None)
        ev = mapping.evaluation
        print(
            f"{approach.value:<6} MLL={mapping.achieved_mll_ms:7.3f} ms  "
            f"Es={ev.es:.3f}  Ec={ev.ec:.3f}  E={ev.efficiency:.3f}  "
            f"predicted imbalance={ev.predicted_imbalance:.3f}"
        )

    print(
        "\nHPROF collapses sub-threshold-latency links before partitioning and "
        "sweeps the threshold,\nso it reaches a large MLL (cheap synchronization) "
        "without giving up load balance."
    )


if __name__ == "__main__":
    main()
