#!/usr/bin/env python
"""Single-AS scalability study: a miniature of the paper's Section 4.

Runs the full experiment pipeline — network generation, profiling run,
measured run, all four mapping approaches — and prints the paper's four
metric figures (simulation time, achieved MLL, load imbalance, parallel
efficiency) for the ScaLapack workload.

Run:  python examples/single_as_study.py          (small scale, ~1-2 min)
      REPRO_SCALE=medium python examples/single_as_study.py
"""

from __future__ import annotations

from repro.experiments import (
    default_scale,
    format_figure,
    format_result,
    run_experiment,
)


def main() -> None:
    scale = default_scale()
    print(
        f"scale={scale.name}: {scale.flat_routers} routers, "
        f"{scale.flat_hosts} hosts, {scale.num_engines} engines, "
        f"{scale.duration_s:.0f}s simulated"
    )
    print("running profiling + measured simulation (this is the slow part)...\n")

    result = run_experiment("single-as", "scalapack", seed=0)
    print(format_result(result))
    print(f"\n(total wall time {result.wall_seconds:.0f}s)\n")

    for metric in ("sim_time_s", "achieved_mll_ms", "load_imbalance", "parallel_efficiency"):
        print(format_figure([result], metric))
        print()

    t = {row.approach.value: row.sim_time_s for row in result.rows}
    gain = (t["TOP2"] - t["HPROF"]) / t["TOP2"] * 100
    print(f"HPROF reduces simulation time vs TOP2 by {gain:.0f}% "
          f"(paper at 20k routers: ~50%)")


if __name__ == "__main__":
    main()
