#!/usr/bin/env python
"""BGP beacon study: dynamic routing behavior (the paper's §7 proposal).

The paper proposes validating its automatic BGP configuration by
simulating the RIPE/PSG *beacon* methodology — a prefix announced and
withdrawn on a schedule, observed from the rest of the network — and by
comparing static route tables between configurations. Both are run here
on a maBrite topology.

Run:  python examples/bgp_beacon_study.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.routing.bgp import BeaconExperiment, compare_ribs, configure_bgp
from repro.topology import ASTier, generate_multi_as_network


def main() -> None:
    net = generate_multi_as_network(num_ases=30, routers_per_as=8, num_hosts=40, seed=21)
    engine = configure_bgp(net)
    tiers = Counter(d.tier.value for d in net.as_domains.values())
    print(f"topology: {len(net.as_domains)} ASes {dict(tiers)}, "
          f"BGP converged in {engine.iterations} iterations")

    # Pick a stub AS as the beacon (beacons are leaf prefixes in practice).
    stubs = [a for a, d in net.as_domains.items() if d.tier is ASTier.STUB]
    beacon_as = stubs[0] if stubs else max(net.as_domains)
    print(f"beacon prefix: AS {beacon_as} "
          f"({net.as_domains[beacon_as].tier.value}, "
          f"providers={sorted(net.as_domains[beacon_as].providers)})")

    beacon = BeaconExperiment(engine, beacon_as)
    print(f"\n{'event':<10}{'iterations':>12}{'affected ASes':>15}{'reachable':>11}")
    for action in ("withdraw", "announce", "withdraw", "announce"):
        rec = getattr(beacon, action)()
        print(f"{rec.action:<10}{rec.iterations:>12}"
              f"{len(rec.affected_ases):>15}{len(rec.reachable_from):>11}")

    # Static validation: the same topology reconfigured must produce the
    # same tables; a *different* relationship draw must not.
    engine_same = configure_bgp(net)
    sim_same = compare_ribs(engine, engine_same)
    net_other = generate_multi_as_network(num_ases=30, routers_per_as=8,
                                          num_hosts=40, seed=99)
    engine_other = configure_bgp(net_other)
    sim_other = compare_ribs(engine, engine_other)

    print("\nstatic route-table similarity (paper §7 validation):")
    print(f"  same config reconverged: coverage={sim_same['coverage']:.2f} "
          f"path agreement={sim_same['path_agreement']:.2f}")
    print(f"  different topology seed: coverage={sim_other['coverage']:.2f} "
          f"path agreement={sim_other['path_agreement']:.2f}")

    assert sim_same["path_agreement"] == 1.0
    print("\nDynamic convergence is bounded by the AS hierarchy depth, and the "
          "configuration is\ndeterministic — both properties the paper's "
          "validation plan would check against real traces.")


if __name__ == "__main__":
    main()
