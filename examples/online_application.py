#!/usr/bin/env python
"""Online simulation: live applications through WrapSocket and the Agent.

The MicroGrid's defining feature is *online* simulation — real
application processes talk through intercepted sockets into the packet
simulation. This example runs the ScaLapack and GridNPB traffic models
through that exact path (WrapSocket -> Agent -> simulated TCP), then uses
the cluster cost model to compute the minimum *slowdown* factor at which
the virtual world could keep up on the modeled cluster (the paper quotes
"good efficiency with slowdown of 8 times" for its 20k-router runs).

Run:  python examples/online_application.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import teragrid_cluster
from repro.core import Approach, MappingPipeline
from repro.engine import SimKernel, predict_from_trace
from repro.netsim import NetworkSimulator
from repro.netsim.app import GridNpbApp, ScaLapackApp, helical_chain
from repro.online import Agent, VirtualTimeController, WrapSocket, required_slowdown
from repro.profilers import TrafficProfile
from repro.routing import ForwardingPlane
from repro.topology import generate_flat_network

DURATION_S = 20.0
NUM_ENGINES = 12


def main() -> None:
    WrapSocket.reset_listeners()
    net = generate_flat_network(num_routers=250, num_hosts=60, seed=5)
    fib = ForwardingPlane(net)
    kernel = SimKernel(record_trace=True)
    sim = NetworkSimulator(net, fib, kernel, record_transmissions=True)
    agent = Agent(sim)

    hosts = net.host_ids()
    sca = ScaLapackApp(agent, hosts[:4], iterations=6, compute_s=0.5)
    npb = GridNpbApp(agent, hosts[4:8], helical_chain())
    sca.start(at=0.5)
    npb.start(at=0.5)

    kernel.run(until=DURATION_S)

    print(f"simulated {DURATION_S:.0f}s of virtual time, "
          f"{kernel.events_executed} kernel events")
    print(f"agent: {agent.stats.streams_completed}/{agent.stats.streams_opened} "
          f"streams, {agent.stats.bytes_requested / 1e6:.2f} MB requested")
    print(f"ScaLapack finished at t={sca.stats.finished_at:.2f}s "
          f"({sca.stats.transfers} transfers)")
    print(f"GridNPB HC finished at t={npb.stats.finished_at:.2f}s")

    # Map the network and ask: can this run in real time on the cluster?
    profile = TrafficProfile.from_simulation(sim, DURATION_S)
    pipeline = MappingPipeline.for_network(net, NUM_ENGINES)
    mapping = pipeline.run(Approach.HPROF, profile)

    times, nodes = kernel.trace()
    tx_t, tx_f, tx_to = sim.transmissions()
    cluster = teragrid_cluster(NUM_ENGINES)
    pred = predict_from_trace(
        times, nodes, mapping.assignment, NUM_ENGINES,
        mapping.achieved_mll_s, DURATION_S, cluster, tx_t, tx_f, tx_to,
    )
    slowdown = required_slowdown(pred, DURATION_S)
    vtc = VirtualTimeController(slowdown=slowdown)

    print(f"\nHPROF mapping: MLL={mapping.achieved_mll_ms:.3f} ms, "
          f"{pred.num_windows} sync windows")
    print(f"modeled wall-clock: {pred.total_s:.2f}s "
          f"(compute {pred.compute_s:.2f}s + sync {pred.sync_s:.2f}s)")
    print(f"minimum slowdown on {NUM_ENGINES} engines: {slowdown:.2f}x")
    print(f"-> simulating {DURATION_S:.0f}s of virtual time needs "
          f"{vtc.wallclock_deadline(DURATION_S):.0f}s of wall-clock")


if __name__ == "__main__":
    main()
