#!/usr/bin/env python
"""Multi-AS Internet-like simulation: maBrite + automatic BGP config.

Demonstrates the paper's Section 5 machinery:

1. generate a multi-AS topology with tiered AS classification and
   business relationships (maBrite),
2. auto-configure BGP import/export policies from the heuristic rules
   and propagate routes to convergence,
3. inspect routing realism: valley-free paths, stub default routing,
   and "connectivity does not equal reachability" under raw policies,
4. forward actual packets across ASes.

Run:  python examples/multi_as_bgp.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.engine import SimKernel
from repro.netsim import NetworkSimulator, start_transfer
from repro.routing import ForwardingPlane
from repro.routing.bgp import configure_bgp, is_valley_free, render_dml
from repro.topology import ASTier, generate_multi_as_network


def main() -> None:
    # 1. Topology: 20 ASes x 20 routers, hosts on stub ASes.
    net = generate_multi_as_network(num_ases=20, routers_per_as=20, num_hosts=80, seed=7)
    tiers = Counter(d.tier.value for d in net.as_domains.values())
    print(f"network: {net}")
    print(f"AS tiers: {dict(tiers)}")

    # 2. BGP auto-configuration and convergence.
    bgp = configure_bgp(net)
    print(f"BGP converged in {bgp.iterations} iterations")
    reach = bgp.reachability_matrix()
    full = sum(1 for s in reach.values() if len(s) == len(net.as_domains))
    print(f"ASes with full reachability: {full}/{len(net.as_domains)}")

    # 3a. Valley-free check over all AS pairs.
    def rel(a, b):
        return net.as_domains[a].relationship_to(b)

    violations = 0
    for a in net.as_domains:
        for b in net.as_domains:
            if a == b:
                continue
            path = bgp.as_path(a, b)
            if path and not is_valley_free(tuple(path[1:]), b, rel):
                violations += 1
    print(f"valley-free violations: {violations}")

    # 3b. Stub default routing (paper step 6c/6d).
    stubs = [d for d in net.as_domains.values() if d.tier is ASTier.STUB]
    multihomed = [d for d in stubs if len(d.default_routes) > 1]
    print(f"stub ASes: {len(stubs)}, multi-homed with backup default: {len(multihomed)}")

    # 3c. The DML-like rendering MaSSF would consume.
    dml = render_dml(net)
    sample = dml["Net"]["AS"][0]
    print(f"sample policy entry for AS {sample['id']} ({sample['tier']}): "
          f"{len(sample['bgp']['import_policy'])} import rules")

    # 4. Packet forwarding across ASes: a TCP transfer between stub hosts.
    fib = ForwardingPlane(net, bgp)
    kernel = SimKernel()
    sim = NetworkSimulator(net, fib, kernel)
    hosts = net.host_ids()
    rng = np.random.default_rng(3)
    src, dst = (int(x) for x in rng.choice(hosts, 2, replace=False))
    as_path = fib.as_level_path(src, dst)
    print(f"\ntransferring 200 KB from host {src} (AS {net.nodes[src].as_id}) "
          f"to host {dst} (AS {net.nodes[dst].as_id})")
    print(f"AS-level forwarding path: {as_path}")

    done: list[float] = []
    start_transfer(sim, src, dst, 200_000, lambda t: done.append(t))
    kernel.run(until=30.0)
    if done:
        print(f"transfer completed at t={done[0] * 1e3:.1f} ms "
              f"({kernel.events_executed} kernel events)")
    else:
        print("transfer did not complete (increase the horizon)")


if __name__ == "__main__":
    main()
