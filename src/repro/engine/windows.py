"""Shared barrier-window protocol: stats and boundary arithmetic.

The conservative engine and the multi-process backend must agree — to
the last float ULP — on where every synchronization window starts and
ends: the window boundary is the causality fence (cross-LP events may
not land before it), and the lookahead check compares against it with a
relative epsilon. Extracting the boundary iteration here means every
executor (the in-process :class:`~repro.engine.conservative
.ConservativeEngine`, each :class:`~repro.engine.parallel.ShardEngine`
worker, and the controller that merges their results) computes the
*identical* float sequence, so a window index means the same simulated
interval everywhere.

:class:`WindowStats` — the per-window per-LP execution counters the
cluster cost model consumes — lives here for the same reason: workers
report partial columns and the controller sums them into the same
structure the single-process engine records directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "WindowStats",
    "iter_windows",
    "window_overlap",
    "WINDOW_EPSILON_FRACTION",
]

#: Relative tolerance applied to every window-boundary comparison, as a
#: fraction of the lookahead. An *absolute* epsilon falls below one
#: float ULP once simulated time passes ~0.01 s, turning legitimate
#: window-boundary events into spurious violations (see PR 4).
WINDOW_EPSILON_FRACTION = 1e-9


@dataclass
class WindowStats:
    """Per-synchronization-window execution counters."""

    window_index: int
    start: float
    end: float
    #: events executed per LP in this window
    events_per_lp: np.ndarray
    #: cross-LP events *sent* per LP in this window
    remote_sends_per_lp: np.ndarray

    @property
    def total_events(self) -> int:
        """Events executed across all LPs in this window."""
        return int(self.events_per_lp.sum())


def iter_windows(
    start: float, lookahead: float, until: float, first_index: int = 0
) -> Iterator[tuple[int, float, float]]:
    """Yield ``(window_index, window_start, window_end)`` barrier windows.

    Reproduces the conservative engine's historical loop exactly —
    ``window_end = min(now + lookahead, until)`` with the relative
    epsilon absorbing float accumulation over many windows so a run to
    ``until`` never spawns a sliver final window. Because the float
    operations (and their order) are fixed here, every process running
    the same ``(start, lookahead, until)`` derives bit-identical
    boundaries — the property the cross-process barrier protocol rests
    on.
    """
    if lookahead <= 0:
        raise ValueError("lookahead must be positive")
    eps = WINDOW_EPSILON_FRACTION * lookahead
    now = start
    index = first_index
    while now < until - eps:
        window_end = min(now + lookahead, until)
        yield index, now, window_end
        index += 1
        now = window_end


def window_overlap(
    span_start: float, span_end: float, window_start: float, window_end: float
) -> float:
    """Length of the intersection of a time span with a barrier window.

    Pure float arithmetic with no epsilon: consumers that weight a
    span's effect by window (the fault injector's slowdown spans, the
    rebalancer's deterministic straggler model) must all agree on the
    overlap, and the boundary cases (zero-length span, disjoint
    intervals) resolve to exactly ``0.0``.
    """
    return max(0.0, min(span_end, window_end) - max(span_start, window_start))
