"""Calendar queue and density-adaptive pending-event set.

A calendar queue (Brown 1988, the structure inside most production DES
kernels, including DaSSF's) hashes events by timestamp into an array of
buckets of width ``w`` — bucket ``floor(t / w) mod N`` — and pops by
sweeping the calendar "year" in bucket order. When the schedule is dense
and roughly uniform (the steady state of a packet-level simulation,
where every link hop lands a lookahead-scale delay ahead), push and pop
are O(1) amortized instead of the binary heap's O(log n).

Design notes for this implementation:

- **Exact ordering.** Entries are ``(time, seq, event)`` tuples and each
  bucket is a small binary heap, so pops reproduce the engine-wide
  ``(time, seq)`` total order bit-for-bit — equal timestamps hash to the
  same bucket, where the unique ``seq`` breaks the tie. A differential
  test (``tests/test_differential_determinism.py``) proves a full
  simulation run is identical under heap and calendar backends.
- **Float-safe due test.** Whether a bucket head is due *this* year is
  decided by comparing virtual bucket indices (``floor(t / w)``), the
  same expression used for placement — never by comparing ``t`` against
  an accumulated bucket boundary, which is where classic float-drift
  bugs live.
- **Self-resizing.** The calendar rebuilds (double/halve the bucket
  count, re-estimate the width from the live time span) when occupancy
  leaves the [N/4, 2N] band; cancelled events are compacted away during
  rebuilds.
- **Sparse fallback.** :class:`AdaptiveQueue` starts every LP on the
  binary heap and promotes to a calendar only once the observed backlog
  is large enough that the calendar's O(1) ops actually beat C-level
  ``heapq``'s O(log n) — a measured crossover around 128k pending
  events in CPython (see docs/performance.md) — demoting again when the
  backlog thins. Irregular/sparse schedules — BGP timers, app think
  time — therefore never pay for empty-bucket scans.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from math import floor
from typing import Any, Callable

# _seq is shared with EventQueue so (time, seq) stays a single global
# total order regardless of which backend created the event.
from .events import Event, EventQueue, _seq as _global_seq

__all__ = ["CalendarQueue", "AdaptiveQueue", "make_queue", "QUEUE_KINDS"]

#: Recognized queue kinds for :func:`make_queue` (engine ``queue=`` arg).
QUEUE_KINDS = ("heap", "calendar", "adaptive")

_MIN_BUCKETS = 8
_MAX_BUCKETS = 32768
_MIN_WIDTH = 1e-12


class CalendarQueue:
    """Bucketed calendar pending-event set with lazy cancellation.

    Drop-in for :class:`repro.engine.events.EventQueue`: identical
    ``push/push_event/peek_time/pop/len`` surface and identical pop
    order. ``len()`` counts queued entries including lazily cancelled
    ones (they are discarded as they surface or at rebuilds), matching
    the heap's semantics.
    """

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_width",
        "_vbucket",
        "_size",
        "rebuilds",
    )

    def __init__(self, width: float = 1e-3, nbuckets: int = _MIN_BUCKETS) -> None:
        if width <= 0.0:
            raise ValueError("bucket width must be positive")
        if nbuckets < 1:
            raise ValueError("need at least one bucket")
        self._buckets: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(nbuckets)
        ]
        self._nbuckets = nbuckets
        self._width = width
        #: absolute (non-modular) virtual bucket index being drained;
        #: invariant: every queued entry has vindex >= _vbucket.
        self._vbucket = 0
        self._size = 0
        #: rebuild count (resize telemetry; AdaptiveQueue reads it)
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _vindex(self, time: float) -> int:
        return floor(time / self._width)

    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        node: int = -1,
        args: tuple = (),
    ) -> Event:
        """Create and enqueue an event; returns it (for cancellation)."""
        # Shares events._seq so interleaved use of both queue types keeps
        # one total order; forking it is the multi-core PR's problem.
        ev = Event(time, next(_global_seq), fn, args, node)  # simlint: disable=SIM201
        self._insert((time, ev.seq, ev))
        return ev

    def push_event(self, ev: Event) -> None:
        """Enqueue an existing event object (used for mailbox delivery)."""
        self._insert((ev.time, ev.seq, ev))

    def _insert(self, entry: tuple[float, int, Event]) -> None:
        if self._size >= 2 * self._nbuckets and self._nbuckets < _MAX_BUCKETS:
            self._rebuild()
        i = self._vindex(entry[0])
        heappush(self._buckets[i % self._nbuckets], entry)
        if self._size == 0 or i < self._vbucket:
            # Rewind the sweep so an entry placed behind the cursor (legal
            # whenever peek advanced past then-empty buckets) is not missed.
            self._vbucket = i
        self._size += 1

    # ------------------------------------------------------------------
    def _find_due_bucket(self) -> list[tuple[float, int, Event]] | None:
        """Position the sweep on the bucket holding the earliest live
        entry and return that bucket (None when the queue is empty).

        Discards cancelled entries as they surface. Scans at most one
        calendar year incrementally, then jumps straight to the globally
        minimal bucket head — so runs with far-apart event clusters
        (e.g. RTO timers seconds ahead of the packet horizon) skip the
        empty years in O(nbuckets) instead of sweeping them.
        """
        while self._size:
            nbuckets = self._nbuckets
            for _ in range(nbuckets + 1):
                bucket = self._buckets[self._vbucket % nbuckets]
                while bucket and self._vindex(bucket[0][0]) <= self._vbucket:
                    if bucket[0][2].cancelled:
                        heappop(bucket)
                        self._size -= 1
                    else:
                        return bucket
                if not self._size:
                    return None  # the sweep only discarded cancelled entries
                self._vbucket += 1
            # Nothing due within one year: jump to the earliest head.
            tmin: float | None = None
            for bucket in self._buckets:
                if bucket and (tmin is None or bucket[0][0] < tmin):
                    tmin = bucket[0][0]
            if tmin is None:
                break  # only cancelled entries remained and were discarded
            self._vbucket = self._vindex(tmin)
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event (None when empty)."""
        bucket = self._find_due_bucket()
        return bucket[0][0] if bucket is not None else None

    def pop(self) -> Event | None:
        """Remove and return the earliest live event (None when empty)."""
        bucket = self._find_due_bucket()
        if bucket is None:
            return None
        ev = heappop(bucket)[2]
        self._size -= 1
        if self._size < self._nbuckets // 4 and self._nbuckets > _MIN_BUCKETS:
            self._rebuild()
        return ev

    def pop_until(self, bound: float) -> Event | None:
        """Pop the earliest live event strictly before ``bound``.

        Returns ``None`` when the queue is empty or the head is at or
        past ``bound`` (the head stays queued). One call replaces the
        peek-then-pop pair of the engine run loops — for the calendar
        that saves a full sweep positioning per executed event.
        """
        bucket = self._find_due_bucket()
        if bucket is None or bucket[0][0] >= bound:
            return None
        ev = heappop(bucket)[2]
        self._size -= 1
        if self._size < self._nbuckets // 4 and self._nbuckets > _MIN_BUCKETS:
            self._rebuild()
        return ev

    # ------------------------------------------------------------------
    def _rebuild(self, extra: list[tuple[float, int, Event]] | None = None) -> None:
        """Resize the calendar around the current live population.

        Re-estimates the bucket width from the live entries' time span
        (targeting ~3 entries per occupied bucket under a uniform
        spread), compacts cancelled entries away, and re-places
        everything. O(n log n) but amortized across the pushes/pops that
        moved occupancy out of band.
        """
        entries = [e for b in self._buckets for e in b if not e[2].cancelled]
        if extra:
            entries.extend(e for e in extra if not e[2].cancelled)
        n = len(entries)
        nbuckets = _MIN_BUCKETS
        while nbuckets < n and nbuckets < _MAX_BUCKETS:
            nbuckets *= 2
        if n >= 2:
            tmin = min(e[0] for e in entries)
            tmax = max(e[0] for e in entries)
            span = tmax - tmin
            if span > 0.0:
                self._width = max(span / n * 3.0, _MIN_WIDTH)
        self._nbuckets = nbuckets
        buckets: list[list[tuple[float, int, Event]]] = [[] for _ in range(nbuckets)]
        width = self._width
        vmin: int | None = None
        for entry in entries:
            i = floor(entry[0] / width)
            buckets[i % nbuckets].append(entry)
            if vmin is None or i < vmin:
                vmin = i
        for bucket in buckets:
            heapify(bucket)
        self._buckets = buckets
        self._size = n
        self._vbucket = vmin if vmin is not None else 0
        self.rebuilds += 1

    # ------------------------------------------------------------------
    # Migration support (AdaptiveQueue moves entries between backends)
    # ------------------------------------------------------------------
    def drain_entries(self) -> list[tuple[float, int, Event]]:
        """Remove and return all raw entries (cancelled ones included)."""
        entries = [e for b in self._buckets for e in b]
        self._buckets = [[] for _ in range(self._nbuckets)]
        self._size = 0
        return entries

    def extend_entries(self, entries: list[tuple[float, int, Event]]) -> None:
        """Bulk-load raw entries (single rebuild; O(n log n))."""
        self._rebuild(extra=entries)


class AdaptiveQueue:
    """Per-LP pending-event set that picks its backend by event density.

    Starts on the binary heap (optimal for the sparse, irregular
    schedules of idle LPs, BGP timers, and app think time); once the
    observed backlog stays above :data:`PROMOTE_SIZE` the entries
    migrate to a :class:`CalendarQueue`, and they migrate back when the
    backlog thins below :data:`DEMOTE_SIZE`. Density is re-evaluated
    every :data:`CHECK_INTERVAL` pushes, with a minimum op distance
    between switches so a backlog oscillating around a threshold cannot
    thrash. Both backends pop the identical ``(time, seq)`` order, so a
    migration can never change simulation outcomes.

    Every per-event operation — ``push``, ``push_event``, ``pop``,
    ``pop_until``, ``peek_time`` — is a *bind-through* instance
    attribute, rebound on every migration: reads are the active
    backend's bound methods, and in heap mode ``push`` is an inlined
    copy of :meth:`EventQueue.push` (plus the density countdown) so the
    hot path pays no inner delegation call. Callers must look the
    attribute up per call — holding a reference across a migration
    would address the drained backend.
    """

    #: backlog at/above which the heap promotes to a calendar. Set at the
    #: measured hold-model crossover where the calendar's O(1) ops beat
    #: C-level heapq's O(log n) (see docs/performance.md): below ~128k
    #: pending events the heap is simply faster in CPython.
    PROMOTE_SIZE = 131_072
    #: backlog at/below which the calendar demotes to a heap (4x
    #: hysteresis below the promote point)
    DEMOTE_SIZE = 32_768
    #: pushes between density evaluations
    CHECK_INTERVAL = 256
    #: minimum pushes between consecutive backend switches (hysteresis)
    MIN_SWITCH_DISTANCE = 2048

    __slots__ = (
        "_impl",
        "_heap_ref",
        "kind",
        "_pushes",
        "_check_in",
        "_last_switch",
        "switches",
        "push",
        "push_event",
        "pop",
        "pop_until",
        "peek_time",
    )

    def __init__(self) -> None:
        self._impl: EventQueue | CalendarQueue = EventQueue()
        #: current backend kind: ``"heap"`` or ``"calendar"``
        self.kind = "heap"
        self._pushes = 0
        self._check_in = self.CHECK_INTERVAL
        self._last_switch = 0
        #: total backend migrations (telemetry for tests and the bench)
        self.switches = 0
        self._bind()

    def _bind(self) -> None:
        """Rebind the bind-through attributes to the active backend."""
        impl = self._impl
        self.pop = impl.pop
        self.pop_until = impl.pop_until
        self.peek_time = impl.peek_time
        self.push_event = self._push_event_counting
        if isinstance(impl, EventQueue):
            self._heap_ref = impl._heap
            self.push = self._push_heap_inline
        else:
            self._heap_ref = None
            self.push = self._push_delegating

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._impl)

    def __bool__(self) -> bool:
        return bool(self._impl)

    def _push_heap_inline(
        self,
        time: float,
        fn: Callable[..., Any],
        node: int = -1,
        args: tuple = (),
    ) -> Event:
        """``push`` in heap mode: :meth:`EventQueue.push` inlined.

        The duplication buys the removal of the inner delegation call on
        the dominant path (every packet hop while the backlog is below
        :data:`PROMOTE_SIZE`); the heap/calendar parity tests pin the
        behavior to the backend's own ``push``.
        """
        seq = next(_global_seq)
        ev = Event(time, seq, fn, args, node)
        heappush(self._heap_ref, (time, seq, ev))
        self._check_in -= 1
        if self._check_in <= 0:
            self._evaluate()
        return ev

    def _push_delegating(
        self,
        time: float,
        fn: Callable[..., Any],
        node: int = -1,
        args: tuple = (),
    ) -> Event:
        """``push`` in calendar mode: delegate (bucket placement is not
        worth inlining — calendar mode only runs at >100k backlogs where
        the per-op cost is amortized)."""
        ev = self._impl.push(time, fn, node, args)
        self._check_in -= 1
        if self._check_in <= 0:
            self._evaluate()
        return ev

    def _push_event_counting(self, ev: Event) -> None:
        """``push_event``: delegate + density countdown (mailbox path)."""
        self._impl.push_event(ev)
        self._check_in -= 1
        if self._check_in <= 0:
            self._evaluate()

    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        self._pushes += self.CHECK_INTERVAL
        self._check_in = self.CHECK_INTERVAL
        if self._pushes - self._last_switch < self.MIN_SWITCH_DISTANCE:
            return
        size = len(self._impl)
        if self.kind == "heap" and size >= self.PROMOTE_SIZE:
            self._migrate("calendar")
        elif self.kind == "calendar" and size <= self.DEMOTE_SIZE:
            self._migrate("heap")

    def _migrate(self, kind: str) -> None:
        entries = self._impl.drain_entries()
        new: EventQueue | CalendarQueue = (
            CalendarQueue() if kind == "calendar" else EventQueue()
        )
        new.extend_entries(entries)
        self._impl = new
        self.kind = kind
        self._bind()
        self._last_switch = self._pushes
        self.switches += 1

    # ------------------------------------------------------------------
    def drain_entries(self) -> list[tuple[float, int, Event]]:
        """Remove and return all raw entries (cancelled ones included)."""
        entries = self._impl.drain_entries()
        self._bind()  # the heap backend replaces its list on drain
        return entries

    def extend_entries(self, entries: list[tuple[float, int, Event]]) -> None:
        """Bulk-load raw entries into the current backend."""
        self._impl.extend_entries(entries)


def make_queue(kind: str) -> EventQueue | CalendarQueue | AdaptiveQueue:
    """Build a pending-event set: ``heap`` | ``calendar`` | ``adaptive``."""
    if kind == "heap":
        return EventQueue()
    if kind == "calendar":
        return CalendarQueue()
    if kind == "adaptive":
        return AdaptiveQueue()
    raise ValueError(f"unknown queue kind {kind!r}; expected one of {QUEUE_KINDS}")
