"""Discrete-event simulation engines and the cluster cost model.

:class:`SimKernel` is the sequential reference engine (with event-trace
recording); :class:`ConservativeEngine` is the barrier-synchronized
parallel engine over a node->LP partition (all LPs in one process);
:class:`ParallelConservativeEngine` executes the same protocol across
real worker processes; :mod:`repro.engine.costmodel` converts either's
per-window counters into modeled wall-clock time.
"""

from .calqueue import AdaptiveQueue, CalendarQueue, make_queue
from .conservative import ConservativeEngine, LookaheadViolation
from .parallel import (
    LocalShardGroup,
    MailOrderError,
    ParallelBackendError,
    ParallelConservativeEngine,
    ParallelRunResult,
    ParallelWorkerError,
    ScenarioSpec,
    ShardEngine,
    ShardScenario,
    UnregisteredHandlerError,
    WorkerCrashError,
    shard_lps,
    validate_mail_batch,
)
from .windows import WindowStats, iter_windows
from .costmodel import (
    WallclockPrediction,
    bucket_event_counts,
    predict_from_trace,
    predict_wallclock,
    remote_send_counts,
    sequential_time_estimate,
)
from .events import Event, EventQueue
from .kernel import SimKernel

__all__ = [
    "Event",
    "EventQueue",
    "CalendarQueue",
    "AdaptiveQueue",
    "make_queue",
    "SimKernel",
    "ConservativeEngine",
    "LookaheadViolation",
    "WindowStats",
    "iter_windows",
    "ParallelConservativeEngine",
    "ParallelRunResult",
    "ParallelBackendError",
    "ParallelWorkerError",
    "WorkerCrashError",
    "MailOrderError",
    "UnregisteredHandlerError",
    "ScenarioSpec",
    "ShardScenario",
    "ShardEngine",
    "LocalShardGroup",
    "shard_lps",
    "validate_mail_batch",
    "bucket_event_counts",
    "remote_send_counts",
    "predict_wallclock",
    "predict_from_trace",
    "WallclockPrediction",
    "sequential_time_estimate",
]
