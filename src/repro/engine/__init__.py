"""Discrete-event simulation engines and the cluster cost model.

:class:`SimKernel` is the sequential reference engine (with event-trace
recording); :class:`ConservativeEngine` is the barrier-synchronized
parallel engine over a node->LP partition; :mod:`repro.engine.costmodel`
converts either's per-window counters into modeled wall-clock time.
"""

from .calqueue import AdaptiveQueue, CalendarQueue, make_queue
from .conservative import ConservativeEngine, LookaheadViolation, WindowStats
from .costmodel import (
    WallclockPrediction,
    bucket_event_counts,
    predict_from_trace,
    predict_wallclock,
    remote_send_counts,
    sequential_time_estimate,
)
from .events import Event, EventQueue
from .kernel import SimKernel

__all__ = [
    "Event",
    "EventQueue",
    "CalendarQueue",
    "AdaptiveQueue",
    "make_queue",
    "SimKernel",
    "ConservativeEngine",
    "LookaheadViolation",
    "WindowStats",
    "bucket_event_counts",
    "remote_send_counts",
    "predict_wallclock",
    "predict_from_trace",
    "WallclockPrediction",
    "sequential_time_estimate",
]
