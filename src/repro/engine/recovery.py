"""Barrier-aligned checkpointing and crash recovery for the mp backend.

The multi-process conservative backend (:mod:`repro.engine.parallel`)
already proves that shard state is *portable* at barriers — LP
migration captures pending events and per-LP dynamics and reinstalls
them on another worker with byte-identical outcomes. This module closes
that capability into a fault-tolerance loop:

``checkpoint -> detect -> respawn -> replay -> resume``

with the same cardinal invariant as rebalancing: **recovery changes
execution, never outcomes**. A run whose workers are SIGKILLed at
arbitrary barrier windows must produce delivery logs, counter
fingerprints, and fault traces byte-identical to an uninterrupted run.

Protocol sketch (details in docs/robustness.md):

* At a configurable cadence (``checkpoint_every_n_windows``) each
  worker captures its whole shard at the barrier *after* mail delivery
  — pending event queues, tiebreak counters, scenario dynamics via the
  ``LpStatePort`` path, fault-injector position — encodes it through
  :func:`repro.serialization.encode_checkpoint`, and ships it on the
  control plane (never barrier mail: checkpointing off is bit-identical
  to the pre-recovery wire protocol, zero extra mail bytes).
* The controller verifies a sha256 digest, stores the blob in a
  :class:`CheckpointStore` (in memory, or spilled to disk), and retains
  every cross-shard mail batch *since* the last checkpoint.
* Worker liveness rides the window acks. On a detected crash or hang
  the controller respawns the worker with exponential backoff, hands it
  the last checkpoint plus the retained mail (a *replay buffer*), and
  the worker replays forward privately to the crash window before
  rejoining the live barrier protocol.
* When respawn is exhausted the degradation ladder continues to
  *adoption*: every surviving worker rolls back to the common
  checkpoint and one survivor adopts the dead shard's LPs through the
  migration wire format; only after that fails does the run abort with
  :class:`RecoveryExhaustedError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "RecoveryConfig",
    "RecoveryExhaustedError",
    "CheckpointDigestError",
    "CheckpointStore",
    "ON_WORKER_LOSS_MODES",
]

#: Valid degradation policies when a worker dies.
#:
#: ``"respawn"`` — checkpoint + respawn with backoff; abort when retries
#: are exhausted. ``"adopt"`` — like respawn, but when retries are
#: exhausted survivors roll back to the common checkpoint and one of
#: them adopts the dead shard's LPs. ``"fail"`` — no recovery at all:
#: checkpoints are still taken (so the cadence can be benchmarked) but
#: any worker loss re-raises immediately, matching the pre-recovery
#: behavior.
ON_WORKER_LOSS_MODES = ("respawn", "adopt", "fail")


class RecoveryExhaustedError(RuntimeError):
    """Every rung of the degradation ladder failed for a dead worker.

    Raised by the controller when a worker could not be respawned within
    ``max_respawns`` attempts and (under ``on_worker_loss="adopt"``) its
    shard could not be adopted by a survivor either. Subclasses
    ``RuntimeError`` directly rather than ``ParallelBackendError`` to
    avoid a circular import; :mod:`repro.engine.parallel` re-exports it
    next to the other typed backend failures.
    """


class CheckpointDigestError(RuntimeError):
    """A checkpoint blob did not match its recorded sha256 digest."""


def checkpoint_digest(blob: bytes) -> str:
    """The sha256 hex digest identifying a checkpoint blob.

    Digests serve two purposes: corruption detection on the control
    plane (and on disk, for spilled checkpoints), and the *digest
    stability* proof — the same shard state captured twice, or captured
    in different processes, must encode to identical bytes and therefore
    identical digests (tests/test_checkpoint_roundtrip.py).
    """
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class RecoveryConfig:
    """Controller-side configuration for checkpointing and recovery.

    Passing ``recovery=None`` to the backend (the default) disables the
    whole subsystem: no checkpoint messages, no retained mail, wire
    traffic bit-identical to a build without this module.
    """

    #: Capture a checkpoint every N barrier windows (after the window's
    #: mail has been delivered). Smaller = less replay on recovery,
    #: more capture/encode overhead.
    checkpoint_every_n_windows: int = 4
    #: Bounded respawn retries per worker incarnation chain.
    max_respawns: int = 2
    #: Degradation policy once a worker is declared dead; see
    #: :data:`ON_WORKER_LOSS_MODES`.
    on_worker_loss: str = "respawn"
    #: First respawn backoff; attempt *k* sleeps ``base * 2**(k-1)``
    #: seconds, capped at :attr:`backoff_cap_s`. Tests set this near
    #: zero so exhaustion scenarios stay fast.
    backoff_base_s: float = 0.05
    #: Upper bound on a single backoff sleep.
    backoff_cap_s: float = 2.0
    #: When set, checkpoint blobs spill to files under this directory
    #: instead of living in controller memory.
    spill_dir: str | None = None
    #: Optional deterministic process-level fault plan
    #: (:class:`repro.faults.plan.FaultPlan`) handed to workers for
    #: chaos testing; ``None`` injects nothing.
    fault_plan: Any = None

    def __post_init__(self) -> None:
        if self.checkpoint_every_n_windows < 1:
            raise ValueError("checkpoint_every_n_windows must be >= 1")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.on_worker_loss not in ON_WORKER_LOSS_MODES:
            raise ValueError(
                f"on_worker_loss must be one of {ON_WORKER_LOSS_MODES}, "
                f"got {self.on_worker_loss!r}"
            )
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_cap_s < 0:
            raise ValueError("backoff_cap_s must be >= 0")

    def is_checkpoint_window(self, window_index: int) -> bool:
        """Whether a checkpoint is captured after window ``window_index``.

        Both controller and every worker call this with the same index,
        so the cadence needs no negotiation on the wire.
        """
        return (window_index + 1) % self.checkpoint_every_n_windows == 0

    def backoff_s(self, attempt: int) -> float:
        """Backoff before respawn ``attempt`` (1-based), capped."""
        if attempt <= 0:
            return 0.0
        return min(self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_cap_s)

    def stanza(self) -> dict[str, Any]:
        """The worker-config stanza describing the cadence and fault plan.

        Workers only need the cadence (to know when to capture) and
        their slice of the fault plan; respawn policy is purely a
        controller concern and stays out of the wire config.
        """
        return {
            "checkpoint_every_n_windows": self.checkpoint_every_n_windows,
            "fault_plan": self.fault_plan,
        }


@dataclass
class _StoredCheckpoint:
    window_index: int
    digest: str
    blob: bytes | None  # None when spilled to disk
    path: Path | None = None
    nbytes: int = 0


@dataclass
class CheckpointStore:
    """Controller-held store of the latest checkpoint per shard.

    Only the *most recent* checkpoint per shard is retained — recovery
    always restores the last consistent cut, so older blobs (and the
    mail retained to replay past them) are pruned as soon as a newer
    checkpoint for every live shard lands. With ``spill_dir`` set,
    blobs live on disk under ``ckpt-shard<k>-w<window>.bin`` and only
    digests stay in memory.
    """

    spill_dir: str | None = None
    _latest: dict[int, _StoredCheckpoint] = field(default_factory=dict)
    #: running totals for the recovery.* instruments
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0

    def put(self, shard_id: int, window_index: int, digest: str, blob: bytes) -> None:
        """Record shard ``shard_id``'s checkpoint after ``window_index``."""
        if checkpoint_digest(blob) != digest:
            raise CheckpointDigestError(
                f"checkpoint for shard {shard_id} at window {window_index} "
                "does not match its digest"
            )
        prev = self._latest.get(shard_id)
        if prev is not None and prev.path is not None:
            prev.path.unlink(missing_ok=True)
        stored = _StoredCheckpoint(
            window_index=window_index, digest=digest, blob=blob, nbytes=len(blob)
        )
        if self.spill_dir is not None:
            root = Path(self.spill_dir)
            root.mkdir(parents=True, exist_ok=True)
            path = root / f"ckpt-shard{shard_id}-w{window_index}.bin"
            path.write_bytes(blob)
            stored = _StoredCheckpoint(
                window_index=window_index,
                digest=digest,
                blob=None,
                path=path,
                nbytes=len(blob),
            )
        self._latest[shard_id] = stored
        self.checkpoints_taken += 1
        self.checkpoint_bytes += len(blob)

    def latest_window(self, shard_id: int) -> int:
        """Window index of the shard's latest checkpoint, or ``-1``."""
        stored = self._latest.get(shard_id)
        return -1 if stored is None else stored.window_index

    def get(self, shard_id: int) -> bytes | None:
        """The shard's latest checkpoint blob (digest-verified), or None."""
        stored = self._latest.get(shard_id)
        if stored is None:
            return None
        blob = stored.blob
        if blob is None:
            assert stored.path is not None
            blob = stored.path.read_bytes()
        if checkpoint_digest(blob) != stored.digest:
            raise CheckpointDigestError(
                f"stored checkpoint for shard {shard_id} failed digest "
                "verification on read-back"
            )
        return blob

    def common_window(self, shard_ids: list[int]) -> int:
        """The newest window checkpointed by *every* listed shard.

        The consistent cut a global rollback (degraded adoption) can
        restore to; ``-1`` when some shard has no checkpoint yet, in
        which case rollback means a fresh rebuild from window 0.
        """
        if not shard_ids:
            return -1
        windows = [self.latest_window(s) for s in shard_ids]
        low = min(windows)
        return low

    def drop(self, shard_id: int) -> None:
        """Forget a shard's checkpoint (after its LPs were adopted)."""
        stored = self._latest.pop(shard_id, None)
        if stored is not None and stored.path is not None:
            stored.path.unlink(missing_ok=True)

    def close(self) -> None:
        """Remove any spilled checkpoint files."""
        for shard_id in list(self._latest):
            self.drop(shard_id)
