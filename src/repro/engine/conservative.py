"""Conservative barrier-synchronized parallel DES engine.

This is the execution model of MaSSF's distributed engine (DaSSF-style):
the simulated network is partitioned into logical processes (LPs); all LPs
repeatedly execute the events of one *synchronization window* whose length
equals the lookahead — the minimum latency of any cross-LP link (the
achieved MLL) — then exchange cross-LP events at a barrier. An event an LP
creates for another LP always lands at least one lookahead in the future,
so delivering mail at the barrier preserves causality.

All LPs share one OS process here (the substitution documented in
DESIGN.md); the engine still maintains one event queue per LP, routes
cross-LP traffic through mailboxes, enforces the lookahead constraint, and
records the per-window per-LP event counts that the cluster cost model
converts to wall-clock time. Its event ordering is equivalent to the
sequential kernel's whenever cross-LP event times respect the lookahead
(verified by tests).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..obs.trace import get_tracer
from .calqueue import make_queue
from .events import Event, _seq
from .windows import WindowStats, iter_windows

__all__ = ["LookaheadViolation", "WindowStats", "ConservativeEngine"]


class LookaheadViolation(RuntimeError):
    """A cross-LP event was scheduled closer than the engine's lookahead."""


class ConservativeEngine:
    """Barrier-window parallel executor over a node -> LP assignment.

    Parameters
    ----------
    assignment:
        ``assignment[node] = lp`` for every simulated node id. Events with
        ``node == -1`` (engine-internal) run on LP 0.
    num_lps:
        Number of logical processes (simulation engine nodes).
    lookahead:
        Window length in simulated seconds; must not exceed the minimum
        cross-LP link latency of the workload (the achieved MLL), which the
        engine enforces at scheduling time.
    strict:
        Raise :class:`LookaheadViolation` on violations (default). With
        ``strict=False`` violations are counted but tolerated (events are
        delivered late at the next barrier — the accuracy erosion a real
        optimistic/approximate engine would suffer).
    queue:
        Per-LP pending-set backend: ``"adaptive"`` (default),
        ``"heap"``, or ``"calendar"`` (see :mod:`repro.engine.calqueue`).
        Every backend pops the identical ``(time, seq)`` order, so the
        choice never changes simulation outcomes.
    """

    def __init__(
        self,
        assignment: Sequence[int] | np.ndarray,
        num_lps: int,
        lookahead: float,
        strict: bool = True,
        queue: str = "adaptive",
    ) -> None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= num_lps
        ):
            raise ValueError("assignment references an LP out of range")
        self.num_lps = int(num_lps)
        self.lookahead = float(lookahead)
        self.strict = strict

        self.now: float = 0.0  # barrier time (start of current window)
        self._queues = [make_queue(queue) for _ in range(self.num_lps)]
        self._mailboxes: list[list[Event]] = [[] for _ in range(self.num_lps)]
        self._current_lp: int | None = None
        self._window_end: float = 0.0
        self.events_executed = 0
        self.lookahead_violations = 0
        self.window_stats: list[WindowStats] = []
        self._events_this_window = np.zeros(self.num_lps, dtype=np.int64)
        self._remote_this_window = np.zeros(self.num_lps, dtype=np.int64)

        # Observability hook points: instruments resolved once here (the
        # only name lookups); per-window flushes are guarded writes.
        reg = get_registry()
        self._obs = reg
        self._obs_events = reg.counter(obs_names.ENGINE_EVENTS)
        self._obs_windows = reg.counter(obs_names.ENGINE_WINDOWS)
        self._obs_violations = reg.counter(obs_names.ENGINE_LOOKAHEAD_VIOLATIONS)
        self._obs_lp_events = reg.vector_counter(obs_names.ENGINE_LP_EVENTS, self.num_lps)
        self._obs_lp_remote = reg.vector_counter(
            obs_names.ENGINE_LP_REMOTE_SENDS, self.num_lps
        )
        self._obs_window_hist = reg.histogram(
            obs_names.ENGINE_WINDOW_EVENTS_HIST, (1.0, 10.0, 100.0, 1e3, 1e4, 1e5)
        )
        self._obs_barrier = reg.timer(obs_names.ENGINE_BARRIER_WAIT)
        # Structured trace hook points (same resolve-once contract): per
        # executed event, per cross-LP mailbox edge, per barrier window.
        self._trace = get_tracer()

    @property
    def current_time(self) -> float:
        """Simulated time within the executing LP (barrier time otherwise)."""
        return self._lp_now if self._current_lp is not None else self.now

    @property
    def next_barrier_time(self) -> float:
        """End of the current synchronization window (== now at a barrier).

        External (live-traffic) events are admitted at this time: an event
        scheduled at the window end is delivered at the barrier and
        therefore can safely target any LP.
        """
        return self._window_end if self._current_lp is not None else self.now

    # ------------------------------------------------------------------
    def lp_of(self, node: int) -> int:
        """The LP owning ``node`` (engine-internal events run on LP 0)."""
        return 0 if node < 0 else int(self.assignment[node])

    def schedule_at(
        self, time: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` on the LP owning ``node``.

        During window execution the causality floor is the *executing
        LP's local clock* (``_lp_now``), not the barrier clock: an event
        callback must not schedule into its own LP's past, or local
        execution order silently inverts inside the window. At a barrier
        (no LP executing) the floor is the global barrier time.
        Scheduling onto a *different* LP additionally checks the
        lookahead: the event must not land before the current window
        ends (it will be delivered at the barrier).
        """
        if self._current_lp is None:
            if time < self.now:
                raise ValueError("cannot schedule into the past")
        elif time < self._lp_now:
            raise ValueError(
                f"cannot schedule into the executing LP's past "
                f"(t={time:.9f} < LP-local now {self._lp_now:.9f})"
            )
        target_lp = self.lp_of(node)
        # Shared tiebreak counter: required for byte-identical ordering on
        # one core; the process-parallel backend owns replacing it with
        # per-LP sequences merged deterministically at barriers.
        ev = Event(time, next(_seq), fn, args, node)  # simlint: disable=SIM201
        if self._current_lp is None or target_lp == self._current_lp:
            self._queues[target_lp].push_event(ev)
        else:
            # Relative tolerance: an absolute epsilon falls below one
            # float ULP once simulated time passes ~0.01 s, turning
            # legitimate window-boundary events into spurious violations.
            if time < self._window_end - 1e-9 * self.lookahead:
                self.lookahead_violations += 1
                self._obs_violations.inc()
                if self.strict:
                    raise LookaheadViolation(
                        f"cross-LP event at t={time:.9f} lands inside the current "
                        f"window ending at {self._window_end:.9f} "
                        f"(lookahead {self.lookahead:.9f})"
                    )
            self._remote_this_window[self._current_lp] += 1
            self._mailboxes[target_lp].append(ev)
            if self._trace.enabled:
                self._trace.edge(self._current_lp, target_lp, self._lp_now, time)
        return ev

    def schedule(
        self, delay: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Event:
        """Schedule relative to the executing LP's current time."""
        base = self._lp_now if self._current_lp is not None else self.now
        return self.schedule_at(base + delay, fn, node=node, args=args)

    # ------------------------------------------------------------------
    def _run_lp_window(self, lp: int, window_end: float) -> int:
        queue = self._queues[lp]
        tracer = self._trace
        executed = 0
        while True:
            ev = queue.pop_until(window_end)
            if ev is None:
                break
            self._lp_now = ev.time
            ev.fn(*ev.args)
            executed += 1
            if tracer.enabled:
                tracer.event(ev.time, ev.node)
        return executed

    def run(self, until: float) -> int:
        """Run barrier windows until simulated time ``until``.

        Returns the number of events executed. Window stats accumulate in
        :attr:`window_stats`.
        """
        executed_total = 0
        # Window boundaries come from the shared iterator so this engine
        # and the multi-process backend derive bit-identical float
        # sequences (see repro.engine.windows).
        for window_index, _start, window_end in iter_windows(
            self.now, self.lookahead, until, first_index=len(self.window_stats)
        ):
            self._window_end = window_end
            self._events_this_window[:] = 0
            self._remote_this_window[:] = 0
            # "Parallel" phase: each LP processes its window independently.
            for lp in range(self.num_lps):
                self._current_lp = lp
                n = self._run_lp_window(lp, window_end)
                self._events_this_window[lp] = n
                executed_total += n
            self._current_lp = None
            # Barrier: deliver cross-LP mail, advance global time.
            barrier_token = self._obs_barrier.start()
            for lp, mail in enumerate(self._mailboxes):
                for ev in mail:
                    self._queues[lp].push_event(ev)
                mail.clear()
            self._obs_barrier.stop(barrier_token)
            if self._obs.enabled:
                self._obs_windows.inc()
                self._obs_events.inc(int(self._events_this_window.sum()))
                self._obs_lp_events.add_array(self._events_this_window)
                self._obs_lp_remote.add_array(self._remote_this_window)
                self._obs_window_hist.observe(float(self._events_this_window.sum()))
            if self._trace.enabled:
                self._trace.window(
                    window_index,
                    self.now,
                    window_end,
                    self._events_this_window,
                    self._remote_this_window,
                )
            self.window_stats.append(
                WindowStats(
                    window_index=window_index,
                    start=self.now,
                    end=window_end,
                    events_per_lp=self._events_this_window.copy(),
                    remote_sends_per_lp=self._remote_this_window.copy(),
                )
            )
            self.now = window_end
        self.events_executed += executed_total
        return executed_total

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Live events across all LP queues and mailboxes."""
        return sum(len(q) for q in self._queues) + sum(len(m) for m in self._mailboxes)

    def events_per_lp_total(self) -> np.ndarray:
        """Total events executed per LP over all windows so far."""
        total = np.zeros(self.num_lps, dtype=np.int64)
        for ws in self.window_stats:
            total += ws.events_per_lp
        return total

    def remote_sends_total(self) -> np.ndarray:
        """Total cross-LP events sent per LP over all windows so far."""
        total = np.zeros(self.num_lps, dtype=np.int64)
        for ws in self.window_stats:
            total += ws.remote_sends_per_lp
        return total

    _lp_now: float = 0.0
