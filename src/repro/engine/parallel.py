"""Multi-process conservative backend: real parallelism, same bytes.

:class:`ParallelConservativeEngine` executes the barrier-window protocol
of :class:`~repro.engine.conservative.ConservativeEngine` across real OS
processes. LPs are sharded over workers (contiguous split, so the
partitioner's locality survives); every worker replays the *identical*
scenario construction, keeps only the events of the LPs it owns, runs
each window with the existing per-LP kernels, and exchanges cross-shard
mail at the barrier — batched per window and serialized through
:mod:`repro.serialization`. There are no null messages: the window
length equals the lookahead, so a barrier per window is sufficient for
causality (the MaSSF/DaSSF composite-synchronization special case where
every channel's lookahead is the global MLL).

Byte-identity with the single-process engine comes from three rules:

1. **Deterministic tiebreak keys.** The global ``seq`` counter cannot
   exist across processes, so events carry ``(epoch, lane, counter)``
   tuples: ``epoch`` is 0 during setup and ``window_index + 1`` during
   execution, ``lane`` is the scheduling LP (0 for setup and control),
   and ``counter`` is a per-worker monotone int. Within one destination
   queue this lexicographic order reproduces the single-process
   ``(time, seq)`` order exactly: phases execute sequentially in the
   single-process engine (setup, then window 0 LP 0, window 0 LP 1, …),
   every ``(epoch >= 1, lane)`` phase has a single producing worker, and
   setup counters align across workers because construction is replayed
   identically everywhere.

2. **Replicated control plane.** Events targeting ``node == -1`` (fault
   injections, other control work) run on LP 0. The worker owning LP 0
   executes them interleaved with LP 0's traffic, exactly like the
   single-process engine; every other worker *replays* them from a
   replica queue before each window, so control-plane mutations (link
   state, forwarding tables, loss probabilities) are visible to all LPs
   with the same window granularity as the sequential schedule, where
   LP 0 runs first in every window. Replica replay discards events it
   would schedule onto real nodes — the owner already emits those as
   mail — so nothing is ever delivered twice.

3. **Shared boundary arithmetic.** Window boundaries come from
   :func:`repro.engine.windows.iter_windows` in every process, so the
   lookahead fence is the identical float everywhere.

What does *not* shard: scenarios whose construction cannot be replayed
per-process (live sockets, the online wrapper layer's process-wide
listener table) and cross-shard event cancellation (all cancellations
in the codebase are LP-local timers). This mirrors the feasibility
boundary reported for distributed BGP simulation — shared mutable
routing/daemon state is the hard part, packet-mediated traffic shards
cleanly (see PAPERS.md).
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..obs import names as obs_names
from ..obs.distributed import (
    RegistrySnapshot,
    TraceSnapshot,
    configure_worker_observability,
    worker_obs_config,
)
from ..obs.registry import get_registry
from ..obs.timers import Stopwatch
from ..obs.trace import get_tracer
from .calqueue import make_queue
from .conservative import LookaheadViolation
from .events import Event
from .recovery import CheckpointStore, RecoveryExhaustedError, checkpoint_digest
from .windows import WINDOW_EPSILON_FRACTION, WindowStats, iter_windows

__all__ = [
    "ParallelBackendError",
    "WorkerCrashError",
    "ParallelWorkerError",
    "MailOrderError",
    "UnregisteredHandlerError",
    "RecoveryExhaustedError",
    "ScenarioSpec",
    "ShardScenario",
    "ShardEngine",
    "LocalShardGroup",
    "ParallelRunResult",
    "ParallelConservativeEngine",
    "shard_lps",
    "validate_mail_batch",
]


# ----------------------------------------------------------------------
# Typed failure modes
# ----------------------------------------------------------------------
class ParallelBackendError(RuntimeError):
    """Base class for multi-process backend failures."""


class WorkerCrashError(ParallelBackendError):
    """A worker process died or stopped responding at a barrier."""


class ParallelWorkerError(ParallelBackendError):
    """A worker raised; carries the remote traceback text."""

    def __init__(self, shard_id: int, remote_traceback: str) -> None:
        super().__init__(
            f"worker {shard_id} failed remotely:\n{remote_traceback}"
        )
        self.shard_id = shard_id
        self.remote_traceback = remote_traceback


class MailOrderError(ParallelBackendError):
    """Barrier mail arrived behind the barrier time (sender bug)."""


class UnregisteredHandlerError(ParallelBackendError):
    """A cross-shard event's handler has no registered wire name."""


#: Bucket bounds of the per-worker barrier-wait histogram (seconds).
_BARRIER_WAIT_BOUNDS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


# ----------------------------------------------------------------------
# Scenario contract
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable recipe every worker replays identically.

    ``builder`` names a module-level function as ``"pkg.module:func"``;
    it is called as ``builder(engine, params)`` and must return a
    :class:`ShardScenario`. Builders must be deterministic pure
    functions of ``params`` — any divergence between workers breaks the
    key-alignment argument in the module docstring.
    """

    builder: str
    params: dict = field(default_factory=dict)


@dataclass
class ShardScenario:
    """What a scenario builder hands back to the backend.

    ``handlers`` maps wire names to the bound methods that may cross a
    process boundary inside mail (resolved by name on the receiving
    shard — code objects never travel). ``collect`` is called after the
    last window and must return a picklable result for the controller.

    ``capture_lp`` / ``restore_lp`` are the optional migration hooks the
    online re-balancer uses: ``capture_lp(lp)`` returns a picklable blob
    of the LP's *dynamic* scenario state (link busy horizons, RNG
    states of exclusively-owned links — never counters, never
    control-replicated state), and ``restore_lp(lp, blob)`` applies it
    on the adopting shard. Scenarios without the hooks simply cannot be
    rebalanced mid-run.

    ``capture_shard`` / ``restore_shard`` are the optional checkpoint
    hooks fault-tolerant recovery uses: ``capture_shard()`` returns a
    picklable blob of the *whole* shard's scenario state at a barrier,
    and ``restore_shard(blob)`` applies it onto a freshly rebuilt shard.
    Scenarios without them still checkpoint engine state (pending
    events, clocks, tiebreak counters) but restore with pristine
    scenario dynamics.
    """

    handlers: dict[str, Callable[..., Any]]
    collect: Callable[[], Any] | None = None
    capture_lp: Callable[[int], Any] | None = None
    restore_lp: Callable[[int, Any], None] | None = None
    capture_shard: Callable[[], Any] | None = None
    restore_shard: Callable[[Any], None] | None = None


def shard_lps(num_lps: int, procs: int) -> list[list[int]]:
    """Contiguous LP -> shard split (preserves partitioner locality)."""
    if procs < 1:
        raise ValueError("procs must be >= 1")
    return [part.tolist() for part in np.array_split(np.arange(num_lps), procs)]


def validate_mail_batch(
    items: Sequence[tuple], barrier_time: float, lookahead: float, strict: bool = True
) -> int:
    """Receiver-side causality gate over one window's decoded mail.

    Every item must land at or after the barrier (within the shared
    relative epsilon) — anything earlier means the sender broke the
    lookahead contract and in-window execution order is already lost.
    Returns the violation count; raises :class:`MailOrderError` when
    ``strict``.
    """
    eps = WINDOW_EPSILON_FRACTION * lookahead
    violations = 0
    for item in items:
        time = item[2]
        if time < barrier_time - eps:
            violations += 1
            if strict:
                raise MailOrderError(
                    f"mail event at t={time:.9f} arrives behind the barrier "
                    f"at {barrier_time:.9f} (lookahead {lookahead:.9f}); "
                    "out-of-order cross-shard delivery"
                )
    return violations


# ----------------------------------------------------------------------
# Per-shard engine
# ----------------------------------------------------------------------
class ShardEngine:
    """One worker's view of the conservative engine: the LPs it owns.

    Implements the same scheduler protocol as ``ConservativeEngine``
    (``schedule_at`` / ``schedule`` / ``current_time`` /
    ``next_barrier_time`` / ``lp_of``) so the packet simulator, fault
    injector, and applications run unchanged. Events carry ``(epoch,
    lane, counter)`` tiebreak keys instead of the process-global ``seq``
    (see the module docstring for why the order is identical).
    """

    def __init__(
        self,
        assignment: Sequence[int] | np.ndarray,
        num_lps: int,
        lookahead: float,
        owned_lps: Sequence[int],
        strict: bool = True,
        queue: str = "adaptive",
        shard_id: int = 0,
        num_shards: int = 1,
    ) -> None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self.shard_id = int(shard_id)
        self.num_shards = max(int(num_shards), 1)
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= num_lps
        ):
            raise ValueError("assignment references an LP out of range")
        self.num_lps = int(num_lps)
        self.lookahead = float(lookahead)
        self.strict = strict
        owned = sorted(int(lp) for lp in owned_lps)
        if any(lp < 0 or lp >= self.num_lps for lp in owned):
            raise ValueError("owned LP out of range")
        self.owned_lps = owned
        self._local_index = np.full(self.num_lps, -1, dtype=np.int64)
        for i, lp in enumerate(owned):
            self._local_index[lp] = i
        #: True when this shard owns LP 0 and therefore runs the real
        #: control plane (other shards replay a replica of it).
        self.has_control = bool(owned) and owned[0] == 0
        self._queue_kind = queue
        self._queues = [make_queue(queue) for _ in owned]
        self._control_queue = None if self.has_control else make_queue(queue)
        # Cross-LP mail between two LPs of the *same* shard still waits
        # for the barrier, mirroring the single-process mailboxes.
        self._local_mail: list[list[Event]] = [[] for _ in owned]
        self._outbound: list[tuple[int, Event]] = []

        self.now: float = 0.0
        self._window_end: float = 0.0
        self._current_lp: int | None = None
        self._lp_now: float = 0.0
        self._in_replica_control = False
        self._phase_setup = True
        # (epoch, lane, counter) key state: epoch 0 = setup, epoch w+1 =
        # window w; lane = scheduling LP; one monotone counter per
        # worker. The counter also advances for events a replay
        # discards, keeping kept-event keys aligned across workers.
        self._epoch = 0
        self._lane = 0
        self._kcount = 0

        self.events_executed = 0
        self.lookahead_violations = 0
        self.events_this_window = np.zeros(self.num_lps, dtype=np.int64)
        self.remote_this_window = np.zeros(self.num_lps, dtype=np.int64)
        # Cross-SHARD sends only (the subset of remote sends that hit
        # the mail pipes). Placement-aware by construction — after an LP
        # migrates, its mail to its new shard-mates stops counting. The
        # re-balancer's cost model consumes this column; obs keeps the
        # placement-independent cross-LP count above.
        self.xshard_this_window = np.zeros(self.num_lps, dtype=np.int64)

        # Observability hook points, resolved once here (the registry
        # contract: name lookups at construction, guarded writes after).
        # Engine-level instruments mirror ConservativeEngine exactly —
        # each shard records its owned columns, so worker snapshots
        # merged by repro.obs.distributed sum to the single-process
        # values. parallel.* instruments are per-worker (shard-labeled
        # by this engine's shard_id / the worker-events index).
        reg = get_registry()
        self._obs = reg
        self._obs_events = reg.counter(obs_names.ENGINE_EVENTS)
        self._obs_violations = reg.counter(obs_names.ENGINE_LOOKAHEAD_VIOLATIONS)
        self._obs_lp_events = reg.vector_counter(
            obs_names.ENGINE_LP_EVENTS, self.num_lps
        )
        self._obs_lp_remote = reg.vector_counter(
            obs_names.ENGINE_LP_REMOTE_SENDS, self.num_lps
        )
        self._obs_barrier = reg.timer(obs_names.ENGINE_BARRIER_WAIT)
        self._obs_worker_events = reg.vector_counter(
            obs_names.PARALLEL_WORKER_EVENTS, self.num_shards
        )
        self._obs_barrier_hist = reg.histogram(
            obs_names.PARALLEL_BARRIER_WAIT, _BARRIER_WAIT_BOUNDS
        )
        self._obs_mail_bytes = reg.counter(obs_names.PARALLEL_MAIL_BYTES)
        self._obs_window_execute = reg.timer(obs_names.PARALLEL_WINDOW_EXECUTE)
        self._obs_mail_encode = reg.timer(obs_names.PARALLEL_MAIL_ENCODE)
        self._obs_mail_decode = reg.timer(obs_names.PARALLEL_MAIL_DECODE)
        self._trace = get_tracer()

    # -- scheduler protocol -------------------------------------------
    @property
    def current_time(self) -> float:
        """Simulated time within the executing LP (barrier otherwise)."""
        if self._current_lp is not None or self._in_replica_control:
            return self._lp_now
        return self.now

    @property
    def next_barrier_time(self) -> float:
        """End of the current synchronization window."""
        if self._current_lp is not None or self._in_replica_control:
            return self._window_end
        return self.now

    @property
    def execution_cursor(self) -> tuple[int, int]:
        """(epoch, lane) of the executing phase — the global merge key.

        Per-shard logs tagged with this cursor concatenate into the
        exact single-process order under a stable sort: phases run
        sequentially there (setup, then window by window, LP by LP
        inside each window) and each ``(epoch, lane)`` phase executes
        entirely on one shard.
        """
        return (self._epoch, self._lane)

    def lp_of(self, node: int) -> int:
        """The LP owning ``node`` (engine-internal events run on LP 0)."""
        return 0 if node < 0 else int(self.assignment[node])

    def _next_key(self) -> tuple[int, int, int]:
        self._kcount += 1
        return (self._epoch, self._lane, self._kcount)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time`` on the LP owning ``node``.

        Same causality floors as the single-process engine. The fate of
        the event depends on the phase: during setup everything is
        replayed everywhere and only owned-LP (plus control) events are
        kept; during replica control replay only follow-up *control*
        events are kept; during window execution, off-LP events go to
        the local mailbox or the cross-shard outbound batch.
        """
        executing = self._current_lp is not None or self._in_replica_control
        if not executing:
            if time < self.now:
                raise ValueError("cannot schedule into the past")
        elif time < self._lp_now:
            raise ValueError(
                f"cannot schedule into the executing LP's past "
                f"(t={time:.9f} < LP-local now {self._lp_now:.9f})"
            )
        target_lp = self.lp_of(node)
        ev = Event(time, self._next_key(), fn, args, node)
        local = int(self._local_index[target_lp])
        if self._in_replica_control:
            if node < 0 and self._control_queue is not None:
                self._control_queue.push_event(ev)
            elif local >= 0:
                # A control handler scheduling directly onto an owned
                # node would also run on the owner's shard — delivering
                # here too would execute it twice.
                raise ParallelBackendError(
                    "control replay scheduled onto a real node; control "
                    "handlers must only mutate control-plane state"
                )
            return ev
        if self._current_lp is None:
            # Setup (or barrier-time) scheduling: replicated replay.
            if local >= 0:
                self._queues[local].push_event(ev)
            elif node < 0 and self._control_queue is not None:
                self._control_queue.push_event(ev)
            elif not self._phase_setup:
                raise ParallelBackendError(
                    "cannot schedule onto an unowned LP at a barrier; "
                    "cross-shard events must originate from executing events"
                )
            return ev
        if target_lp == self._current_lp:
            self._queues[local].push_event(ev)
            return ev
        # Cross-LP send during window execution: lookahead fence, then
        # local mailbox (same shard) or outbound mail (other shard).
        if time < self._window_end - WINDOW_EPSILON_FRACTION * self.lookahead:
            self.lookahead_violations += 1
            self._obs_violations.inc()
            if self.strict:
                raise LookaheadViolation(
                    f"cross-LP event at t={time:.9f} lands inside the current "
                    f"window ending at {self._window_end:.9f} "
                    f"(lookahead {self.lookahead:.9f})"
                )
        self.remote_this_window[self._current_lp] += 1
        if local >= 0:
            self._local_mail[local].append(ev)
        else:
            self.xshard_this_window[self._current_lp] += 1
            self._outbound.append((target_lp, ev))
        if self._trace.enabled:
            self._trace.edge(self._current_lp, target_lp, self._lp_now, time)
        return ev

    def schedule(
        self, delay: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Event:
        """Schedule relative to the executing LP's current time."""
        return self.schedule_at(self.current_time + delay, fn, node=node, args=args)

    # -- lifecycle -----------------------------------------------------
    def seal_setup(self) -> None:
        """End the replicated-construction phase; windows may now run."""
        self._phase_setup = False

    def run_window(self, window_index: int, window_end: float) -> int:
        """Execute one synchronization window over the owned LPs.

        Returns the number of events executed (owned LPs only; replica
        control replay is not counted — the owner counts it). Cross-LP
        mail produced during the window waits in the local mailboxes
        (delivered here at the end, like the single-process barrier) or
        in the outbound batch (``drain_outbound``).
        """
        if self._phase_setup:
            raise ParallelBackendError("seal_setup() must run before windows")
        self._epoch = window_index + 1
        self._window_end = window_end
        self.events_this_window[:] = 0
        self.remote_this_window[:] = 0
        self.xshard_this_window[:] = 0
        if self._control_queue is not None:
            self._run_replica_control(window_end)
        executed = 0
        for i, lp in enumerate(self.owned_lps):
            self._current_lp = lp
            self._lane = lp
            n = self._run_lp_queue(i, window_end)
            self.events_this_window[lp] = n
            executed += n
        self._current_lp = None
        self._lane = 0
        barrier_token = self._obs_barrier.start()
        for i, mail in enumerate(self._local_mail):
            for ev in mail:
                self._queues[i].push_event(ev)
            mail.clear()
        self._obs_barrier.stop(barrier_token)
        if self._obs.enabled:
            self._obs_events.inc(int(executed))
            self._obs_lp_events.add_array(self.events_this_window)
            self._obs_lp_remote.add_array(self.remote_this_window)
            self._obs_worker_events.inc(self.shard_id, float(executed))
        if self._trace.enabled:
            self._trace.window(
                window_index,
                self.now,
                window_end,
                self.events_this_window,
                self.remote_this_window,
            )
        self.now = window_end
        self.events_executed += executed
        return executed

    def _run_replica_control(self, window_end: float) -> None:
        # Pre-window replay of the control plane: equivalent to the
        # sequential schedule, where LP 0 (including all control events)
        # runs before every other LP within each window.
        self._in_replica_control = True
        self._lane = 0
        queue = self._control_queue
        while True:
            ev = queue.pop_until(window_end)
            if ev is None:
                break
            self._lp_now = ev.time
            ev.fn(*ev.args)
        self._in_replica_control = False

    def _run_lp_queue(self, local: int, window_end: float) -> int:
        queue = self._queues[local]
        tracer = self._trace
        executed = 0
        while True:
            ev = queue.pop_until(window_end)
            if ev is None:
                break
            self._lp_now = ev.time
            ev.fn(*ev.args)
            executed += 1
            if tracer.enabled:
                tracer.event(ev.time, ev.node)
        return executed

    # -- mail ----------------------------------------------------------
    def drain_outbound(self) -> list[tuple[int, Event]]:
        """Remove and return this window's live cross-shard mail."""
        out = [(lp, ev) for lp, ev in self._outbound if not ev.cancelled]
        self._outbound.clear()
        return out

    def push_remote(self, target_lp: int, ev: Event) -> None:
        """Enqueue a decoded mail event onto an owned LP's queue."""
        local = int(self._local_index[target_lp])
        if local < 0:
            raise ParallelBackendError(
                f"mail for LP {target_lp} routed to a shard that does not own it"
            )
        self._queues[local].push_event(ev)

    @property
    def pending(self) -> int:
        """Live events across owned queues, mailboxes, and outbound."""
        queued = sum(len(q) for q in self._queues)
        mailed = sum(len(m) for m in self._local_mail)
        return queued + mailed + len(self._outbound)

    # -- barrier-time LP migration (online re-partitioning) ------------
    def _reindex_owned(self) -> None:
        self._local_index[:] = -1
        for i, lp in enumerate(self.owned_lps):
            self._local_index[lp] = i

    def release_lp(self, lp: int) -> list[Event]:
        """Disown ``lp`` at a barrier; returns its still-pending events.

        Only callable between windows (at the barrier, after mail
        delivery), when the LP's mailbox is empty and every pending
        event lies at or beyond the barrier. The events keep their
        original ``(epoch, lane, counter)`` keys — migration moves the
        queue, it never re-keys, which is what preserves the global
        merge order. LP 0 never migrates: control-plane ownership is
        structural (``has_control``), not load.
        """
        if lp == 0:
            raise ParallelBackendError(
                "LP 0 owns the control plane and cannot migrate"
            )
        local = int(self._local_index[lp])
        if local < 0:
            raise ParallelBackendError(
                f"cannot release LP {lp}: this shard does not own it"
            )
        if self._current_lp is not None or self._phase_setup:
            raise ParallelBackendError(
                "LP migration is only legal at a barrier"
            )
        if self._local_mail[local]:
            raise ParallelBackendError(
                f"cannot release LP {lp} with undelivered local mail"
            )
        queue = self._queues[local]
        events: list[Event] = []
        while True:
            ev = queue.pop_until(float("inf"))
            if ev is None:
                break
            if not ev.cancelled:
                events.append(ev)
        del self.owned_lps[local]
        del self._queues[local]
        del self._local_mail[local]
        self._reindex_owned()
        return events

    def adopt_lp(self, lp: int, events: Sequence[Event]) -> None:
        """Take ownership of ``lp`` at a barrier with its pending events.

        The inverse of :meth:`release_lp` on the destination shard.
        ``owned_lps`` stays sorted, so within-window LP execution order
        remains ascending — the same order the single-process engine
        interleaves them in.
        """
        if int(self._local_index[lp]) >= 0:
            raise ParallelBackendError(
                f"cannot adopt LP {lp}: this shard already owns it"
            )
        if self._current_lp is not None or self._phase_setup:
            raise ParallelBackendError(
                "LP migration is only legal at a barrier"
            )
        pos = int(np.searchsorted(np.asarray(self.owned_lps), lp))
        self.owned_lps.insert(pos, int(lp))
        self._queues.insert(pos, make_queue(self._queue_kind))
        self._local_mail.insert(pos, [])
        self._reindex_owned()
        for ev in events:
            self._queues[pos].push_event(ev)

    # -- measured observability ----------------------------------------
    def observe_window_walls(
        self,
        window_index: int,
        executed: int,
        execute_s: float,
        barrier_wait_s: float,
        mail_encode_s: float,
        mail_decode_s: float,
        mail_bytes: int,
    ) -> None:
        """Record one window's *measured* wall-clock decomposition.

        Called by the worker loop with externally measured spans (the
        loop owns the stopwatches so the barrier wait includes the pipe
        round-trip, which the engine cannot see). Feeds the per-worker
        ``parallel.*`` instruments and the tracer's measured channel;
        every write is guarded, so an unobserved run records nothing.
        """
        if self._obs.enabled:
            self._obs_window_execute.add(execute_s)
            self._obs_barrier_hist.observe(barrier_wait_s)
            self._obs_mail_encode.add(mail_encode_s)
            self._obs_mail_decode.add(mail_decode_s)
            self._obs_mail_bytes.inc(float(mail_bytes))
        self._trace.measured_window(
            window_index,
            self.shard_id,
            execute_s,
            barrier_wait_s,
            mail_encode_s,
            mail_decode_s,
            executed,
            mail_bytes,
        )


# ----------------------------------------------------------------------
# Shared shard-side protocol steps (worker process and local group)
# ----------------------------------------------------------------------
def _resolve_builder(path: str) -> Callable[..., ShardScenario]:
    module_name, _, fn_name = path.partition(":")
    if not module_name or not fn_name:
        raise ParallelBackendError(
            f"builder {path!r} must be 'package.module:function'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ParallelBackendError(
            f"builder {path!r}: cannot import its module ({exc})"
        ) from exc
    fn = getattr(module, fn_name, None)
    if fn is None:
        raise ParallelBackendError(f"builder {path!r} not found")
    return fn


def _build_shard(
    engine: ShardEngine, spec: ScenarioSpec
) -> tuple[ShardScenario, dict[Any, str], dict[str, Callable[..., Any]]]:
    """Run the scenario builder and index its wire handlers both ways."""
    scenario = _resolve_builder(spec.builder)(engine, spec.params)
    name_to_fn = dict(scenario.handlers)
    fn_to_name = {}
    for name in sorted(name_to_fn):
        fn_to_name[name_to_fn[name]] = name
    engine.seal_setup()
    return scenario, fn_to_name, name_to_fn


def _encode_outbound(
    engine: ShardEngine,
    shard_of: Sequence[int],
    fn_to_name: dict[Any, str],
    procs: int,
) -> list[bytes]:
    """Batch and serialize one window's cross-shard mail per destination."""
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    buckets: list[list[tuple]] = [[] for _ in range(procs)]
    for target_lp, ev in engine.drain_outbound():
        name = fn_to_name.get(ev.fn)
        if name is None:
            raise UnregisteredHandlerError(
                f"handler {ev.fn!r} is not registered for cross-process "
                "mail; add it to the scenario's handlers dict"
            )
        buckets[int(shard_of[target_lp])].append(
            (int(target_lp), int(ev.node), ev.time, ev.seq, name, ev.args)
        )
    return [ser.encode_mail_batch(b) if b else b"" for b in buckets]


def _deliver_encoded_mail(
    engine: ShardEngine,
    payloads: Sequence[bytes],
    barrier_time: float,
    name_to_fn: dict[str, Callable[..., Any]],
) -> None:
    """Decode, validate, and enqueue one window's inbound mail."""
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    items: list[tuple] = []
    for payload in payloads:
        if payload:
            items.extend(ser.decode_mail_batch(payload))
    engine.lookahead_violations += validate_mail_batch(
        items, barrier_time, engine.lookahead, strict=engine.strict
    )
    for target_lp, node, time, key, handler, args in items:
        fn = name_to_fn.get(handler)
        if fn is None:
            raise UnregisteredHandlerError(
                f"mail references unknown handler {handler!r}; sender and "
                "receiver scenarios disagree"
            )
        engine.push_remote(
            target_lp, Event(time, tuple(key), fn, tuple(args), node)
        )


def _shard_result(engine: ShardEngine, scenario: ShardScenario) -> dict[str, Any]:
    return {
        "collect": scenario.collect() if scenario.collect is not None else None,
        "events_executed": int(engine.events_executed),
        "lookahead_violations": int(engine.lookahead_violations),
    }


# ----------------------------------------------------------------------
# LP migration wire helpers (online re-partitioning)
# ----------------------------------------------------------------------
def _encode_lp_migration(
    engine: ShardEngine,
    scenario: ShardScenario,
    fn_to_name: dict[Callable, str],
    lp: int,
) -> bytes:
    """Release ``lp`` from ``engine`` and pack it for the control plane.

    The payload carries the LP's still-pending events (re-encoded by
    handler wire name, keeping their original ``(epoch, lane, counter)``
    keys) plus the scenario's opaque ``capture_lp`` state blob. It rides
    the controller pipes via :func:`repro.serialization.encode_migration`
    — never barrier mail, so mail bytes and mail ordering are untouched.
    """
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    events = engine.release_lp(lp)
    items: list[tuple] = []
    for ev in events:
        name = fn_to_name.get(ev.fn)
        if name is None:
            raise UnregisteredHandlerError(
                f"pending event on LP {lp} bound to unregistered handler "
                f"{ev.fn!r}; the LP cannot migrate"
            )
        items.append(
            (int(lp), int(ev.node), ev.time, ev.seq, name, ev.args)
        )
    state = scenario.capture_lp(lp) if scenario.capture_lp is not None else None
    return ser.encode_migration({"lp": int(lp), "events": items, "state": state})


def _install_lp_migration(
    engine: ShardEngine,
    scenario: ShardScenario,
    name_to_fn: dict[str, Callable],
    payload_bytes: bytes,
) -> int:
    """Adopt a migrated LP from its wire payload; returns payload size."""
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    payload = ser.decode_migration(payload_bytes)
    lp = int(payload["lp"])
    events = []
    for _target_lp, node, time, key, handler, args in payload["events"]:
        fn = name_to_fn.get(handler)
        if fn is None:
            raise UnregisteredHandlerError(
                f"migration payload references unknown handler {handler!r}; "
                "sender and receiver scenarios disagree"
            )
        events.append(Event(time, tuple(key), fn, tuple(args), node))
    engine.adopt_lp(lp, events)
    if scenario.restore_lp is not None and payload.get("state") is not None:
        scenario.restore_lp(lp, payload["state"])
    return len(payload_bytes)


#: bucket bounds of the blame-concentration histogram — shared between
#: eager registration and per-migration recording (histograms only
#: merge across identical bounds)
_CONCENTRATION_BOUNDS = (0.25, 0.5, 0.75, 0.9, 1.0)


def _register_rebalance_instruments(reg) -> None:
    """Register the ``rebalance.*`` instruments up front.

    Called from the engine constructors when a rebalance config is
    present, so the instruments exist in snapshots taken *before* the
    first trigger or migration (and so the names-drift check sees them
    by constructing an engine, like every other instrumented component).
    """
    reg.counter(obs_names.REBALANCE_TRIGGERS)
    reg.counter(obs_names.REBALANCE_CANDIDATES)
    reg.counter(obs_names.REBALANCE_MIGRATIONS)
    reg.counter(obs_names.REBALANCE_STATE_BYTES)
    reg.histogram(obs_names.REBALANCE_CONCENTRATION, _CONCENTRATION_BOUNDS)


def _record_migration_obs(decision, state_bytes: int) -> None:
    """Controller-side rebalance instruments + trace record (obs-gated)."""
    reg = get_registry()
    if not reg.enabled:
        return
    reg.counter(obs_names.REBALANCE_MIGRATIONS).inc()
    reg.counter(obs_names.REBALANCE_STATE_BYTES).inc(float(state_bytes))
    reg.histogram(
        obs_names.REBALANCE_CONCENTRATION, _CONCENTRATION_BOUNDS
    ).observe(float(decision.concentration))
    get_tracer().migration(
        decision.window_index,
        decision.lp,
        decision.src_shard,
        decision.dst_shard,
        decision.concentration,
        decision.predicted_gain_s,
        state_bytes,
    )


def _record_rebalance_counters(rebalancer, prev: tuple[int, int]) -> tuple[int, int]:
    """Flush trigger/candidate-count deltas into registry counters."""
    reg = get_registry()
    triggers, scored = rebalancer.triggers, rebalancer.candidates_scored
    if reg.enabled:
        if triggers > prev[0]:
            reg.counter(obs_names.REBALANCE_TRIGGERS).inc(float(triggers - prev[0]))
        if scored > prev[1]:
            reg.counter(obs_names.REBALANCE_CANDIDATES).inc(float(scored - prev[1]))
    return triggers, scored


def _build_rebalancer(config, shards, num_lps, spec, until, affinity=None):
    """Construct the controller-side :class:`Rebalancer` for one run.

    Fault slowdown spans come from the scenario spec's ``faults`` param
    (the same schedule the injector replays), so the modeled blame
    source sees straggler slowdowns without measuring anything.
    """
    from ..partition.rebalance import Rebalancer, slowdown_spans

    spans = ()
    params = getattr(spec, "params", None)
    faults = params.get("faults") if isinstance(params, dict) else None
    if faults:
        spans = slowdown_spans(faults, float(until))
    return Rebalancer(
        config, shards, num_lps, spans=spans, affinity=affinity
    )


# ----------------------------------------------------------------------
# Checkpoint / recovery helpers (fault-tolerant execution)
# ----------------------------------------------------------------------
class _AdoptionNeeded(Exception):
    """Internal: respawns exhausted, degrade by adopting the dead shard."""

    def __init__(self, shard_id: int):
        super().__init__(f"shard {shard_id} needs adoption")
        self.shard_id = int(shard_id)


def _snapshot_queue_items(queue, fn_to_name: dict[Any, str]) -> list[tuple]:
    """Non-destructively list one queue's live events by wire name.

    Entries come back in canonical ``(time, key)`` order so the encoded
    checkpoint (and therefore its digest) is independent of the queue
    backend's internal layout.
    """
    entries = queue.drain_entries()
    queue.extend_entries(entries)
    live = [e for e in entries if not e[2].cancelled]
    live.sort(key=lambda e: (e[0], e[1]))
    items: list[tuple] = []
    for _time, _key, ev in live:
        name = fn_to_name.get(ev.fn)
        if name is None:
            raise UnregisteredHandlerError(
                f"pending event bound to unregistered handler {ev.fn!r}; "
                "the shard cannot checkpoint"
            )
        items.append((int(ev.node), ev.time, tuple(ev.seq), name, ev.args))
    return items


def _capture_engine_state(
    engine: ShardEngine, fn_to_name: dict[Any, str]
) -> dict[str, Any]:
    """Snapshot the shard engine's dynamic state at an empty barrier."""
    if engine._outbound or any(engine._local_mail):
        raise ParallelBackendError(
            "checkpoint capture requires an empty barrier "
            "(undelivered mail is pending)"
        )
    queues = {
        int(lp): _snapshot_queue_items(engine._queues[i], fn_to_name)
        for i, lp in enumerate(engine.owned_lps)
    }
    control = (
        _snapshot_queue_items(engine._control_queue, fn_to_name)
        if engine._control_queue is not None
        else None
    )
    return {
        "now": float(engine.now),
        "kcount": int(engine._kcount),
        "events_executed": int(engine.events_executed),
        "lookahead_violations": int(engine.lookahead_violations),
        "owned_lps": [int(lp) for lp in engine.owned_lps],
        "queues": queues,
        "control": control,
    }


def _restore_engine_state(
    engine: ShardEngine,
    state: dict[str, Any],
    name_to_fn: dict[str, Callable[..., Any]],
) -> None:
    """Overwrite a freshly built shard engine with checkpointed state."""
    if [int(lp) for lp in engine.owned_lps] != list(state["owned_lps"]):
        raise ParallelBackendError(
            "checkpoint owned-LP set does not match the rebuilt engine"
        )

    def _reload(queue, items):
        queue.drain_entries()
        for node, ev_time, key, handler, args in items:
            fn = name_to_fn.get(handler)
            if fn is None:
                raise UnregisteredHandlerError(
                    f"checkpoint references unknown handler {handler!r}; "
                    "the rebuilt scenario disagrees with the captured one"
                )
            queue.push_event(Event(ev_time, tuple(key), fn, tuple(args), node))

    for i, lp in enumerate(engine.owned_lps):
        _reload(engine._queues[i], state["queues"][int(lp)])
    if engine._control_queue is not None:
        _reload(engine._control_queue, state["control"] or [])
    engine.now = float(state["now"])
    engine._kcount = int(state["kcount"])
    engine.events_executed = int(state["events_executed"])
    engine.lookahead_violations = int(state["lookahead_violations"])


def _encode_worker_checkpoint(
    engine: ShardEngine,
    scenario: ShardScenario,
    fn_to_name: dict[Any, str],
    window_index: int,
    mail_bytes: int,
) -> bytes:
    """Pack one shard's full barrier state into a checkpoint blob.

    The whole payload goes through a single pickle so aliasing among
    events and packets survives the round trip exactly.
    """
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    payload = {
        "shard_id": int(engine.shard_id),
        "window_index": int(window_index),
        "owned_lps": [int(lp) for lp in engine.owned_lps],
        "engine": _capture_engine_state(engine, fn_to_name),
        "shard_state": (
            scenario.capture_shard() if scenario.capture_shard is not None else None
        ),
        "acc": {"mail_bytes": int(mail_bytes)},
    }
    return ser.encode_checkpoint(payload)


def _restore_shard_from_blob(
    blob: bytes,
    assignment,
    num_lps: int,
    lookahead: float,
    spec: ScenarioSpec,
    strict: bool,
    queue: str,
    procs: int,
):
    """Rebuild a shard from a checkpoint: fresh setup replay + restore.

    Returns ``(engine, scenario, fn_to_name, name_to_fn, payload)``.
    """
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    payload = ser.decode_checkpoint(blob)
    engine = ShardEngine(
        assignment,
        num_lps,
        lookahead,
        payload["owned_lps"],
        strict=strict,
        queue=queue,
        shard_id=int(payload["shard_id"]),
        num_shards=procs,
    )
    scenario, fn_to_name, name_to_fn = _build_shard(engine, spec)
    _restore_engine_state(engine, payload["engine"], name_to_fn)
    if scenario.restore_shard is not None and payload.get("shard_state") is not None:
        scenario.restore_shard(payload["shard_state"])
    return engine, scenario, fn_to_name, name_to_fn, payload


def _adoption_installs(dead_blob: bytes) -> dict[int, bytes]:
    """Turn a dead shard's checkpoint into per-LP migration payloads.

    Reuses the re-partitioning wire format (`encode_migration`), so the
    adopting survivor installs the orphaned LPs with the exact same code
    path a planned migration uses. The dead shard's replica control
    queue is *not* shipped — every survivor replays the identical
    control schedule already.
    """
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    payload = ser.decode_checkpoint(dead_blob)
    engine_state = payload["engine"]
    shard_state = payload.get("shard_state") or {}
    lp_states = shard_state.get("lp", {})
    installs: dict[int, bytes] = {}
    for lp in engine_state["owned_lps"]:
        lp = int(lp)
        items = [
            (lp, node, ev_time, key, handler, args)
            for node, ev_time, key, handler, args in engine_state["queues"][lp]
        ]
        installs[lp] = ser.encode_migration(
            {"lp": lp, "events": items, "state": lp_states.get(lp)}
        )
    return installs


def _synthesize_dead_result(blob: bytes | None) -> dict[str, Any]:
    """Stand-in `done` result for an adopted (dead) shard.

    Its partial sums come from the last committed checkpoint; the
    adopter re-accumulates everything after the commit point, so the
    merged totals still match an uninterrupted run. With no commit yet
    the dead shard contributes nothing (the survivors recompute the
    whole run from window 0).
    """
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    if blob is None:
        return {
            "collect": None,
            "events_executed": 0,
            "lookahead_violations": 0,
            "barrier_wait_s": 0.0,
            "mail_bytes": 0,
        }
    payload = ser.decode_checkpoint(blob)
    engine_state = payload["engine"]
    shard_state = payload.get("shard_state") or {}
    return {
        "collect": shard_state.get("collect"),
        "events_executed": int(engine_state["events_executed"]),
        "lookahead_violations": int(engine_state["lookahead_violations"]),
        "barrier_wait_s": 0.0,
        "mail_bytes": int(payload["acc"]["mail_bytes"]),
    }


def _register_recovery_instruments(reg) -> None:
    """Register the ``recovery.*`` instruments up front (see rebalance)."""
    reg.counter(obs_names.RECOVERY_CHECKPOINTS)
    reg.counter(obs_names.RECOVERY_CHECKPOINT_BYTES)
    reg.counter(obs_names.RECOVERY_DETECTIONS)
    reg.counter(obs_names.RECOVERY_RESPAWNS)
    reg.counter(obs_names.RECOVERY_REPLAYED)
    reg.counter(obs_names.RECOVERY_ADOPTIONS)


def _record_recovery_obs(kind: str, window_index: int, shard_id: int, **detail) -> None:
    """Controller-side recovery instruments + trace record (obs-gated)."""
    reg = get_registry()
    if reg.enabled:
        if kind == "checkpoint":
            reg.counter(obs_names.RECOVERY_CHECKPOINTS).inc()
            reg.counter(obs_names.RECOVERY_CHECKPOINT_BYTES).inc(
                float(detail.get("nbytes", 0))
            )
        elif kind == "detect":
            reg.counter(obs_names.RECOVERY_DETECTIONS).inc()
        elif kind == "respawn":
            reg.counter(obs_names.RECOVERY_RESPAWNS).inc()
            reg.counter(obs_names.RECOVERY_REPLAYED).inc(
                float(detail.get("replayed", 0))
            )
        elif kind == "adopt":
            reg.counter(obs_names.RECOVERY_ADOPTIONS).inc()
    get_tracer().recovery_step(window_index, shard_id, kind, **detail)


def _teardown_worker(conn, proc, grace_s: float = 5.0) -> None:
    """Always release both pipe ends and escalate join→terminate→kill."""
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass
    if proc is None:
        return
    proc.join(timeout=grace_s)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=grace_s)
    if proc.is_alive():  # pragma: no cover - terminate-resistant worker
        proc.kill()
        proc.join(timeout=grace_s)


def _crash_error(shard_id: int, proc, what: str, hung: bool = False):
    """Build a typed `WorkerCrashError` carrying shard/exit diagnostics."""
    exitcode = getattr(proc, "exitcode", None)
    if exitcode is None and not hung and hasattr(proc, "join"):
        # An EOF can surface before the dead child is reaped, in which
        # case exitcode still reads None; give the reap a moment.
        proc.join(0.5)
        exitcode = getattr(proc, "exitcode", None)
    if hung:
        err = WorkerCrashError(
            f"worker {shard_id} {what} (process still alive: hang suspected)"
        )
    else:
        err = WorkerCrashError(f"worker {shard_id} {what} (exitcode {exitcode})")
    err.shard_id = shard_id
    err.exitcode = exitcode
    err.hung = hung
    return err


def _fire_process_fault(conn, kind) -> None:
    """Execute one injected process-level fault (worker side)."""
    from ..faults.plan import ProcessFaultKind  # deferred: faults -> engine

    if kind is ProcessFaultKind.SIGKILL or kind == ProcessFaultKind.SIGKILL.value:
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind is ProcessFaultKind.HANG or kind == ProcessFaultKind.HANG.value:
        while True:  # pragma: no cover - reaped by the controller
            time.sleep(3600.0)
    else:  # pipe drop: vanish without a goodbye on the wire
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        os._exit(1)


def _maybe_fire_fault(conn, faults, window_index: int, incarnation: int,
                      after_send: bool) -> None:
    """Fire the planned fault matching this (window, incarnation, phase)."""
    for pf in faults:
        if (
            pf.window == window_index
            and pf.incarnation == incarnation
            and bool(pf.after_send) == after_send
        ):
            _fire_process_fault(conn, pf.kind)


def _worker_main(conn, config_bytes: bytes) -> None:
    """Worker process entry: build, run windows, talk the barrier wire.

    Per window the worker sends ``("window", w, payloads, events_col,
    remote_col, xshard_col)`` and blocks until the controller routes
    everyone's mail
    back as ``("mail", w, payloads)``. Failures surface as ``("error",
    traceback_text)`` so the controller can raise a typed error instead
    of deadlocking at the barrier.

    When the controller's config carries an ``obs`` stanza the worker
    enables its own process-global registry/tracer, measures per-window
    wall-clock spans, and appends a registry + trace snapshot to the
    ``done`` result (with ``incremental`` on, also a per-window registry
    delta as a sixth element of each window tuple). With obs off, none
    of that code runs and every message is byte-identical to a build
    without the observability layer — mail adds zero bytes.

    When the config carries a ``rebalance`` stanza the mail message
    grows a fourth element — ``None`` or a migration plan ``[(lp, src,
    dst), ...]`` decided by the controller. On a plan, every worker
    first delivers its mail (routed by the *old* placement, so inbound
    events land in the departing LP's queue before extraction), then
    updates its local ``shard_of``, sends ``("migrate", w, {lp:
    payload})`` for LPs it releases (empty dict otherwise), and blocks
    for ``("install", w, {lp: payload})`` carrying LPs it adopts.
    Payload bytes ride these pipe messages only — never barrier mail.
    With ``source == "measured"`` the worker additionally appends its
    measured per-window execute seconds as the *last* element of every
    window message (measured regardless of obs, since the controller's
    blame needs it).

    When the config carries a ``recovery`` stanza the worker sends
    ``("ckpt", w, digest, blob)`` after the mail round of every cadence
    window, and understands two extra inbound shapes: a config
    ``resume`` block (restore from a checkpoint blob, then privately
    replay controller-retained mail up to the crash frontier) and a
    ``("rollback", c, blob, installs, shard_of)`` message in place of
    mail (restore to the committed window ``c`` and rejoin at ``c + 1``
    — the degraded-adoption path). Checkpoint bytes ride these control
    messages only, never barrier mail, and with the stanza absent every
    wire message is byte-identical to a build without recovery.
    """
    from .. import serialization as ser  # deferred: serialization -> core -> engine

    try:
        config = ser.decode_payload(config_bytes)
        obs_cfg = config.get("obs")
        obs_on = configure_worker_observability(obs_cfg)
        shard_id = config["shard_id"]
        rec_cfg = config.get("recovery")
        rec_on = bool(rec_cfg)
        ckpt_every = int(rec_cfg["checkpoint_every_n_windows"]) if rec_on else 0
        incarnation = int(config.get("incarnation", 0))
        my_faults: tuple = ()
        if rec_on and rec_cfg.get("fault_plan") is not None:
            my_faults = rec_cfg["fault_plan"].for_shard(shard_id)
        procs = config["procs"]
        mail_bytes = 0
        resume = config.get("resume")
        if resume is not None and resume.get("checkpoint") is not None:
            engine, scenario, fn_to_name, name_to_fn, ckpt_payload = (
                _restore_shard_from_blob(
                    resume["checkpoint"],
                    config["assignment"],
                    config["num_lps"],
                    config["lookahead"],
                    config["spec"],
                    config["strict"],
                    config["queue"],
                    procs,
                )
            )
            next_w = int(ckpt_payload["window_index"]) + 1
            mail_bytes = int(ckpt_payload["acc"]["mail_bytes"])
        else:
            engine = ShardEngine(
                config["assignment"],
                config["num_lps"],
                config["lookahead"],
                config["owned_lps"],
                strict=config["strict"],
                queue=config["queue"],
                shard_id=shard_id,
                num_shards=procs,
            )
            scenario, fn_to_name, name_to_fn = _build_shard(engine, config["spec"])
            next_w = 0
        shard_of = list(config["shard_of"])
        rb_cfg = config.get("rebalance")
        rb_on = bool(rb_cfg)
        rb_measured = rb_on and rb_cfg.get("source") == "measured"
        barrier_wait_s = 0.0
        obs_bytes = 0
        waiting = Stopwatch()
        label = f"worker-{shard_id}"
        incremental = bool(obs_cfg.get("incremental")) if obs_on else False
        prev_snap = (
            RegistrySnapshot.capture(shard_id=shard_id, label=label)
            if incremental
            else None
        )
        clock = Stopwatch()
        measure_exec = obs_on or rb_measured
        boundaries = list(iter_windows(0.0, engine.lookahead, config["until"]))
        if resume is not None and resume.get("replay"):
            # Private replay after a respawn: re-run the crashed windows
            # from controller-retained mail. Regenerated outbound mail is
            # counted (the totals must match an uninterrupted run) but
            # discarded — the live recipients consumed the originals.
            for rw, inbound in ser.decode_replay_buffer(resume["replay"]):
                rw = int(rw)
                _maybe_fire_fault(conn, my_faults, rw, incarnation, False)
                _rw, _rs, rend = boundaries[rw]
                engine.run_window(rw, rend)
                payloads = _encode_outbound(engine, shard_of, fn_to_name, procs)
                mail_bytes += sum(len(p) for p in payloads)
                _maybe_fire_fault(conn, my_faults, rw, incarnation, True)
                _deliver_encoded_mail(engine, inbound, rend, name_to_fn)
                next_w = rw + 1
        i = next_w
        while i < len(boundaries):
            w, _start, end = boundaries[i]
            if rec_on:
                _maybe_fire_fault(conn, my_faults, w, incarnation, False)
            if measure_exec:
                clock.restart()
            executed = engine.run_window(w, end)
            execute_s = clock.elapsed() if measure_exec else 0.0
            if obs_on:
                clock.restart()
            payloads = _encode_outbound(engine, shard_of, fn_to_name, procs)
            encode_s = clock.elapsed() if obs_on else 0.0
            window_mail = sum(len(p) for p in payloads)
            mail_bytes += window_mail
            message = (
                "window",
                w,
                payloads,
                engine.events_this_window.tolist(),
                engine.remote_this_window.tolist(),
                engine.xshard_this_window.tolist(),
            )
            if incremental:
                snap = RegistrySnapshot.capture(shard_id=shard_id, label=label)
                delta = ser.encode_snapshot(snap.diff(prev_snap))
                prev_snap = snap
                obs_bytes += len(delta)
                message = message + (delta,)
            if rb_measured:
                message = message + (execute_s,)
            conn.send(message)
            if rec_on:
                _maybe_fire_fault(conn, my_faults, w, incarnation, True)
            waiting.restart()
            msg = conn.recv()
            wait_s = waiting.elapsed()
            barrier_wait_s += wait_s
            if rec_on and msg[0] == "rollback":
                # ("rollback", c, blob, installs, shard_of): a sibling
                # died and respawns are exhausted — every survivor
                # rewinds to the committed checkpoint window c, the
                # adopter additionally installs the dead shard's LPs.
                blob = msg[2]
                if blob is not None:
                    engine, scenario, fn_to_name, name_to_fn, ckpt_payload = (
                        _restore_shard_from_blob(
                            blob,
                            config["assignment"],
                            config["num_lps"],
                            config["lookahead"],
                            config["spec"],
                            config["strict"],
                            config["queue"],
                            procs,
                        )
                    )
                    mail_bytes = int(ckpt_payload["acc"]["mail_bytes"])
                    i = int(ckpt_payload["window_index"]) + 1
                else:
                    # Nothing committed yet: restart from window 0 with
                    # the post-adoption placement (the adopter owns the
                    # dead shard's LPs from setup — there is no state
                    # to install).
                    owned = [
                        lp
                        for lp in range(config["num_lps"])
                        if int(msg[4][lp]) == shard_id
                    ]
                    engine = ShardEngine(
                        config["assignment"],
                        config["num_lps"],
                        config["lookahead"],
                        owned,
                        strict=config["strict"],
                        queue=config["queue"],
                        shard_id=shard_id,
                        num_shards=procs,
                    )
                    scenario, fn_to_name, name_to_fn = _build_shard(
                        engine, config["spec"]
                    )
                    mail_bytes = 0
                    i = 0
                for mig_lp in sorted(msg[3]):
                    _install_lp_migration(
                        engine, scenario, name_to_fn, msg[3][mig_lp]
                    )
                shard_of = [int(v) for v in msg[4]]
                continue
            if msg[0] != "mail" or msg[1] != w:
                raise ParallelBackendError(
                    f"barrier protocol desync: expected mail for window {w}, "
                    f"got {msg[:2]!r}"
                )
            if obs_on:
                clock.restart()
            _deliver_encoded_mail(engine, msg[2], end, name_to_fn)
            decode_s = clock.elapsed() if obs_on else 0.0
            plan = msg[3] if rb_on and len(msg) > 3 else None
            if plan:
                outgoing: dict[int, bytes] = {}
                for mig_lp, mig_src, mig_dst in plan:
                    mig_lp = int(mig_lp)
                    if int(mig_src) == shard_id:
                        outgoing[mig_lp] = _encode_lp_migration(
                            engine, scenario, fn_to_name, mig_lp
                        )
                    shard_of[mig_lp] = int(mig_dst)
                conn.send(("migrate", w, outgoing))
                inst = conn.recv()
                if inst[0] != "install" or inst[1] != w:
                    raise ParallelBackendError(
                        f"barrier protocol desync: expected install for "
                        f"window {w}, got {inst[:2]!r}"
                    )
                for mig_lp in sorted(inst[2]):
                    _install_lp_migration(
                        engine, scenario, name_to_fn, inst[2][mig_lp]
                    )
            if rec_on and ckpt_every and (w + 1) % ckpt_every == 0:
                blob = _encode_worker_checkpoint(
                    engine, scenario, fn_to_name, w, mail_bytes
                )
                conn.send(("ckpt", w, checkpoint_digest(blob), blob))
            if obs_on:
                engine.observe_window_walls(
                    w,
                    executed,
                    execute_s,
                    wait_s,
                    encode_s,
                    decode_s,
                    window_mail,
                )
            i += 1
        result = _shard_result(engine, scenario)
        result["barrier_wait_s"] = barrier_wait_s
        result["mail_bytes"] = mail_bytes
        if obs_on:
            result["obs_bytes"] = obs_bytes
            result["obs"] = {
                "registry": RegistrySnapshot.capture(
                    shard_id=shard_id, label=label
                ),
                "trace": TraceSnapshot.capture(shard_id=shard_id, label=label),
            }
        conn.send(("done", ser.encode_payload(result)))
        conn.close()
    except BaseException:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", traceback.format_exc()))
            conn.close()
        except (BrokenPipeError, OSError):  # pragma: no cover - dead pipe
            pass


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ParallelRunResult:
    """Merged outcome of one multi-process (or local-group) run."""

    procs: int
    until: float
    lookahead: float
    #: contiguous LP split actually used, one list per shard
    shards: list[list[int]]
    #: per-window stats summed across shards (same shape the
    #: single-process engine records — cost-model ready)
    window_stats: list[WindowStats]
    events_executed: int
    lookahead_violations: int
    #: controller wall-clock for the whole run (build + windows)
    wall_s: float
    #: per-worker seconds spent blocked at barriers
    barrier_wait_s: list[float]
    #: per-worker serialized mail bytes sent
    mail_bytes: list[int]
    #: per-worker events executed
    worker_events: list[int]
    #: per-shard ``ShardScenario.collect()`` values
    collected: list[Any]
    #: per-worker registry snapshots (empty when the run was unobserved)
    registry_snapshots: list[RegistrySnapshot] = field(default_factory=list)
    #: per-worker trace snapshots (empty when the run was unobserved)
    trace_snapshots: list[TraceSnapshot] = field(default_factory=list)
    #: per-worker bytes of incremental obs deltas shipped over the pipe
    #: (always 0 unless ``incremental_obs``; never part of mail bytes)
    obs_bytes: list[int] = field(default_factory=list)
    #: accepted mid-run LP migrations, in decision order (empty unless
    #: the run was launched with a rebalance config); ``shards`` above
    #: reports the *final* placement after these moves
    migrations: list = field(default_factory=list)
    #: recovery summary (``None`` unless the run was launched with a
    #: recovery config): checkpoints taken/bytes, detections, respawns,
    #: windows replayed, degraded adoptions, last committed checkpoint
    #: window, and the shards that finished the run dead
    recovery: dict | None = None

    @property
    def total_mail_bytes(self) -> int:
        """Serialized cross-shard mail volume over the whole run."""
        return int(sum(self.mail_bytes))


def _merge_window_rows(
    num_lps: int,
    rows: dict[int, list[tuple[list[int], list[int]]]],
    boundaries: list[tuple[int, float, float]],
) -> list[WindowStats]:
    stats = []
    for w, start, end in boundaries:
        events = np.zeros(num_lps, dtype=np.int64)
        remote = np.zeros(num_lps, dtype=np.int64)
        for events_col, remote_col in rows[w]:
            events += np.asarray(events_col, dtype=np.int64)
            remote += np.asarray(remote_col, dtype=np.int64)
        stats.append(
            WindowStats(
                window_index=w,
                start=start,
                end=end,
                events_per_lp=events,
                remote_sends_per_lp=remote,
            )
        )
    return stats


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
class ParallelConservativeEngine:
    """Conservative barrier-window engine over real worker processes.

    Parameters mirror :class:`ConservativeEngine`, plus:

    procs:
        Worker process count. LPs are split contiguously across workers
        (``shard_lps``); ``procs > num_lps`` leaves trailing workers
        with empty shards, which no-op cleanly.
    start_method:
        ``multiprocessing`` start method. ``"fork"`` (default on Linux)
        is fastest; ``"spawn"`` additionally proves every payload
        pickles (the differential suite runs both).
    window_timeout_s:
        Per-barrier controller patience before declaring a worker hung
        (:class:`WorkerCrashError`).
    incremental_obs:
        When observability is enabled, additionally ship a per-window
        registry delta from every worker (``live_snapshot()`` then shows
        mid-run state). Off by default — end-of-run snapshots always
        arrive with the results, and the deltas cost pipe bytes.
    rebalance:
        Optional :class:`~repro.partition.rebalance.RebalanceConfig`.
        When set, the controller watches per-window blame concentration
        and migrates LPs between shards at barriers (see
        ``docs/load_balancing.md``). Only the controller decides —
        workers receive finished plans, so every process agrees on
        placement without extra synchronization. The simulation result
        is byte-identical either way.
    rebalance_affinity:
        Optional LP x LP affinity matrix (``partition.lp_affinity``)
        used to break score ties toward migrations that cut fewer
        cross-shard links.
    recovery:
        Optional :class:`~repro.engine.recovery.RecoveryConfig`. When
        set, workers checkpoint their shard at the configured cadence,
        the controller supervises liveness, and a crashed or hung
        worker is respawned from its last checkpoint (degrading to
        survivor adoption when respawns run out — see
        ``docs/robustness.md``). Mutually exclusive with ``rebalance``:
        a checkpoint cut racing an in-flight migration plan has no
        well-defined placement.
    """

    def __init__(
        self,
        assignment: Sequence[int] | np.ndarray,
        num_lps: int,
        lookahead: float,
        procs: int = 2,
        strict: bool = True,
        queue: str = "adaptive",
        start_method: str = "fork",
        window_timeout_s: float = 120.0,
        incremental_obs: bool = False,
        rebalance=None,
        rebalance_affinity=None,
        recovery=None,
    ) -> None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        if rebalance is not None and recovery is not None:
            raise ValueError(
                "online rebalancing and fault-tolerant recovery cannot be "
                "combined: a checkpoint cut racing a migration plan has no "
                "well-defined placement"
            )
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.num_lps = int(num_lps)
        self.lookahead = float(lookahead)
        self.procs = int(procs)
        self.strict = strict
        self.queue = queue
        self.start_method = start_method
        self.window_timeout_s = float(window_timeout_s)
        self.shards = shard_lps(self.num_lps, self.procs)
        self._shard_of = np.empty(self.num_lps, dtype=np.int64)
        for shard_id, lps in enumerate(self.shards):
            for lp in lps:
                self._shard_of[lp] = shard_id

        self.incremental_obs = bool(incremental_obs)
        self.rebalance = rebalance
        self.rebalance_affinity = rebalance_affinity
        self.recovery = recovery
        #: per-shard merged incremental registry deltas (incremental_obs)
        self._live_deltas: dict[int, RegistrySnapshot] = {}

        # Controller-side instruments: only the *global* per-window
        # aggregates a single worker cannot know (the window count and
        # the all-shards event-count distribution). Everything per-worker
        # — barrier waits, mail bytes, worker events — is recorded inside
        # the workers with shard labels and arrives via snapshot merging
        # (repro.obs.distributed).
        reg = get_registry()
        self._obs = reg
        self._obs_windows = reg.counter(obs_names.ENGINE_WINDOWS)
        self._obs_window_hist = reg.histogram(
            obs_names.ENGINE_WINDOW_EVENTS_HIST, (1.0, 10.0, 100.0, 1e3, 1e4, 1e5)
        )
        if rebalance is not None:
            _register_rebalance_instruments(reg)
        if recovery is not None:
            _register_recovery_instruments(reg)

    @classmethod
    def from_mapping(
        cls, mapping, lookahead: float | None = None, **kwargs
    ) -> "ParallelConservativeEngine":
        """Build from partitioner output (:class:`NetworkMapping`).

        The lookahead defaults to the mapping's achieved MLL — the same
        window rule the modeled engine uses; pass ``lookahead``
        explicitly when the mapping has no finite cross-LP latency
        (single-engine mappings).
        """
        if lookahead is None:
            mll = float(mapping.evaluation.mll_s)
            if not np.isfinite(mll) or mll <= 0:
                raise ValueError(
                    "mapping has no finite achieved MLL; pass lookahead="
                )
            lookahead = mll
        return cls(
            mapping.assignment, mapping.num_engines, lookahead, **kwargs
        )

    # -- controller-side wire helpers ---------------------------------
    def _recv(self, conns, procs, shard_id):
        """Receive one message; crashes and hangs become typed errors.

        The raised :class:`WorkerCrashError` carries ``shard_id``,
        ``exitcode`` and ``hung`` attributes so the recovery layer can
        tell a dead process (detected on the next 50 ms liveness tick,
        long before the window timeout) from one that is alive but
        silent past ``window_timeout_s``.
        """
        conn = conns[shard_id]
        proc = procs[shard_id]
        waited = Stopwatch()
        while True:
            try:
                ready = conn.poll(0.05)
            except (OSError, EOFError):
                # A worker killed with unread mail in its receive buffer
                # resets the socket pair (Linux AF_UNIX semantics).
                raise _crash_error(
                    shard_id, proc, "reset its pipe mid-protocol"
                ) from None
            if ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise _crash_error(
                        shard_id, proc, "closed its pipe mid-protocol"
                    ) from None
                if msg[0] == "error":
                    raise ParallelWorkerError(shard_id, msg[1])
                return msg
            if not proc.is_alive() and not conn.poll(0.0):
                raise _crash_error(
                    shard_id, proc, "died at a barrier without reporting"
                )
            if waited.elapsed() > self.window_timeout_s:
                raise _crash_error(
                    shard_id,
                    proc,
                    f"unresponsive for more than "
                    f"{self.window_timeout_s:.0f}s at a barrier",
                    hung=proc.is_alive(),
                )

    def _worker_config(
        self,
        shard_id: int,
        spec: ScenarioSpec,
        until: float,
        incarnation: int = 0,
        resume: dict | None = None,
    ) -> bytes:
        from .. import serialization as ser  # deferred: serialization -> core -> engine

        config = {
            "assignment": self.assignment,
            "num_lps": self.num_lps,
            "lookahead": self.lookahead,
            "owned_lps": self.shards[shard_id],
            "strict": self.strict,
            "queue": self.queue,
            "spec": spec,
            "shard_of": self._shard_of.tolist(),
            "procs": self.procs,
            "until": float(until),
            "shard_id": shard_id,
            "obs": worker_obs_config(incremental=self.incremental_obs),
            "rebalance": (
                {"source": self.rebalance.source}
                if self.rebalance is not None
                else None
            ),
            "recovery": (
                self.recovery.stanza() if self.recovery is not None else None
            ),
        }
        if incarnation:
            config["incarnation"] = incarnation
        if resume is not None:
            config["resume"] = resume
        return ser.encode_payload(config)

    def run_scenario(self, spec: ScenarioSpec, until: float) -> ParallelRunResult:
        """Run ``spec`` to simulated time ``until`` across the workers.

        Blocks until every worker finishes (or fails — worker errors
        surface as :class:`ParallelWorkerError`, crashes and hangs as
        :class:`WorkerCrashError`). Returns the merged result; per-LP
        window stats are summed across shards into the same
        :class:`WindowStats` rows the single-process engine records.

        With a recovery config, worker loss does not end the run:
        the controller respawns the worker from the last committed
        checkpoint (replaying retained mail forward), and when respawns
        are exhausted with ``on_worker_loss="adopt"`` it rolls every
        survivor back to the commit cut and hands the dead shard's LPs
        to the least-loaded survivor. Only when the degradation ladder
        runs out does the run fail, with
        :class:`RecoveryExhaustedError`.
        """
        from .. import serialization as ser  # deferred: serialization -> core -> engine

        rec = self.recovery
        rec_on = rec is not None
        mode = rec.on_worker_loss if rec_on else "fail"
        ctx = mp.get_context(self.start_method)
        conns: list = []
        workers: list = []
        wall = Stopwatch()
        store = CheckpointStore(rec.spill_dir) if rec_on else None
        # Mail retained since the last committed checkpoint: window ->
        # {dest shard -> per-sender payload list}. Replayed into a
        # respawned worker; pruned at every commit, so the buffer is
        # bounded by the checkpoint cadence.
        retained: dict[int, dict[int, list[bytes]]] = {}
        committed = -1
        attempts = [0] * self.procs
        incarnations = [0] * self.procs
        dead = [False] * self.procs
        wins_consumed = [0] * self.procs
        mails_sent = [0] * self.procs
        stats = {"detections": 0, "respawns": 0, "windows_replayed": 0,
                 "adoptions": 0}
        adoption_window: int | None = None
        dead_blob: bytes | None = None
        cur_shards = [list(s) for s in self.shards]
        max_obs_window = -1

        def _live():
            return [s for s in range(self.procs) if not dead[s]]

        def _spawn(shard_id, incarnation=0, resume=None):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self._worker_config(
                        shard_id, spec, until,
                        incarnation=incarnation, resume=resume,
                    ),
                ),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            return parent_conn, proc

        def _handle_loss(shard_id, exc, replay_hi):
            """Respawn ``shard_id`` or escalate up the degradation ladder.

            ``replay_hi`` is the last window whose retained mail the
            respawned worker must privately replay before rejoining.
            """
            if not rec_on or mode == "fail":
                raise exc
            stats["detections"] += 1
            _record_recovery_obs(
                "detect", replay_hi + 1, shard_id,
                hung=bool(getattr(exc, "hung", False)),
                exitcode=getattr(exc, "exitcode", None),
            )
            _teardown_worker(conns[shard_id], workers[shard_id], grace_s=0.2)
            wins_consumed[shard_id] = 0
            mails_sent[shard_id] = 0
            attempts[shard_id] += 1
            if attempts[shard_id] > rec.max_respawns:
                if mode == "adopt":
                    raise _AdoptionNeeded(shard_id) from exc
                raise RecoveryExhaustedError(
                    f"worker {shard_id} lost {attempts[shard_id]} times, "
                    f"exceeding max_respawns={rec.max_respawns}; "
                    "on_worker_loss='respawn' has no further rung"
                ) from exc
            if adoption_window is not None and committed <= adoption_window:
                raise RecoveryExhaustedError(
                    f"worker {shard_id} lost after a degraded adoption and "
                    "before the next checkpoint commit; the dead shard's "
                    "pre-adoption checkpoint is stale"
                ) from exc
            time.sleep(rec.backoff_s(attempts[shard_id]))
            incarnations[shard_id] += 1
            ckpt_blob = store.get(shard_id)
            base = store.latest_window(shard_id)
            entries = [
                (rw, retained[rw][shard_id])
                for rw in sorted(retained)
                if base < rw <= replay_hi
            ]
            resume = {
                "checkpoint": ckpt_blob,
                "replay": ser.encode_replay_buffer(entries),
            }
            conns[shard_id], workers[shard_id] = _spawn(
                shard_id, incarnation=incarnations[shard_id], resume=resume
            )
            stats["respawns"] += 1
            stats["windows_replayed"] += len(entries)
            _record_recovery_obs(
                "respawn", replay_hi + 1, shard_id,
                attempt=attempts[shard_id], replayed=len(entries),
            )

        def _adopt(dead_shard):
            """Global rollback to the commit cut + survivor adoption."""
            nonlocal adoption_window, dead_blob
            if 0 in cur_shards[dead_shard]:
                raise RecoveryExhaustedError(
                    f"worker {dead_shard} owns LP 0 (the control lane); the "
                    "control shard cannot be adopted by a survivor"
                )
            c = committed
            blob = store.get(dead_shard) if c >= 0 else None
            if c >= 0 and blob is None:  # pragma: no cover - store invariant
                raise RecoveryExhaustedError(
                    f"no checkpoint for shard {dead_shard} at the committed "
                    f"window {c}"
                )
            dead[dead_shard] = True
            survivors = _live()
            if not survivors:  # pragma: no cover - shard 0 never adopted
                raise RecoveryExhaustedError("no survivors left to adopt")
            # Every survivor is either computing or blocked at a mail
            # recv; consume its in-flight messages until it owes us
            # exactly one unanswered window message, at which point a
            # rollback lands where it expects mail.
            for s in survivors:
                while wins_consumed[s] <= mails_sent[s]:
                    m = self._recv(conns, workers, s)
                    if m[0] == "window":
                        wins_consumed[s] += 1
                    elif m[0] == "ckpt":
                        pass  # abandoned: this round can no longer commit
                    else:
                        raise ParallelBackendError(
                            f"barrier protocol desync: worker {s} sent "
                            f"{m[0]!r} while draining for rollback"
                        )
            adopter = min(survivors, key=lambda s: (len(cur_shards[s]), s))
            cur_shards[adopter] = sorted(
                cur_shards[adopter] + cur_shards[dead_shard]
            )
            cur_shards[dead_shard] = []
            new_shard_of = [0] * self.num_lps
            for s, lps in enumerate(cur_shards):
                for lp in lps:
                    new_shard_of[lp] = s
            installs = _adoption_installs(blob) if blob is not None else {}
            for s in survivors:
                conns[s].send(
                    (
                        "rollback",
                        c,
                        store.get(s) if c >= 0 else None,
                        installs if s == adopter else {},
                        new_shard_of,
                    )
                )
                wins_consumed[s] = 0
                mails_sent[s] = 0
            for bw in rows:
                if bw > c:
                    rows[bw] = []
            retained.clear()
            dead_blob = blob
            adoption_window = c
            stats["adoptions"] += 1
            _record_recovery_obs(
                "adopt", c + 1, dead_shard, adopter=adopter,
                committed_window=c,
            )
            return c

        try:
            for shard_id in range(self.procs):
                parent_conn, proc = _spawn(shard_id)
                conns.append(parent_conn)
                workers.append(proc)

            boundaries = list(iter_windows(0.0, self.lookahead, until))
            last_w = boundaries[-1][0] if boundaries else -1
            rows: dict[int, list[tuple[list[int], list[int]]]] = {
                w: [] for w, _s, _e in boundaries
            }
            rebalancer = None
            rb_measured = False
            rb_prev = (0, 0)
            migrations: list = []
            if self.rebalance is not None:
                rebalancer = _build_rebalancer(
                    self.rebalance,
                    self.shards,
                    self.num_lps,
                    spec,
                    until,
                    affinity=self.rebalance_affinity,
                )
                rb_measured = self.rebalance.source == "measured"
            wi = 0
            while wi < len(boundaries):
                w, _start, _end = boundaries[wi]
                try:
                    msgs: dict[int, tuple] = {}
                    pending = _live()
                    while pending:
                        shard_id = pending.pop(0)
                        try:
                            msg = self._recv(conns, workers, shard_id)
                        except WorkerCrashError as exc:
                            _handle_loss(shard_id, exc, replay_hi=w - 1)
                            pending.append(shard_id)
                            continue
                        if msg[0] != "window" or msg[1] != w:
                            raise ParallelBackendError(
                                f"barrier protocol desync: worker {shard_id} "
                                f"sent {msg[:2]!r}, expected window {w}"
                            )
                        wins_consumed[shard_id] += 1
                        msgs[shard_id] = msg
                        rows[w].append((msg[3], msg[4]))
                    plan = None
                    decision = None
                    if rebalancer is not None and not rebalancer.retired:
                        ordered = [msgs[s] for s in range(self.procs)]
                        events_sum = np.zeros(self.num_lps, dtype=np.int64)
                        xshard_sum = np.zeros(self.num_lps, dtype=np.int64)
                        for msg in ordered:
                            events_sum += np.asarray(msg[3], dtype=np.int64)
                            xshard_sum += np.asarray(msg[5], dtype=np.int64)
                        measured = (
                            np.asarray([float(m[-1]) for m in ordered])
                            if rb_measured
                            else None
                        )
                        decision = rebalancer.observe_window(
                            w, _start, _end, events_sum, xshard_sum, measured
                        )
                        rb_prev = _record_rebalance_counters(rebalancer, rb_prev)
                        if decision is not None:
                            plan = [
                                (decision.lp, decision.src_shard,
                                 decision.dst_shard)
                            ]
                    # Route: destination j receives one payload per
                    # sender (dead senders contribute empty payloads
                    # after an adoption — their LPs now send from the
                    # adopter's lanes).
                    live_now = _live()
                    inbound_by = {
                        s: [
                            msgs[src][2][s] if src in msgs else b""
                            for src in range(self.procs)
                        ]
                        for s in live_now
                    }
                    if rec_on:
                        retained[w] = inbound_by
                    skip_ckpt: set[int] = set()
                    for shard_id in live_now:
                        try:
                            if rebalancer is not None:
                                conns[shard_id].send(
                                    ("mail", w, inbound_by[shard_id], plan)
                                )
                            else:
                                conns[shard_id].send(
                                    ("mail", w, inbound_by[shard_id])
                                )
                            mails_sent[shard_id] += 1
                        except (BrokenPipeError, OSError):
                            if plan:
                                raise ParallelBackendError(
                                    f"worker {shard_id} lost while a "
                                    "migration plan is in flight"
                                )
                            exc = _crash_error(
                                shard_id, workers[shard_id],
                                "dropped its pipe at mail delivery",
                            )
                            # The worker had already sent window w, so
                            # the respawn replays through w and rejoins
                            # at w + 1 without checkpointing w.
                            _handle_loss(shard_id, exc, replay_hi=w)
                            skip_ckpt.add(shard_id)
                    if plan:
                        # Migration sub-protocol: collect payloads from
                        # the releasing shards, route each to the
                        # adopting shard. Payloads ride these
                        # control-plane pipes only.
                        outgoing_all: dict[int, bytes] = {}
                        for shard_id in range(self.procs):
                            mig = self._recv(conns, workers, shard_id)
                            if mig[0] != "migrate" or mig[1] != w:
                                raise ParallelBackendError(
                                    f"barrier protocol desync: worker "
                                    f"{shard_id} sent {mig[:2]!r}, expected "
                                    f"migrate {w}"
                                )
                            outgoing_all.update(mig[2])
                        for shard_id in range(self.procs):
                            install = {
                                lp: blob
                                for lp, blob in outgoing_all.items()
                                if int(rebalancer.shard_of[lp]) == shard_id
                            }
                            conns[shard_id].send(("install", w, install))
                        state_bytes = sum(
                            len(b) for b in outgoing_all.values()
                        )
                        migrations.append(decision)
                        _record_migration_obs(decision, state_bytes)
                    if rec_on and rec.is_checkpoint_window(w):
                        # Transactional commit: the store only advances
                        # when every live shard checkpoints this window;
                        # a partial set is discarded (but still drained,
                        # to keep the pipes aligned).
                        got: dict[int, tuple[str, bytes]] = {}
                        for shard_id in [
                            s for s in _live() if s not in skip_ckpt
                        ]:
                            try:
                                cmsg = self._recv(conns, workers, shard_id)
                            except WorkerCrashError as exc:
                                _handle_loss(shard_id, exc, replay_hi=w)
                                continue
                            if cmsg[0] != "ckpt" or cmsg[1] != w:
                                raise ParallelBackendError(
                                    f"barrier protocol desync: worker "
                                    f"{shard_id} sent {cmsg[:2]!r}, expected "
                                    f"ckpt {w}"
                                )
                            got[shard_id] = (cmsg[2], cmsg[3])
                        if sorted(got) == _live():
                            for shard_id in sorted(got):
                                digest, blob = got[shard_id]
                                store.put(shard_id, w, digest, blob)
                                _record_recovery_obs(
                                    "checkpoint", w, shard_id,
                                    nbytes=len(blob),
                                )
                            committed = w
                            for rw in [x for x in retained if x <= w]:
                                del retained[rw]
                    if self._obs.enabled and w > max_obs_window:
                        self._obs_windows.inc()
                        self._obs_window_hist.observe(
                            float(sum(sum(cols) for cols, _remote in rows[w]))
                        )
                    max_obs_window = max(max_obs_window, w)
                    if self.incremental_obs:
                        for shard_id in sorted(msgs):
                            msg = msgs[shard_id]
                            if len(msg) > 6 and msg[6]:
                                delta = ser.decode_snapshot(msg[6])
                                prev = self._live_deltas.get(shard_id)
                                self._live_deltas[shard_id] = (
                                    delta
                                    if prev is None
                                    else RegistrySnapshot.merge([prev, delta])
                                )
                except _AdoptionNeeded as need:
                    wi = _adopt(need.shard_id) + 1
                    continue
                wi += 1
            results_by: dict[int, dict] = {}
            for shard_id in _live():
                while True:
                    try:
                        msg = self._recv(conns, workers, shard_id)
                    except WorkerCrashError as exc:
                        try:
                            _handle_loss(shard_id, exc, replay_hi=last_w)
                        except _AdoptionNeeded:
                            raise RecoveryExhaustedError(
                                f"worker {shard_id} exhausted its respawns "
                                "at the final barrier; survivors have "
                                "already collected — adoption would need a "
                                "rollback past the end of the run"
                            ) from exc
                        continue
                    break
                if msg[0] != "done":
                    raise ParallelBackendError(
                        f"barrier protocol desync: worker {shard_id} sent "
                        f"{msg[0]!r}, expected done"
                    )
                results_by[shard_id] = ser.decode_payload(msg[1])
            results = [
                results_by[s] if not dead[s] else _synthesize_dead_result(
                    dead_blob
                )
                for s in range(self.procs)
            ]
        finally:
            for conn, proc in zip(conns, workers):
                _teardown_worker(conn, proc)
            if store is not None:
                store.close()

        wall_s = wall.elapsed()
        window_stats = _merge_window_rows(self.num_lps, rows, boundaries)
        worker_events = [r["events_executed"] for r in results]
        barrier_wait = [r["barrier_wait_s"] for r in results]
        mail_bytes = [r["mail_bytes"] for r in results]
        registry_snapshots = [
            r["obs"]["registry"] for r in results if "obs" in r
        ]
        trace_snapshots = [r["obs"]["trace"] for r in results if "obs" in r]
        obs_bytes = [int(r.get("obs_bytes", 0)) for r in results]
        if rebalancer is not None and migrations:
            final_shards: list[list[int]] = [[] for _ in range(self.procs)]
            for lp in range(self.num_lps):
                final_shards[int(rebalancer.shard_of[lp])].append(lp)
        elif rec_on and stats["adoptions"]:
            final_shards = [list(s) for s in cur_shards]
        else:
            final_shards = [list(s) for s in self.shards]
        recovery_summary = None
        if rec_on:
            recovery_summary = {
                "checkpoints_taken": int(store.checkpoints_taken),
                "checkpoint_bytes": int(store.checkpoint_bytes),
                "detections": stats["detections"],
                "respawns": stats["respawns"],
                "windows_replayed": stats["windows_replayed"],
                "adoptions": stats["adoptions"],
                "committed_window": committed,
                "dead_shards": [s for s in range(self.procs) if dead[s]],
            }
        return ParallelRunResult(
            procs=self.procs,
            until=float(until),
            lookahead=self.lookahead,
            shards=final_shards,
            window_stats=window_stats,
            events_executed=int(sum(worker_events)),
            lookahead_violations=int(
                sum(r["lookahead_violations"] for r in results)
            ),
            wall_s=wall_s,
            barrier_wait_s=barrier_wait,
            mail_bytes=mail_bytes,
            worker_events=worker_events,
            collected=[r["collect"] for r in results],
            registry_snapshots=registry_snapshots,
            trace_snapshots=trace_snapshots,
            obs_bytes=obs_bytes,
            migrations=migrations,
            recovery=recovery_summary,
        )

    def live_snapshot(self) -> RegistrySnapshot:
        """Merged registry state from incremental deltas received so far.

        Only meaningful with ``incremental_obs``; before the first
        barrier (or without the flag) this is an empty snapshot.
        """
        deltas = [self._live_deltas[s] for s in sorted(self._live_deltas)]
        return RegistrySnapshot.merge(deltas) if deltas else RegistrySnapshot(
            provenance=(),
            counters={},
            vectors={},
            gauges={},
            histograms={},
            timers={},
            series={},
        )


# ----------------------------------------------------------------------
# In-process reference group (tests, hypothesis sweeps)
# ----------------------------------------------------------------------
class LocalShardGroup:
    """Drive K :class:`ShardEngine` shards in one process.

    Executes the identical barrier/mail protocol — including the
    round-trip through :mod:`repro.serialization` — without OS
    processes. This is the reference executor the differential suite
    sweeps with hypothesis (arbitrary shard counts and partitions are
    cheap), while :class:`ParallelConservativeEngine` proves the same
    bytes survive real process boundaries.
    """

    def __init__(
        self,
        assignment: Sequence[int] | np.ndarray,
        num_lps: int,
        lookahead: float,
        procs: int = 2,
        strict: bool = True,
        queue: str = "adaptive",
        shards: list[list[int]] | None = None,
        rebalance=None,
        rebalance_affinity=None,
        recovery=None,
    ) -> None:
        if rebalance is not None and recovery is not None:
            raise ValueError(
                "online rebalancing and fault-tolerant recovery cannot be "
                "combined: a checkpoint cut racing a migration plan has no "
                "well-defined placement"
            )
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.num_lps = int(num_lps)
        self.lookahead = float(lookahead)
        self.strict = strict
        self.queue = queue
        self.rebalance = rebalance
        self.rebalance_affinity = rebalance_affinity
        self.recovery = recovery
        self.shards = shards if shards is not None else shard_lps(num_lps, procs)
        self.procs = len(self.shards)
        seen = sorted(lp for part in self.shards for lp in part)
        if seen != list(range(self.num_lps)):
            raise ValueError("shards must partition range(num_lps) exactly")
        self._shard_of = np.empty(self.num_lps, dtype=np.int64)
        for shard_id, lps in enumerate(self.shards):
            for lp in lps:
                self._shard_of[lp] = shard_id
        # The in-process group shares the one process-global registry
        # across all shard engines, so per-shard instruments aggregate
        # in place — no snapshot merging needed (or possible). Only the
        # global per-window aggregates are recorded here, like the
        # multi-process controller.
        reg = get_registry()
        self._obs = reg
        self._obs_windows = reg.counter(obs_names.ENGINE_WINDOWS)
        self._obs_window_hist = reg.histogram(
            obs_names.ENGINE_WINDOW_EVENTS_HIST, (1.0, 10.0, 100.0, 1e3, 1e4, 1e5)
        )
        if rebalance is not None:
            _register_rebalance_instruments(reg)
        if recovery is not None:
            _register_recovery_instruments(reg)

    def run_scenario(self, spec: ScenarioSpec, until: float) -> ParallelRunResult:
        """Run ``spec`` to ``until`` over the in-process shard group.

        With a recovery config, the group mirrors the multi-process
        supervision logic synchronously: every planned process fault —
        whatever its kind — collapses to a synthetic worker death at the
        start of its window (there is no real process to SIGKILL or
        hang), after which the shard is rebuilt from its last committed
        checkpoint and replayed from retained mail, with the same
        respawn → adopt → :class:`RecoveryExhaustedError` ladder.
        """
        wall = Stopwatch()
        rec = self.recovery
        rec_on = rec is not None
        store = CheckpointStore(rec.spill_dir) if rec_on else None
        plan_faults = (
            tuple(rec.fault_plan)
            if rec_on and rec.fault_plan is not None
            else ()
        )
        committed = -1
        attempts = [0] * self.procs
        incarnations = [0] * self.procs
        dead = [False] * self.procs
        fired: set = set()
        stats = {"detections": 0, "respawns": 0, "windows_replayed": 0,
                 "adoptions": 0}
        adoption_window: int | None = None
        dead_blob: bytes | None = None
        cur_shards = [list(s) for s in self.shards]
        max_obs_window = -1
        retained: dict[int, list[list[bytes]]] = {}

        engines = [
            ShardEngine(
                self.assignment,
                self.num_lps,
                self.lookahead,
                owned,
                strict=self.strict,
                queue=self.queue,
                shard_id=shard_id,
                num_shards=self.procs,
            )
            for shard_id, owned in enumerate(self.shards)
        ]
        built = [_build_shard(engine, spec) for engine in engines]
        boundaries = list(iter_windows(0.0, self.lookahead, until))
        rows: dict[int, list[tuple[list[int], list[int]]]] = {}
        mail_bytes = [0] * self.procs
        # Run-local placement: migrations must not mutate the group's
        # configured shards, so a rerun starts from the static split.
        shard_of = self._shard_of.copy()
        rebalancer = None
        rb_prev = (0, 0)
        migrations: list = []
        if self.rebalance is not None:
            # In-process shards have no independently measurable walls;
            # "measured" falls back to the modeled source here.
            rebalancer = _build_rebalancer(
                self.rebalance,
                self.shards,
                self.num_lps,
                spec,
                until,
                affinity=self.rebalance_affinity,
            )

        def fresh_shard(shard_id, owned):
            engine = ShardEngine(
                self.assignment,
                self.num_lps,
                self.lookahead,
                owned,
                strict=self.strict,
                queue=self.queue,
                shard_id=shard_id,
                num_shards=self.procs,
            )
            scenario, f2n, n2f = _build_shard(engine, spec)
            return engine, (scenario, f2n, n2f)

        def replay_windows(s, lo, hi):
            replayed = 0
            for rw in sorted(retained):
                if rw < lo or rw > hi:
                    continue
                _rw, _rs, rend = boundaries[rw]
                engines[s].run_window(rw, rend)
                payloads = _encode_outbound(
                    engines[s], shard_of, built[s][1], self.procs
                )
                mail_bytes[s] += sum(len(p) for p in payloads)
                inbound = [retained[rw][src][s] for src in range(self.procs)]
                _deliver_encoded_mail(engines[s], inbound, rend, built[s][2])
                replayed += 1
            return replayed

        def respawn_shard(s, upto_w):
            blob = store.get(s)
            if blob is not None:
                engine, scenario, f2n, n2f, payload = _restore_shard_from_blob(
                    blob, self.assignment, self.num_lps, self.lookahead,
                    spec, self.strict, self.queue, self.procs,
                )
                engines[s] = engine
                built[s] = (scenario, f2n, n2f)
                base = int(payload["window_index"])
                mail_bytes[s] = int(payload["acc"]["mail_bytes"])
            else:
                engines[s], built[s] = fresh_shard(s, cur_shards[s])
                base = -1
                mail_bytes[s] = 0
            return replay_windows(s, base + 1, upto_w)

        def adopt_shard(dead_shard):
            nonlocal adoption_window, dead_blob
            if 0 in cur_shards[dead_shard]:
                raise RecoveryExhaustedError(
                    f"shard {dead_shard} owns LP 0 (the control lane); the "
                    "control shard cannot be adopted by a survivor"
                )
            c = committed
            blob = store.get(dead_shard) if c >= 0 else None
            dead[dead_shard] = True
            survivors = [x for x in range(self.procs) if not dead[x]]
            if not survivors:  # pragma: no cover - shard 0 never adopted
                raise RecoveryExhaustedError("no survivors left to adopt")
            adopter = min(survivors, key=lambda x: (len(cur_shards[x]), x))
            installs = _adoption_installs(blob) if blob is not None else {}
            cur_shards[adopter] = sorted(
                cur_shards[adopter] + cur_shards[dead_shard]
            )
            cur_shards[dead_shard] = []
            for s, lps in enumerate(cur_shards):
                for lp in lps:
                    shard_of[lp] = s
            for x in survivors:
                sblob = store.get(x) if c >= 0 else None
                if sblob is not None:
                    engine, scenario, f2n, n2f, payload = (
                        _restore_shard_from_blob(
                            sblob, self.assignment, self.num_lps,
                            self.lookahead, spec, self.strict, self.queue,
                            self.procs,
                        )
                    )
                    engines[x] = engine
                    built[x] = (scenario, f2n, n2f)
                    mail_bytes[x] = int(payload["acc"]["mail_bytes"])
                else:
                    engines[x], built[x] = fresh_shard(x, cur_shards[x])
                    mail_bytes[x] = 0
            for lp in sorted(installs):
                _install_lp_migration(
                    engines[adopter], built[adopter][0], built[adopter][2],
                    installs[lp],
                )
            mail_bytes[dead_shard] = _synthesize_dead_result(blob)["mail_bytes"]
            retained.clear()
            dead_blob = blob
            adoption_window = c
            stats["adoptions"] += 1
            _record_recovery_obs(
                "adopt", c + 1, dead_shard, adopter=adopter,
                committed_window=c,
            )
            return c

        try:
            wi = 0
            while wi < len(boundaries):
                w, start, end = boundaries[wi]
                roll_to = None
                for s in range(self.procs):
                    if dead[s] or not plan_faults:
                        continue
                    while True:
                        hit = next(
                            (
                                pf
                                for pf in plan_faults
                                if pf not in fired
                                and pf.shard == s
                                and pf.incarnation == incarnations[s]
                                and pf.window <= w
                            ),
                            None,
                        )
                        if hit is None:
                            break
                        fired.add(hit)
                        stats["detections"] += 1
                        _record_recovery_obs(
                            "detect", w, s, fault=hit.kind.value
                        )
                        attempts[s] += 1
                        if rec.on_worker_loss == "fail":
                            raise WorkerCrashError(
                                f"shard {s} lost at window {w} with "
                                "on_worker_loss='fail'"
                            )
                        if attempts[s] > rec.max_respawns:
                            if rec.on_worker_loss == "adopt":
                                roll_to = adopt_shard(s)
                                break
                            raise RecoveryExhaustedError(
                                f"shard {s} lost {attempts[s]} times, "
                                f"exceeding max_respawns={rec.max_respawns}; "
                                "on_worker_loss='respawn' has no further rung"
                            )
                        if (
                            adoption_window is not None
                            and committed <= adoption_window
                        ):
                            raise RecoveryExhaustedError(
                                f"shard {s} lost after a degraded adoption "
                                "and before the next checkpoint commit; the "
                                "dead shard's pre-adoption checkpoint is "
                                "stale"
                            )
                        time.sleep(rec.backoff_s(attempts[s]))
                        incarnations[s] += 1
                        replayed = respawn_shard(s, w - 1)
                        stats["respawns"] += 1
                        stats["windows_replayed"] += replayed
                        _record_recovery_obs(
                            "respawn", w, s,
                            attempt=attempts[s], replayed=replayed,
                        )
                    if roll_to is not None:
                        break
                if roll_to is not None:
                    wi = roll_to + 1
                    continue
                payload_grid = []
                rows[w] = []
                for shard_id, engine in enumerate(engines):
                    if dead[shard_id]:
                        payload_grid.append([b""] * self.procs)
                        continue
                    engine.run_window(w, end)
                    payloads = _encode_outbound(
                        engine, shard_of, built[shard_id][1], self.procs
                    )
                    mail_bytes[shard_id] += sum(len(p) for p in payloads)
                    payload_grid.append(payloads)
                    rows[w].append(
                        (
                            engine.events_this_window.tolist(),
                            engine.remote_this_window.tolist(),
                        )
                    )
                for shard_id, engine in enumerate(engines):
                    if dead[shard_id]:
                        continue
                    inbound = [
                        payload_grid[src][shard_id]
                        for src in range(self.procs)
                    ]
                    _deliver_encoded_mail(
                        engine, inbound, end, built[shard_id][2]
                    )
                if rebalancer is not None and not rebalancer.retired:
                    events_sum = np.zeros(self.num_lps, dtype=np.int64)
                    xshard_sum = np.zeros(self.num_lps, dtype=np.int64)
                    for engine in engines:
                        events_sum += engine.events_this_window
                        xshard_sum += engine.xshard_this_window
                    decision = rebalancer.observe_window(
                        w, start, end, events_sum, xshard_sum
                    )
                    rb_prev = _record_rebalance_counters(rebalancer, rb_prev)
                    if decision is not None:
                        # Same wire round-trip as the mp backend: the
                        # payload passes through repro.serialization
                        # even in-process.
                        src, dst = decision.src_shard, decision.dst_shard
                        blob = _encode_lp_migration(
                            engines[src], built[src][0], built[src][1],
                            decision.lp,
                        )
                        _install_lp_migration(
                            engines[dst], built[dst][0], built[dst][2], blob
                        )
                        shard_of[decision.lp] = dst
                        migrations.append(decision)
                        _record_migration_obs(decision, len(blob))
                if rec_on:
                    retained[w] = payload_grid
                    if rec.is_checkpoint_window(w):
                        for shard_id in range(self.procs):
                            if dead[shard_id]:
                                continue
                            blob = _encode_worker_checkpoint(
                                engines[shard_id],
                                built[shard_id][0],
                                built[shard_id][1],
                                w,
                                mail_bytes[shard_id],
                            )
                            store.put(
                                shard_id, w, checkpoint_digest(blob), blob
                            )
                            _record_recovery_obs(
                                "checkpoint", w, shard_id, nbytes=len(blob)
                            )
                        committed = w
                        for rw in [x for x in retained if x <= w]:
                            del retained[rw]
                if self._obs.enabled and w > max_obs_window:
                    self._obs_windows.inc()
                    self._obs_window_hist.observe(
                        float(sum(sum(cols) for cols, _remote in rows[w]))
                    )
                max_obs_window = max(max_obs_window, w)
                wi += 1
            results = [
                _shard_result(engine, built[shard_id][0])
                if not dead[shard_id]
                else _synthesize_dead_result(dead_blob)
                for shard_id, engine in enumerate(engines)
            ]
        finally:
            if store is not None:
                store.close()
        if migrations:
            final_shards: list[list[int]] = [[] for _ in range(self.procs)]
            for lp in range(self.num_lps):
                final_shards[int(shard_of[lp])].append(lp)
        elif rec_on and stats["adoptions"]:
            final_shards = [list(s) for s in cur_shards]
        else:
            final_shards = [list(s) for s in self.shards]
        recovery_summary = None
        if rec_on:
            recovery_summary = {
                "checkpoints_taken": int(store.checkpoints_taken),
                "checkpoint_bytes": int(store.checkpoint_bytes),
                "detections": stats["detections"],
                "respawns": stats["respawns"],
                "windows_replayed": stats["windows_replayed"],
                "adoptions": stats["adoptions"],
                "committed_window": committed,
                "dead_shards": [
                    s for s in range(self.procs) if dead[s]
                ],
            }
        return ParallelRunResult(
            procs=self.procs,
            until=float(until),
            lookahead=self.lookahead,
            shards=final_shards,
            window_stats=_merge_window_rows(self.num_lps, rows, boundaries),
            events_executed=int(sum(r["events_executed"] for r in results)),
            lookahead_violations=int(
                sum(r["lookahead_violations"] for r in results)
            ),
            wall_s=wall.elapsed(),
            barrier_wait_s=[0.0] * self.procs,
            mail_bytes=mail_bytes,
            worker_events=[r["events_executed"] for r in results],
            collected=[r["collect"] for r in results],
            migrations=migrations,
            recovery=recovery_summary,
        )
