"""Discrete event primitives: events and the pending-event queue.

Events carry the simulated node they execute at — the engine's unit of
spatial decomposition. Accounting per node is what lets the same run be
re-evaluated under different partitions (node -> LP maps).

Hot-path design (see docs/performance.md):

- :class:`Event` is a ``__slots__`` class, not a dataclass: one event is
  created per network packet hop, so construction cost is the floor of
  the whole simulator's throughput.
- Events dispatch *closure-free*: instead of capturing arguments in a
  per-event lambda, callers pass a bound method plus an ``args`` tuple
  and the executor invokes ``ev.fn(*ev.args)``. Same semantics, no
  per-hop closure allocation.
- :class:`EventQueue` keeps ``(time, seq, event)`` tuples on the heap so
  every sift comparison is a C-level tuple comparison; ``seq`` is unique,
  so a comparison never falls through to the event object and ordering
  is exactly the historical ``(time, seq)`` total order.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]

_seq = itertools.count()


class Event:
    """A scheduled callback.

    Ordering is (time, seq): ties execute in scheduling order, which makes
    runs deterministic. ``node`` is the simulated entity the event belongs
    to (-1 for engine-internal events). The executor runs ``fn(*args)``;
    zero-argument callables (the pre-existing closure style) keep working
    with the default empty ``args``.
    """

    __slots__ = ("time", "seq", "fn", "args", "node", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        node: int = -1,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.node = node
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r} seq={self.seq} node={self.node}{state})"

    def cancel(self) -> None:
        """Lazily cancel; the queue discards the event on pop."""
        self.cancelled = True


class EventQueue:
    """Binary-heap pending event set with lazy cancellation.

    Heap entries are ``(time, seq, event)`` tuples: ``heapq``'s sift
    comparisons stay in C (tuple comparison short-circuits on the unique
    ``(time, seq)`` prefix) instead of calling a Python ``__lt__`` per
    level, which is the single largest win of the hot-path overhaul.
    ``len()`` counts queued entries including lazily cancelled ones, and
    ``peek_time``/``pop`` discard cancelled entries as they surface —
    both unchanged from the original implementation.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        node: int = -1,
        args: tuple = (),
    ) -> Event:
        """Create and enqueue an event; returns it (for cancellation)."""
        # The global tiebreak counter is load-bearing for byte-identical
        # (time, seq) ordering; the multi-core backend must replace it with
        # per-LP counters + deterministic merge, not silently fork it.
        seq = next(_seq)  # simlint: disable=SIM201
        ev = Event(time, seq, fn, args, node)
        heappush(self._heap, (time, seq, ev))
        return ev

    def push_event(self, ev: Event) -> None:
        """Enqueue an existing event object (used for mailbox delivery)."""
        heappush(self._heap, (ev.time, ev.seq, ev))

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event (None when empty)."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def pop(self) -> Event | None:
        """Remove and return the earliest live event (None when empty)."""
        heap = self._heap
        while heap:
            ev = heappop(heap)[2]
            if not ev.cancelled:
                return ev
        return None

    def pop_until(self, bound: float) -> Event | None:
        """Pop the earliest live event strictly before ``bound``.

        Returns ``None`` when the queue is empty or the head is at or
        past ``bound`` (the head stays queued). One call replaces the
        peek-then-pop pair of the engine run loops, halving queue
        traversals per executed event.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[0] >= bound:
                return None
            ev = heappop(heap)[2]
            if not ev.cancelled:
                return ev
        return None

    # ------------------------------------------------------------------
    # Migration support (AdaptiveQueue moves entries between backends)
    # ------------------------------------------------------------------
    def drain_entries(self) -> list[tuple[float, int, Event]]:
        """Remove and return all raw entries (cancelled ones included)."""
        entries, self._heap = self._heap, []
        return entries

    def extend_entries(self, entries: list[tuple[float, int, Event]]) -> None:
        """Bulk-load raw entries (heapify once; O(n))."""
        self._heap.extend(entries)
        heapify(self._heap)
