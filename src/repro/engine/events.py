"""Discrete event primitives: events and the pending-event queue.

Events carry the simulated node they execute at — the engine's unit of
spatial decomposition. Accounting per node is what lets the same run be
re-evaluated under different partitions (node -> LP maps).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]

_seq = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, seq): ties execute in scheduling order, which makes
    runs deterministic. ``node`` is the simulated entity the event belongs
    to (-1 for engine-internal events).
    """

    time: float
    seq: int = field(compare=True)
    fn: Callable[[], Any] = field(compare=False)
    node: int = field(compare=False, default=-1)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Lazily cancel; the queue discards the event on pop."""
        self.cancelled = True


class EventQueue:
    """Binary-heap pending event set with lazy cancellation."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[Event] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, fn: Callable[[], Any], node: int = -1) -> Event:
        """Create and enqueue an event; returns it (for cancellation)."""
        ev = Event(time=time, seq=next(_seq), fn=fn, node=node)
        heapq.heappush(self._heap, ev)
        return ev

    def push_event(self, ev: Event) -> None:
        """Enqueue an existing event object (used for mailbox delivery)."""
        heapq.heappush(self._heap, ev)

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event (None when empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event | None:
        """Remove and return the earliest live event (None when empty)."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None
