"""Sequential discrete-event simulation kernel.

The reference engine: executes the global event set in timestamp order.
With ``record_trace=True`` it additionally records ``(time, node)`` for
every executed event; the trace is what the cluster cost model buckets
into synchronization windows per logical process, so a single simulation
run can be evaluated under *every* candidate partition (the virtual
network's behavior does not depend on the mapping).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .calqueue import make_queue
from .events import Event

__all__ = ["SimKernel"]


class SimKernel:
    """Timestamp-ordered sequential event executor.

    Parameters
    ----------
    record_trace:
        Record (time, node) of every executed event for post-hoc
        partition evaluation (:mod:`repro.engine.costmodel`).
    queue:
        Pending-set backend: ``"adaptive"`` (default; binary heap that
        promotes to a calendar queue under dense schedules), ``"heap"``,
        or ``"calendar"``. All backends pop the identical ``(time, seq)``
        order, so the choice never changes simulation outcomes (proven
        by the differential determinism tests).
    """

    def __init__(self, record_trace: bool = False, queue: str = "adaptive") -> None:
        self.now: float = 0.0
        self.queue = make_queue(queue)
        self.events_executed: int = 0
        self.record_trace = record_trace
        self._trace_times: list[float] = []
        self._trace_nodes: list[int] = []

    @property
    def current_time(self) -> float:
        """Simulated time of the executing (or last executed) event."""
        return self.now

    # ------------------------------------------------------------------
    # Scheduling interface (shared with the conservative engine)
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now at ``node``."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.queue.push(self.now + delay, fn, node, args)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` at ``node``."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        return self.queue.push(time, fn, node, args)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have run. Returns the number executed this call.

        Events stamped exactly at ``until`` are *not* executed, and
        ``now`` advances to ``until`` (if given), so back-to-back windows
        compose exactly.
        """
        executed = 0
        bound = float("inf") if until is None else until
        queue = self.queue
        while max_events is None or executed < max_events:
            ev = queue.pop_until(bound)
            if ev is None:
                break
            self.now = ev.time
            ev.fn(*ev.args)
            executed += 1
            if self.record_trace:
                self._trace_times.append(ev.time)
                self._trace_nodes.append(ev.node)
        if until is not None and self.now < until:
            self.now = until
        self.events_executed += executed
        return executed

    def step(self) -> bool:
        """Execute a single event; False when the queue is empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self.queue)

    # ------------------------------------------------------------------
    def trace(self) -> tuple[np.ndarray, np.ndarray]:
        """The recorded ``(times, nodes)`` arrays of executed events."""
        return (
            np.asarray(self._trace_times, dtype=np.float64),
            np.asarray(self._trace_nodes, dtype=np.int64),
        )

    def clear_trace(self) -> None:
        """Drop the recorded trace (frees memory between phases)."""
        self._trace_times.clear()
        self._trace_nodes.clear()
