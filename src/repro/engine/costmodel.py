"""Cluster cost model: event traces -> modeled wall-clock time.

The paper's efficiency story is structural: a conservative engine
synchronizes once per MLL of simulated time, each barrier costs ``C(N)``,
and between barriers every engine node processes its own events (plus
pays to ship cross-partition events). Given a recorded event trace
(time, node) and a partition, this module computes:

``T = sum over windows [ max_lp( events*t_event + remote_sends*t_remote ) + C(N) ]``

which is also exactly how the real engine's wall-clock decomposes. All
partition-quality metrics (load imbalance, parallel efficiency) derive
from the same buckets. One simulation run therefore scores every mapping
approach — the virtual network's behavior does not depend on the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.syncmodel import ClusterSpec

__all__ = [
    "bucket_event_counts",
    "remote_send_counts",
    "WallclockPrediction",
    "predict_wallclock",
    "predict_from_trace",
    "sequential_time_estimate",
    "window_for_mapping",
]


def window_for_mapping(achieved_mll_s: float, duration_s: float) -> float:
    """The synchronization-window length a mapping runs under.

    The window equals the mapping's achieved MLL; an infinite MLL
    (nothing cut — e.g. a single engine) means LPs never need to sync,
    modeled as one window covering the whole run. This is the one
    clamp rule shared by the parallel engine's lookahead, the figure
    pipeline's scoring, and the what-if replay.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return duration_s if not np.isfinite(achieved_mll_s) else min(achieved_mll_s, duration_s)


def _num_windows(end_time: float, window_s: float) -> int:
    if window_s <= 0:
        raise ValueError("window length must be positive")
    if end_time <= 0:
        return 0
    return int(np.ceil(end_time / window_s - 1e-12))


def bucket_event_counts(
    times: np.ndarray,
    nodes: np.ndarray,
    assignment: np.ndarray,
    num_lps: int,
    window_s: float,
    end_time: float,
) -> np.ndarray:
    """Count executed events per (window, LP).

    ``nodes == -1`` (engine-internal events) are charged to LP 0.
    Events at or after ``end_time`` are ignored.
    """
    times = np.asarray(times, dtype=np.float64)
    nodes = np.asarray(nodes, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    W = _num_windows(end_time, window_s)
    out = np.zeros((W, num_lps), dtype=np.int64)
    if times.size == 0 or W == 0:
        return out
    keep = times < end_time
    times, nodes = times[keep], nodes[keep]
    lps = np.where(nodes >= 0, assignment[np.maximum(nodes, 0)], 0)
    windows = np.minimum((times / window_s).astype(np.int64), W - 1)
    np.add.at(out, (windows, lps), 1)
    return out


def remote_send_counts(
    times: np.ndarray,
    from_nodes: np.ndarray,
    to_nodes: np.ndarray,
    assignment: np.ndarray,
    num_lps: int,
    window_s: float,
    end_time: float,
) -> np.ndarray:
    """Count cross-LP transmissions per (window, sending LP).

    A transmission is remote when its endpoints map to different LPs; the
    sender pays (serialization + send), mirroring the engine's accounting.
    """
    times = np.asarray(times, dtype=np.float64)
    from_nodes = np.asarray(from_nodes, dtype=np.int64)
    to_nodes = np.asarray(to_nodes, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    W = _num_windows(end_time, window_s)
    out = np.zeros((W, num_lps), dtype=np.int64)
    if times.size == 0 or W == 0:
        return out
    keep = times < end_time
    times, from_nodes, to_nodes = times[keep], from_nodes[keep], to_nodes[keep]
    lp_from = assignment[from_nodes]
    lp_to = assignment[to_nodes]
    cross = lp_from != lp_to
    if not cross.any():
        return out
    windows = np.minimum((times[cross] / window_s).astype(np.int64), W - 1)
    np.add.at(out, (windows, lp_from[cross]), 1)
    return out


@dataclass(frozen=True)
class WallclockPrediction:
    """Modeled parallel execution time and its decomposition."""

    total_s: float
    compute_s: float
    sync_s: float
    num_windows: int
    num_lps: int
    #: total events executed per LP over the whole run
    events_per_lp: np.ndarray
    #: total cross-LP sends per LP
    remote_per_lp: np.ndarray

    @property
    def total_events(self) -> int:
        """Total events across all LPs."""
        return int(self.events_per_lp.sum())

    @property
    def sync_fraction(self) -> float:
        """Share of the modeled wall-clock spent in barriers."""
        return self.sync_s / self.total_s if self.total_s > 0 else 0.0


def predict_wallclock(
    event_counts: np.ndarray,
    remote_counts: np.ndarray,
    cluster: ClusterSpec,
    num_lps: int | None = None,
    busy_multipliers: np.ndarray | None = None,
) -> WallclockPrediction:
    """Apply the window-max cost model to bucketed counts.

    ``event_counts`` and ``remote_counts`` are ``(windows, lps)`` arrays
    (from :func:`bucket_event_counts` / :func:`remote_send_counts`, or the
    conservative engine's :attr:`window_stats`). ``busy_multipliers``,
    when given, is a ``(windows, lps)`` array of per-LP slowdown factors
    (>= 1) applied to the compute cost — how a straggler fault
    (:mod:`repro.faults` LP slowdown spans) enters the model: a slowed
    LP takes proportionally longer per window and drags every barrier it
    bounds.
    """
    event_counts = np.asarray(event_counts, dtype=np.float64)
    remote_counts = np.asarray(remote_counts, dtype=np.float64)
    if event_counts.shape != remote_counts.shape:
        raise ValueError("event and remote count shapes differ")
    W, L = event_counts.shape
    n = num_lps if num_lps is not None else L
    per_lp_cost = (
        event_counts * cluster.event_cost_s + remote_counts * cluster.remote_event_cost_s
    )
    if busy_multipliers is not None:
        busy_multipliers = np.asarray(busy_multipliers, dtype=np.float64)
        if busy_multipliers.shape != per_lp_cost.shape:
            raise ValueError("busy_multipliers shape must match the count arrays")
        if (busy_multipliers < 1.0).any():
            raise ValueError("busy multipliers must be >= 1")
        per_lp_cost = per_lp_cost * busy_multipliers
    compute = float(per_lp_cost.max(axis=1).sum()) if W else 0.0
    sync = W * cluster.sync_cost_s(n) if n > 1 else 0.0
    return WallclockPrediction(
        total_s=compute + sync,
        compute_s=compute,
        sync_s=sync,
        num_windows=W,
        num_lps=n,
        events_per_lp=event_counts.sum(axis=0),
        remote_per_lp=remote_counts.sum(axis=0),
    )


def sequential_time_estimate(total_events: int, cluster: ClusterSpec) -> float:
    """The paper's Tseq approximation:
    ``Tseq = TotalEventNumber / MaximalEventRateOnEachNode``."""
    return total_events / cluster.max_event_rate_per_node


def predict_from_trace(
    event_times: np.ndarray,
    event_nodes: np.ndarray,
    assignment: np.ndarray,
    num_lps: int,
    window_s: float,
    end_time: float,
    cluster: ClusterSpec,
    tx_times: np.ndarray | None = None,
    tx_from: np.ndarray | None = None,
    tx_to: np.ndarray | None = None,
) -> WallclockPrediction:
    """Sparse-window wall-clock prediction straight from a recorded trace.

    Small-MLL mappings produce millions of (mostly empty) windows; a dense
    ``(windows, lps)`` matrix would not fit. This path aggregates costs on
    the *occupied* ``(window, lp)`` pairs only — empty windows contribute
    exactly one barrier ``C(N)`` and no compute, which the closed form
    adds. Results match :func:`predict_wallclock` on dense inputs.
    """
    event_times = np.asarray(event_times, dtype=np.float64)
    event_nodes = np.asarray(event_nodes, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    W = _num_windows(end_time, window_s)
    L = int(num_lps)

    keys_list: list[np.ndarray] = []
    costs_list: list[np.ndarray] = []
    events_per_lp = np.zeros(L, dtype=np.float64)
    remote_per_lp = np.zeros(L, dtype=np.float64)

    keep = event_times < end_time
    if keep.any() and W:
        t = event_times[keep]
        n = event_nodes[keep]
        lp = np.where(n >= 0, assignment[np.maximum(n, 0)], 0)
        win = np.minimum((t / window_s).astype(np.int64), W - 1)
        keys_list.append(win * L + lp)
        costs_list.append(np.full(t.shape[0], cluster.event_cost_s))
        np.add.at(events_per_lp, lp, 1.0)

    if tx_times is not None and tx_from is not None and tx_to is not None and W:
        tx_times = np.asarray(tx_times, dtype=np.float64)
        tx_from = np.asarray(tx_from, dtype=np.int64)
        tx_to = np.asarray(tx_to, dtype=np.int64)
        keep = tx_times < end_time
        if keep.any():
            t = tx_times[keep]
            lf = assignment[tx_from[keep]]
            lt = assignment[tx_to[keep]]
            cross = lf != lt
            if cross.any():
                t, lf = t[cross], lf[cross]
                win = np.minimum((t / window_s).astype(np.int64), W - 1)
                keys_list.append(win * L + lf)
                costs_list.append(np.full(t.shape[0], cluster.remote_event_cost_s))
                np.add.at(remote_per_lp, lf, 1.0)

    if keys_list:
        keys = np.concatenate(keys_list)
        costs = np.concatenate(costs_list)
        uniq, inverse = np.unique(keys, return_inverse=True)
        per_pair = np.zeros(uniq.shape[0])
        np.add.at(per_pair, inverse, costs)
        # Per-window max over the LPs present in that window (absent LPs
        # contribute zero cost and never raise the max).
        wins = uniq // L
        boundaries = np.flatnonzero(np.diff(wins)) + 1
        starts = np.concatenate(([0], boundaries))
        compute = float(np.maximum.reduceat(per_pair, starts).sum())
    else:
        compute = 0.0

    sync = W * cluster.sync_cost_s(L) if L > 1 else 0.0
    return WallclockPrediction(
        total_s=compute + sync,
        compute_s=compute,
        sync_s=sync,
        num_windows=W,
        num_lps=L,
        events_per_lp=events_per_lp,
        remote_per_lp=remote_per_lp,
    )
