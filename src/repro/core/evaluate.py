"""Partition evaluation: the efficiency metric ``E = Es * Ec``.

Section 3.4.3: candidate partitions are scored *without running the
simulation* by combining

- ``Es = (MLL - C_N) / MLL`` — synchronization efficiency given the
  partition's achieved MLL and the cluster's barrier cost for N engines,
- ``Ec = C_average / C_max`` — computational load balance over the
  estimated per-engine loads (vertex-weight sums).

Maximizing either alone fails: Es wants few giant clusters (large MLL,
no parallelism), Ec wants free rein to balance (tiny MLL). Their product
is the paper's tradeoff knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..partition.graph import WeightedGraph

__all__ = ["PartitionEvaluation", "evaluate_partition", "sync_efficiency", "balance_efficiency"]


def sync_efficiency(mll_s: float, sync_cost_s: float) -> float:
    """``Es = (MLL - C_N)/MLL``, clamped to [0, 1].

    ``MLL == inf`` (nothing cut) is perfect decoupling -> 1. MLL at or
    below the barrier cost means all time is synchronization -> 0.
    """
    if mll_s <= 0:
        raise ValueError("MLL must be positive")
    if np.isinf(mll_s):
        return 1.0
    return max(0.0, (mll_s - sync_cost_s) / mll_s)


def balance_efficiency(part_weights: np.ndarray) -> float:
    """``Ec = C_average / C_max`` over estimated per-engine loads."""
    w = np.asarray(part_weights, dtype=np.float64)
    if w.size == 0:
        raise ValueError("need at least one partition")
    cmax = w.max()
    if cmax <= 0:
        return 1.0
    return float(w.mean() / cmax)


@dataclass(frozen=True)
class PartitionEvaluation:
    """Scores of one candidate partition."""

    mll_s: float
    es: float
    ec: float
    efficiency: float
    #: normalized std-dev of estimated per-engine load (paper's imbalance)
    predicted_imbalance: float
    part_weights: np.ndarray
    edge_cut: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"E={self.efficiency:.3f} (Es={self.es:.3f}, Ec={self.ec:.3f}), "
            f"MLL={self.mll_s * 1e3:.3f}ms, imbalance={self.predicted_imbalance:.3f}"
        )


def evaluate_partition(
    graph: WeightedGraph,
    assignment: np.ndarray,
    num_parts: int,
    sync_cost_s: float,
) -> PartitionEvaluation:
    """Score a partition of the weighted network graph.

    ``graph.vwgt`` must hold the load estimates (TOP bandwidth or PROF
    event counts) — Ec and the predicted imbalance derive from them;
    the achieved MLL comes from the cut edges' latencies.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    weights = graph.partition_weights(assignment, num_parts)
    mll = graph.min_cut_latency(assignment)
    es = sync_efficiency(mll, sync_cost_s)
    ec = balance_efficiency(weights)
    mean = weights.mean()
    imbalance = float(weights.std() / mean) if mean > 0 else 0.0
    return PartitionEvaluation(
        mll_s=mll,
        es=es,
        ec=ec,
        efficiency=es * ec,
        predicted_imbalance=imbalance,
        part_weights=weights,
        edge_cut=graph.edge_cut(assignment),
    )
