"""The paper's core contribution: load-balance approaches for parallel
network simulation (TOP/TOP2/PROF/PROF2 and hierarchical HTOP/HPROF)."""

from .approaches import Approach, build_weighted_graph
from .evaluate import (
    PartitionEvaluation,
    balance_efficiency,
    evaluate_partition,
    sync_efficiency,
)
from .hierarchical import (
    DEFAULT_TMLL_STEP_S,
    HierarchicalResult,
    SweepRecord,
    hierarchical_partition,
)
from .mapping import MappingPipeline, NetworkMapping, run_profiling_simulation
from .weights import (
    REFERENCE_LATENCY_S,
    latency_to_edge_weight,
    place_vertex_weights,
    prof_edge_weights,
    prof_vertex_weights,
    top_edge_weights,
    top_vertex_weights,
)

__all__ = [
    "Approach",
    "build_weighted_graph",
    "PartitionEvaluation",
    "evaluate_partition",
    "sync_efficiency",
    "balance_efficiency",
    "hierarchical_partition",
    "HierarchicalResult",
    "SweepRecord",
    "DEFAULT_TMLL_STEP_S",
    "MappingPipeline",
    "NetworkMapping",
    "run_profiling_simulation",
    "latency_to_edge_weight",
    "top_vertex_weights",
    "prof_vertex_weights",
    "place_vertex_weights",
    "top_edge_weights",
    "prof_edge_weights",
    "REFERENCE_LATENCY_S",
]
