"""Hierarchical partitioning: the paper's HTOP/HPROF algorithm (§3.4.3).

::

    Input: graph G, partition N, and synchronization cost C
    Output: the best partition P of graph G
    Hierarchical Partition:
        Set the initial Threshold of MLL (Tmll)
        Loop through all reasonable Tmll:
            Get the dumped graph Gd(Tmll)
            Partition the Gd(Tmll) using an existing partitioner
            Evaluate the partition result Pd(Tmll)
        Pick the best partition Pd(Tmll)
        Get the best partition P of original G

"Dumping" collapses every edge with latency below ``Tmll`` (merging its
endpoints), so any partition of the dumped graph achieves ``MLL >= Tmll``
by construction. The sweep starts just above the synchronization cost
("we require a Tmll larger than the synchronization cost, otherwise all
time will be spent on synchronization") and steps by 0.1 ms as in the
paper; every candidate is scored with ``E = Es * Ec`` and the argmax is
projected back to the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..partition.graph import WeightedGraph
from ..partition.kway import partition_kway
from .evaluate import PartitionEvaluation, evaluate_partition

__all__ = ["SweepRecord", "HierarchicalResult", "hierarchical_partition", "DEFAULT_TMLL_STEP_S"]

#: Sweep granularity from the paper's experiments (0.1 ms).
DEFAULT_TMLL_STEP_S = 0.1e-3


@dataclass(frozen=True)
class SweepRecord:
    """One candidate threshold of the sweep."""

    tmll_s: float
    coarse_vertices: int
    evaluation: PartitionEvaluation


@dataclass(frozen=True)
class HierarchicalResult:
    """Outcome of the hierarchical partition."""

    assignment: np.ndarray
    num_parts: int
    tmll_s: float
    evaluation: PartitionEvaluation
    sweep: list[SweepRecord] = field(default_factory=list)

    @property
    def achieved_mll_s(self) -> float:
        """The best partition's achieved MLL in seconds."""
        return self.evaluation.mll_s


def hierarchical_partition(
    graph: WeightedGraph,
    num_parts: int,
    sync_cost_s: float,
    seed: int = 0,
    tmll_step_s: float = DEFAULT_TMLL_STEP_S,
    tmll_max_s: float | None = None,
    min_coarse_factor: float = 2.0,
    partitioner: Callable[..., "object"] = partition_kway,
    imbalance_tolerance: float = 1.05,
) -> HierarchicalResult:
    """Sweep collapse thresholds; return the best-scoring partition.

    Parameters
    ----------
    graph:
        Weighted network graph (vertex weights = load estimates; edge
        latencies set by the topology).
    sync_cost_s:
        Barrier cost ``C_N`` of the target engine count (from
        :class:`repro.cluster.SyncCostModel`).
    tmll_max_s:
        Sweep upper bound; defaults to the largest finite link latency
        (beyond it the graph would collapse to islands of the latency
        classes anyway). The sweep also stops early when the dumped graph
        has fewer than ``min_coarse_factor * num_parts`` vertices — no
        parallelism left to distribute.
    partitioner:
        Any callable with :func:`repro.partition.partition_kway`'s
        signature, letting tests substitute baselines.

    Notes
    -----
    The first candidate threshold is the smallest multiple of
    ``tmll_step_s`` strictly above ``sync_cost_s``; a flat partition of
    the original graph is always evaluated too (threshold 0), so the
    hierarchical scheme can never do worse than its flat counterpart
    under the E metric.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if tmll_step_s <= 0:
        raise ValueError("tmll_step_s must be positive")
    if sync_cost_s < 0:
        raise ValueError("sync_cost_s must be non-negative")

    _, _, _, latencies = graph.edge_list()
    finite = latencies[np.isfinite(latencies)]
    if tmll_max_s is None:
        tmll_max_s = float(finite.max()) if finite.size else 0.0

    sweep: list[SweepRecord] = []
    best_assignment: np.ndarray | None = None
    best_eval: PartitionEvaluation | None = None
    best_tmll = 0.0

    def consider(tmll: float, assignment: np.ndarray, coarse_vertices: int) -> None:
        nonlocal best_assignment, best_eval, best_tmll
        evaluation = evaluate_partition(graph, assignment, num_parts, sync_cost_s)
        sweep.append(
            SweepRecord(tmll_s=tmll, coarse_vertices=coarse_vertices, evaluation=evaluation)
        )
        if best_eval is None or evaluation.efficiency > best_eval.efficiency:
            best_assignment, best_eval, best_tmll = assignment, evaluation, tmll

    # Threshold 0: the flat partition baseline.
    flat = partitioner(
        graph, num_parts, seed=seed, imbalance_tolerance=imbalance_tolerance
    )
    consider(0.0, flat.assignment, graph.num_vertices)

    # "Loop through all reasonable Tmll."
    start = (int(np.floor(sync_cost_s / tmll_step_s)) + 1) * tmll_step_s
    tmll = start
    prev_coarse_vertices = -1
    while tmll <= tmll_max_s + 1e-12:
        contraction = graph.collapse_below_latency(tmll)
        coarse = contraction.coarse
        if coarse.num_vertices < min_coarse_factor * num_parts:
            break  # not enough parallelism left
        if coarse.num_vertices == prev_coarse_vertices:
            # Identical collapse as the previous threshold -> identical
            # candidate; skip the redundant partitioning work.
            tmll += tmll_step_s
            continue
        prev_coarse_vertices = coarse.num_vertices
        result = partitioner(
            coarse, num_parts, seed=seed, imbalance_tolerance=imbalance_tolerance
        )
        projected = contraction.project(result.assignment)
        consider(tmll, projected, coarse.num_vertices)
        tmll += tmll_step_s

    assert best_assignment is not None and best_eval is not None
    graph.validate_partition(best_assignment, num_parts)
    return HierarchicalResult(
        assignment=best_assignment,
        num_parts=num_parts,
        tmll_s=best_tmll,
        evaluation=best_eval,
        sweep=sweep,
    )
