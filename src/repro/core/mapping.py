"""The end-to-end network mapping pipeline (paper Figure 4).

Traffic information + network structure -> graph preparation (weights) ->
graph partitioning (flat or hierarchical) -> partitioned network, i.e.
the assignment of simulated nodes to simulation engine nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cluster.syncmodel import ClusterSpec, teragrid_cluster
from ..engine.kernel import SimKernel
from ..netsim.simulator import NetworkSimulator
from ..online.agent import Agent
from ..partition.kway import partition_kway
from ..profilers.traffic import TrafficProfile
from ..routing.fib import ForwardingPlane
from ..topology.models import Network
from .approaches import Approach, build_weighted_graph
from .evaluate import PartitionEvaluation, evaluate_partition
from .hierarchical import HierarchicalResult, SweepRecord, hierarchical_partition

__all__ = ["NetworkMapping", "MappingPipeline", "run_profiling_simulation"]


@dataclass(frozen=True)
class NetworkMapping:
    """A completed mapping of virtual nodes to simulation engines."""

    approach: Approach
    assignment: np.ndarray
    num_engines: int
    evaluation: PartitionEvaluation
    #: chosen collapse threshold (0 for flat approaches)
    tmll_s: float = 0.0
    #: full sweep (hierarchical approaches only)
    sweep: list[SweepRecord] = field(default_factory=list)

    @property
    def achieved_mll_s(self) -> float:
        """Achieved minimum cross-partition link latency (seconds)."""
        return self.evaluation.mll_s

    @property
    def achieved_mll_ms(self) -> float:
        """Achieved MLL in milliseconds (the paper's reporting unit)."""
        return self.evaluation.mll_s * 1e3


class MappingPipeline:
    """Produce :class:`NetworkMapping`s for a network on a cluster.

    Parameters
    ----------
    net:
        The virtual network.
    num_engines:
        Simulation engine node count (the paper uses 90 of 128).
    cluster:
        Cluster spec providing the sync cost model; defaults to the
        TeraGrid model sized to ``num_engines``.
    """

    def __init__(
        self,
        net: Network,
        num_engines: int,
        cluster: ClusterSpec | None = None,
        seed: int = 0,
    ) -> None:
        if num_engines < 1:
            raise ValueError("num_engines must be >= 1")
        self.net = net
        self.num_engines = int(num_engines)
        self.cluster = cluster if cluster is not None else teragrid_cluster(num_engines)
        self.seed = seed

    @classmethod
    def for_network(
        cls,
        net: Network,
        num_engines: int,
        cluster: ClusterSpec | None = None,
        seed: int = 0,
    ) -> "MappingPipeline":
        return cls(net, num_engines, cluster, seed)

    @property
    def sync_cost_s(self) -> float:
        """Barrier cost of the configured engine count (seconds)."""
        return self.cluster.sync_cost_s(self.num_engines)

    # ------------------------------------------------------------------
    def run(
        self,
        approach: Approach,
        profile: TrafficProfile | None = None,
        imbalance_tolerance: float = 1.05,
        placement: list[int] | None = None,
    ) -> NetworkMapping:
        """Execute the mapping pipeline for one approach."""
        graph = build_weighted_graph(self.net, approach, profile, placement)
        if approach.hierarchical:
            result: HierarchicalResult = hierarchical_partition(
                graph,
                self.num_engines,
                sync_cost_s=self.sync_cost_s,
                seed=self.seed,
                imbalance_tolerance=imbalance_tolerance,
            )
            return NetworkMapping(
                approach=approach,
                assignment=result.assignment,
                num_engines=self.num_engines,
                evaluation=result.evaluation,
                tmll_s=result.tmll_s,
                sweep=result.sweep,
            )
        flat = partition_kway(
            graph, self.num_engines, seed=self.seed, imbalance_tolerance=imbalance_tolerance
        )
        evaluation = evaluate_partition(
            graph, flat.assignment, self.num_engines, self.sync_cost_s
        )
        return NetworkMapping(
            approach=approach,
            assignment=flat.assignment,
            num_engines=self.num_engines,
            evaluation=evaluation,
        )

    def run_all(
        self,
        approaches: list[Approach],
        profile: TrafficProfile | None = None,
    ) -> dict[Approach, NetworkMapping]:
        """Run several approaches; the profile is passed where needed."""
        return {a: self.run(a, profile if a.uses_profile else None) for a in approaches}


def run_profiling_simulation(
    net: Network,
    fib: ForwardingPlane,
    setup: Callable[[NetworkSimulator, Agent], None],
    duration_s: float,
) -> TrafficProfile:
    """The PROF bootstrap: run the workload briefly, collect traffic.

    ``setup(sim, agent)`` installs background traffic and applications
    (everything must self-start via the simulator's scheduler). The run
    uses the sequential kernel — the paper's equivalent step is a short
    run on a naive partition, whose measured traffic is partition-
    independent.
    """
    kernel = SimKernel()
    sim = NetworkSimulator(net, fib, kernel)
    agent = Agent(sim)
    setup(sim, agent)
    kernel.run(until=duration_s)
    return TrafficProfile.from_simulation(sim, duration_s)
