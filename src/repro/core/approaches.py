"""The mapping approaches the paper evaluates (plus PLACE).

========  ====================  ==========================  ============
Approach  Vertex weights        Edge weights                Partitioner
========  ====================  ==========================  ============
TOP       link bandwidth        latency (base conversion)   flat k-way
TOP2      link bandwidth        latency (tuned conversion)  flat k-way
PLACE     bandwidth + app       latency (base conversion)   flat k-way
          placement boost
PROF      profiled events       latency * traffic (base)    flat k-way
PROF2     profiled events       latency * traffic (tuned)   flat k-way
HTOP      link bandwidth        latency (base)              hierarchical
HPROF     profiled events       latency * traffic (base)    hierarchical
========  ====================  ==========================  ============

TOP/PROF/HTOP/HPROF and the tuned variants are the paper's Section 3;
PLACE is the "topology and application placement" approach of the
authors' earlier work (SC'03), included as the intermediate point between
pure topology and full profiling.
"""

from __future__ import annotations

import enum
from typing import Sequence

from ..partition.graph import WeightedGraph
from ..profilers.traffic import TrafficProfile
from ..topology.models import Network
from .weights import (
    place_vertex_weights,
    prof_edge_weights,
    prof_vertex_weights,
    top_edge_weights,
    top_vertex_weights,
)

__all__ = ["Approach", "build_weighted_graph"]


class Approach(enum.Enum):
    """Load-balance approach identifiers (paper Sections 3.3-3.4)."""

    TOP = "TOP"
    TOP2 = "TOP2"
    PLACE = "PLACE"
    PROF = "PROF"
    PROF2 = "PROF2"
    HTOP = "HTOP"
    HPROF = "HPROF"

    @property
    def uses_profile(self) -> bool:
        """True for the PROF family (requires a traffic profile)."""
        return self in (Approach.PROF, Approach.PROF2, Approach.HPROF)

    @property
    def uses_placement(self) -> bool:
        """True for PLACE (requires the application placement)."""
        return self is Approach.PLACE

    @property
    def hierarchical(self) -> bool:
        """True for the collapse-and-sweep approaches (HTOP/HPROF)."""
        return self in (Approach.HTOP, Approach.HPROF)

    @property
    def conversion_scheme(self) -> str:
        """Latency->edge-weight conversion ('tuned' = the manual TOP2/PROF2
        adjustment; hierarchical approaches don't need it — the collapse
        guarantees the MLL)."""
        return "tuned" if self in (Approach.TOP2, Approach.PROF2) else "base"


def build_weighted_graph(
    net: Network,
    approach: Approach,
    profile: TrafficProfile | None = None,
    placement: Sequence[int] | None = None,
) -> WeightedGraph:
    """Annotate the network graph with the approach's weights.

    ``profile`` is required by the PROF family; ``placement`` (the hosts
    running live application processes) by PLACE.
    """
    if approach.uses_profile:
        if profile is None:
            raise ValueError(f"{approach.value} requires a traffic profile")
        profile.validate_topology(net.num_nodes, net.num_links)
        vwgt = prof_vertex_weights(net, profile)
        ewgt = prof_edge_weights(net, profile, scheme=approach.conversion_scheme)
    elif approach.uses_placement:
        if placement is None:
            raise ValueError("PLACE requires the application placement")
        vwgt = place_vertex_weights(net, placement)
        ewgt = top_edge_weights(net, scheme=approach.conversion_scheme)
    else:
        vwgt = top_vertex_weights(net)
        ewgt = top_edge_weights(net, scheme=approach.conversion_scheme)
    return net.to_graph(vertex_weight=vwgt, edge_weight=ewgt)
