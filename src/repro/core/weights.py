"""Weight assignment for the load-balance approaches (paper Section 3.3).

The network mapping problem becomes graph partitioning once the virtual
network is annotated with weights:

- **vertex weight** estimates the simulation load of the node: TOP uses
  total in/out link bandwidth ("each virtual node is weighted with the
  total bandwidth in and out of it"); PROF uses the profiled per-node
  event counts.
- **edge weight** makes cutting a link expensive: link latency is
  converted so that *smaller latency yields larger weight* (cutting a
  short link ruins the achievable MLL); PROF additionally adds the
  profiled traffic volume of the link (cutting a busy link creates remote
  events).

The ``tuned`` conversion is the paper's TOP2/PROF2: a manual, topology-
dependent re-scaling that penalizes small-latency edges much harder so
the flat partitioner stops cutting them. The paper is explicit that this
is "not a general solution"; the hierarchical approaches replace it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..profilers.traffic import TrafficProfile
from ..topology.models import Network

__all__ = [
    "latency_to_edge_weight",
    "top_vertex_weights",
    "prof_vertex_weights",
    "place_vertex_weights",
    "top_edge_weights",
    "prof_edge_weights",
    "REFERENCE_LATENCY_S",
]

#: Latency at which the converted edge weight equals 1 (1 ms).
REFERENCE_LATENCY_S = 1e-3


def latency_to_edge_weight(
    latency_s: np.ndarray, scheme: str = "base"
) -> np.ndarray:
    """Convert link latencies to partitioning edge weights.

    ``base``
        ``w = ref / latency`` capped at 1e3: the original TOP/PROF
        conversion, a gentle inverse relationship.
    ``tuned``
        ``w = (ref / latency)^3`` capped at 1e8: the TOP2/PROF2 manual
        adjustment, making sub-threshold-latency edges effectively uncut-
        table for moderate graphs (but still dilutable in the edge-cut sum
        of very large graphs — the failure HPROF fixes).
    """
    latency_s = np.asarray(latency_s, dtype=np.float64)
    if np.any(latency_s <= 0):
        raise ValueError("latencies must be positive")
    ratio = REFERENCE_LATENCY_S / latency_s
    if scheme == "base":
        return np.minimum(ratio, 1e3)
    if scheme == "tuned":
        return np.minimum(ratio * ratio * ratio, 1e8)
    raise ValueError(f"unknown conversion scheme {scheme!r}")


def top_vertex_weights(net: Network) -> np.ndarray:
    """TOP load estimate: total incident bandwidth per node, mean-normalized."""
    w = np.zeros(net.num_nodes)
    for link in net.links:
        w[link.u] += link.bandwidth_bps
        w[link.v] += link.bandwidth_bps
    mean = w.mean() if net.num_nodes else 1.0
    return w / mean if mean > 0 else np.ones_like(w)


def prof_vertex_weights(net: Network, profile: TrafficProfile) -> np.ndarray:
    """PROF load estimate: profiled event count per node, mean-normalized.

    A +1 floor keeps silent nodes partitionable (zero-weight vertices make
    balance constraints degenerate).
    """
    events = np.asarray(profile.node_events, dtype=np.float64)
    if events.shape[0] != net.num_nodes:
        raise ValueError("profile does not match network size")
    w = events + 1.0
    return w / w.mean()


def place_vertex_weights(
    net: Network,
    app_hosts: Sequence[int],
    boost: float = 10.0,
) -> np.ndarray:
    """PLACE load estimate: topology plus static application placement.

    The paper's earlier work (SC'03) explored a mapping that augments
    topology information with *where the application processes are
    placed*: hosts running live application endpoints (and their access
    routers) are expected to see far more traffic than the bandwidth
    weight alone suggests. Each app host and its attachment router get
    their TOP weight multiplied by ``1 + boost``.
    """
    if boost < 0:
        raise ValueError("boost must be non-negative")
    w = top_vertex_weights(net).copy()
    for host in app_hosts:
        if not 0 <= host < net.num_nodes:
            raise ValueError(f"unknown node {host}")
        w[host] *= 1.0 + boost
        for neighbor, _link in net.neighbors(host):
            w[neighbor] *= 1.0 + boost
    return w / w.mean()


def top_edge_weights(net: Network, scheme: str = "base") -> np.ndarray:
    """TOP edge weights: latency conversion only (one per link)."""
    lat = np.fromiter((l.latency_s for l in net.links), dtype=np.float64, count=net.num_links)
    return latency_to_edge_weight(lat, scheme)


def prof_edge_weights(
    net: Network,
    profile: TrafficProfile,
    scheme: str = "base",
    traffic_gain: float = 1.0,
) -> np.ndarray:
    """PROF edge weights: latency conversion scaled by profiled traffic.

    ``w = lat_term * (1 + traffic_gain * traffic_norm)``: the latency term
    keeps small-latency edges expensive to cut (protecting the achievable
    MLL exactly as in TOP), while measured link traffic multiplies the
    cost so that, among comparable latencies, busy links stay inside
    partitions (cutting them creates remote events). A blend that could
    *dilute* the latency term would let the partitioner cut idle
    small-latency edges — collapsing the MLL to the host access links.
    """
    if traffic_gain < 0:
        raise ValueError("traffic_gain must be non-negative")
    lat_term = top_edge_weights(net, scheme)
    packets = np.asarray(profile.link_packets, dtype=np.float64)
    if packets.shape[0] != net.num_links:
        raise ValueError("profile does not match network link count")
    traffic = packets + 1.0
    traffic_norm = traffic / traffic.mean()
    return lat_term * (1.0 + traffic_gain * traffic_norm)
