"""UDP datagram service over the packet simulator.

Fire-and-forget datagrams with MTU fragmentation; used by the CBR
background traffic generator and by applications that don't need
reliability.
"""

from __future__ import annotations

import math
from typing import Callable

from .packet import Packet, Protocol, new_flow_id

__all__ = ["send_datagram", "UDP_MTU_BYTES", "UDP_HEADER_BYTES"]

UDP_MTU_BYTES = 1472
UDP_HEADER_BYTES = 28


def send_datagram(
    sim,
    src: int,
    dst: int,
    payload_bytes: int,
    port: int = 0,
) -> int:
    """Send ``payload_bytes`` from ``src`` to ``dst`` as UDP fragments.

    Returns the number of packets injected. Delivery invokes the handler
    bound with :meth:`NetworkSimulator.udp_bind` on ``(dst, port)`` once
    per fragment (fragments may be lost independently — UDP semantics).
    """
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    flow_id = new_flow_id()
    fragments = max(1, math.ceil(payload_bytes / UDP_MTU_BYTES))
    remaining = payload_bytes
    for i in range(fragments):
        chunk = min(UDP_MTU_BYTES, remaining)
        remaining -= chunk
        sim.inject(
            Packet(
                src=src,
                dst=dst,
                size_bytes=chunk + UDP_HEADER_BYTES,
                protocol=Protocol.UDP,
                flow_id=flow_id,
                seq=i,
                port=port,
            )
        )
    return fragments
