"""TCP Reno bulk transfer over the packet simulator.

MaSSF ships "basic implementations of these protocols which maintain
their behavior characteristics"; in that spirit this is a compact but
behaviorally faithful Reno: 3-way-handshake-derived RTT seeding, slow
start, congestion avoidance, fast retransmit/fast recovery on three
duplicate ACKs, and Jacobson/Karn RTO with exponential backoff. Data
flows one way per transfer (``src -> dst``); request/response protocols
compose two transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .packet import (
    Packet,
    Protocol,
    TCP_HEADER_BYTES,
    TCP_MSS_BYTES,
    new_flow_id,
)
from .simulator import NetworkSimulator

__all__ = ["TcpSender", "TcpReceiver", "start_transfer", "TcpStats"]

INITIAL_CWND = 2.0
INITIAL_SSTHRESH = 64.0
MIN_RTO_S = 0.2
MAX_RTO_S = 60.0
DUPACK_THRESHOLD = 3


@dataclass
class TcpStats:
    """Per-connection statistics (inspected by tests and benchmarks)."""

    segments_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    completed_at: float = -1.0

    @property
    def completed(self) -> bool:
        """True once the final ACK arrived."""
        return self.completed_at >= 0.0


class TcpReceiver:
    """Receiving endpoint: cumulative ACKs with out-of-order buffering.

    ``on_complete`` fires (once) when the last in-order segment arrives —
    *at the receiver*, which matters under the parallel engine: whatever
    the application does in response (send the HTTP reply, start the next
    workflow task) then executes on the receiver's logical process.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        flow_id: int,
        src: int,
        dst: int,
        total_segments: int,
        on_complete: Callable[[float], None] | None = None,
        delayed_ack: bool = False,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.src = src  # data sender
        self.dst = dst  # this endpoint
        self.total_segments = total_segments
        self.on_complete = on_complete
        #: RFC 1122 delayed ACKs: acknowledge every second in-order
        #: segment (but immediately on reordering or at the end) — about
        #: half the ACK events, at the cost of slower cwnd growth.
        self.delayed_ack = delayed_ack
        self.cumulative = 0  # next expected segment
        self._out_of_order: set[int] = set()
        self._completed = False
        self._unacked_in_order = 0
        self.acks_sent = 0

    def receive(self, packet: Packet) -> None:
        """Handle an arriving SYN or data segment; emit the matching ACK."""
        if "SYN" in packet.flags:
            self._send_ack(flags=frozenset({"SYN", "ACK"}))
            return
        seq = packet.seq
        in_order = seq == self.cumulative
        if in_order:
            self.cumulative += 1
            while self.cumulative in self._out_of_order:
                self._out_of_order.discard(self.cumulative)
                self.cumulative += 1
        elif seq > self.cumulative:
            self._out_of_order.add(seq)
        finished = self.cumulative >= self.total_segments
        if self.delayed_ack and in_order and not finished:
            self._unacked_in_order += 1
            if self._unacked_in_order >= 2:
                self._unacked_in_order = 0
                self._send_ack()
        else:
            self._unacked_in_order = 0
            self._send_ack()
        if not self._completed and finished and self.on_complete is not None:
            self._completed = True
            self.on_complete(self.sim.now)

    def _send_ack(self, flags: frozenset[str] = frozenset({"ACK"})) -> None:
        self.acks_sent += 1
        self.sim.inject(
            Packet(
                src=self.dst,
                dst=self.src,
                size_bytes=TCP_HEADER_BYTES,
                protocol=Protocol.TCP,
                flow_id=self.flow_id,
                ack=self.cumulative,
                flags=flags,
            )
        )


class TcpSender:
    """Sending endpoint implementing Reno congestion control."""

    def __init__(
        self,
        sim: NetworkSimulator,
        flow_id: int,
        src: int,
        dst: int,
        payload_bytes: int,
        on_complete: Callable[[float], None] | None = None,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.total_segments = max(1, math.ceil(payload_bytes / TCP_MSS_BYTES))
        self.payload_bytes = payload_bytes
        self.on_complete = on_complete
        self.stats = TcpStats()

        self.cwnd = INITIAL_CWND
        self.ssthresh = INITIAL_SSTHRESH
        self.next_seq = 0
        self.highest_ack = 0  # next segment the receiver expects
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0

        self.srtt: float | None = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._rto_event = None
        self._send_times: dict[int, float] = {}
        self._established = False
        self._done = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Send SYN; data begins on SYN-ACK."""
        self._send_times[-1] = self.sim.now
        self.sim.inject(
            Packet(
                src=self.src,
                dst=self.dst,
                size_bytes=TCP_HEADER_BYTES,
                protocol=Protocol.TCP,
                flow_id=self.flow_id,
                flags=frozenset({"SYN"}),
            )
        )
        self._arm_rto()

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Handle an arriving SYN-ACK or cumulative ACK."""
        if self._done:
            return
        if "SYN" in packet.flags:  # SYN-ACK
            if not self._established:
                self._established = True
                self._measure_rtt(self.sim.now - self._send_times.pop(-1))
                self._fill_window()
            return
        self._on_ack(packet.ack)

    def _on_ack(self, ack: int) -> None:
        if ack > self.highest_ack:
            newly_acked = ack - self.highest_ack
            self.highest_ack = ack
            self.dupacks = 0
            # Karn: only time segments transmitted once.
            t = self._send_times.pop(ack - 1, None)
            if t is not None:
                self._measure_rtt(self.sim.now - t)
            # Sorted sweep: which keys are dropped is order-independent,
            # but a canonical order keeps the mutation LP-shardable
            # (simlint SIM202).
            for s in sorted(self._send_times):
                if 0 <= s < ack:
                    self._send_times.pop(s, None)
            if self.in_recovery:
                if ack >= self.recover_point:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # Partial ACK: retransmit the next hole (NewReno-ish
                    # behavior keeps Reno from stalling on multiple drops).
                    self._retransmit(self.highest_ack)
                    self.cwnd = max(self.cwnd - newly_acked + 1, 1.0)
            elif self.cwnd < self.ssthresh:
                self.cwnd += newly_acked  # slow start
            else:
                self.cwnd += newly_acked / self.cwnd  # congestion avoidance
            if self.highest_ack >= self.total_segments:
                self._complete()
                return
            self._arm_rto()
            self._fill_window()
        else:
            self.dupacks += 1
            if self.in_recovery:
                self.cwnd += 1.0  # window inflation
                self._fill_window()
            elif self.dupacks == DUPACK_THRESHOLD:
                self._enter_fast_recovery()

    # ------------------------------------------------------------------
    def _enter_fast_recovery(self) -> None:
        flight = max(self.next_seq - self.highest_ack, 1)
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = self.ssthresh + DUPACK_THRESHOLD
        self.in_recovery = True
        self.recover_point = self.next_seq
        self.stats.fast_retransmits += 1
        self._retransmit(self.highest_ack)
        self._arm_rto()

    def _on_rto(self) -> None:
        if self._done:
            return
        self.stats.timeouts += 1
        self.ssthresh = max((self.next_seq - self.highest_ack) / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.rto = min(self.rto * 2.0, MAX_RTO_S)
        self._send_times.clear()
        if not self._established:
            self.start()
            return
        self._retransmit(self.highest_ack)
        # Go-back-N from snd.una: everything past the retransmitted segment
        # counts as unsent again, so the window repairs a whole lost burst
        # at one segment per ACK instead of one segment per (exponentially
        # backed-off) timeout. Duplicate arrivals are harmless — the
        # receiver re-ACKs its cumulative point.
        self.next_seq = self.highest_ack + 1
        self._arm_rto()

    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        window = int(self.cwnd)
        while (
            self.next_seq < self.total_segments
            and self.next_seq - self.highest_ack < window
        ):
            self._send_segment(self.next_seq)
            self.next_seq += 1

    def _segment_bytes(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            tail = self.payload_bytes - (self.total_segments - 1) * TCP_MSS_BYTES
            return max(1, tail) + TCP_HEADER_BYTES
        return TCP_MSS_BYTES + TCP_HEADER_BYTES

    def _send_segment(self, seq: int) -> None:
        self.stats.segments_sent += 1
        self._send_times.setdefault(seq, self.sim.now)
        self.sim.inject(
            Packet(
                src=self.src,
                dst=self.dst,
                size_bytes=self._segment_bytes(seq),
                protocol=Protocol.TCP,
                flow_id=self.flow_id,
                seq=seq,
            )
        )

    def _retransmit(self, seq: int) -> None:
        if seq >= self.total_segments:
            return
        self.stats.retransmits += 1
        self._send_times.pop(seq, None)  # Karn: don't time retransmits
        self.sim.inject(
            Packet(
                src=self.src,
                dst=self.dst,
                size_bytes=self._segment_bytes(seq),
                protocol=Protocol.TCP,
                flow_id=self.flow_id,
                seq=seq,
            )
        )

    # ------------------------------------------------------------------
    def _measure_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, MIN_RTO_S), MAX_RTO_S)

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.sched.schedule_at(
            self.sim.now + self.rto, self._on_rto, node=self.src
        )

    def _complete(self) -> None:
        self._done = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        self.stats.completed_at = self.sim.now
        self.sim.unregister_tcp_endpoint(self.flow_id, self.src, "snd")
        self.sim.unregister_tcp_endpoint(self.flow_id, self.dst, "rcv")
        if self.on_complete is not None:
            self.on_complete(self.sim.now)


def start_transfer(
    sim: NetworkSimulator,
    src: int,
    dst: int,
    payload_bytes: int,
    on_complete: Callable[[float], None] | None = None,
    on_received: Callable[[float], None] | None = None,
    delayed_ack: bool = False,
) -> TcpSender:
    """Open a TCP connection and transfer ``payload_bytes`` from ``src`` to
    ``dst``.

    ``on_complete(t)`` fires at the *sender* when the last byte is acked;
    ``on_received(t)`` fires at the *receiver* when the last byte arrives.
    Under the conservative parallel engine, use ``on_received`` for
    anything the destination does in response (it executes on the
    destination's LP).
    """
    flow_id = new_flow_id()
    sender = TcpSender(sim, flow_id, src, dst, payload_bytes, on_complete)
    receiver = TcpReceiver(
        sim,
        flow_id,
        src,
        dst,
        sender.total_segments,
        on_complete=on_received,
        delayed_ack=delayed_ack,
    )
    sim.register_tcp_endpoint(flow_id, src, sender, "snd")
    sim.register_tcp_endpoint(flow_id, dst, receiver, "rcv")
    sender.start()
    return sender
