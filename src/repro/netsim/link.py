"""Link transmission model: store-and-forward with drop-tail or RED queues.

Each direction of a duplex link is a FIFO transmitter: a packet begins
transmission when the transmitter frees up, occupies it for
``size * 8 / bandwidth`` seconds, then propagates for the link latency.
The queue is modeled by bounding the backlog ahead of a packet — the
bytes already waiting when it arrives:

- **drop-tail** (default): drop when the packet would not fit — the
  backlog *plus the packet itself* exceeds ``queue_bytes``, so the
  buffer never overshoots its configured size;
- **RED** (Random Early Detection, gentle variant): additionally drop
  probabilistically once the backlog passes ``min_th`` (5 % of the
  buffer), rising linearly to ``max_p`` at ``max_th = 50 %``, then —
  per gentle RED — continuing linearly from ``max_p`` at ``max_th`` to
  certain drop at ``2 * max_th``, desynchronizing TCP flows before the
  buffer overflows.

This O(1) backlog model is standard for packet-level simulators at scale
and preserves the behaviors TCP cares about: queueing delay and loss
under congestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from ..topology.models import Link
from .packet import Packet

__all__ = ["LinkRuntime", "TransmitResult", "RedParams"]


@dataclass(frozen=True)
class RedParams:
    """RED thresholds as fractions of the buffer, plus the max drop prob."""

    min_th_fraction: float = 0.05
    max_th_fraction: float = 0.5
    max_p: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_th_fraction < self.max_th_fraction <= 1.0:
            raise ValueError("need 0 <= min_th < max_th <= 1")
        if not 0.0 < self.max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")


class TransmitResult(NamedTuple):
    """Outcome of offering a packet to a link direction.

    A ``NamedTuple`` rather than a frozen dataclass: one is created per
    packet hop, and tuple construction is several times cheaper than a
    frozen dataclass's ``object.__setattr__`` per field (see
    docs/performance.md).
    """

    accepted: bool
    start_time: float = 0.0
    arrival_time: float = 0.0
    #: bytes already queued ahead of this packet when it was offered
    #: (the queue-depth signal observability turns into high-water marks)
    backlog_bytes: float = 0.0
    #: rejected by an injected fault (loss/corruption burst), not by the
    #: queue — the simulator keeps fault drops out of the traffic counters
    faulted: bool = False


@dataclass
class LinkRuntime:
    """Mutable per-link transmission state (both directions).

    Direction 0 carries ``u -> v`` traffic, direction 1 ``v -> u``.
    ``discipline`` is ``'droptail'`` (default) or ``'red'``.
    """

    link: Link
    discipline: str = "droptail"
    red: RedParams = field(default_factory=RedParams)
    busy_until: list[float] = field(default_factory=lambda: [0.0, 0.0])
    bytes_carried: list[int] = field(default_factory=lambda: [0, 0])
    packets_carried: list[int] = field(default_factory=lambda: [0, 0])
    packets_dropped: list[int] = field(default_factory=lambda: [0, 0])
    #: failure injection: a failed link drops every offered packet
    failed: bool = False
    #: fault injection (repro.faults): probabilistic loss before transmit
    loss_prob: float = 0.0
    #: fault injection: probabilistic corruption — the packet occupies the
    #: transmitter (capacity is burned) but is discarded at the receiver
    corrupt_prob: float = 0.0
    packets_lost: list[int] = field(default_factory=lambda: [0, 0])
    packets_corrupted: list[int] = field(default_factory=lambda: [0, 0])

    def __post_init__(self) -> None:
        if self.discipline not in ("droptail", "red"):
            raise ValueError(f"unknown queue discipline {self.discipline!r}")
        # Per-link deterministic stream keeps RED runs reproducible and
        # independent of event interleaving across links.
        self._rng = np.random.default_rng(0x9E3779B9 ^ self.link.link_id)
        # Fault draws come from a second, lazily created per-link stream
        # so a loss burst never perturbs the RED sequence: a no-fault run
        # stays bit-identical whether or not faults were ever configured.
        self._fault_rng: np.random.Generator | None = None

    def direction(self, from_node: int) -> int:
        """Direction index for traffic leaving ``from_node`` (0 or 1)."""
        if from_node == self.link.u:
            return 0
        if from_node == self.link.v:
            return 1
        raise ValueError(f"node {from_node} not on link {self.link.link_id}")

    def _fault_draw(self) -> float:
        """Uniform draw from the lazily created fault stream."""
        rng = self._fault_rng
        if rng is None:
            rng = self._fault_rng = np.random.default_rng(0x7F4A7C15 ^ self.link.link_id)
        return float(rng.random())

    def _early_drop(self, backlog_bytes: float) -> bool:
        """Gentle-RED drop decision for the observed ``backlog_bytes``.

        Drop probability is 0 up to ``min_th``, rises linearly to
        ``max_p`` at ``max_th``, continues linearly from ``max_p`` to 1
        at ``2 * max_th`` (the gentle-RED extension), and is certain
        beyond — no discontinuous jump anywhere in the profile.
        """
        if self.discipline != "red":
            return False
        min_th = self.red.min_th_fraction * self.link.queue_bytes
        max_th = self.red.max_th_fraction * self.link.queue_bytes
        if backlog_bytes <= min_th:
            return False
        if backlog_bytes < max_th:
            p = self.red.max_p * (backlog_bytes - min_th) / (max_th - min_th)
        elif backlog_bytes < 2.0 * max_th:
            p = self.red.max_p + (1.0 - self.red.max_p) * (backlog_bytes - max_th) / max_th
        else:
            return True
        return bool(self._rng.random() < p)

    def transmit(self, from_node: int, packet: Packet, now: float) -> TransmitResult:
        """Offer ``packet`` for transmission; returns timing or a drop.

        ``arrival_time`` is when the last bit reaches the far endpoint
        (transmission completion + propagation latency).
        """
        d = self.direction(from_node)
        if self.failed:
            self.packets_dropped[d] += 1
            return TransmitResult(accepted=False)
        if self.loss_prob > 0.0 and self._fault_draw() < self.loss_prob:
            self.packets_lost[d] += 1
            return TransmitResult(accepted=False, faulted=True)
        start = max(now, self.busy_until[d])
        backlog_bytes = (start - now) * self.link.bandwidth_bps / 8.0
        # Admission counts the packet itself: admitting on backlog alone
        # overshoots the buffer by up to one packet and lets a packet
        # larger than the whole buffer into an empty queue.
        if (
            backlog_bytes + packet.size_bytes > self.link.queue_bytes
            or self._early_drop(backlog_bytes)
        ):
            self.packets_dropped[d] += 1
            return TransmitResult(accepted=False, backlog_bytes=backlog_bytes)
        tx_time = packet.size_bytes * 8.0 / self.link.bandwidth_bps
        finish = start + tx_time
        self.busy_until[d] = finish
        if self.corrupt_prob > 0.0 and self._fault_draw() < self.corrupt_prob:
            # A corrupted packet still occupies the transmitter for its
            # full serialization time (capacity is burned) but never
            # reaches the far endpoint — the receiver's checksum fails.
            self.packets_corrupted[d] += 1
            return TransmitResult(
                accepted=False,
                start_time=start,
                arrival_time=finish + self.link.latency_s,
                backlog_bytes=backlog_bytes,
                faulted=True,
            )
        self.bytes_carried[d] += packet.size_bytes
        self.packets_carried[d] += 1
        return TransmitResult(
            accepted=True,
            start_time=start,
            arrival_time=finish + self.link.latency_s,
            backlog_bytes=backlog_bytes,
        )

    @property
    def total_bytes(self) -> int:
        """Bytes carried, both directions."""
        return self.bytes_carried[0] + self.bytes_carried[1]

    @property
    def total_packets(self) -> int:
        """Packets carried, both directions."""
        return self.packets_carried[0] + self.packets_carried[1]

    @property
    def total_drops(self) -> int:
        """Packets dropped, both directions."""
        return self.packets_dropped[0] + self.packets_dropped[1]

    @property
    def total_lost(self) -> int:
        """Packets lost to an injected loss burst, both directions."""
        return self.packets_lost[0] + self.packets_lost[1]

    @property
    def total_corrupted(self) -> int:
        """Packets corrupted by an injected fault, both directions."""
        return self.packets_corrupted[0] + self.packets_corrupted[1]

    def utilization(self, duration_s: float) -> float:
        """Mean utilization of the busier direction over ``duration_s``."""
        if duration_s <= 0:
            return 0.0
        byte_max = max(self.bytes_carried)
        return min(1.0, byte_max * 8.0 / (self.link.bandwidth_bps * duration_s))
