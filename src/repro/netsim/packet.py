"""Packets and protocol identifiers for the packet-level simulator."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["Protocol", "Packet", "new_flow_id", "TCP_MSS_BYTES", "TCP_HEADER_BYTES"]

#: TCP maximum segment size used for bulk transfers (Ethernet MTU - headers).
TCP_MSS_BYTES = 1460
#: Combined IP+TCP header overhead per segment.
TCP_HEADER_BYTES = 40

_flow_counter = itertools.count(1)


def new_flow_id() -> int:
    """Globally unique flow identifier (per TCP connection / UDP stream)."""
    # Flow ids only need uniqueness, not global order; the multi-core
    # backend can partition the id space per process (e.g. rank-striped).
    return next(_flow_counter)  # simlint: disable=SIM201


class Protocol(enum.Enum):
    TCP = "tcp"
    UDP = "udp"


@dataclass
class Packet:
    """A simulated packet.

    ``size_bytes`` includes headers (it is what occupies link capacity).
    ``seq``/``ack`` are in *segments* for TCP; ``flags`` carries control
    markers ('SYN', 'ACK', 'FIN'). ``hops`` counts router traversals for
    TTL enforcement and path-length statistics.
    """

    src: int
    dst: int
    size_bytes: int
    protocol: Protocol
    flow_id: int
    seq: int = 0
    ack: int = -1
    port: int = 0
    flags: frozenset[str] = field(default_factory=frozenset)
    created_at: float = 0.0
    hops: int = 0
    ttl: int = 64

    def is_control(self) -> bool:
        """True for SYN/FIN control packets."""
        return bool(self.flags & {"SYN", "FIN"})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "+".join(sorted(self.flags)) or ("DATA" if self.ack < 0 else "ACK")
        return (
            f"Packet({kind} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} ack={self.ack} {self.size_bytes}B)"
        )
