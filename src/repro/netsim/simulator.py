"""The packet-level network simulator core (MaSSF's network modeling).

Ties together the forwarding plane, per-link transmission state, and the
transport endpoints (TCP/UDP), on top of either DES engine. Every packet
hop is one simulation event executed *at the receiving node*, which is
what makes the engine's per-node event accounting equal the paper's
definition of load ("event rate of the simulation kernel — essentially
one per network packet").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol as TypingProtocol

import numpy as np

from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..obs.trace import get_tracer
from ..routing.fib import ForwardingPlane
from ..topology.models import Network
from .link import LinkRuntime
from .packet import Packet, Protocol

__all__ = ["Scheduler", "NetworkSimulator", "TrafficCounters"]

#: Per-hop router processing delay (lookup + queueing into the NIC).
HOP_PROCESSING_S = 5e-6
#: Delivery delay for loopback traffic (src == dst): kernel/IPC overhead.
LOOPBACK_LATENCY_S = 10e-6


class Scheduler(TypingProtocol):
    """What the simulator needs from an engine (both engines satisfy it)."""

    @property
    def current_time(self) -> float:
        """Simulated time of the executing event."""
        ...

    def schedule_at(
        self, time: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ):
        """Schedule ``fn(*args)`` at an absolute simulated time at ``node``.

        The ``args`` slot is the closure-free dispatch path: the per-hop
        hot path passes a bound method plus an argument tuple instead of
        allocating a capturing lambda per packet hop.
        """
        ...


@dataclass
class TrafficCounters:
    """Aggregate traffic statistics of a run."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_ttl: int = 0
    packets_unroutable: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (logging and assertions)."""
        return {
            "sent": self.packets_sent,
            "delivered": self.packets_delivered,
            "dropped_queue": self.packets_dropped_queue,
            "dropped_ttl": self.packets_dropped_ttl,
            "unroutable": self.packets_unroutable,
        }


class NetworkSimulator:
    """Hop-by-hop packet simulation over a :class:`Network`.

    Parameters
    ----------
    net, fib:
        Topology and forwarding plane.
    scheduler:
        A :class:`repro.engine.SimKernel` or
        :class:`repro.engine.ConservativeEngine`.
    record_transmissions:
        Keep a per-hop record ``(time, from_node, to_node)`` used by the
        cost model to count cross-partition events under any mapping.
    """

    def __init__(
        self,
        net: Network,
        fib: ForwardingPlane,
        scheduler: Scheduler,
        record_transmissions: bool = False,
        hop_processing_s: float = HOP_PROCESSING_S,
        queue_discipline: str = "droptail",
    ) -> None:
        self.net = net
        self.fib = fib
        self.sched = scheduler
        self.hop_processing_s = hop_processing_s
        self.links = [LinkRuntime(l, discipline=queue_discipline) for l in net.links]
        # Hot-path index: (from, to) -> LinkRuntime, replacing the
        # per-hop adjacency scan of net.link_between. setdefault keeps
        # link_between's first-created-link-wins tie-break for parallel
        # links.
        self._runtime_by_pair: dict[tuple[int, int], LinkRuntime] = {}
        for lr in self.links:
            self._runtime_by_pair.setdefault((lr.link.u, lr.link.v), lr)
            self._runtime_by_pair.setdefault((lr.link.v, lr.link.u), lr)
        self.counters = TrafficCounters()
        #: per-node handled packet count (the PROF node-weight signal)
        self.node_packets = np.zeros(net.num_nodes, dtype=np.int64)
        # Fault state (repro.faults): crashed nodes black-hole every
        # packet that reaches them. Kept outside TrafficCounters so the
        # regression fingerprint's counter dict is unchanged; empty on a
        # healthy run, so the hot path pays one truthiness check.
        self._down_nodes: set[int] = set()
        #: packets discarded by injected faults (crashed node, loss or
        #: corruption burst) — deliberately not part of TrafficCounters
        self.dropped_fault = 0

        self.record_transmissions = record_transmissions
        self.tx_times: list[float] = []
        self.tx_from: list[int] = []
        self.tx_to: list[int] = []

        # Observability hook points. Instruments are resolved once here;
        # the per-event path below performs one `enabled` check and no
        # dict lookups (see docs/observability.md).
        reg = get_registry()
        self._obs = reg
        num_links = len(net.links)
        self._obs_node_events = reg.vector_counter(
            obs_names.NETSIM_NODE_EVENTS, net.num_nodes
        )
        self._obs_rate_bins = reg.series(obs_names.NETSIM_NODE_RATE_BINS, net.num_nodes)
        self._obs_link_bytes = reg.vector_counter(obs_names.NETSIM_LINK_BYTES, num_links)
        self._obs_link_packets = reg.vector_counter(
            obs_names.NETSIM_LINK_PACKETS, num_links
        )
        self._obs_link_drops = reg.vector_counter(obs_names.NETSIM_LINK_DROPS, num_links)
        self._obs_queue_hwm = reg.max_gauge(obs_names.NETSIM_LINK_QUEUE_HWM, num_links)
        self._obs_sent = reg.counter(obs_names.NETSIM_PACKETS_SENT)
        self._obs_delivered = reg.counter(obs_names.NETSIM_PACKETS_DELIVERED)
        self._obs_dropped_queue = reg.counter(obs_names.NETSIM_PACKETS_DROPPED_QUEUE)
        self._obs_dropped_ttl = reg.counter(obs_names.NETSIM_PACKETS_DROPPED_TTL)
        self._obs_unroutable = reg.counter(obs_names.NETSIM_PACKETS_UNROUTABLE)
        # Structured trace hook point: per-hop transmission samples feed
        # the what-if mapping replay (repro.obs.whatif).
        self._trace = get_tracer()

        # Transport demux: (flow_id, node, role) -> endpoint. The role
        # ('snd'/'rcv') disambiguates colocated endpoints of one flow
        # (loopback transfers put both on the same node).
        self._tcp_endpoints: dict[tuple[int, int, str], Any] = {}
        self._udp_handlers: dict[tuple[int, int], Callable[[Packet], None]] = {}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (the executing event's timestamp)."""
        return self.sched.current_time

    # ------------------------------------------------------------------
    # Transport registration (used by tcp.py / udp.py / online layer)
    # ------------------------------------------------------------------
    def register_tcp_endpoint(self, flow_id: int, node: int, endpoint: Any, role: str) -> None:
        """Register a TCP endpoint for delivery demux ('snd' or 'rcv')."""
        if role not in ("snd", "rcv"):
            raise ValueError("role must be 'snd' or 'rcv'")
        self._tcp_endpoints[(flow_id, node, role)] = endpoint

    def unregister_tcp_endpoint(self, flow_id: int, node: int, role: str) -> None:
        """Remove a TCP endpoint registration (idempotent)."""
        self._tcp_endpoints.pop((flow_id, node, role), None)

    def udp_bind(self, node: int, port: int, handler: Callable[[Packet], None]) -> None:
        """Bind a datagram handler to ``(node, port)``; rejects conflicts."""
        key = (node, port)
        if key in self._udp_handlers:
            raise ValueError(f"UDP port {port} already bound on node {node}")
        self._udp_handlers[key] = handler

    def udp_unbind(self, node: int, port: int) -> None:
        """Release a UDP binding (idempotent)."""
        self._udp_handlers.pop((node, port), None)

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Enter a packet at its source node (transport send).

        Loopback packets (both endpoints on one host) never touch the
        network; they are delivered through the scheduler after a small
        IPC delay — important both for realism and to keep two local
        endpoints from recursing into each other synchronously.
        """
        packet.created_at = self.now
        self.counters.packets_sent += 1
        self._obs_sent.inc()
        if packet.src == packet.dst:
            self.sched.schedule_at(
                self.now + LOOPBACK_LATENCY_S,
                self._handle_at,
                node=packet.dst,
                args=(packet.dst, packet),
            )
            return
        self._handle_at(packet.src, packet)

    def _handle_at(self, node: int, packet: Packet) -> None:
        """Process a packet at ``node``: deliver locally or forward."""
        if self._down_nodes and node in self._down_nodes:
            self.dropped_fault += 1
            return
        self.node_packets[node] += 1
        if self._obs.enabled:
            self._obs_node_events.inc(node)
            self._obs_rate_bins.observe(self.now, node)
        if node == packet.dst:
            self._deliver(node, packet)
            return
        if packet.ttl <= 0:
            self.counters.packets_dropped_ttl += 1
            self._obs_dropped_ttl.inc()
            return
        next_node = self.fib.next_hop(node, packet.dst)
        if next_node is None:
            self.counters.packets_unroutable += 1
            self._obs_unroutable.inc()
            return
        runtime = self._runtime_by_pair.get((node, next_node))
        assert runtime is not None, "forwarding plane returned a non-adjacent hop"
        depart = self.now + (self.hop_processing_s if node != packet.src else 0.0)
        result = runtime.transmit(node, packet, depart)
        if self._obs.enabled:
            self._obs_queue_hwm.observe(runtime.link.link_id, result.backlog_bytes)
        if not result.accepted:
            if result.faulted:
                # Injected loss/corruption — accounted separately so the
                # queue-drop counter (and the regression fingerprint)
                # keeps its meaning under fault scenarios.
                self.dropped_fault += 1
                return
            self.counters.packets_dropped_queue += 1
            if self._obs.enabled:
                self._obs_dropped_queue.inc()
                self._obs_link_drops.inc(runtime.link.link_id)
            return
        packet.ttl -= 1
        packet.hops += 1
        if self._obs.enabled:
            link_id = runtime.link.link_id
            self._obs_link_packets.inc(link_id)
            self._obs_link_bytes.inc(link_id, packet.size_bytes)
        if self.record_transmissions:
            self.tx_times.append(result.start_time)
            self.tx_from.append(node)
            self.tx_to.append(next_node)
        if self._trace.enabled:
            self._trace.tx(result.start_time, node, next_node)
        # Closure-free forwarding: bound method + argument slots on the
        # Event itself — no per-hop lambda allocation (the hot path of
        # the whole simulator; see docs/performance.md).
        self.sched.schedule_at(
            result.arrival_time,
            self._handle_at,
            node=next_node,
            args=(next_node, packet),
        )

    def _deliver(self, node: int, packet: Packet) -> None:
        self.counters.packets_delivered += 1
        self._obs_delivered.inc()
        if packet.protocol is Protocol.TCP:
            # ACK-bearing packets (cumulative ACKs, SYN-ACK) go to the data
            # sender; data and SYN go to the receiver.
            role = "snd" if (packet.ack >= 0 or "ACK" in packet.flags) else "rcv"
            endpoint = self._tcp_endpoints.get((packet.flow_id, node, role))
            if endpoint is not None:
                endpoint.receive(packet)
        elif packet.protocol is Protocol.UDP:
            handler = self._udp_handlers.get((node, packet.port))
            if handler is not None:
                handler(packet)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_link(self, link_id: int) -> None:
        """Bring a link down: every packet offered to it is dropped.

        Forwarding tables are *not* recomputed (as in a real network
        before the IGP reconverges) — transport-layer recovery (TCP RTO)
        is what keeps traffic alive, which is exactly what failure tests
        exercise.
        """
        self.links[link_id].failed = True

    def restore_link(self, link_id: int) -> None:
        """Bring a failed link back into service."""
        self.links[link_id].failed = False

    def set_node_down(self, node: int) -> None:
        """Crash a node: packets reaching it are silently discarded.

        In-flight packets already scheduled to arrive at the node are
        dropped on arrival (counted in :attr:`dropped_fault`), matching
        a real crash where queued frames die with the router.
        """
        self._down_nodes.add(node)

    def set_node_up(self, node: int) -> None:
        """Restart a crashed node (idempotent)."""
        self._down_nodes.discard(node)

    # ------------------------------------------------------------------
    # Statistics views
    # ------------------------------------------------------------------
    def link_bytes(self) -> np.ndarray:
        """Total bytes carried per link (both directions)."""
        return np.asarray([lr.total_bytes for lr in self.links], dtype=np.float64)

    def link_packets(self) -> np.ndarray:
        """Total packets carried per link (both directions)."""
        return np.asarray([lr.total_packets for lr in self.links], dtype=np.int64)

    def link_drops(self) -> np.ndarray:
        """Total packets dropped per link (both directions)."""
        return np.asarray([lr.total_drops for lr in self.links], dtype=np.int64)

    def transmissions(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recorded per-hop ``(times, from_nodes, to_nodes)`` arrays."""
        return (
            np.asarray(self.tx_times, dtype=np.float64),
            np.asarray(self.tx_from, dtype=np.int64),
            np.asarray(self.tx_to, dtype=np.int64),
        )
