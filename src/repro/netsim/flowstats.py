"""Per-flow statistics: flow completion times and throughput.

A :class:`FlowLog` wraps transfer creation and records one
:class:`FlowRecord` per completed TCP transfer — flow completion time
(FCT) distributions and per-flow goodput are the workload-level metrics
a simulator user inspects after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .simulator import NetworkSimulator
from .tcp import TcpSender, start_transfer

__all__ = ["FlowRecord", "FlowLog"]


@dataclass(frozen=True)
class FlowRecord:
    """One completed (or abandoned) flow."""

    flow_id: int
    src: int
    dst: int
    payload_bytes: int
    started_at: float
    completed_at: float  # -1 if never completed
    segments_sent: int
    retransmits: int
    timeouts: int

    @property
    def completed(self) -> bool:
        """True when the last byte was acknowledged."""
        return self.completed_at >= 0.0

    @property
    def duration_s(self) -> float:
        """Flow completion time (raises for incomplete flows)."""
        if not self.completed:
            raise ValueError("flow did not complete")
        return self.completed_at - self.started_at

    @property
    def goodput_bps(self) -> float:
        """Payload bits per second over the flow's lifetime."""
        d = self.duration_s
        return self.payload_bytes * 8.0 / d if d > 0 else float("inf")


class FlowLog:
    """Transfer factory that records flow-level outcomes.

    Use :meth:`transfer` instead of :func:`start_transfer`; call
    :meth:`finalize` after the run to sweep unfinished flows into the
    log (marked incomplete).
    """

    def __init__(self, sim: NetworkSimulator) -> None:
        self.sim = sim
        self.records: list[FlowRecord] = []
        self._active: dict[int, tuple[TcpSender, float]] = {}

    def transfer(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        on_complete: Callable[[float], None] | None = None,
        on_received: Callable[[float], None] | None = None,
    ) -> TcpSender:
        """Open a recorded TCP transfer (drop-in for :func:`start_transfer`)."""
        started = self.sim.now
        state: dict[str, int] = {}

        def _done(t: float) -> None:
            entry = self._active.pop(state["flow_id"], None)
            if entry is not None:
                self.records.append(self._record(entry[0], entry[1]))
            if on_complete is not None:
                on_complete(t)

        sender = start_transfer(
            self.sim, src, dst, payload_bytes, _done, on_received=on_received
        )
        # Completion cannot fire before at least one scheduled event runs
        # (even loopback SYNs are delayed), so registering after creation
        # is safe.
        state["flow_id"] = sender.flow_id
        self._active[sender.flow_id] = (sender, started)
        return sender

    def _record(self, sender: TcpSender, started: float) -> FlowRecord:
        return FlowRecord(
            flow_id=sender.flow_id,
            src=sender.src,
            dst=sender.dst,
            payload_bytes=sender.payload_bytes,
            started_at=started,
            completed_at=sender.stats.completed_at,
            segments_sent=sender.stats.segments_sent,
            retransmits=sender.stats.retransmits,
            timeouts=sender.stats.timeouts,
        )

    def finalize(self) -> None:
        """Sweep flows still in flight into the log as incomplete."""
        for sender, started in self._active.values():
            self.records.append(self._record(sender, started))
        self._active.clear()

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def completed(self) -> list[FlowRecord]:
        """The records of flows that finished."""
        return [r for r in self.records if r.completed]

    def completion_rate(self) -> float:
        """Completed flows / all recorded flows (1.0 when empty)."""
        if not self.records:
            return 1.0
        return len(self.completed) / len(self.records)

    def fct_percentiles(self, qs: tuple[float, ...] = (50.0, 90.0, 99.0)) -> dict[float, float]:
        """Flow-completion-time percentiles (seconds) over completed flows."""
        done = self.completed
        if not done:
            raise ValueError("no completed flows")
        durations = np.array([r.duration_s for r in done])
        return {q: float(np.percentile(durations, q)) for q in qs}

    def mean_goodput_bps(self) -> float:
        """Mean per-flow goodput over completed flows."""
        done = self.completed
        if not done:
            raise ValueError("no completed flows")
        return float(np.mean([r.goodput_bps for r in done]))

    def total_retransmit_fraction(self) -> float:
        """Retransmitted segments / all segments sent (loss pressure)."""
        sent = sum(r.segments_sent for r in self.records)
        rtx = sum(r.retransmits for r in self.records)
        return rtx / sent if sent else 0.0
