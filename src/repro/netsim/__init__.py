"""Packet-level network simulation (links, IP forwarding, TCP/UDP, apps)."""

from .analysis import as_traffic_matrix, drop_report, top_links
from .flowstats import FlowLog, FlowRecord
from .link import LinkRuntime, RedParams, TransmitResult
from .packet import (
    Packet,
    Protocol,
    TCP_HEADER_BYTES,
    TCP_MSS_BYTES,
    new_flow_id,
)
from .simulator import HOP_PROCESSING_S, LOOPBACK_LATENCY_S, NetworkSimulator, TrafficCounters
from .tcp import TcpReceiver, TcpSender, TcpStats, start_transfer
from .udp import UDP_HEADER_BYTES, UDP_MTU_BYTES, send_datagram

__all__ = [
    "Packet",
    "Protocol",
    "new_flow_id",
    "TCP_MSS_BYTES",
    "TCP_HEADER_BYTES",
    "LinkRuntime",
    "TransmitResult",
    "RedParams",
    "FlowLog",
    "FlowRecord",
    "as_traffic_matrix",
    "top_links",
    "drop_report",
    "NetworkSimulator",
    "TrafficCounters",
    "HOP_PROCESSING_S",
    "LOOPBACK_LATENCY_S",
    "TcpSender",
    "TcpReceiver",
    "TcpStats",
    "start_transfer",
    "send_datagram",
    "UDP_MTU_BYTES",
    "UDP_HEADER_BYTES",
]
