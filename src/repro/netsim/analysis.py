"""Post-run traffic analysis: AS-level traffic matrices and hot links.

Analysis helpers over a finished :class:`NetworkSimulator`: where the
bytes flowed at AS granularity (the concentration BGP policy routing
creates — the reason multi-AS load balance is harder, paper §5.2.2) and
which links carried or dropped the most.
"""

from __future__ import annotations

import numpy as np

from ..topology.models import Network
from .simulator import NetworkSimulator

__all__ = ["as_traffic_matrix", "top_links", "drop_report"]


def as_traffic_matrix(sim: NetworkSimulator, net: Network) -> np.ndarray:
    """Bytes carried per (AS, AS) pair, attributed link-by-link.

    Intra-AS links contribute to the diagonal; inter-AS links to the
    symmetric off-diagonal cells. Requires AS ids to be dense 0..k-1
    (true for generated and loaded networks).
    """
    ases = sorted(net.as_domains) if net.as_domains else [0]
    k = (max(ases) + 1) if ases else 1
    matrix = np.zeros((k, k))
    for runtime in sim.links:
        link = runtime.link
        a = net.nodes[link.u].as_id
        b = net.nodes[link.v].as_id
        total = runtime.total_bytes
        matrix[a, b] += total
        if a != b:
            matrix[b, a] += total
    return matrix


def top_links(sim: NetworkSimulator, count: int = 10) -> list[tuple[int, int, int]]:
    """The ``count`` busiest links as ``(link_id, bytes, drops)``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    ranked = sorted(
        ((lr.link.link_id, lr.total_bytes, lr.total_drops) for lr in sim.links),
        key=lambda t: t[1],
        reverse=True,
    )
    return ranked[:count]


def drop_report(sim: NetworkSimulator) -> dict[str, float]:
    """Aggregate loss statistics of the run."""
    offered = sum(lr.total_packets + lr.total_drops for lr in sim.links)
    dropped = sum(lr.total_drops for lr in sim.links)
    return {
        "offered_packet_hops": float(offered),
        "dropped_packet_hops": float(dropped),
        "drop_rate": dropped / offered if offered else 0.0,
        "links_with_drops": float(sum(1 for lr in sim.links if lr.total_drops)),
    }
