"""Constant-bit-rate UDP streams (simple open-loop background traffic)."""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator import NetworkSimulator
from ..udp import UDP_MTU_BYTES, send_datagram

__all__ = ["CbrStream"]


@dataclass
class CbrStream:
    """A UDP stream sending ``packet_bytes`` every ``packet_bytes*8/rate_bps``.

    Call :meth:`start`; the stream self-reschedules until ``stop_at``.
    """

    sim: NetworkSimulator
    src: int
    dst: int
    rate_bps: float
    stop_at: float
    packet_bytes: int = UDP_MTU_BYTES
    port: int = 0
    packets_sent: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate must be positive")
        if not 0 < self.packet_bytes <= UDP_MTU_BYTES:
            raise ValueError("packet_bytes must be in (0, MTU]")

    @property
    def interval_s(self) -> float:
        """Inter-packet spacing implied by the target rate."""
        return self.packet_bytes * 8.0 / self.rate_bps

    def start(self, at: float | None = None) -> None:
        """Begin sending at ``at`` (default: now); stops at ``stop_at``."""
        when = at if at is not None else self.sim.now
        if when < self.stop_at:
            self.sim.sched.schedule_at(when, self._tick, node=self.src)

    def _tick(self) -> None:
        send_datagram(self.sim, self.src, self.dst, self.packet_bytes, port=self.port)
        self.packets_sent += 1
        nxt = self.sim.now + self.interval_s
        if nxt < self.stop_at:
            self.sim.sched.schedule_at(nxt, self._tick, node=self.src)
