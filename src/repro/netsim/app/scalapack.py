"""ScaLapack-style live application traffic model.

The paper runs real ScaLAPACK (GrADS experiment) through WrapSocket; its
communication structure is what matters for load balance: an iterative
dense factorization where, each iteration, the panel owner *broadcasts*
the current panel to every other process and processes exchange trailing
blocks with their grid neighbors, separated by compute phases. The model
reproduces that pattern through the online layer (WrapSocket -> Agent ->
simulated TCP), making it communication-heavy relative to GridNPB — the
property the paper's results hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ...online.agent import Agent
from ...online.wrapsocket import WrapSocket

__all__ = ["ScaLapackApp", "AppRunStats"]


@dataclass
class AppRunStats:
    """Completion record of a live application run."""

    iterations_completed: int = 0
    transfers: int = 0
    bytes_sent: int = 0
    finished_at: float = -1.0

    @property
    def finished(self) -> bool:
        """True once the application ran to completion."""
        return self.finished_at >= 0.0


class ScaLapackApp:
    """Panel-broadcast + ring-exchange iterative application.

    Parameters
    ----------
    agent:
        The online-layer gateway into the simulation.
    hosts:
        Simulated hosts running the P application processes.
    panel_bytes / block_bytes:
        Broadcast panel size and neighbor-exchange block size. Trailing
        panels shrink as the factorization proceeds, so sizes decay
        linearly over iterations (as in LU/QR).
    compute_s:
        Per-iteration compute phase (same on every process).
    """

    def __init__(
        self,
        agent: Agent,
        hosts: list[int],
        iterations: int = 16,
        panel_bytes: int = 200_000,
        block_bytes: int = 80_000,
        compute_s: float = 1.0,
        on_finish=None,
        name: str = "scalapack",
    ) -> None:
        if len(hosts) < 2:
            raise ValueError("ScaLapack model needs at least 2 processes")
        self.agent = agent
        self.hosts = list(hosts)
        self.iterations = iterations
        self.panel_bytes = panel_bytes
        self.block_bytes = block_bytes
        self.compute_s = compute_s
        self.on_finish = on_finish
        self.stats = AppRunStats()
        self.sockets = [
            WrapSocket(agent, h, real_endpoint=f"{name}-rank{i}@node{h}")
            for i, h in enumerate(hosts)
        ]
        # In-flight completion countdown for the current phase. Phases are
        # strictly sequential (panel broadcast -> ring exchange -> compute),
        # so one counter replaces the per-phase closure state and keeps
        # every scheduled callback a picklable bound method (simlint SIM203).
        self._pending = 0

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Begin iteration 0 at simulated time ``at``."""
        self.agent.schedule(
            max(0.0, at - self.agent.now),
            self._iteration,
            node=self.hosts[0],
            args=(0,),
        )

    def _scaled(self, base: int, k: int) -> int:
        """Trailing-matrix shrink: iteration k moves ~(1 - k/iters) of data."""
        frac = 1.0 - k / max(self.iterations, 1)
        return max(1_000, int(base * frac))

    def _iteration(self, k: int) -> None:
        if k >= self.iterations:
            self.stats.finished_at = self.agent.now
            if self.on_finish is not None:
                self.on_finish(self.agent.now)
            return
        owner_idx = k % len(self.hosts)
        panel = self._scaled(self.panel_bytes, k)
        self._pending = len(self.hosts) - 1

        sock = self.sockets[owner_idx]
        for i, h in enumerate(self.hosts):
            if i == owner_idx:
                continue
            sock.connect_node(h)
            self.stats.transfers += 1
            self.stats.bytes_sent += panel
            sock.send(panel, partial(self._panel_done, k))

    def _panel_done(self, k: int, _t: float) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._ring_exchange(k)

    def _ring_exchange(self, k: int) -> None:
        block = self._scaled(self.block_bytes, k)
        self._pending = len(self.hosts)

        for i, h in enumerate(self.hosts):
            peer = self.hosts[(i + 1) % len(self.hosts)]
            sock = self.sockets[i]
            sock.connect_node(peer)
            self.stats.transfers += 1
            self.stats.bytes_sent += block
            sock.send(block, partial(self._block_done, k))

    def _block_done(self, k: int, _t: float) -> None:
        self._pending -= 1
        if self._pending == 0:
            # Compute phase, then the next iteration.
            self.agent.schedule(
                self.compute_s,
                self._advance,
                node=self.hosts[(k + 1) % len(self.hosts)],
                args=(k,),
            )

    def _advance(self, k: int) -> None:
        self.stats.iterations_completed = k + 1
        self._iteration(k + 1)
