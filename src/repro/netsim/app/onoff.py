"""Pareto on/off UDP sources: self-similar background traffic.

The aggregate of many on/off sources with heavy-tailed (Pareto) period
lengths is the classical model of self-similar network traffic (Willinger
et al.) — burstier than Poisson at every timescale, and a harder load-
balance workload than the paper's HTTP model. During an ON period the
source emits packets at ``rate_bps``; OFF periods are silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulator import NetworkSimulator
from ..udp import UDP_MTU_BYTES, send_datagram

__all__ = ["ParetoOnOffStream"]


@dataclass
class ParetoOnOffStream:
    """One on/off source; aggregate many for self-similar traffic.

    ``shape`` is the Pareto tail index: 1 < shape < 2 gives infinite
    variance periods (long-range dependence in the aggregate); the
    classical choice is 1.5.
    """

    sim: NetworkSimulator
    src: int
    dst: int
    rate_bps: float
    stop_at: float
    mean_on_s: float = 0.5
    mean_off_s: float = 1.0
    shape: float = 1.5
    packet_bytes: int = UDP_MTU_BYTES
    port: int = 0
    seed: int = 0
    packets_sent: int = 0
    on_periods: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _on_until: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate must be positive")
        if not 1.0 < self.shape:
            raise ValueError("Pareto shape must exceed 1")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("period means must be positive")
        self._rng = np.random.default_rng(self.seed)

    @property
    def interval_s(self) -> float:
        """Inter-packet spacing during an ON period."""
        return self.packet_bytes * 8.0 / self.rate_bps

    def _pareto(self, mean: float) -> float:
        """A Pareto draw with the requested mean: scale = mean*(a-1)/a."""
        scale = mean * (self.shape - 1.0) / self.shape
        return float(scale * (1.0 + self._rng.pareto(self.shape)))

    def start(self, at: float | None = None) -> None:
        """Begin the first ON period at ``at`` (default: now)."""
        when = at if at is not None else self.sim.now
        if when < self.stop_at:
            self.sim.sched.schedule_at(when, self._begin_on, node=self.src)

    def _begin_on(self) -> None:
        self.on_periods += 1
        self._on_until = self.sim.now + self._pareto(self.mean_on_s)
        self._tick()

    def _tick(self) -> None:
        now = self.sim.now
        if now >= self.stop_at:
            return
        if now >= self._on_until:
            off = self._pareto(self.mean_off_s)
            nxt = now + off
            if nxt < self.stop_at:
                self.sim.sched.schedule_at(nxt, self._begin_on, node=self.src)
            return
        send_datagram(self.sim, self.src, self.dst, self.packet_bytes, port=self.port)
        self.packets_sent += 1
        self.sim.sched.schedule_at(now + self.interval_s, self._tick, node=self.src)
