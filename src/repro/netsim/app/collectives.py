"""MPI-style collective communication primitives over the online layer.

Grid applications are dominated by a handful of collective patterns; this
module provides them as reusable building blocks on top of WrapSocket:

- :func:`broadcast` — root streams to every other rank (linear),
- :func:`gather` — every rank streams to the root,
- :func:`all_to_all` — every rank streams to every other rank,
- :func:`ring_exchange` — rank i streams to rank (i+1) mod P,
- :func:`reduce_tree` — binary-tree reduction toward rank 0.

Each primitive takes a :class:`CollectiveGroup` and invokes
``on_complete(t)`` once *all* of its transfers have been received —
receiver-side completion, so composed phases execute on the right LPs
under the parallel engine. Primitives can be chained to build arbitrary
application skeletons (the ScaLapack model is precisely
``broadcast -> ring_exchange -> compute`` per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...online.agent import Agent
from ...online.wrapsocket import WrapSocket

__all__ = [
    "CollectiveGroup",
    "broadcast",
    "gather",
    "all_to_all",
    "ring_exchange",
    "reduce_tree",
]


@dataclass
class CollectiveGroup:
    """A set of application ranks pinned to simulated hosts."""

    agent: Agent
    hosts: list[int]
    name: str = "mpi"
    sockets: list[WrapSocket] = field(default_factory=list)
    transfers_started: int = 0
    bytes_sent: int = 0

    def __post_init__(self) -> None:
        if len(self.hosts) < 2:
            raise ValueError("a collective group needs at least 2 ranks")
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError("ranks must occupy distinct hosts")
        if not self.sockets:
            self.sockets = [
                WrapSocket(self.agent, h, real_endpoint=f"{self.name}-rank{i}@node{h}")
                for i, h in enumerate(self.hosts)
            ]

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return len(self.hosts)

    def _send(self, src_rank: int, dst_rank: int, nbytes: int,
              on_received: Callable[[float], None]) -> None:
        sock = self.sockets[src_rank]
        sock.connect_node(self.hosts[dst_rank])
        self.transfers_started += 1
        self.bytes_sent += nbytes
        sock.send(nbytes, on_received=on_received)


def _join(count: int, on_complete: Callable[[float], None] | None):
    """A completion barrier: returns a per-transfer callback that fires
    ``on_complete`` with the *latest* arrival time once all have landed."""
    state = {"left": count, "latest": 0.0}

    def _one(t: float) -> None:
        state["left"] -= 1
        state["latest"] = max(state["latest"], t)
        if state["left"] == 0 and on_complete is not None:
            on_complete(state["latest"])

    return _one


def broadcast(
    group: CollectiveGroup,
    root: int,
    nbytes: int,
    on_complete: Callable[[float], None] | None = None,
) -> None:
    """Root streams ``nbytes`` to every other rank (linear broadcast)."""
    _check_rank(group, root)
    done = _join(group.size - 1, on_complete)
    for r in range(group.size):
        if r != root:
            group._send(root, r, nbytes, done)


def gather(
    group: CollectiveGroup,
    root: int,
    nbytes: int,
    on_complete: Callable[[float], None] | None = None,
) -> None:
    """Every non-root rank streams ``nbytes`` to the root."""
    _check_rank(group, root)
    done = _join(group.size - 1, on_complete)
    for r in range(group.size):
        if r != root:
            group._send(r, root, nbytes, done)


def all_to_all(
    group: CollectiveGroup,
    nbytes: int,
    on_complete: Callable[[float], None] | None = None,
) -> None:
    """Every rank streams ``nbytes`` to every other rank (P*(P-1) flows)."""
    p = group.size
    done = _join(p * (p - 1), on_complete)
    for a in range(p):
        for b in range(p):
            if a != b:
                group._send(a, b, nbytes, done)


def ring_exchange(
    group: CollectiveGroup,
    nbytes: int,
    on_complete: Callable[[float], None] | None = None,
) -> None:
    """Rank i streams to rank (i+1) mod P."""
    p = group.size
    done = _join(p, on_complete)
    for r in range(p):
        group._send(r, (r + 1) % p, nbytes, done)


def reduce_tree(
    group: CollectiveGroup,
    nbytes: int,
    on_complete: Callable[[float], None] | None = None,
) -> None:
    """Binary-tree reduction toward rank 0, level by level.

    At each round, surviving odd-position ranks stream to their even
    partner; rounds proceed until only rank 0 remains. Latency scales as
    ``log2(P)`` rounds — the shape that differentiates tree collectives
    from the linear ones above.
    """
    p = group.size

    def run_level(active: list[int], _t: float = 0.0) -> None:
        if len(active) == 1:
            if on_complete is not None:
                on_complete(group.agent.now)
            return
        pairs = [
            (active[i + 1], active[i])
            for i in range(0, len(active) - 1, 2)
        ]
        survivors = [active[i] for i in range(0, len(active), 2)]
        done = _join(len(pairs), lambda t: run_level(survivors, t))
        for src, dst in pairs:
            group._send(src, dst, nbytes, done)

    run_level(list(range(p)))


def _check_rank(group: CollectiveGroup, rank: int) -> None:
    if not 0 <= rank < group.size:
        raise ValueError(f"rank {rank} out of range for group of {group.size}")
