"""GridNPB 3.0 workflow traffic models (Helical Chain, Visualization
Pipeline, Mixed Bag).

"GridNPB is a set of grid benchmarks in a workflow style composition in
data flow graphs encapsulating an instance of a slightly modified NPB
task in each graph node, which communicates with other nodes by
sending/receiving initialization data" (paper Section 4.2; the
experiments combine HC + VP + MB at class S).

Each workflow is a DAG of tasks; a task starts when all its inputs have
arrived, computes, then streams its output to each successor through the
online layer. Compared to the ScaLapack model, communication is sparse —
which is why the paper sees smaller mapping gains for GridNPB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from ...online.agent import Agent
from ...online.wrapsocket import WrapSocket
from .scalapack import AppRunStats

__all__ = [
    "WorkflowTask",
    "Workflow",
    "helical_chain",
    "visualization_pipeline",
    "mixed_bag",
    "GridNpbApp",
]

#: Class-S per-edge initialization data (bytes) per NPB solver type.
CLASS_S_BYTES = {"BT": 60_000, "SP": 50_000, "LU": 40_000, "MG": 80_000, "FT": 120_000}
#: Class-S compute time model (seconds) per solver type.
CLASS_S_COMPUTE_S = {"BT": 1.2, "SP": 1.0, "LU": 1.1, "MG": 0.6, "FT": 0.8}


@dataclass
class WorkflowTask:
    """One node of the dataflow graph."""

    task_id: int
    solver: str
    compute_s: float
    output_bytes: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)


@dataclass
class Workflow:
    """A dataflow DAG of :class:`WorkflowTask`."""

    name: str
    tasks: list[WorkflowTask]

    def add_edge(self, src: int, dst: int) -> None:
        """Add a dataflow edge ``src -> dst`` between task ids."""
        self.tasks[src].successors.append(dst)
        self.tasks[dst].predecessors.append(src)

    @property
    def sources(self) -> list[int]:
        """Tasks with no predecessors (started immediately)."""
        return [t.task_id for t in self.tasks if not t.predecessors]

    @property
    def sinks(self) -> list[int]:
        """Tasks with no successors (their completion ends the workflow)."""
        return [t.task_id for t in self.tasks if not t.successors]

    def validate_acyclic(self) -> None:
        """Raise ``ValueError`` if the dataflow graph has a cycle."""
        state = [0] * len(self.tasks)  # 0 unseen, 1 in stack, 2 done

        def visit(v: int) -> None:
            if state[v] == 1:
                raise ValueError(f"workflow {self.name} has a cycle at task {v}")
            if state[v] == 2:
                return
            state[v] = 1
            for s in self.tasks[v].successors:
                visit(s)
            state[v] = 2

        for t in self.tasks:
            visit(t.task_id)


def _task(tid: int, solver: str, scale: float) -> WorkflowTask:
    return WorkflowTask(
        task_id=tid,
        solver=solver,
        compute_s=CLASS_S_COMPUTE_S[solver] * scale,
        output_bytes=max(1_000, int(CLASS_S_BYTES[solver] * scale)),
    )


def helical_chain(rounds: int = 3, scale: float = 1.0) -> Workflow:
    """HC: a chain of BT -> SP -> LU repeated ``rounds`` times."""
    solvers = ["BT", "SP", "LU"] * rounds
    wf = Workflow("HC", [_task(i, s, scale) for i, s in enumerate(solvers)])
    for i in range(len(solvers) - 1):
        wf.add_edge(i, i + 1)
    return wf


def visualization_pipeline(width: int = 3, depth: int = 3, scale: float = 1.0) -> Workflow:
    """VP: ``width`` parallel BT -> MG -> FT pipelines; FT stages feed the
    next round's BT (visualization loop unrolled to a DAG of ``depth``)."""
    stage_solvers = ["BT", "MG", "FT"]
    tasks: list[WorkflowTask] = []
    grid: list[list[int]] = []
    tid = 0
    for d in range(depth):
        row = []
        for w in range(width):
            tasks.append(_task(tid, stage_solvers[d % 3], scale))
            row.append(tid)
            tid += 1
        grid.append(row)
    wf = Workflow("VP", tasks)
    for d in range(depth - 1):
        for w in range(width):
            wf.add_edge(grid[d][w], grid[d + 1][w])
        # Pipelines couple at stage boundaries (the visualization merge).
        wf.add_edge(grid[d][width - 1], grid[d + 1][0])
    return wf


def embarrassingly_distributed(width: int = 6, scale: float = 1.0) -> Workflow:
    """ED: ``width`` independent SP tasks fanning into one collector.

    GridNPB 3.0's fourth workflow (the paper's experiments use HC/VP/MB;
    ED is provided for completeness): no inter-task communication until
    the final gather, the opposite extreme from the Helical Chain.
    """
    tasks = [_task(i, "SP", scale) for i in range(width)]
    tasks.append(_task(width, "BT", scale))  # the collector/report task
    wf = Workflow("ED", tasks)
    for i in range(width):
        wf.add_edge(i, width)
    return wf


def mixed_bag(scale: float = 1.0, seed: int = 0) -> Workflow:
    """MB: irregular fan-out/fan-in of LU/MG/FT with uneven task sizes."""
    import numpy as np

    rng = np.random.default_rng(seed)
    solvers = ["LU", "MG", "FT", "LU", "MG", "FT", "LU", "MG", "FT"]
    # Uneven scaling is the point of Mixed Bag.
    factors = rng.uniform(0.5, 2.0, size=len(solvers))
    wf = Workflow("MB", [_task(i, s, scale * f) for i, (s, f) in enumerate(zip(solvers, factors))])
    # Layered irregular DAG: 3 layers of 3, dense-ish connections.
    layers = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
    for a, b in [(0, 3), (0, 4), (1, 4), (2, 4), (2, 5), (3, 6), (4, 6), (4, 7), (5, 8), (4, 8)]:
        wf.add_edge(a, b)
    del layers
    return wf


class GridNpbApp:
    """Execute a workflow's dataflow over the online layer.

    Tasks are placed round-robin on the given hosts (the paper's app nodes
    are assigned by the launcher). A task fires when all predecessor
    transfers complete, computes, then streams its output to successors.
    """

    def __init__(
        self,
        agent: Agent,
        hosts: list[int],
        workflow: Workflow,
        on_finish=None,
        name: str | None = None,
    ) -> None:
        if not hosts:
            raise ValueError("need at least one host")
        workflow.validate_acyclic()
        self.agent = agent
        self.workflow = workflow
        self.hosts = list(hosts)
        self.on_finish = on_finish
        self.stats = AppRunStats()
        self.placement = {
            t.task_id: self.hosts[t.task_id % len(self.hosts)] for t in workflow.tasks
        }
        label = name or workflow.name
        self.sockets = {
            t.task_id: WrapSocket(
                agent,
                self.placement[t.task_id],
                real_endpoint=f"{label}-task{t.task_id}@node{self.placement[t.task_id]}",
            )
            for t in workflow.tasks
        }
        self._inputs_pending = {
            t.task_id: len(t.predecessors) for t in workflow.tasks
        }
        self._tasks_remaining = len(workflow.tasks)

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Launch every source task at simulated time ``at``."""
        delay = max(0.0, at - self.agent.now)
        # Bound-method + args dispatch throughout: payloads stay
        # statically picklable for the future LP boundary (simlint SIM203).
        for tid in self.workflow.sources:
            self.agent.schedule(
                delay, self._run_task, node=self.placement[tid], args=(tid,)
            )

    def _run_task(self, tid: int) -> None:
        task = self.workflow.tasks[tid]
        self.agent.schedule(
            task.compute_s,
            self._task_computed,
            node=self.placement[tid],
            args=(tid,),
        )

    def _task_computed(self, tid: int) -> None:
        task = self.workflow.tasks[tid]
        self.stats.iterations_completed += 1
        self._tasks_remaining -= 1
        if not task.successors:
            if self._tasks_remaining == 0:
                self.stats.finished_at = self.agent.now
                if self.on_finish is not None:
                    self.on_finish(self.agent.now)
            return
        sock = self.sockets[tid]
        for succ in task.successors:
            dst = self.placement[succ]
            sock.connect_node(dst)
            self.stats.transfers += 1
            self.stats.bytes_sent += task.output_bytes
            # Receiver-side callback: the successor's readiness update and
            # eventual compute run on the LP owning the successor's host.
            sock.send(
                task.output_bytes,
                on_received=partial(self._input_arrived, succ),
            )

    def _input_arrived(self, tid: int, _t: float = 0.0) -> None:
        self._inputs_pending[tid] -= 1
        if self._inputs_pending[tid] == 0:
            self._run_task(tid)
