"""HTTP background traffic (paper Section 4.2).

"8,000 clients continuously sending HTTP file requests to 2,000 servers;
average time gap between two successive requests of a client is 5 seconds
and average file size is 50 KB." Each request is a small TCP upload
(the GET) followed by the server's TCP response of exponentially
distributed size; the client then thinks for an exponential gap and
repeats.

Implementation notes for parallel execution:

- every client owns an independent RNG stream, so behavior is identical
  whatever order the engine interleaves clients in (sequential kernel vs
  per-LP windows);
- the server's response starts when the request *arrives at the server*
  (receiver-side callback) and the client's next request is scheduled
  when the response *arrives at the client* — every action executes on
  the LP that owns the acting node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulator import NetworkSimulator
from ..tcp import start_transfer

__all__ = ["HttpTraffic", "HttpStats"]


@dataclass
class HttpStats:
    requests_started: int = 0
    responses_completed: int = 0
    bytes_served: int = 0
    response_times: list[float] = field(default_factory=list)

    @property
    def mean_response_time(self) -> float:
        """Mean request->response completion time (0 when none completed)."""
        return float(np.mean(self.response_times)) if self.response_times else 0.0


class HttpTraffic:
    """Closed-loop web workload between client and server host sets.

    Parameters mirror the paper's defaults; ``stop_at`` freezes the loop
    (no new requests are issued at or after that simulated time).
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        clients: list[int],
        servers: list[int],
        seed: int = 0,
        mean_gap_s: float = 5.0,
        mean_file_bytes: float = 50_000.0,
        request_bytes: int = 300,
        min_file_bytes: int = 1_000,
        stop_at: float | None = None,
    ) -> None:
        if not clients or not servers:
            raise ValueError("need at least one client and one server")
        self.sim = sim
        self.clients = list(clients)
        self.servers = list(servers)
        # Independent per-client streams: interleaving-order invariant.
        root = np.random.SeedSequence(seed)
        self.rngs = {
            c: np.random.default_rng(s)
            for c, s in zip(self.clients, root.spawn(len(self.clients)))
        }
        self.mean_gap_s = mean_gap_s
        self.mean_file_bytes = mean_file_bytes
        self.request_bytes = request_bytes
        self.min_file_bytes = min_file_bytes
        self.stop_at = stop_at
        self.stats = HttpStats()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every client's first request (staggered exponentially)."""
        for client in self.clients:
            self._schedule_next(client)

    def _schedule_next(self, client: int) -> None:
        # The first request of each client samples a full gap too, which
        # staggers the start and avoids a synchronized burst at t=0.
        gap = float(self.rngs[client].exponential(self.mean_gap_s))
        when = self.sim.now + gap
        if self.stop_at is not None and when >= self.stop_at:
            return
        # Closure-free dispatch: a bound method plus args tuple pickles
        # across the future LP boundary; a capturing lambda never will
        # (simlint SIM203).
        self.sim.sched.schedule_at(when, self._issue, node=client, args=(client,))

    def _issue(self, client: int) -> None:
        rng = self.rngs[client]
        server = self.servers[int(rng.integers(len(self.servers)))]
        size = max(self.min_file_bytes, int(rng.exponential(self.mean_file_bytes)))
        started = self.sim.now
        self.stats.requests_started += 1

        def _response_received(t: float, c=client, s=size, t0=started) -> None:
            # Executes at the client: record stats, think, request again.
            self.stats.responses_completed += 1
            self.stats.bytes_served += s
            self.stats.response_times.append(t - t0)
            self._schedule_next(c)

        def _request_received(_t: float, c=client, sv=server, s=size) -> None:
            # Executes at the server: stream the file back.
            start_transfer(self.sim, sv, c, s, on_received=_response_received)

        start_transfer(
            self.sim, client, server, self.request_bytes, on_received=_request_received
        )
