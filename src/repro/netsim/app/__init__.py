"""Traffic applications: HTTP background, CBR, and the live-app models
(ScaLapack, GridNPB) run through the online layer."""

from .cbr import CbrStream
from .collectives import (
    CollectiveGroup,
    all_to_all,
    broadcast,
    gather,
    reduce_tree,
    ring_exchange,
)
from .gridnpb import (
    GridNpbApp,
    Workflow,
    WorkflowTask,
    embarrassingly_distributed,
    helical_chain,
    mixed_bag,
    visualization_pipeline,
)
from .onoff import ParetoOnOffStream
from .http import HttpStats, HttpTraffic
from .scalapack import AppRunStats, ScaLapackApp

__all__ = [
    "HttpTraffic",
    "HttpStats",
    "CbrStream",
    "ScaLapackApp",
    "AppRunStats",
    "GridNpbApp",
    "Workflow",
    "WorkflowTask",
    "helical_chain",
    "visualization_pipeline",
    "mixed_bag",
    "embarrassingly_distributed",
    "ParetoOnOffStream",
    "CollectiveGroup",
    "broadcast",
    "gather",
    "all_to_all",
    "ring_exchange",
    "reduce_tree",
]
