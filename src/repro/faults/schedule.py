"""Deterministic fault schedules: seeded scenarios -> timed fault events.

A :class:`FaultSchedule` is a *plan*: a sorted list of
:class:`FaultEvent` records saying what breaks (and recovers) when.
Plans come from two sources:

- :meth:`FaultSchedule.from_events` — an explicit, hand-written list
  (tests and the ``--spec`` CLI path);
- :meth:`FaultSchedule.from_scenario` — a seeded draw from a
  :class:`FaultScenario` parameterization against a concrete network.
  All random choices (which links flap, which routers crash, when)
  come from one ``numpy`` Generator consumed in a fixed order, so the
  same ``(scenario, network, seed)`` triple always yields the same
  schedule — :meth:`FaultSchedule.digest` is the checkable witness.

The schedule itself touches nothing; :class:`repro.faults.injector.
FaultInjector` turns each event into an ordinary simulation event.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, fields

import numpy as np

from ..topology.models import Network, NodeKind

__all__ = ["FaultKind", "FaultEvent", "FaultScenario", "FaultSchedule", "BUILTIN_SCENARIOS"]


class FaultKind(enum.Enum):
    """What a single fault event does."""

    LINK_DOWN = "link.down"
    LINK_UP = "link.up"
    ROUTER_DOWN = "router.down"
    ROUTER_UP = "router.up"
    LOSS_BURST_START = "loss.start"
    LOSS_BURST_END = "loss.end"
    LP_SLOWDOWN_START = "lp.slow.start"
    LP_SLOWDOWN_END = "lp.slow.end"
    BGP_SESSION_RESET = "bgp.reset"


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault transition.

    ``target`` identifies what the event applies to (a link id, a node
    id, an LP index, or an AS pair); ``params`` carries kind-specific
    numbers as a sorted tuple of ``(name, value)`` pairs — tuples, not a
    dict, so the event is hashable and its repr is canonical.
    """

    time: float
    kind: FaultKind
    target: tuple[int, ...] = ()
    params: tuple[tuple[str, float], ...] = ()

    def param(self, name: str, default: float = 0.0) -> float:
        """The value of parameter ``name`` (``default`` if absent)."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def canonical(self) -> str:
        """Stable one-line text form (digest and trace material)."""
        params = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.time!r}|{self.kind.value}|{self.target}|{params}"


def _params(**kwargs: float) -> tuple[tuple[str, float], ...]:
    return tuple(sorted((k, float(v)) for k, v in kwargs.items()))


@dataclass(frozen=True)
class FaultScenario:
    """Parameterized fault mix, materialized against a network by seed.

    All counts are totals over the run; all times in simulated seconds.
    Faults are drawn inside ``[start_s, end_s]`` so the run has a clean
    warm-up and a recovery tail before the horizon.
    """

    name: str = "custom"
    start_s: float = 1.0
    end_s: float = 8.0
    #: link flapping: each flap is `flap_cycles` down/up cycles
    link_flaps: int = 0
    flap_down_s: float = 0.5
    flap_cycles: int = 1
    #: router crash/restart pairs
    router_restarts: int = 0
    restart_down_s: float = 1.0
    #: packet loss/corruption bursts on a link
    loss_bursts: int = 0
    loss_prob: float = 0.2
    corrupt_prob: float = 0.0
    burst_s: float = 1.0
    #: LP straggler slowdown spans (cost-model faults)
    lp_slowdowns: int = 0
    slowdown_factor: float = 3.0
    slowdown_s: float = 2.0
    num_lps: int = 4
    #: explicit BGP session resets (beyond those implied by crashes)
    bgp_resets: int = 0
    bgp_down_s: float = 2.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("need start_s < end_s")
        if not 0.0 <= self.loss_prob <= 1.0 or not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError("loss_prob and corrupt_prob must be probabilities")
        if self.slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1")

    def to_dict(self) -> dict:
        """Plain-dict form (JSON specs and reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultScenario":
        """Build from a plain dict, rejecting unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
        return cls(**spec)


class FaultSchedule:
    """An immutable, time-sorted plan of fault events."""

    def __init__(self, events: list[FaultEvent], name: str = "custom", seed: int = 0) -> None:
        self.events = sorted(events, key=lambda e: (e.time, e.kind.value, e.target))
        self.name = name
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def digest(self) -> str:
        """SHA-256 over the canonical event list — the determinism witness.

        Two schedules with the same digest inject byte-identical fault
        sequences; the determinism tests compare digests across queue
        backends and repeated runs.
        """
        h = hashlib.sha256()
        for ev in self.events:
            h.update(ev.canonical().encode())
            h.update(b";")
        return h.hexdigest()

    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: list[FaultEvent], name: str = "explicit") -> "FaultSchedule":
        """Wrap an explicit event list (tests, ``--spec`` files)."""
        return cls(list(events), name=name)

    @classmethod
    def from_scenario(
        cls, scenario: FaultScenario, net: Network, seed: int = 0
    ) -> "FaultSchedule":
        """Materialize ``scenario`` against ``net`` with a seeded draw.

        Candidate pools are built deterministically from the network
        (sorted ids), and every random choice consumes the single
        Generator in source order — same inputs, same schedule.
        """
        rng = np.random.default_rng(0xFA017C0D ^ seed)
        events: list[FaultEvent] = []
        span = scenario.end_s - scenario.start_s

        def draw_time() -> float:
            return float(scenario.start_s + rng.random() * span)

        def pick(pool: list[int]) -> int:
            return pool[int(rng.integers(len(pool)))]

        # Flap pool: intra-AS router-router links keep OSPF busy without
        # partitioning hosts; fall back to any link on tiny topologies.
        is_router = [n.kind is NodeKind.ROUTER for n in net.nodes]
        flap_pool = [
            l.link_id
            for l in net.links
            if is_router[l.u] and is_router[l.v]
            and net.nodes[l.u].as_id == net.nodes[l.v].as_id
        ]
        if not flap_pool:
            flap_pool = [l.link_id for l in net.links]
        for _ in range(scenario.link_flaps):
            link_id = pick(flap_pool)
            t = draw_time()
            for cycle in range(scenario.flap_cycles):
                down = t + cycle * 2.0 * scenario.flap_down_s
                events.append(FaultEvent(down, FaultKind.LINK_DOWN, (link_id,)))
                events.append(
                    FaultEvent(down + scenario.flap_down_s, FaultKind.LINK_UP, (link_id,))
                )

        # Crash pool: routers with an alternative path (degree >= 2).
        crash_pool = [
            n.node_id
            for n in net.nodes
            if n.kind is NodeKind.ROUTER and net.degree(n.node_id) >= 2
        ]
        if not crash_pool:
            crash_pool = [n.node_id for n in net.nodes if n.kind is NodeKind.ROUTER]
        for _ in range(scenario.router_restarts):
            node = pick(crash_pool)
            t = draw_time()
            down_for = scenario.restart_down_s
            events.append(
                FaultEvent(t, FaultKind.ROUTER_DOWN, (node,), _params(down_for=down_for))
            )
            events.append(FaultEvent(t + down_for, FaultKind.ROUTER_UP, (node,)))

        burst_pool = [l.link_id for l in net.links]
        for _ in range(scenario.loss_bursts):
            link_id = pick(burst_pool)
            t = draw_time()
            events.append(
                FaultEvent(
                    t,
                    FaultKind.LOSS_BURST_START,
                    (link_id,),
                    _params(
                        loss_prob=scenario.loss_prob, corrupt_prob=scenario.corrupt_prob
                    ),
                )
            )
            events.append(
                FaultEvent(t + scenario.burst_s, FaultKind.LOSS_BURST_END, (link_id,))
            )

        for _ in range(scenario.lp_slowdowns):
            lp = int(rng.integers(max(1, scenario.num_lps)))
            t = draw_time()
            events.append(
                FaultEvent(
                    t,
                    FaultKind.LP_SLOWDOWN_START,
                    (lp,),
                    _params(factor=scenario.slowdown_factor),
                )
            )
            events.append(
                FaultEvent(t + scenario.slowdown_s, FaultKind.LP_SLOWDOWN_END, (lp,))
            )

        # BGP pool: every relationship edge, from the sorted AS domains.
        bgp_pairs: list[tuple[int, int]] = []
        for as_id in sorted(net.as_domains):
            for nbr in sorted(net.as_domains[as_id].neighbor_ases):
                if as_id < nbr:
                    bgp_pairs.append((as_id, nbr))
        for _ in range(scenario.bgp_resets):
            if not bgp_pairs:
                break
            a, b = bgp_pairs[int(rng.integers(len(bgp_pairs)))]
            events.append(
                FaultEvent(
                    draw_time(),
                    FaultKind.BGP_SESSION_RESET,
                    (a, b),
                    _params(down_for=scenario.bgp_down_s),
                )
            )

        return cls(events, name=scenario.name, seed=seed)


#: Named scenario presets the chaos CLI exposes.
BUILTIN_SCENARIOS: dict[str, FaultScenario] = {
    "link-flap": FaultScenario(
        name="link-flap", link_flaps=2, flap_cycles=2, flap_down_s=0.4
    ),
    "router-restart": FaultScenario(
        name="router-restart", router_restarts=2, restart_down_s=1.0
    ),
    "loss-burst": FaultScenario(
        name="loss-burst", loss_bursts=2, loss_prob=0.25, corrupt_prob=0.05, burst_s=1.0
    ),
    "chaos-mixed": FaultScenario(
        name="chaos-mixed",
        link_flaps=1,
        flap_cycles=2,
        router_restarts=1,
        loss_bursts=1,
        lp_slowdowns=1,
        bgp_resets=1,
    ),
}
