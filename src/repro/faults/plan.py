"""Deterministic process-level fault plans for the mp backend.

Where :class:`repro.faults.schedule.FaultSchedule` breaks things *inside*
the simulated network (links, routers, BGP sessions), a
:class:`FaultPlan` breaks the *simulator itself*: it tells worker
processes to SIGKILL themselves, hang, or drop their controller pipe at
chosen barrier windows. Plans are seeded and sorted with a sha256
digest, exactly like fault schedules, so a chaos run's process faults
are as replayable as its network faults — the recovery differential
suite depends on re-running the same plan and getting the same crash
sequence every time.

Faults target ``(window, shard, incarnation)``: a fault fires only in
the incarnation it names, so a plan can kill incarnation 0 at window 3
and incarnation 1 at window 7 to exercise repeated respawns, or kill
every incarnation up to ``max_respawns`` to force the degraded-adoption
rung of the recovery ladder.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["ProcessFaultKind", "ProcessFault", "FaultPlan"]


class ProcessFaultKind(enum.Enum):
    """How a worker process fails."""

    #: The worker SIGKILLs itself — no cleanup, no exit handler, the
    #: hardest possible crash.
    SIGKILL = "proc.sigkill"
    #: The worker stops responding but stays alive; the controller's
    #: ``window_timeout_s`` escalation must declare it dead.
    HANG = "proc.hang"
    #: The worker closes its controller pipe then exits nonzero —
    #: surfaces as EOF on the controller side.
    PIPE_DROP = "proc.pipe_drop"


@dataclass(frozen=True)
class ProcessFault:
    """One planned worker-process failure.

    ``after_send`` selects the failure point within the window:
    ``False`` fires at the start of the window (before the worker
    executes or reports it), ``True`` fires after the worker has sent
    its window message but before it receives mail — exercising the
    controller's partially-collected-barrier recovery path.
    """

    window: int
    shard: int
    kind: ProcessFaultKind
    incarnation: int = 0
    after_send: bool = False

    def canonical(self) -> str:
        """Stable one-line text form (digest and trace material)."""
        return (
            f"{self.window}|{self.shard}|{self.kind.value}"
            f"|{self.incarnation}|{int(self.after_send)}"
        )


class FaultPlan:
    """An immutable, sorted plan of process-level faults."""

    def __init__(self, faults: list[ProcessFault], name: str = "custom", seed: int = 0) -> None:
        self.faults = sorted(
            faults,
            key=lambda f: (f.window, f.shard, f.incarnation, f.kind.value),
        )
        self.name = name
        self.seed = seed

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def digest(self) -> str:
        """SHA-256 over the canonical fault list — the determinism witness."""
        h = hashlib.sha256()
        for pf in self.faults:
            h.update(pf.canonical().encode())
            h.update(b";")
        return h.hexdigest()

    def for_shard(self, shard: int) -> list[ProcessFault]:
        """The faults targeting one shard, in plan order."""
        return [pf for pf in self.faults if pf.shard == shard]

    # ------------------------------------------------------------------
    @classmethod
    def from_faults(cls, faults: list[ProcessFault], name: str = "explicit") -> "FaultPlan":
        """Wrap an explicit fault list (tests, chaos CLI)."""
        return cls(list(faults), name=name)

    @classmethod
    def random_kills(
        cls,
        num_windows: int,
        procs: int,
        kills: int = 1,
        seed: int = 0,
        kind: ProcessFaultKind = ProcessFaultKind.SIGKILL,
    ) -> "FaultPlan":
        """A seeded draw of ``kills`` worker crashes at random windows.

        Shard 0 is never targeted (it owns the replicated control LP, a
        documented boundary of the degradation ladder), and each drawn
        ``(window, shard)`` pair is distinct. Every choice consumes the
        single Generator in source order — same inputs, same plan.

        Repeated kills of the same shard are assigned increasing
        incarnations in window order: the first kill fires on the
        original process, the second on its respawn, and so on —
        otherwise every kill after the first would name an incarnation
        that is already dead and never fire.
        """
        if procs < 2:
            return cls([], name="random-kills", seed=seed)
        # Distinct xor base from the network-fault stream in
        # schedule.py (0xFA017C0D): process kills and simulated-network
        # faults must never draw from aliased generators.
        rng = np.random.default_rng(0xD1EDBAD ^ seed)
        chosen: set[tuple[int, int]] = set()
        drawn: list[tuple[int, int]] = []
        for _ in range(kills):
            for _attempt in range(64):
                window = int(rng.integers(num_windows))
                shard = 1 + int(rng.integers(procs - 1))
                if (window, shard) not in chosen:
                    chosen.add((window, shard))
                    drawn.append((window, shard))
                    break
        per_shard: dict[int, int] = {}
        faults: list[ProcessFault] = []
        for window, shard in sorted(drawn):
            incarnation = per_shard.get(shard, 0)
            per_shard[shard] = incarnation + 1
            faults.append(ProcessFault(window, shard, kind, incarnation))
        return cls(faults, name="random-kills", seed=seed)
