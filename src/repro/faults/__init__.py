"""Deterministic fault injection and recovery (``repro.faults``).

Seeded, replayable chaos for the simulated network: link flaps, router
crash/restart, loss and corruption bursts, LP straggler slowdowns, and
BGP session resets — injected as ordinary engine events, recovered by
the routing layers (OSPF re-convergence, BGP withdrawal and backoff
re-establishment) and the transport layer (TCP retransmit). Off by
default: a run without a schedule is bit-identical to one built before
this package existed.
"""

from .injector import FaultCounts, FaultInjector
from .plan import FaultPlan, ProcessFault, ProcessFaultKind
from .schedule import (
    BUILTIN_SCENARIOS,
    FaultEvent,
    FaultKind,
    FaultScenario,
    FaultSchedule,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "FaultCounts",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultScenario",
    "FaultSchedule",
    "ProcessFault",
    "ProcessFaultKind",
]
