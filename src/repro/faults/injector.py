"""Fault injector: turns a schedule into simulation events and recovery.

The injector is the only component that *mutates* anything: each
:class:`~repro.faults.schedule.FaultEvent` is scheduled as an ordinary
engine event (``node=-1``, like other control-plane work), and applying
it drives the existing machinery —

- link events toggle :class:`~repro.netsim.link.LinkRuntime` failure
  state **and** feed the forwarding plane so OSPF re-converges
  (:meth:`ForwardingPlane.set_link_state`);
- router events black-hole the node in the simulator, re-converge OSPF
  around it, and reset the BGP sessions of crashed border routers;
- loss/corruption bursts set the per-link fault probabilities (drawn
  from the link's dedicated fault stream, never the RED stream);
- LP slowdowns record straggler spans the cost model consumes via
  ``busy_multipliers``;
- BGP resets go to the :class:`~repro.routing.bgp.session.
  BgpSessionManager`, whose transitions come back through
  :meth:`FaultInjector._on_session_change` into the trace.

Everything lands in the ``faults`` trace channel
(:meth:`repro.obs.trace.TraceBuffer.fault`) and the ``faults.*``
instruments, so a chaos run's story is replayable from the trace alone.
With an empty schedule the injector schedules nothing and touches
nothing — the no-fault bit-identity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.simulator import NetworkSimulator, Scheduler
from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..obs.trace import get_tracer
from ..routing.bgp.session import BgpSessionManager
from ..routing.fib import ForwardingPlane
from .schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultCounts", "FaultInjector"]


@dataclass
class FaultCounts:
    """What the injector actually applied (report material)."""

    injected: int = 0
    link_transitions: int = 0
    router_transitions: int = 0
    loss_transitions: int = 0
    lp_transitions: int = 0
    bgp_resets: int = 0
    bgp_reestablished: int = 0
    bgp_gave_up: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict."""
        return {
            "injected": self.injected,
            "link_transitions": self.link_transitions,
            "router_transitions": self.router_transitions,
            "loss_transitions": self.loss_transitions,
            "lp_transitions": self.lp_transitions,
            "bgp_resets": self.bgp_resets,
            "bgp_reestablished": self.bgp_reestablished,
            "bgp_gave_up": self.bgp_gave_up,
        }


class FaultInjector:
    """Apply a :class:`FaultSchedule` to a running simulation.

    Parameters
    ----------
    sim, fib:
        The packet simulator and its forwarding plane.
    schedule:
        The fault plan; an empty schedule makes the injector inert.
    sessions:
        The BGP session manager for multi-AS networks (``None`` for
        single-AS runs — BGP fault kinds are then ignored with a trace
        note rather than an exception).
    registry:
        The instrument registry to record ``faults.*`` counters into;
        defaults to the process-global one. Replica (non-control) shards
        of the multi-process backend pass a private disabled registry so
        their replayed fault applications are not double-counted when
        worker snapshots merge (:mod:`repro.obs.distributed`).
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        fib: ForwardingPlane,
        schedule: FaultSchedule,
        *,
        sessions: BgpSessionManager | None = None,
        registry=None,
    ) -> None:
        self.sim = sim
        self.fib = fib
        self.schedule = schedule
        self.sessions = sessions
        self.counts = FaultCounts()
        self._sched: Scheduler | None = None
        #: finalized LP straggler spans: (lp, start_s, end_s, factor)
        self.slowdown_spans: list[tuple[int, float, float, float]] = []
        self._open_slowdowns: dict[int, tuple[float, float]] = {}
        #: links/nodes the schedule left down at end of run (diagnostics)
        self.links_down: set[int] = set()
        self.nodes_down: set[int] = set()

        reg = registry if registry is not None else get_registry()
        self._obs = reg
        self._obs_injected = reg.counter(obs_names.FAULTS_INJECTED)
        self._obs_link = reg.counter(obs_names.FAULTS_LINK_TRANSITIONS)
        self._obs_router = reg.counter(obs_names.FAULTS_ROUTER_TRANSITIONS)
        self._obs_invalidations = reg.counter(obs_names.FAULTS_ROUTE_INVALIDATIONS)
        self._obs_bgp_resets = reg.counter(obs_names.FAULTS_BGP_SESSION_RESETS)
        self._obs_bgp_reest = reg.counter(obs_names.FAULTS_BGP_REESTABLISHED)
        self._trace = get_tracer()

        if sessions is not None:
            sessions.on_change = self._on_session_change
        # Crashed border routers take their BGP sessions with them:
        # precompute router -> AS pairs once from the domain border maps.
        self._border_sessions: dict[int, list[tuple[int, int]]] = {}
        if sessions is not None:
            for as_id in sorted(sim.net.as_domains):
                dom = sim.net.as_domains[as_id]
                for nbr, pairs in sorted(dom.border_links.items()):
                    key = (min(as_id, nbr), max(as_id, nbr))
                    if key not in sessions.sessions:
                        continue
                    for local, _remote in pairs:
                        rows = self._border_sessions.setdefault(local, [])
                        if key not in rows:
                            rows.append(key)

    # ------------------------------------------------------------------
    def install(self, scheduler: Scheduler) -> None:
        """Schedule every fault event on ``scheduler`` (idempotent per call)."""
        self._sched = scheduler
        for fe in self.schedule:
            scheduler.schedule_at(fe.time, self._apply, node=-1, args=(fe,))

    @property
    def now(self) -> float:
        """Current simulated time of the scheduler the faults run on."""
        assert self._sched is not None, "install() before applying faults"
        return self._sched.current_time

    # ------------------------------------------------------------------
    def _apply(self, fe: FaultEvent) -> None:
        """Apply one fault event (scheduled event callback)."""
        self.counts.injected += 1
        self._obs_injected.inc()
        kind = fe.kind
        if kind is FaultKind.LINK_DOWN or kind is FaultKind.LINK_UP:
            self._apply_link(fe, up=kind is FaultKind.LINK_UP)
        elif kind is FaultKind.ROUTER_DOWN or kind is FaultKind.ROUTER_UP:
            self._apply_router(fe, up=kind is FaultKind.ROUTER_UP)
        elif kind is FaultKind.LOSS_BURST_START or kind is FaultKind.LOSS_BURST_END:
            self._apply_loss(fe, start=kind is FaultKind.LOSS_BURST_START)
        elif kind is FaultKind.LP_SLOWDOWN_START or kind is FaultKind.LP_SLOWDOWN_END:
            self._apply_slowdown(fe, start=kind is FaultKind.LP_SLOWDOWN_START)
        elif kind is FaultKind.BGP_SESSION_RESET:
            self._apply_bgp_reset(fe)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown fault kind {kind!r}")

    def _apply_link(self, fe: FaultEvent, up: bool) -> None:
        link_id = fe.target[0]
        if up:
            self.sim.restore_link(link_id)
            self.links_down.discard(link_id)
        else:
            self.sim.fail_link(link_id)
            self.links_down.add(link_id)
        self.fib.set_link_state(link_id, up)
        self.counts.link_transitions += 1
        self._obs_link.inc()
        self._obs_invalidations.inc()
        self._trace.fault(
            self.now, "link.up" if up else "link.down",
            "recover" if up else "inject", (link_id,),
        )

    def _apply_router(self, fe: FaultEvent, up: bool) -> None:
        node = fe.target[0]
        if up:
            self.sim.set_node_up(node)
            self.nodes_down.discard(node)
        else:
            self.sim.set_node_down(node)
            self.nodes_down.add(node)
        self.fib.set_node_state(node, up)
        self.counts.router_transitions += 1
        self._obs_router.inc()
        self._obs_invalidations.inc()
        self._trace.fault(
            self.now, "router.up" if up else "router.down",
            "recover" if up else "inject", (node,),
        )
        if not up and self.sessions is not None:
            # The crash kills the router's BGP sessions; they come back
            # by retry after the router restarts.
            down_for = fe.param("down_for", 1.0)
            for a, b in self._border_sessions.get(node, ()):
                self.sessions.reset(a, b, down_for)

    def _apply_loss(self, fe: FaultEvent, start: bool) -> None:
        link_id = fe.target[0]
        lr = self.sim.links[link_id]
        if start:
            lr.loss_prob = fe.param("loss_prob", 0.0)
            lr.corrupt_prob = fe.param("corrupt_prob", 0.0)
        else:
            lr.loss_prob = 0.0
            lr.corrupt_prob = 0.0
        self.counts.loss_transitions += 1
        self._trace.fault(
            self.now, "loss.start" if start else "loss.end",
            "inject" if start else "recover", (link_id,),
            loss_prob=lr.loss_prob, corrupt_prob=lr.corrupt_prob,
        )

    def _apply_slowdown(self, fe: FaultEvent, start: bool) -> None:
        lp = fe.target[0]
        if start:
            self._open_slowdowns[lp] = (self.now, fe.param("factor", 1.0))
        else:
            opened = self._open_slowdowns.pop(lp, None)
            if opened is not None:
                t0, factor = opened
                self.slowdown_spans.append((lp, t0, self.now, factor))
        self.counts.lp_transitions += 1
        self._trace.fault(
            self.now, "lp.slow" if start else "lp.normal",
            "inject" if start else "recover", (lp,),
            factor=fe.param("factor", 1.0) if start else 1.0,
        )

    def _apply_bgp_reset(self, fe: FaultEvent) -> None:
        if self.sessions is None:
            self._trace.fault(self.now, "bgp.reset.skipped", "inject", fe.target)
            return
        a, b = fe.target
        self.sessions.reset(a, b, fe.param("down_for", 1.0))

    # ------------------------------------------------------------------
    def _on_session_change(self, event: str, a: int, b: int, detail: dict) -> None:
        """Session-manager transition hook: trace + counters."""
        t = self.now if self._sched is not None else 0.0
        if event == "withdrawn":
            self.counts.bgp_resets += 1
            self._obs_bgp_resets.inc()
            self._trace.fault(t, "bgp.withdrawn", "inject", (a, b), **detail)
        elif event == "reestablished":
            self.counts.bgp_reestablished += 1
            self._obs_bgp_reest.inc()
            self.fib.flush_cache()
            self._trace.fault(t, "bgp.reestablished", "recover", (a, b), **detail)
        elif event == "retry":
            self._trace.fault(t, "bgp.retry", "recover", (a, b), **detail)
        elif event == "gave-up":
            self.counts.bgp_gave_up += 1
            self._trace.fault(t, "bgp.gave_up", "inject", (a, b), **detail)
        else:
            self._trace.fault(t, f"bgp.{event}", "inject", (a, b), **detail)
        if event == "withdrawn":
            self.fib.flush_cache()

    # ------------------------------------------------------------------
    def busy_multipliers(
        self, num_windows: int, num_lps: int, window_s: float, end_time: float
    ) -> np.ndarray:
        """``(windows, lps)`` straggler multipliers for the cost model.

        Each recorded slowdown span raises the multiplier of every
        window it overlaps to its factor (max-combined when spans
        overlap); spans still open at ``end_time`` extend to it.
        """
        out = np.ones((num_windows, num_lps), dtype=np.float64)
        spans = list(self.slowdown_spans)
        spans.extend(
            (lp, t0, end_time, factor)
            for lp, (t0, factor) in sorted(self._open_slowdowns.items())
        )
        for lp, t0, t1, factor in spans:
            if lp >= num_lps or t1 <= 0 or window_s <= 0:
                continue
            w0 = max(0, int(t0 / window_s))
            w1 = min(num_windows, int(np.ceil(min(t1, end_time) / window_s)))
            if w1 > w0:
                out[w0:w1, lp] = np.maximum(out[w0:w1, lp], factor)
        return out
