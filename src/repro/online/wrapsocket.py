"""WrapSocket: the socket-level interception library.

Application processes in MicroGrid link against WrapSocket, which
intercepts socket calls and redirects the streams through the Agent into
the network simulation — no application modification. Our synthetic
applications use the same API surface: ``connect`` by virtual IP,
``send`` with a completion callback, ``listen`` for incoming streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .agent import Agent
from .ipmap import VirtualIpMapper

__all__ = ["WrapSocket", "SocketClosed"]


class SocketClosed(RuntimeError):
    """Operation on a closed WrapSocket."""


@dataclass
class _Listener:
    node: int
    on_stream: Callable[[int, int, float], None]  # (src_node, nbytes, t)


class WrapSocket:
    """A virtual socket bound to one simulated host.

    Parameters
    ----------
    agent:
        The live-traffic gateway.
    node:
        The simulated host this process runs on.
    real_endpoint:
        Identifier of the live process (registered with the IP mapper;
        auto-generated when omitted).
    """

    _listeners: dict[int, _Listener] = {}

    def __init__(self, agent: Agent, node: int, real_endpoint: str | None = None) -> None:
        self.agent = agent
        self.node = node
        endpoint = real_endpoint if real_endpoint is not None else f"proc@node{node}"
        try:
            self.virtual_ip = agent.attach_process(endpoint, node)
        except ValueError:
            # The process re-opens sockets on the same node: reuse mapping.
            self.virtual_ip = VirtualIpMapper.virtual_ip(node)
        self._open = True
        self._peer: int | None = None

    # ------------------------------------------------------------------
    def connect(self, peer_virtual_ip: str) -> None:
        """Resolve the peer's virtual IP to its simulated host."""
        self._check_open()
        self._peer = VirtualIpMapper.node_of(peer_virtual_ip)

    def connect_node(self, node: int) -> None:
        """Connect directly by simulated node id (bypasses IP resolution)."""
        self._check_open()
        self._peer = node

    def send(
        self,
        nbytes: int,
        on_complete: Callable[[float], None] | None = None,
        on_received: Callable[[float], None] | None = None,
    ) -> None:
        """Stream ``nbytes`` to the connected peer via the simulation.

        ``on_complete(t)`` fires at the sender when the peer has
        acknowledged the full payload; ``on_received(t)`` and the peer's
        listener callback (if any) fire when the last byte *arrives* — at
        the peer, so that under the parallel engine the peer's reaction
        executes on the peer's logical process.
        """
        self._check_open()
        if self._peer is None:
            raise SocketClosed("socket is not connected")
        peer = self._peer
        src = self.node

        def _received(t: float) -> None:
            listener = WrapSocket._listeners.get(peer)
            if listener is not None:
                listener.on_stream(src, nbytes, t)
            if on_received is not None:
                on_received(t)

        self.agent.transfer(src, peer, nbytes, on_complete, on_received=_received)

    def listen(self, on_stream: Callable[[int, int, float], None]) -> None:
        """Register a stream-received callback for this node."""
        self._check_open()
        WrapSocket._listeners[self.node] = _Listener(self.node, on_stream)

    def close(self) -> None:
        """Close the socket and remove its listener registration."""
        self._open = False
        WrapSocket._listeners.pop(self.node, None)

    def _check_open(self) -> None:
        if not self._open:
            raise SocketClosed("socket is closed")

    # ------------------------------------------------------------------
    @classmethod
    def reset_listeners(cls) -> None:
        """Clear class-level listener state (between simulations/tests)."""
        cls._listeners.clear()
