"""WrapSocket: the socket-level interception library.

Application processes in MicroGrid link against WrapSocket, which
intercepts socket calls and redirects the streams through the Agent into
the network simulation — no application modification. Our synthetic
applications use the same API surface: ``connect`` by virtual IP,
``send`` with a completion callback, ``listen`` for incoming streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .agent import Agent
from .errors import OnlineTimeoutError
from .ipmap import VirtualIpMapper

__all__ = ["WrapSocket", "SocketClosed"]

#: Retried sends cap their per-attempt timeout at this multiple of the
#: caller's ``timeout_s`` (bounded exponential backoff).
MAX_TIMEOUT_FACTOR = 8.0
#: Deterministic jitter fraction added to each backed-off timeout so
#: concurrent retries don't resynchronize.
TIMEOUT_JITTER = 0.1


class SocketClosed(RuntimeError):
    """Operation on a closed WrapSocket."""


@dataclass
class _Listener:
    node: int
    on_stream: Callable[[int, int, float], None]  # (src_node, nbytes, t)


class WrapSocket:
    """A virtual socket bound to one simulated host.

    Parameters
    ----------
    agent:
        The live-traffic gateway.
    node:
        The simulated host this process runs on.
    real_endpoint:
        Identifier of the live process (registered with the IP mapper;
        auto-generated when omitted).
    """

    _listeners: dict[int, _Listener] = {}

    def __init__(self, agent: Agent, node: int, real_endpoint: str | None = None) -> None:
        self.agent = agent
        self.node = node
        endpoint = real_endpoint if real_endpoint is not None else f"proc@node{node}"
        try:
            self.virtual_ip = agent.attach_process(endpoint, node)
        except ValueError:
            # The process re-opens sockets on the same node: reuse mapping.
            self.virtual_ip = VirtualIpMapper.virtual_ip(node)
        self._open = True
        self._peer: int | None = None
        # Lazily created per-node stream for retry-timeout jitter; same
        # node, same jitter sequence (deterministic across runs).
        self._timeout_rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    def connect(self, peer_virtual_ip: str) -> None:
        """Resolve the peer's virtual IP to its simulated host."""
        self._check_open()
        self._peer = VirtualIpMapper.node_of(peer_virtual_ip)

    def connect_node(self, node: int) -> None:
        """Connect directly by simulated node id (bypasses IP resolution)."""
        self._check_open()
        self._peer = node

    def send(
        self,
        nbytes: int,
        on_complete: Callable[[float], None] | None = None,
        on_received: Callable[[float], None] | None = None,
        *,
        timeout_s: float | None = None,
        max_retries: int = 3,
        on_timeout: Callable[[OnlineTimeoutError], None] | None = None,
    ) -> None:
        """Stream ``nbytes`` to the connected peer via the simulation.

        ``on_complete(t)`` fires at the sender when the peer has
        acknowledged the full payload; ``on_received(t)`` and the peer's
        listener callback (if any) fire when the last byte *arrives* — at
        the peer, so that under the parallel engine the peer's reaction
        executes on the peer's logical process.

        With ``timeout_s`` set, a watchdog guards each attempt: if no
        acknowledgment arrives in time, the stream is re-sent with the
        timeout doubled (bounded at ``MAX_TIMEOUT_FACTOR * timeout_s``,
        plus deterministic jitter) up to ``max_retries`` times. On
        exhaustion an :class:`OnlineTimeoutError` goes to ``on_timeout``
        when given, else is raised from the watchdog event.
        ``on_complete`` fires at most once even if a timed-out attempt's
        acknowledgment arrives late; the receiver may see duplicate
        streams, exactly as with application-level retransmission.
        Without ``timeout_s`` the behavior is unchanged.
        """
        self._check_open()
        if self._peer is None:
            raise SocketClosed("socket is not connected")
        peer = self._peer
        src = self.node

        def _received(t: float) -> None:
            listener = WrapSocket._listeners.get(peer)
            if listener is not None:
                listener.on_stream(src, nbytes, t)
            if on_received is not None:
                on_received(t)

        if timeout_s is None:
            self.agent.transfer(src, peer, nbytes, on_complete, on_received=_received)
            return
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self._send_guarded(
            nbytes, on_complete, _received, timeout_s, max_retries, on_timeout
        )

    def _send_guarded(
        self,
        nbytes: int,
        on_complete: Callable[[float], None] | None,
        received: Callable[[float], None],
        timeout_s: float,
        max_retries: int,
        on_timeout: Callable[[OnlineTimeoutError], None] | None,
    ) -> None:
        """Issue a transfer under a retry-with-backoff watchdog."""
        _GuardedSend(
            self, nbytes, on_complete, received, timeout_s, max_retries, on_timeout
        ).attempt(timeout_s)

    def _backoff_timeout(self, base_s: float, attempt: int) -> float:
        rng = self._timeout_rng
        if rng is None:
            rng = self._timeout_rng = np.random.default_rng(0x50C7E7 ^ self.node)
        capped = min(base_s * (2.0**attempt), MAX_TIMEOUT_FACTOR * base_s)
        return capped * (1.0 + TIMEOUT_JITTER * float(rng.random()))

    def listen(self, on_stream: Callable[[int, int, float], None]) -> None:
        """Register a stream-received callback for this node."""
        self._check_open()
        WrapSocket._listeners[self.node] = _Listener(self.node, on_stream)

    def close(self) -> None:
        """Close the socket and remove its listener registration."""
        self._open = False
        WrapSocket._listeners.pop(self.node, None)

    def _check_open(self) -> None:
        if not self._open:
            raise SocketClosed("socket is closed")

    # ------------------------------------------------------------------
    @classmethod
    def reset_listeners(cls) -> None:
        """Clear class-level listener state (between simulations/tests)."""
        cls._listeners.clear()


class _GuardedSend:
    """Retry state for one guarded send.

    The watchdog/completion callbacks are bound methods of this object
    rather than nested closures, so every payload handed to the scheduler
    stays statically picklable for the future LP boundary (simlint
    SIM203). One instance tracks one logical send across all of its
    retransmission attempts.
    """

    def __init__(
        self,
        sock: WrapSocket,
        nbytes: int,
        on_complete: Callable[[float], None] | None,
        received: Callable[[float], None],
        timeout_s: float,
        max_retries: int,
        on_timeout: Callable[[OnlineTimeoutError], None] | None,
    ) -> None:
        self.sock = sock
        self.src = sock.node
        self.peer = sock._peer
        self.nbytes = nbytes
        self.on_complete = on_complete
        self.received = received
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.on_timeout = on_timeout
        self.done = False
        self.attempt_no = 0
        self.waited = 0.0

    def complete(self, t: float) -> None:
        """Sender-side final-ACK callback (idempotent under late ACKs)."""
        if self.done:
            return  # a timed-out attempt's ACK arriving late
        self.done = True
        if self.on_complete is not None:
            self.on_complete(t)

    def attempt(self, current_timeout: float) -> None:
        """Issue one transfer attempt and arm its watchdog."""
        self.sock.agent.transfer(
            self.src, self.peer, self.nbytes, self.complete, on_received=self.received
        )
        self.sock.agent.schedule(
            current_timeout, self.watchdog, node=self.src, args=(current_timeout,)
        )

    def watchdog(self, current_timeout: float) -> None:
        """Timeout check: retransmit with backoff or give up."""
        if self.done:
            return
        self.waited += current_timeout
        self.attempt_no += 1
        if self.attempt_no > self.max_retries:
            self.done = True
            err = OnlineTimeoutError(
                f"send {self.nbytes}B node{self.src}->node{self.peer}",
                self.waited,
                self.attempt_no,
            )
            if self.on_timeout is not None:
                self.on_timeout(err)
                return
            raise err
        self.attempt(self.sock._backoff_timeout(self.timeout_s, self.attempt_no))
