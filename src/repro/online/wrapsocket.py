"""WrapSocket: the socket-level interception library.

Application processes in MicroGrid link against WrapSocket, which
intercepts socket calls and redirects the streams through the Agent into
the network simulation — no application modification. Our synthetic
applications use the same API surface: ``connect`` by virtual IP,
``send`` with a completion callback, ``listen`` for incoming streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .agent import Agent
from .errors import OnlineTimeoutError
from .ipmap import VirtualIpMapper

__all__ = ["WrapSocket", "SocketClosed"]

#: Retried sends cap their per-attempt timeout at this multiple of the
#: caller's ``timeout_s`` (bounded exponential backoff).
MAX_TIMEOUT_FACTOR = 8.0
#: Deterministic jitter fraction added to each backed-off timeout so
#: concurrent retries don't resynchronize.
TIMEOUT_JITTER = 0.1


class SocketClosed(RuntimeError):
    """Operation on a closed WrapSocket."""


@dataclass
class _Listener:
    node: int
    on_stream: Callable[[int, int, float], None]  # (src_node, nbytes, t)


class WrapSocket:
    """A virtual socket bound to one simulated host.

    Parameters
    ----------
    agent:
        The live-traffic gateway.
    node:
        The simulated host this process runs on.
    real_endpoint:
        Identifier of the live process (registered with the IP mapper;
        auto-generated when omitted).
    """

    _listeners: dict[int, _Listener] = {}

    def __init__(self, agent: Agent, node: int, real_endpoint: str | None = None) -> None:
        self.agent = agent
        self.node = node
        endpoint = real_endpoint if real_endpoint is not None else f"proc@node{node}"
        try:
            self.virtual_ip = agent.attach_process(endpoint, node)
        except ValueError:
            # The process re-opens sockets on the same node: reuse mapping.
            self.virtual_ip = VirtualIpMapper.virtual_ip(node)
        self._open = True
        self._peer: int | None = None
        # Lazily created per-node stream for retry-timeout jitter; same
        # node, same jitter sequence (deterministic across runs).
        self._timeout_rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    def connect(self, peer_virtual_ip: str) -> None:
        """Resolve the peer's virtual IP to its simulated host."""
        self._check_open()
        self._peer = VirtualIpMapper.node_of(peer_virtual_ip)

    def connect_node(self, node: int) -> None:
        """Connect directly by simulated node id (bypasses IP resolution)."""
        self._check_open()
        self._peer = node

    def send(
        self,
        nbytes: int,
        on_complete: Callable[[float], None] | None = None,
        on_received: Callable[[float], None] | None = None,
        *,
        timeout_s: float | None = None,
        max_retries: int = 3,
        on_timeout: Callable[[OnlineTimeoutError], None] | None = None,
    ) -> None:
        """Stream ``nbytes`` to the connected peer via the simulation.

        ``on_complete(t)`` fires at the sender when the peer has
        acknowledged the full payload; ``on_received(t)`` and the peer's
        listener callback (if any) fire when the last byte *arrives* — at
        the peer, so that under the parallel engine the peer's reaction
        executes on the peer's logical process.

        With ``timeout_s`` set, a watchdog guards each attempt: if no
        acknowledgment arrives in time, the stream is re-sent with the
        timeout doubled (bounded at ``MAX_TIMEOUT_FACTOR * timeout_s``,
        plus deterministic jitter) up to ``max_retries`` times. On
        exhaustion an :class:`OnlineTimeoutError` goes to ``on_timeout``
        when given, else is raised from the watchdog event.
        ``on_complete`` fires at most once even if a timed-out attempt's
        acknowledgment arrives late; the receiver may see duplicate
        streams, exactly as with application-level retransmission.
        Without ``timeout_s`` the behavior is unchanged.
        """
        self._check_open()
        if self._peer is None:
            raise SocketClosed("socket is not connected")
        peer = self._peer
        src = self.node

        def _received(t: float) -> None:
            listener = WrapSocket._listeners.get(peer)
            if listener is not None:
                listener.on_stream(src, nbytes, t)
            if on_received is not None:
                on_received(t)

        if timeout_s is None:
            self.agent.transfer(src, peer, nbytes, on_complete, on_received=_received)
            return
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self._send_guarded(
            nbytes, on_complete, _received, timeout_s, max_retries, on_timeout
        )

    def _send_guarded(
        self,
        nbytes: int,
        on_complete: Callable[[float], None] | None,
        received: Callable[[float], None],
        timeout_s: float,
        max_retries: int,
        on_timeout: Callable[[OnlineTimeoutError], None] | None,
    ) -> None:
        """Issue a transfer under a retry-with-backoff watchdog."""
        peer = self._peer
        src = self.node
        state = {"done": False, "attempt": 0, "waited": 0.0}

        def _complete(t: float) -> None:
            if state["done"]:
                return  # a timed-out attempt's ACK arriving late
            state["done"] = True
            if on_complete is not None:
                on_complete(t)

        def _attempt(current_timeout: float) -> None:
            self.agent.transfer(src, peer, nbytes, _complete, on_received=received)

            def _watchdog() -> None:
                if state["done"]:
                    return
                state["waited"] += current_timeout
                state["attempt"] += 1
                if state["attempt"] > max_retries:
                    state["done"] = True
                    err = OnlineTimeoutError(
                        f"send {nbytes}B node{src}->node{peer}",
                        state["waited"],
                        state["attempt"],
                    )
                    if on_timeout is not None:
                        on_timeout(err)
                        return
                    raise err
                _attempt(self._backoff_timeout(timeout_s, state["attempt"]))

            self.agent.schedule(current_timeout, _watchdog, node=src)

        _attempt(timeout_s)

    def _backoff_timeout(self, base_s: float, attempt: int) -> float:
        rng = self._timeout_rng
        if rng is None:
            rng = self._timeout_rng = np.random.default_rng(0x50C7E7 ^ self.node)
        capped = min(base_s * (2.0**attempt), MAX_TIMEOUT_FACTOR * base_s)
        return capped * (1.0 + TIMEOUT_JITTER * float(rng.random()))

    def listen(self, on_stream: Callable[[int, int, float], None]) -> None:
        """Register a stream-received callback for this node."""
        self._check_open()
        WrapSocket._listeners[self.node] = _Listener(self.node, on_stream)

    def close(self) -> None:
        """Close the socket and remove its listener registration."""
        self._open = False
        WrapSocket._listeners.pop(self.node, None)

    def _check_open(self) -> None:
        if not self._open:
            raise SocketClosed("socket is closed")

    # ------------------------------------------------------------------
    @classmethod
    def reset_listeners(cls) -> None:
        """Clear class-level listener state (between simulations/tests)."""
        cls._listeners.clear()
