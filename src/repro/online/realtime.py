"""Soft real-time scheduling and the slowdown mode.

MaSSF's engine runs online simulations in (soft) real time; when the
simulated system is too large for the hardware, the whole virtual world
runs in *slowdown* mode: every component is scaled by the same factor S,
so one virtual second takes S wall-clock seconds but relative timing is
preserved. The paper quotes "good efficiency with slowdown of 8 times"
for the 20k-router single-AS runs on 90 nodes.

This module provides the time bookkeeping and the feasibility check that
derives the minimum slowdown from the cost model's wall-clock prediction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..engine.costmodel import WallclockPrediction
from .errors import OnlineTimeoutError

__all__ = ["VirtualTimeController", "required_slowdown"]


@dataclass
class VirtualTimeController:
    """Maps between wall-clock and virtual time under a slowdown factor.

    ``slowdown = 1`` is real time; ``slowdown = 8`` means the virtual
    world advances at 1/8 wall-clock speed.
    """

    slowdown: float = 1.0
    wallclock_epoch: float = 0.0

    def __post_init__(self) -> None:
        if self.slowdown <= 0:
            raise ValueError("slowdown must be positive")

    def virtual_elapsed(self, wallclock_now: float) -> float:
        """Virtual time corresponding to a wall-clock instant."""
        return (wallclock_now - self.wallclock_epoch) / self.slowdown

    def wallclock_deadline(self, virtual_time: float) -> float:
        """Wall-clock instant by which ``virtual_time`` must be reached."""
        return self.wallclock_epoch + virtual_time * self.slowdown

    def behind_schedule(self, wallclock_now: float, virtual_now: float) -> float:
        """Seconds of virtual time the engine lags the real-time contract
        (positive = too slow; the soft scheduler tolerates small lags)."""
        return self.virtual_elapsed(wallclock_now) - virtual_now

    def wait_for_virtual(
        self,
        virtual_time: float,
        *,
        now_fn: Callable[[], float] = time.monotonic,
        sleep_fn: Callable[[float], None] = time.sleep,
        timeout_s: float = 30.0,
        min_sleep_s: float = 1e-3,
        max_sleep_s: float = 0.25,
    ) -> float:
        """Block until the wall clock reaches ``virtual_time``'s deadline.

        The pacing wait of an online run: the engine is ahead of the
        real-time contract and must not deliver events early. Sleeps
        with bounded exponential backoff — starting at ``min_sleep_s``
        and doubling up to ``max_sleep_s`` — so short waits stay
        responsive without busy-spinning through long ones. Returns the
        wall-clock seconds actually waited; raises
        :class:`OnlineTimeoutError` if the deadline is not reached
        within ``timeout_s`` (a stalled or badly skewed clock). The
        clock and sleep are injectable for deterministic tests.
        """
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if not 0.0 < min_sleep_s <= max_sleep_s:
            raise ValueError("need 0 < min_sleep_s <= max_sleep_s")
        deadline = self.wallclock_deadline(virtual_time)
        start = now_fn()
        backoff = min_sleep_s
        attempts = 0
        while True:
            now = now_fn()
            if now >= deadline:
                return now - start
            if now - start >= timeout_s:
                raise OnlineTimeoutError(
                    f"wait for virtual t={virtual_time:g}s", now - start, attempts
                )
            sleep_fn(min(backoff, max_sleep_s, deadline - now))
            attempts += 1
            backoff = min(backoff * 2.0, max_sleep_s)


def required_slowdown(
    prediction: WallclockPrediction, virtual_duration_s: float
) -> float:
    """Minimum feasible slowdown for an online run.

    The engine must process ``virtual_duration_s`` of simulated time in
    ``slowdown * virtual_duration_s`` of wall-clock; the cost model says
    the processing takes ``prediction.total_s``. Values <= 1 mean the
    simulation can run in real time (the controller still uses 1).
    """
    if virtual_duration_s <= 0:
        raise ValueError("virtual duration must be positive")
    return max(1.0, prediction.total_s / virtual_duration_s)
