"""Soft real-time scheduling and the slowdown mode.

MaSSF's engine runs online simulations in (soft) real time; when the
simulated system is too large for the hardware, the whole virtual world
runs in *slowdown* mode: every component is scaled by the same factor S,
so one virtual second takes S wall-clock seconds but relative timing is
preserved. The paper quotes "good efficiency with slowdown of 8 times"
for the 20k-router single-AS runs on 90 nodes.

This module provides the time bookkeeping and the feasibility check that
derives the minimum slowdown from the cost model's wall-clock prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.costmodel import WallclockPrediction

__all__ = ["VirtualTimeController", "required_slowdown"]


@dataclass
class VirtualTimeController:
    """Maps between wall-clock and virtual time under a slowdown factor.

    ``slowdown = 1`` is real time; ``slowdown = 8`` means the virtual
    world advances at 1/8 wall-clock speed.
    """

    slowdown: float = 1.0
    wallclock_epoch: float = 0.0

    def __post_init__(self) -> None:
        if self.slowdown <= 0:
            raise ValueError("slowdown must be positive")

    def virtual_elapsed(self, wallclock_now: float) -> float:
        """Virtual time corresponding to a wall-clock instant."""
        return (wallclock_now - self.wallclock_epoch) / self.slowdown

    def wallclock_deadline(self, virtual_time: float) -> float:
        """Wall-clock instant by which ``virtual_time`` must be reached."""
        return self.wallclock_epoch + virtual_time * self.slowdown

    def behind_schedule(self, wallclock_now: float, virtual_now: float) -> float:
        """Seconds of virtual time the engine lags the real-time contract
        (positive = too slow; the soft scheduler tolerates small lags)."""
        return self.virtual_elapsed(wallclock_now) - virtual_now


def required_slowdown(
    prediction: WallclockPrediction, virtual_duration_s: float
) -> float:
    """Minimum feasible slowdown for an online run.

    The engine must process ``virtual_duration_s`` of simulated time in
    ``slowdown * virtual_duration_s`` of wall-clock; the cost model says
    the processing takes ``prediction.total_s``. Values <= 1 mean the
    simulation can run in real time (the controller still uses 1).
    """
    if virtual_duration_s <= 0:
        raise ValueError("virtual duration must be positive")
    return max(1.0, prediction.total_s / virtual_duration_s)
