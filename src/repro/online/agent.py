"""The Agent: gateway between live application traffic and the simulator.

MaSSF's Agent "accepts and dispatches live traffic from application
wrapper to the network simulation" and carries responses back. Our live
applications are synthetic processes (:mod:`repro.netsim.app`), but the
code path is the same: a WrapSocket hands the Agent a stream operation,
the Agent resolves virtual addresses, injects the traffic into the
simulated network as TCP/UDP, and invokes the application's callback when
the simulated network completes the operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from ..netsim.simulator import NetworkSimulator
from ..netsim.tcp import start_transfer
from ..netsim.udp import send_datagram
from .ipmap import VirtualIpMapper

__all__ = ["Agent", "AgentStats"]


@dataclass
class AgentStats:
    """Live-traffic accounting at the agent boundary."""

    streams_opened: int = 0
    streams_completed: int = 0
    bytes_requested: int = 0
    datagrams_sent: int = 0


class Agent:
    """Dispatches live application traffic into a :class:`NetworkSimulator`.

    Parameters
    ----------
    sim:
        The running network simulator.
    mapper:
        The virtual/real IP mapping service (created if not supplied).
    """

    def __init__(self, sim: NetworkSimulator, mapper: VirtualIpMapper | None = None) -> None:
        self.sim = sim
        self.mapper = mapper if mapper is not None else VirtualIpMapper()
        self.stats = AgentStats()

    # ------------------------------------------------------------------
    # Time/scheduling passthrough (applications model compute with these)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def _injection_time(self) -> float:
        """Earliest time live traffic may enter the simulation.

        On the sequential kernel: now. On the conservative parallel
        engine: the end of the current synchronization window — the Agent
        queues live traffic until the barrier, exactly how MaSSF admits
        external (real-time) events without violating the lookahead.
        """
        boundary = getattr(self.sim.sched, "next_barrier_time", None)
        return self.sim.now if boundary is None else max(self.sim.now, boundary)

    def schedule(
        self, delay: float, fn: Callable[..., Any], node: int = -1, args: tuple = ()
    ) -> Any:
        """Schedule ``fn(*args)`` as application-side work (compute
        phases, think time). The ``args`` tuple is the closure-free
        dispatch path — payloads stay picklable for the future LP
        boundary (simlint SIM203)."""
        when = max(self.sim.now + delay, self._injection_time())
        return self.sim.sched.schedule_at(when, fn, node=node, args=args)

    # ------------------------------------------------------------------
    # Live traffic entry points (called by WrapSocket)
    # ------------------------------------------------------------------
    def transfer(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        on_complete: Callable[[float], None] | None = None,
        on_received: Callable[[float], None] | None = None,
    ) -> None:
        """Stream ``nbytes`` from ``src_node`` to ``dst_node`` over
        simulated TCP.

        ``on_complete(t)`` fires at the sender on final ACK;
        ``on_received(t)`` at the receiver on final arrival. Injection is
        deferred to the next barrier on a parallel engine (see
        :meth:`_injection_time`), so the transfer itself starts at the
        source node's LP.
        """
        self.stats.streams_opened += 1
        self.stats.bytes_requested += nbytes
        # Bound method + args (no closures): the deferred start must stay
        # picklable across the future LP boundary (simlint SIM203).
        self.sim.sched.schedule_at(
            self._injection_time(),
            self._start_transfer,
            node=src_node,
            args=(src_node, dst_node, nbytes, on_complete, on_received),
        )

    def _start_transfer(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        on_complete: Callable[[float], None] | None,
        on_received: Callable[[float], None] | None,
    ) -> None:
        """Barrier-deferred transfer start (runs on the source node's LP)."""
        start_transfer(
            self.sim,
            src_node,
            dst_node,
            nbytes,
            partial(self._transfer_done, on_complete),
            on_received=on_received,
        )

    def _transfer_done(
        self, on_complete: Callable[[float], None] | None, t: float
    ) -> None:
        self.stats.streams_completed += 1
        if on_complete is not None:
            on_complete(t)

    def datagram(self, src_node: int, dst_node: int, nbytes: int, port: int = 0) -> None:
        """Send a UDP datagram; injection is barrier-aligned like transfers."""
        self.stats.datagrams_sent += 1
        self.sim.sched.schedule_at(
            self._injection_time(),
            self._send_datagram,
            node=src_node,
            args=(src_node, dst_node, nbytes, port),
        )

    def _send_datagram(
        self, src_node: int, dst_node: int, nbytes: int, port: int
    ) -> None:
        """Barrier-deferred datagram injection."""
        send_datagram(self.sim, src_node, dst_node, nbytes, port=port)

    # ------------------------------------------------------------------
    def attach_process(self, real_endpoint: str, node: int) -> str:
        """Register a live process at a simulated host; returns its
        virtual IP (what the process believes its address is)."""
        return self.mapper.register(real_endpoint, node)
