"""Online simulation: live application traffic through the simulator
(Agent, WrapSocket, virtual/real IP mapping, soft-real-time control)."""

from .agent import Agent, AgentStats
from .errors import OnlineTimeoutError
from .ipmap import VirtualIpMapper
from .realtime import VirtualTimeController, required_slowdown
from .wrapsocket import SocketClosed, WrapSocket

__all__ = [
    "Agent",
    "AgentStats",
    "OnlineTimeoutError",
    "VirtualIpMapper",
    "WrapSocket",
    "SocketClosed",
    "VirtualTimeController",
    "required_slowdown",
]
