"""Virtual/Real IP mapping service.

MicroGrid virtualizes transparently: applications address each other with
*virtual* IPs; the mapping server translates between the real endpoints of
live processes and nodes of the simulated network. Here the "real"
endpoints are the synthetic application processes, and virtual IPs are
dotted-quad strings deterministically derived from node ids.
"""

from __future__ import annotations

__all__ = ["VirtualIpMapper"]


class VirtualIpMapper:
    """Bidirectional virtual-IP <-> simulated-node mapping.

    Virtual addresses live in 10.0.0.0/8; node ``n`` maps to
    ``10.(n>>16).(n>>8 & 255).(n & 255)``, supporting ~16.7M nodes.
    Real endpoints (opaque strings like ``"host7:45001"``) are registered
    against a node and can be resolved both ways.
    """

    def __init__(self) -> None:
        self._real_to_node: dict[str, int] = {}
        self._node_to_real: dict[int, str] = {}

    @staticmethod
    def virtual_ip(node: int) -> str:
        if not 0 <= node < (1 << 24):
            raise ValueError("node id out of the 10.0.0.0/8 virtual range")
        return f"10.{(node >> 16) & 255}.{(node >> 8) & 255}.{node & 255}"

    @staticmethod
    def node_of(virtual_ip: str) -> int:
        parts = virtual_ip.split(".")
        if len(parts) != 4 or parts[0] != "10":
            raise ValueError(f"not a virtual address: {virtual_ip!r}")
        a, b, c = (int(x) for x in parts[1:])
        for octet in (a, b, c):
            if not 0 <= octet <= 255:
                raise ValueError(f"invalid address: {virtual_ip!r}")
        return (a << 16) | (b << 8) | c

    # ------------------------------------------------------------------
    def register(self, real_endpoint: str, node: int) -> str:
        """Bind a real endpoint to a simulated node; returns the virtual IP."""
        if real_endpoint in self._real_to_node:
            raise ValueError(f"{real_endpoint!r} already registered")
        existing = self._node_to_real.get(node)
        if existing is not None:
            raise ValueError(f"node {node} already bound to {existing!r}")
        self._real_to_node[real_endpoint] = node
        self._node_to_real[node] = real_endpoint
        return self.virtual_ip(node)

    def unregister(self, real_endpoint: str) -> None:
        """Remove a binding (idempotent)."""
        node = self._real_to_node.pop(real_endpoint, None)
        if node is not None:
            self._node_to_real.pop(node, None)

    def resolve_real(self, real_endpoint: str) -> int:
        """The simulated node a real endpoint is bound to (KeyError if none)."""
        return self._real_to_node[real_endpoint]

    def real_endpoint_of(self, node: int) -> str | None:
        """The real endpoint bound to ``node``, if any."""
        return self._node_to_real.get(node)

    def __len__(self) -> int:
        return len(self._real_to_node)
