"""Typed errors of the online (live-traffic) layer."""

from __future__ import annotations

__all__ = ["OnlineTimeoutError"]


class OnlineTimeoutError(RuntimeError):
    """An online operation exhausted its timeout budget.

    Raised by :meth:`WrapSocket.send` when a transfer's completion
    callback never fired within the (retried, backed-off) timeout
    window, and by :meth:`VirtualTimeController.wait_for_virtual` when
    the real-time pacing wait exceeds its bound. Carries enough context
    to report without parsing the message.
    """

    def __init__(self, operation: str, waited_s: float, attempts: int) -> None:
        super().__init__(
            f"{operation} timed out after {waited_s:.3f}s ({attempts} attempt(s))"
        )
        self.operation = operation
        self.waited_s = float(waited_s)
        self.attempts = int(attempts)
