"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro experiment single-as scalapack [--scale small] [--seed 0]
    python -m repro figures [--scale small] [--seed 0]
    python -m repro sweep [--scale small] [--network single-as]
    python -m repro trace single-as scalapack --out trace.json
    python -m repro trace --timeline --out timeline.json
    python -m repro synccost
    python -m repro lint src/repro [--format json] [--strict]
    python -m repro bench [--quick] [--out-dir .] [--threshold 0.8] [--seed 0]
    python -m repro chaos multi-as scalapack --scenario chaos-mixed [--seed 0]
    python -m repro chaos single-as scalapack --kill-workers 2 --procs 2

``figures`` runs all four (network, application) experiments and prints
the paper's Figures 6-13 tables; ``sweep`` prints the Tmll sweep behind
HPROF (ablation 1); ``trace`` runs a scenario under the observability
registry, bridges the measurements into a :class:`TrafficProfile`, maps
the network with a profile-based approach, and writes the instrument
snapshot (with ``--timeline`` it instead replays the scenario on the
parallel engine under the structured tracer and prints straggler blame,
the critical path, and what-if mapping scores alongside a Chrome trace
JSON); ``synccost`` prints the Figure 5 model; ``lint`` runs the
simlint static analysis (:mod:`repro.analysis`); ``bench`` runs the
committed benchmark trajectory (:mod:`repro.bench`), writes
``BENCH_<date>.json``, and exits 1 on a performance regression against
the previous file; ``chaos`` runs a seeded fault scenario
(:mod:`repro.faults`), prints the convergence/recovery report, and
exits 1 when the network failed to heal within the run horizon.
"""

from __future__ import annotations

import argparse
import sys


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default=None,
        choices=["small", "medium", "large", "paper"],
        help="experiment scale (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)


def _resolve_scale(args):
    from .experiments import SCALES, default_scale

    return SCALES[args.scale] if args.scale else default_scale()


def _default_trace_capacity() -> int:
    from .obs.trace import DEFAULT_TRACE_CAPACITY

    return DEFAULT_TRACE_CAPACITY


def cmd_experiment(args) -> int:
    from .experiments import format_bars, format_result, run_experiment

    scale = _resolve_scale(args)
    if args.backend == "mp":
        return _cmd_experiment_mp(args, scale)
    kwargs = {"obs_out": args.obs_out} if args.obs_out else {}
    result = run_experiment(args.network, args.app, scale=scale, seed=args.seed, **kwargs)
    print(format_result(result))
    if args.bars:
        for metric in ("sim_time_s", "achieved_mll_ms", "load_imbalance",
                       "parallel_efficiency"):
            print()
            print(format_bars(result, metric))
    if args.save:
        from .serialization import save_result

        save_result(result, args.save)
        print(f"\nsaved to {args.save}")
    return 0


def _cmd_experiment_mp(args, scale) -> int:
    """The ``--backend mp`` path: really execute across worker processes.

    Only the packet-mediated UDP background workload shards (the online
    application layer holds process-wide state — see
    ``repro/experiments/shard.py``), so this path partitions the network
    with the TOP approach, executes the seeded UDP workload on the
    multi-process backend, and prints measured wall-clock next to the
    cost model's prediction over the same window counters.

    With ``--obs-out`` the run executes under both the registry and the
    tracer: every worker ships its instrument and trace snapshots back on
    the control plane, and the merged, shard-labeled snapshot — with the
    measured per-window worker spans and the measured-vs-modeled
    calibration table — is written as one JSON document
    (:func:`repro.obs.distributed.merged_snapshot_document`).
    """
    import json
    from pathlib import Path

    from .core.approaches import Approach
    from .experiments.parallel import run_executed_workload
    from .experiments.runner import MappingPipeline, build_network, cluster_for_scale
    from .obs import blame
    from .obs import names as obs_names
    from .obs.distributed import merged_snapshot_document
    from .obs.registry import observed_run
    from .obs.trace import get_tracer, traced_run

    net, _fib = build_network(args.network, scale, args.seed)
    cluster = cluster_for_scale(scale)
    pipeline = MappingPipeline(net, scale.num_engines, cluster, args.seed)
    mapping = pipeline.run_all([Approach.TOP])[Approach.TOP]
    recovery = None
    if getattr(args, "checkpoint_every", None):
        if getattr(args, "rebalance", False):
            print("error: --checkpoint-every cannot be combined with "
                  "--rebalance (a checkpoint cut racing a migration plan "
                  "has no well-defined placement)", file=sys.stderr)
            return 2
        from .engine.recovery import RecoveryConfig

        recovery = RecoveryConfig(
            checkpoint_every_n_windows=args.checkpoint_every,
            max_respawns=args.max_respawns,
            on_worker_loss=args.on_worker_loss,
        )
    rebalance = None
    if getattr(args, "rebalance", False):
        from .partition.rebalance import RebalanceConfig

        rebalance = RebalanceConfig(
            threshold=args.rebalance_threshold,
            patience=args.rebalance_patience,
            cooldown=args.rebalance_cooldown,
            max_migrations=args.rebalance_max_moves,
            source=args.rebalance_source,
            event_cost_s=cluster.event_cost_s,
            remote_event_cost_s=cluster.remote_event_cost_s,
        )

    def execute():
        return run_executed_workload(
            net, mapping, scale.profile_duration_s,
            scale=scale, seed=args.seed, procs=args.procs,
            incremental_obs=args.incremental_obs,
            rebalance=rebalance,
            recovery=recovery,
        )

    if args.obs_out:
        with observed_run(), traced_run(get_tracer()):
            run = execute()
        out = Path(args.obs_out)
        if out.is_dir():
            out = out / "obs_mp_snapshot.json"
        doc = merged_snapshot_document(
            run.merged_registry,
            run.merged_trace,
            meta={
                "network": args.network,
                "app": "udp-background",
                "scale": scale.name,
                "seed": args.seed,
                "backend": "mp",
                "executed": run.summary(),
            },
            calibration=run.calibration,
        )
        out.write_text(json.dumps(doc, indent=2))
    else:
        run = execute()

    s = run.summary()
    print(f"executed multi-process run: {args.network} / udp-background "
          f"(TOP mapping, {scale.num_engines} LPs, {run.procs} procs)")
    print(f"  events executed    {s['events_executed']:>12,} "
          f"(reference {run.reference_events:,})")
    print(f"  reference wall     {s['reference_wall_s']:>12.3f} s  (1 process)")
    print(f"  measured wall      {s['measured_wall_s']:>12.3f} s  "
          f"speedup {s['measured_speedup']:.2f}x")
    print(f"  predicted wall     {s['predicted_wall_s']:>12.3f} s  "
          f"speedup {s['predicted_speedup']:.2f}x "
          f"(sync fraction {s['predicted_sync_fraction']:.2f})")
    print(f"  cross-shard mail   {s['mail_bytes']:>12,} bytes over "
          f"{s['num_windows']} windows")
    if recovery is not None and run.result.recovery is not None:
        r = run.result.recovery
        print(f"  checkpoints        {r['checkpoints_taken']:>12} "
              f"({r['checkpoint_bytes']:,} control-plane bytes, "
              f"cadence {recovery.checkpoint_every_n_windows} windows, "
              f"committed window {r['committed_window']})")
        if r["detections"]:
            print(f"  recovery           {r['detections']:>12} detection(s), "
                  f"{r['respawns']} respawn(s), {r['windows_replayed']} "
                  f"window(s) replayed, {r['adoptions']} adoption(s)")
    if rebalance is not None:
        moves = run.result.migrations
        print(f"  rebalance          {len(moves):>12} migration(s) "
              f"[source={rebalance.source}]")
        for d in moves:
            print(f"    window {d.window_index}: LP {d.lp} shard "
                  f"{d.src_shard} -> {d.dst_shard} "
                  f"(concentration {d.concentration:.2f}, "
                  f"predicted gain {d.predicted_gain_s * 1e3:.3f} ms)")
    if args.obs_out:
        print()
        print("measured per-shard wall decomposition:")
        mreport = blame.analyze_measured(
            run.merged_trace.restore(), num_shards=run.procs
        )
        print(blame.format_measured_table(mreport))
        wait = run.merged_registry.histograms.get(obs_names.PARALLEL_BARRIER_WAIT)
        if wait is not None and wait[1].sum() > 0:
            hist = run.merged_registry.restore().histogram(
                obs_names.PARALLEL_BARRIER_WAIT, tuple(wait[0])
            )
            print(f"barrier wait per window: p50 {hist.quantile(0.5) * 1e3:.4f} ms, "
                  f"p95 {hist.quantile(0.95) * 1e3:.4f} ms, "
                  f"p99 {hist.quantile(0.99) * 1e3:.4f} ms")
        if run.calibration and run.calibration["worst_window"] is not None:
            worst = run.calibration["worst_window"]
            print(f"calibration: measured/predicted wall ratio "
                  f"{run.calibration['overall_ratio']:.2f} over "
                  f"{len(run.calibration['windows'])} windows; worst window "
                  f"{worst['window']} (measured {worst['measured_s'] * 1e3:.3f} ms, "
                  f"predicted {worst['predicted_s'] * 1e3:.3f} ms)")
        if args.incremental_obs:
            print(f"incremental obs deltas: {s['obs_bytes']:,} control-plane "
                  f"bytes (never mail)")
        print(f"\nmerged observability snapshot written to {out}")
    return 0


def cmd_figures(args) -> int:
    from .experiments import format_figure, run_experiment

    scale = _resolve_scale(args)
    figure_ids = {
        "single-as": {"sim_time_s": 6, "achieved_mll_ms": 7,
                      "load_imbalance": 8, "parallel_efficiency": 9},
        "multi-as": {"sim_time_s": 10, "achieved_mll_ms": 11,
                     "load_imbalance": 12, "parallel_efficiency": 13},
    }
    for kind in ("single-as", "multi-as"):
        results = [
            run_experiment(kind, app, scale=scale, seed=args.seed)
            for app in ("scalapack", "gridnpb")
        ]
        for metric, fig in figure_ids[kind].items():
            print(f"--- Figure {fig} ---")
            print(format_figure(results, metric))
            print()
    return 0


def cmd_sweep(args) -> int:
    from .core import Approach, build_weighted_graph, hierarchical_partition
    from .core.mapping import run_profiling_simulation
    from .experiments import build_network, install_workload
    from .experiments.runner import cluster_for_scale

    scale = _resolve_scale(args)
    net, fib = build_network(args.network, scale, seed=args.seed)

    def setup(sim, agent):
        install_workload(
            sim, agent, net, "scalapack", scale, args.seed,
            duration_s=scale.profile_duration_s,
        )

    profile = run_profiling_simulation(net, fib, setup, scale.profile_duration_s)
    graph = build_weighted_graph(net, Approach.HPROF, profile)
    cluster = cluster_for_scale(scale)
    result = hierarchical_partition(
        graph,
        scale.num_engines,
        sync_cost_s=cluster.sync_cost_s(scale.num_engines),
        seed=args.seed,
    )
    print(f"Tmll sweep on {args.network} ({graph.num_vertices} vertices, "
          f"{scale.num_engines} engines)")
    print(f"{'Tmll (ms)':>10}{'coarse n':>10}{'Es':>8}{'Ec':>8}{'E':>8}{'MLL (ms)':>10}")
    for rec in result.sweep:
        e = rec.evaluation
        marker = "  <== best" if rec.tmll_s == result.tmll_s else ""
        print(
            f"{rec.tmll_s * 1e3:>10.2f}{rec.coarse_vertices:>10}"
            f"{e.es:>8.3f}{e.ec:>8.3f}{e.efficiency:>8.3f}"
            f"{e.mll_s * 1e3:>10.3f}{marker}"
        )
    return 0


def cmd_trace(args) -> int:
    if args.timeline:
        return _cmd_trace_timeline(args)
    return _cmd_trace_snapshot(args)


def _cmd_trace_timeline(args) -> int:
    """The causal-timeline mode: traced parallel run, blame, what-if."""
    import numpy as np

    from .core import Approach, MappingPipeline
    from .core.mapping import run_profiling_simulation
    from .experiments import build_network, install_workload
    from .experiments.parallel import predict_from_window_stats, run_traced_workload
    from .experiments.runner import cluster_for_scale
    from .obs import blame
    from .obs.registry import Registry
    from .obs.trace_export import write_chrome_trace
    from .obs.whatif import format_whatif_table, score_mappings

    scale = _resolve_scale(args)
    duration = args.duration if args.duration is not None else scale.profile_duration_s
    approach = Approach[args.approach]
    cluster = cluster_for_scale(scale)

    net, fib = build_network(args.network, scale, seed=args.seed)

    def setup(sim, agent):
        install_workload(
            sim, agent, net, args.app, scale, args.seed,
            duration_s=scale.profile_duration_s,
        )

    profile = run_profiling_simulation(net, fib, setup, scale.profile_duration_s)
    pipeline = MappingPipeline(net, scale.num_engines, cluster, seed=args.seed)
    candidates = pipeline.run_all(
        [Approach.TOP, Approach.PROF, Approach.HTOP, Approach.HPROF], profile
    )
    base = candidates[approach]

    engine, sim, handles, reg, tr = run_traced_workload(
        net, fib, args.app, scale, base, duration, cluster,
        seed=args.seed, trace_capacity=args.trace_capacity,
    )

    report = blame.analyze(tr, num_lps=engine.num_lps)
    sync_cost = cluster.sync_cost_s(scale.num_engines)
    write_chrome_trace(args.out, tr, sync_cost_s=sync_cost)
    prediction = predict_from_window_stats(engine, cluster)

    print(f"timeline: {args.network}/{args.app} under {approach.value} "
          f"on {scale.num_engines} engines, {duration:g}s simulated")
    print(f"windows {report.num_windows}, events {engine.events_executed}; "
          f"modeled wall-clock {prediction.total_s * 1e3:.3f} ms "
          f"(critical compute {report.critical_s * 1e3:.3f} ms + "
          f"sync {prediction.sync_s * 1e3:.3f} ms); "
          f"aggregate LP idle at barriers {report.total_wait_s * 1e3:.3f} ms")
    if report.num_windows:
        # Barrier-wait distribution through the histogram instrument so
        # the p-line exercises the same quantile path a scrape would.
        wait_ms = report.window_wait_s * 1e3
        top = max(float(wait_ms.max()), 1e-9)
        hist = Registry(enabled=True).histogram(
            "timeline.window_wait_ms",
            tuple(top * k / 16.0 for k in range(1, 17)),
        )
        for w in wait_ms:
            hist.observe(float(w))
        print(f"barrier wait per window: p50 {hist.quantile(0.5):.4f} ms, "
              f"p95 {hist.quantile(0.95):.4f} ms, "
              f"p99 {hist.quantile(0.99):.4f} ms")
    print()
    print(blame.format_blame_table(report))
    print(f"critical path: {len(report.critical_path)} windows, "
          f"handoff fraction {report.handoff_fraction:.2f}")
    node_share = blame.node_blame(tr, report, base.assignment, net.num_nodes)
    if node_share.sum() > 0:
        hot = np.argsort(node_share)[::-1][:5]
        print("hot nodes (blame share): " + ", ".join(
            f"node {int(n)} {node_share[n] * 1e3:.3f} ms"
            for n in hot if node_share[n] > 0
        ))
    print()
    print("what-if mapping replay (modeled wall-clock of this run):")
    scores = score_mappings(
        tr, {a.value: m for a, m in candidates.items()}, cluster, duration
    )
    print(format_whatif_table(scores))
    if tr.dropped_records:
        print(f"note: trace overflowed ({tr.dropped_records} dropped); "
              f"analyses cover the retained suffix")
    print(f"chrome trace written to {args.out} "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_trace_snapshot(args) -> int:
    from .analysis.partition_check import validate_partition
    from .core import Approach, MappingPipeline, build_weighted_graph
    from .engine.kernel import SimKernel
    from .experiments import build_network, install_workload
    from .experiments.runner import cluster_for_scale
    from .netsim.simulator import NetworkSimulator
    from .obs import export, observed_run, profile_from_registry
    from .online.agent import Agent

    scale = _resolve_scale(args)
    duration = args.duration if args.duration is not None else scale.profile_duration_s
    approach = Approach[args.approach]
    if not approach.uses_profile:
        print(f"approach {approach.value} does not consume a profile; "
              f"use PROF, PROF2, or HPROF")
        return 2

    net, fib = build_network(args.network, scale, seed=args.seed)
    with observed_run() as reg:
        kernel = SimKernel()
        sim = NetworkSimulator(net, fib, kernel)
        agent = Agent(sim)
        install_workload(
            sim, agent, net, args.app, scale, args.seed, duration_s=duration
        )
        kernel.run(until=duration)

    profile = profile_from_registry(duration, reg)
    pipeline = MappingPipeline(
        net, scale.num_engines, cluster_for_scale(scale), seed=args.seed
    )
    mapping = pipeline.run(approach, profile)
    graph = build_weighted_graph(net, approach, profile)
    validate_partition(graph, mapping.assignment, scale.num_engines)

    ev = mapping.evaluation
    export.write_snapshot(
        args.out,
        reg,
        meta={
            "network": args.network,
            "app": args.app,
            "scale": scale.name,
            "seed": args.seed,
            "duration_s": duration,
            "approach": approach.value,
            "num_engines": scale.num_engines,
            "partition": {
                "efficiency": ev.efficiency,
                "es": ev.es,
                "ec": ev.ec,
                "mll_ms": mapping.achieved_mll_ms,
                "predicted_imbalance": ev.predicted_imbalance,
            },
        },
        fmt=args.fmt,
    )
    print(f"traced {args.network}/{args.app} for {duration:g}s: "
          f"{profile.total_events:.0f} node events, "
          f"{profile.node_rate_bins.shape[0]} rate bins")
    print(f"{approach.value} partition over {scale.num_engines} engines: "
          f"E={ev.efficiency:.3f} (Es={ev.es:.3f}, Ec={ev.ec:.3f}), "
          f"MLL={mapping.achieved_mll_ms:.3f} ms  [validators passed]")
    print(f"snapshot written to {args.out}")
    return 0


def cmd_claims(args) -> int:
    from .experiments import evaluate_claims, format_claims, run_experiment

    scale = _resolve_scale(args)
    results = [
        run_experiment(kind, app, scale=scale, seed=args.seed)
        for kind in ("single-as", "multi-as")
        for app in ("scalapack", "gridnpb")
    ]
    checks = evaluate_claims(results)
    print(format_claims(checks))
    return 0 if all(c.holds for c in checks) else 1


def cmd_lint(args) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


def cmd_bench(args) -> int:
    from .bench import format_bench, run_bench, write_bench

    doc = run_bench(quick=args.quick, seed=args.seed, suite=args.suite)
    path = write_bench(doc, args.out_dir, threshold=args.threshold)
    print(format_bench(doc))
    print(f"wrote {path}")
    cmp = doc["comparison"]
    return 1 if (cmp is not None and not cmp["ok"]) else 0


def cmd_chaos(args) -> int:
    import json

    from .experiments import format_chaos_report, run_chaos_experiment
    from .faults import BUILTIN_SCENARIOS, FaultScenario

    if args.kill_workers is not None:
        from .experiments.chaos import format_process_chaos_report, run_process_chaos

        result = run_process_chaos(
            args.network,
            scale=_resolve_scale(args),
            seed=args.seed,
            kills=args.kill_workers,
            procs=args.procs,
            on_worker_loss=args.on_worker_loss,
            checkpoint_every=args.checkpoint_every,
            max_respawns=args.max_respawns,
            duration_s=args.duration,
        )
        print(format_process_chaos_report(result))
        return 0 if result.recovered else 1
    if args.spec is not None:
        with open(args.spec, encoding="utf-8") as fh:
            scenario = FaultScenario.from_dict(json.load(fh))
    else:
        scenario = BUILTIN_SCENARIOS[args.scenario]
    scale = _resolve_scale(args)
    result = run_chaos_experiment(
        args.network,
        args.app,
        scenario,
        scale=scale,
        seed=args.seed,
        duration_s=args.duration,
        obs_out=args.obs_out,
    )
    print(format_chaos_report(result))
    if args.obs_out:
        print(f"observability snapshot written to {args.obs_out}")
    return 0 if result.recovered else 1


def cmd_synccost(args) -> int:
    from .cluster import SyncCostModel

    model = SyncCostModel()
    print("TeraGrid synchronization cost model (paper Figure 5)")
    print(f"{'nodes':>8}{'cost (us)':>12}")
    for n in (2, 6, 16, 48, 80, 90, 100, 112, 128):
        print(f"{n:>8}{model(n) * 1e6:>12.0f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Realistic Large-Scale Online Network "
        "Simulation' (Liu & Chien, SC 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="run one experiment, print its metric table")
    p_exp.add_argument("network", choices=["single-as", "multi-as"])
    p_exp.add_argument("app", choices=["scalapack", "gridnpb"])
    p_exp.add_argument("--save", metavar="PATH", default=None,
                       help="write the result as JSON")
    p_exp.add_argument("--bars", action="store_true",
                       help="also render ASCII bar charts per metric")
    p_exp.add_argument("--obs-out", dest="obs_out", metavar="PATH", default=None,
                       help="record the measured run's observability snapshot "
                       "(JSON); with --backend mp, the merged per-shard snapshot "
                       "with measured window spans and the calibration table "
                       "(PATH may be a directory: obs_mp_snapshot.json inside)")
    p_exp.add_argument("--backend", choices=["model", "mp"], default="model",
                       help="'model': single-process run + cost-model prediction "
                       "(default); 'mp': execute the packet-mediated UDP workload "
                       "across real worker processes and report measured vs "
                       "predicted wall-clock")
    p_exp.add_argument("--procs", type=int, default=2,
                       help="worker processes for --backend mp (default: 2)")
    p_exp.add_argument("--incremental-obs", dest="incremental_obs",
                       action="store_true",
                       help="with --backend mp and --obs-out: workers also ship "
                       "per-window registry deltas on the control plane (live "
                       "merged view; end-of-run snapshot is always shipped)")
    p_exp.add_argument("--rebalance", action="store_true",
                       help="with --backend mp: watch per-window blame "
                       "concentration and migrate LPs between workers at "
                       "barriers (delivery log stays byte-identical)")
    p_exp.add_argument("--rebalance-threshold", type=float, default=0.5,
                       help="blame-share concentration that arms a migration "
                       "(default: 0.5)")
    p_exp.add_argument("--rebalance-patience", type=int, default=2,
                       help="consecutive over-threshold windows before "
                       "migrating (default: 2)")
    p_exp.add_argument("--rebalance-cooldown", type=int, default=4,
                       help="windows to wait after a migration before "
                       "re-arming (default: 4)")
    p_exp.add_argument("--rebalance-max-moves", type=int, default=4,
                       help="migration budget for the whole run (default: 4)")
    p_exp.add_argument("--rebalance-source", choices=["modeled", "measured"],
                       default="modeled",
                       help="blame source: 'modeled' (window counters x cost "
                       "model; deterministic) or 'measured' (workers' measured "
                       "window walls)")
    p_exp.add_argument("--checkpoint-every", dest="checkpoint_every",
                       type=int, default=None, metavar="N",
                       help="with --backend mp: capture a barrier-aligned "
                       "shard checkpoint every N windows and recover crashed "
                       "workers from it (delivery log stays byte-identical; "
                       "mutually exclusive with --rebalance)")
    p_exp.add_argument("--max-respawns", dest="max_respawns", type=int,
                       default=2, metavar="K",
                       help="respawn a crashed worker at most K times before "
                       "escalating per --on-worker-loss (default: 2)")
    p_exp.add_argument("--on-worker-loss", dest="on_worker_loss",
                       choices=["respawn", "adopt", "fail"], default="respawn",
                       help="after the respawn budget: 'respawn' raises, "
                       "'adopt' hands the dead shard's LPs to a survivor "
                       "(degraded but byte-identical), 'fail' raises on the "
                       "first loss (default: respawn)")
    _add_scale(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_fig = sub.add_parser("figures", help="regenerate Figures 6-13")
    _add_scale(p_fig)
    p_fig.set_defaults(fn=cmd_figures)

    p_sweep = sub.add_parser("sweep", help="print the HPROF Tmll sweep")
    p_sweep.add_argument("--network", default="single-as", choices=["single-as", "multi-as"])
    _add_scale(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_trace = sub.add_parser(
        "trace",
        help="run a scenario under the observability instruments; write a "
        "registry snapshot, or (--timeline) a causal window timeline with "
        "straggler blame and what-if mapping replay",
    )
    p_trace.add_argument("network", nargs="?", default="single-as",
                         choices=["single-as", "multi-as"])
    p_trace.add_argument("app", nargs="?", default="scalapack",
                         choices=["scalapack", "gridnpb"])
    p_trace.add_argument("--timeline", action="store_true",
                         help="run on the parallel engine with the structured "
                         "tracer: Chrome trace JSON to --out, per-LP blame "
                         "table, critical path, what-if mapping scores")
    p_trace.add_argument("--out", metavar="PATH", default="obs_trace.json",
                         help="output path (default: obs_trace.json); registry "
                         "snapshot, or Chrome trace JSON with --timeline")
    p_trace.add_argument("--format", dest="fmt", default="json",
                         choices=["json", "prom"],
                         help="snapshot format (default: json; ignored with "
                         "--timeline)")
    p_trace.add_argument("--duration", type=float, default=None,
                         help="simulated seconds to trace "
                         "(default: the scale's profiling duration)")
    p_trace.add_argument("--approach", default="PROF",
                         choices=["TOP", "TOP2", "PROF", "PROF2", "HTOP", "HPROF"],
                         help="mapping approach: the profile consumer to "
                         "validate (snapshot mode) or the base mapping of the "
                         "traced run (--timeline; default: PROF)")
    p_trace.add_argument("--trace-capacity", type=int, default=None,
                         help="per-channel trace ring capacity for --timeline "
                         "(default: %d)" % _default_trace_capacity())
    _add_scale(p_trace)
    p_trace.set_defaults(fn=cmd_trace)

    p_claims = sub.add_parser(
        "claims", help="evaluate the paper's headline claims (exit 1 on failure)"
    )
    _add_scale(p_claims)
    p_claims.set_defaults(fn=cmd_claims)

    p_sync = sub.add_parser("synccost", help="print the Figure 5 sync cost model")
    p_sync.set_defaults(fn=cmd_synccost)

    p_bench = sub.add_parser(
        "bench",
        help="run the event/packet hot-path benchmarks, write BENCH_<date>.json, "
        "compare against the previous file (exit 1 on regression)",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced workload for CI smoke runs (compared "
                         "only against other --quick documents)")
    p_bench.add_argument("--out-dir", default=".", metavar="DIR",
                         help="where BENCH_<date>.json is written and previous "
                         "files are looked up (default: repo root)")
    p_bench.add_argument("--threshold", type=float, default=0.8,
                         help="better-direction ratio below which a metric is "
                         "a regression (default: 0.8)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--suite", choices=["hotpath", "parallel", "all"],
                         default="all",
                         help="hotpath: queue/packet benchmarks; parallel: "
                         "executed multi-process speedup vs the cost model; "
                         "all (default): both")
    p_bench.set_defaults(fn=cmd_bench)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection scenario and print the "
        "convergence/recovery report (exit 1 if the network did not heal)",
    )
    p_chaos.add_argument("network", choices=["single-as", "multi-as"])
    p_chaos.add_argument("app", choices=["scalapack", "gridnpb"])
    p_chaos.add_argument("--scenario", default="chaos-mixed",
                         choices=["link-flap", "router-restart", "loss-burst",
                                  "chaos-mixed"],
                         help="built-in fault scenario (default: chaos-mixed)")
    p_chaos.add_argument("--spec", metavar="PATH", default=None,
                         help="JSON FaultScenario spec overriding --scenario")
    p_chaos.add_argument("--duration", type=float, default=None,
                         help="simulated seconds (default: the scale's duration)")
    p_chaos.add_argument("--obs-out", dest="obs_out", metavar="PATH", default=None,
                         help="write the run's observability snapshot (JSON)")
    p_chaos.add_argument("--kill-workers", dest="kill_workers", type=int,
                         default=None, metavar="N",
                         help="process-level chaos instead of network faults: "
                         "SIGKILL N workers of a multi-process run at seeded "
                         "random windows and verify the recovered delivery "
                         "log byte-matches an uninterrupted reference (the "
                         "app argument is ignored: only the packet-mediated "
                         "UDP workload shards)")
    p_chaos.add_argument("--procs", type=int, default=2,
                         help="worker processes for --kill-workers (default: 2)")
    p_chaos.add_argument("--checkpoint-every", dest="checkpoint_every",
                         type=int, default=8, metavar="N",
                         help="checkpoint cadence for --kill-workers "
                         "(default: 8 windows)")
    p_chaos.add_argument("--max-respawns", dest="max_respawns", type=int,
                         default=2, metavar="K",
                         help="respawn budget per shard for --kill-workers "
                         "(default: 2)")
    p_chaos.add_argument("--on-worker-loss", dest="on_worker_loss",
                         choices=["respawn", "adopt", "fail"],
                         default="respawn",
                         help="escalation after the respawn budget for "
                         "--kill-workers (default: respawn)")
    _add_scale(p_chaos)
    p_chaos.set_defaults(fn=cmd_chaos)

    p_lint = sub.add_parser(
        "lint", help="run simlint static analysis (exit 1 on error findings)"
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=cmd_lint)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
