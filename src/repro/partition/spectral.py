"""Spectral bisection baseline (Fiedler-vector split).

Provided as an alternative partitioner for the ablation benchmark: it
optimizes the same balanced-min-cut objective as the multilevel scheme but
via the second eigenvector of the graph Laplacian, ignoring vertex weights
beyond the median split.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .graph import WeightedGraph
from .kway import PartitionResult, extract_subgraph

__all__ = ["spectral_bisect", "spectral_partition_kway"]


def _laplacian(graph: WeightedGraph) -> sp.csr_matrix:
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    adj = sp.csr_matrix((graph.adjwgt, (src, graph.adjncy)), shape=(n, n))
    deg = sp.diags(np.asarray(adj.sum(axis=1)).ravel())
    return (deg - adj).tocsr()


def spectral_bisect(graph: WeightedGraph, seed: int = 0) -> np.ndarray:
    """Bisect by the sign structure of the Fiedler vector.

    The split point is chosen as the weighted median of the Fiedler
    ordering so the two sides carry (approximately) equal vertex weight.
    """
    n = graph.num_vertices
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    if n <= 3:
        # Tiny graphs: exact weighted split of an arbitrary order.
        order = np.argsort(-graph.vwgt, kind="stable")
        part = np.zeros(n, dtype=np.int64)
        running, total = 0.0, graph.total_vertex_weight
        for v in order:
            if running < total / 2:
                part[v] = 0
                running += graph.vwgt[v]
            else:
                part[v] = 1
        return part

    lap = _laplacian(graph).astype(np.float64)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    try:
        # Shift-invert Lanczos around a small negative sigma: orders of
        # magnitude faster than which='SM' and safe on the (singular)
        # Laplacian because the shift keeps lap - sigma*I invertible.
        _, vecs = spla.eigsh(
            lap, k=2, sigma=-1e-3, which="LM", v0=v0, maxiter=5000, tol=1e-6
        )
        fiedler = vecs[:, 1]
    except Exception:
        # Dense fallback for stubborn small systems.
        vals, vecs = np.linalg.eigh(lap.toarray())
        fiedler = vecs[:, np.argsort(vals)[1]]

    order = np.argsort(fiedler, kind="stable")
    cum = np.cumsum(graph.vwgt[order])
    total = cum[-1]
    split = int(np.searchsorted(cum, total / 2.0)) + 1
    split = min(max(split, 1), n - 1)
    part = np.ones(n, dtype=np.int64)
    part[order[:split]] = 0
    return part


def spectral_partition_kway(
    graph: WeightedGraph, num_parts: int, seed: int = 0
) -> PartitionResult:
    """Recursive spectral bisection into ``num_parts`` (powers of 2 exact)."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    assignment = np.zeros(n, dtype=np.int64)
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, int(num_parts))
    ]
    while stack:
        vertices, offset, k = stack.pop()
        if k == 1 or vertices.size <= 1:
            assignment[vertices] = offset
            continue
        sub, back = extract_subgraph(graph, vertices)
        part = spectral_bisect(sub, seed)
        k0 = (k + 1) // 2
        side0, side1 = back[part == 0], back[part == 1]
        if side0.size == 0 or side1.size == 0:
            half = max(1, vertices.size // 2)
            side0, side1 = vertices[:half], vertices[half:]
        stack.append((side0, offset, k0))
        stack.append((side1, offset + k0, k - k0))
    return PartitionResult.from_assignment(graph, assignment, num_parts)
