"""Compressed sparse row weighted graph used by the partitioner.

This is the substrate under every load-balance approach in the paper:
the virtual network is converted into a :class:`WeightedGraph` whose vertex
weights estimate simulation load and whose edge weights encode the cost of
cutting a link (derived from link latency and/or profiled traffic), and the
graph is then handed to a METIS-like multilevel partitioner
(:mod:`repro.partition.kway`).

The structure is deliberately close to the METIS CSR input format
(``xadj`` / ``adjncy`` / ``adjwgt`` / ``vwgt``) with one extension: every
edge also carries its *link latency* ``adjlat`` so that partition
post-processing can compute the achieved Minimum Link Latency (MLL) across
partitions, the quantity the paper's hierarchical approach optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["WeightedGraph", "GraphContraction"]


def _as_f64(a: Sequence[float] | np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64))


def _as_i64(a: Sequence[int] | np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.int64))


@dataclass(frozen=True)
class GraphContraction:
    """Result of contracting a :class:`WeightedGraph`.

    Attributes
    ----------
    coarse:
        The contracted graph. Vertex ``c`` aggregates every fine vertex
        ``v`` with ``labels[v] == c``; its weight is the sum of the fine
        weights. Parallel fine edges between two clusters are merged by
        *summing* their edge weights and keeping the *minimum* latency
        (the smallest latency of any physical link between the clusters
        bounds the achievable MLL if the boundary is cut there).
    labels:
        ``labels[v]`` is the coarse vertex containing fine vertex ``v``.
    """

    coarse: "WeightedGraph"
    labels: np.ndarray

    def project(self, coarse_part: np.ndarray) -> np.ndarray:
        """Lift a partition vector of the coarse graph back to fine vertices."""
        coarse_part = _as_i64(coarse_part)
        if coarse_part.shape[0] != self.coarse.num_vertices:
            raise ValueError(
                f"partition has {coarse_part.shape[0]} entries, coarse graph "
                f"has {self.coarse.num_vertices} vertices"
            )
        return coarse_part[self.labels]


class WeightedGraph:
    """Undirected weighted graph in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``. Vertices are ``0..n-1``.
    edges_u, edges_v:
        Endpoint arrays of the ``m`` undirected edges. Self loops are
        rejected; parallel edges are merged (weights summed, minimum
        latency kept).
    edge_weight:
        Partitioning edge weight (non-negative). Defaults to 1.0.
    edge_latency:
        Physical link latency in **seconds** (positive). Defaults to
        ``inf`` meaning "latency unknown / not a constraint".
    vertex_weight:
        Load estimate per vertex (non-negative). Defaults to 1.0.

    Notes
    -----
    The adjacency is stored both ways, so ``xadj``/``adjncy`` have ``2m``
    entries. All arrays are immutable by convention; mutating them breaks
    cached invariants.
    """

    __slots__ = ("xadj", "adjncy", "adjwgt", "adjlat", "vwgt", "_total_vwgt")

    def __init__(
        self,
        num_vertices: int,
        edges_u: Sequence[int] | np.ndarray,
        edges_v: Sequence[int] | np.ndarray,
        edge_weight: Sequence[float] | np.ndarray | None = None,
        edge_latency: Sequence[float] | np.ndarray | None = None,
        vertex_weight: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        n = int(num_vertices)
        if n < 0:
            raise ValueError("num_vertices must be non-negative")
        u = _as_i64(edges_u)
        v = _as_i64(edges_v)
        if u.shape != v.shape:
            raise ValueError("edges_u and edges_v must have equal length")
        m = u.shape[0]
        if m and (u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n):
            raise ValueError("edge endpoint out of range")
        if np.any(u == v):
            raise ValueError("self loops are not allowed")

        w = _as_f64(edge_weight) if edge_weight is not None else np.ones(m)
        lat = _as_f64(edge_latency) if edge_latency is not None else np.full(m, np.inf)
        if w.shape[0] != m or lat.shape[0] != m:
            raise ValueError("edge attribute length mismatch")
        if m and w.min() < 0:
            raise ValueError("edge weights must be non-negative")
        if m and np.any(lat <= 0):
            raise ValueError("edge latencies must be positive")

        vw = _as_f64(vertex_weight) if vertex_weight is not None else np.ones(n)
        if vw.shape[0] != n:
            raise ValueError("vertex_weight length mismatch")
        if n and vw.min() < 0:
            raise ValueError("vertex weights must be non-negative")

        # Merge parallel edges: canonicalize (min, max), group.
        if m:
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            key = lo * n + hi
            order = np.argsort(key, kind="stable")
            key_s = key[order]
            uniq_mask = np.empty(m, dtype=bool)
            uniq_mask[0] = True
            np.not_equal(key_s[1:], key_s[:-1], out=uniq_mask[1:])
            group = np.cumsum(uniq_mask) - 1
            n_uniq = int(group[-1]) + 1
            w_m = np.zeros(n_uniq)
            np.add.at(w_m, group, w[order])
            lat_m = np.full(n_uniq, np.inf)
            np.minimum.at(lat_m, group, lat[order])
            lo_m = lo[order][uniq_mask]
            hi_m = hi[order][uniq_mask]
        else:
            lo_m = hi_m = np.empty(0, dtype=np.int64)
            w_m = lat_m = np.empty(0)

        # Build symmetric CSR.
        src = np.concatenate([lo_m, hi_m])
        dst = np.concatenate([hi_m, lo_m])
        ew = np.concatenate([w_m, w_m])
        el = np.concatenate([lat_m, lat_m])
        order = np.argsort(src, kind="stable")
        src, dst, ew, el = src[order], dst[order], ew[order], el[order]
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.add.at(xadj, src + 1, 1)
        np.cumsum(xadj, out=xadj)

        self.xadj = xadj
        self.adjncy = dst
        self.adjwgt = ew
        self.adjlat = el
        self.vwgt = vw
        self._total_vwgt = float(vw.sum())

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.vwgt.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.adjncy.shape[0] // 2

    @property
    def total_vertex_weight(self) -> float:
        """Sum of all vertex weights."""
        return self._total_vwgt

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor vertex ids of ``v`` (a CSR view; do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors` (a CSR view)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_latencies(self, v: int) -> np.ndarray:
        """Edge latencies aligned with :meth:`neighbors` (a CSR view)."""
        return self.adjlat[self.xadj[v] : self.xadj[v + 1]]

    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(u, v, weight, latency)`` with each undirected edge once."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.xadj))
        keep = src < self.adjncy
        return src[keep], self.adjncy[keep], self.adjwgt[keep], self.adjlat[keep]

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"total_vwgt={self._total_vwgt:g})"
        )

    # ------------------------------------------------------------------
    # Partition-related quantities
    # ------------------------------------------------------------------
    def _check_partition(self, part: np.ndarray) -> np.ndarray:
        part = _as_i64(part)
        if part.shape[0] != self.num_vertices:
            raise ValueError(
                f"partition has {part.shape[0]} entries for "
                f"{self.num_vertices} vertices"
            )
        return part

    def validate_partition(self, part: Sequence[int] | np.ndarray, num_parts: int) -> None:
        """Validate an assignment vector against this graph.

        Delegates to :func:`repro.analysis.validate_partition` (coverage,
        range, occupancy, and weight-accounting checks) and raises
        :class:`repro.analysis.PartitionValidationError` on violation.
        Partitioners call this at their construction boundary so a bad
        assignment fails loudly instead of skewing metrics.
        """
        from ..analysis.partition_check import validate_partition

        validate_partition(self, part, num_parts)

    def edge_cut(self, part: Sequence[int] | np.ndarray) -> float:
        """Total weight of edges whose endpoints land in different parts."""
        part = self._check_partition(part)
        u, v, w, _ = self.edge_list()
        return float(w[part[u] != part[v]].sum())

    def cut_edges(
        self, part: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The ``(u, v, weight, latency)`` arrays of edges crossing the cut."""
        part = self._check_partition(part)
        u, v, w, lat = self.edge_list()
        mask = part[u] != part[v]
        return u[mask], v[mask], w[mask], lat[mask]

    def min_cut_latency(self, part: Sequence[int] | np.ndarray) -> float:
        """Achieved MLL: the minimum latency over edges crossing the cut.

        Returns ``inf`` when no edge is cut (single partition or
        disconnected parts), matching the paper's definition that the
        lookahead of a conservative engine is bounded by the smallest
        cross-partition link latency.
        """
        _, _, _, lat = self.cut_edges(part)
        return float(lat.min()) if lat.size else float("inf")

    def partition_weights(
        self, part: Sequence[int] | np.ndarray, num_parts: int | None = None
    ) -> np.ndarray:
        """Sum of vertex weights per partition."""
        part = self._check_partition(part)
        k = int(num_parts) if num_parts is not None else (int(part.max()) + 1 if part.size else 0)
        out = np.zeros(k)
        np.add.at(out, part, self.vwgt)
        return out

    def balance(self, part: Sequence[int] | np.ndarray, num_parts: int | None = None) -> float:
        """Imbalance ratio ``max_part_weight / ideal_part_weight`` (>= 1)."""
        weights = self.partition_weights(part, num_parts)
        if weights.size == 0 or self._total_vwgt == 0:
            return 1.0
        ideal = self._total_vwgt / weights.size
        return float(weights.max() / ideal) if ideal > 0 else 1.0

    # ------------------------------------------------------------------
    # Structure operations
    # ------------------------------------------------------------------
    def connected_components(self) -> np.ndarray:
        """Label vertices by connected component (0-based, BFS order)."""
        n = self.num_vertices
        labels = np.full(n, -1, dtype=np.int64)
        comp = 0
        for seed in range(n):
            if labels[seed] >= 0:
                continue
            stack = [seed]
            labels[seed] = comp
            while stack:
                x = stack.pop()
                for y in self.neighbors(x):
                    if labels[y] < 0:
                        labels[y] = comp
                        stack.append(int(y))
            comp += 1
        return labels

    def is_connected(self) -> bool:
        """True when every vertex is reachable from vertex 0 (or empty)."""
        if self.num_vertices == 0:
            return True
        return bool(self.connected_components().max() == 0)

    def contract(self, labels: Sequence[int] | np.ndarray) -> GraphContraction:
        """Contract vertices sharing a label into single coarse vertices.

        ``labels`` must be dense ``0..k-1``. Intra-cluster edges vanish;
        inter-cluster parallel edges merge (weights summed, min latency).
        This single primitive serves both multilevel coarsening (labels
        from a matching) and the paper's hierarchical collapse (labels
        from connected components of the sub-threshold-latency subgraph).
        """
        labels = _as_i64(labels)
        if labels.shape[0] != self.num_vertices:
            raise ValueError("labels length mismatch")
        k = int(labels.max()) + 1 if labels.size else 0
        if labels.size and (labels.min() < 0 or len(np.unique(labels)) != k):
            raise ValueError("labels must be dense 0..k-1")

        cvwgt = np.zeros(k)
        np.add.at(cvwgt, labels, self.vwgt)

        u, v, w, lat = self.edge_list()
        cu, cv = labels[u], labels[v]
        keep = cu != cv
        coarse = WeightedGraph(k, cu[keep], cv[keep], w[keep], lat[keep], cvwgt)
        return GraphContraction(coarse=coarse, labels=labels)

    def collapse_below_latency(self, threshold: float) -> GraphContraction:
        """Merge every vertex pair joined by an edge with latency < threshold.

        This is the graph-reduction step of the paper's hierarchical
        partitioning (Section 3.4.3): the returned coarse graph ``Gd(Tmll)``
        contains no edge with latency below ``threshold``, so any partition
        of it achieves ``MLL >= threshold``.
        """
        u, v, _, lat = self.edge_list()
        mask = lat < threshold
        sub = WeightedGraph(self.num_vertices, u[mask], v[mask])
        labels = sub.connected_components()
        return self.contract(labels)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(
        cls,
        g,
        weight_attr: str = "weight",
        latency_attr: str = "latency",
        vertex_weight_attr: str = "vwgt",
    ) -> "WeightedGraph":
        """Build from a :class:`networkx.Graph` with integer nodes ``0..n-1``."""
        n = g.number_of_nodes()
        if set(g.nodes) != set(range(n)):
            raise ValueError("networkx graph nodes must be 0..n-1")
        us, vs, ws, ls = [], [], [], []
        for a, b, data in g.edges(data=True):
            us.append(a)
            vs.append(b)
            ws.append(data.get(weight_attr, 1.0))
            ls.append(data.get(latency_attr, np.inf))
        vw = [g.nodes[i].get(vertex_weight_attr, 1.0) for i in range(n)]
        return cls(n, us, vs, ws, ls, vw)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with weight/latency attributes."""
        import networkx as nx

        g = nx.Graph()
        for i in range(self.num_vertices):
            g.add_node(i, vwgt=float(self.vwgt[i]))
        u, v, w, lat = self.edge_list()
        for a, b, ww, ll in zip(u, v, w, lat):
            g.add_edge(int(a), int(b), weight=float(ww), latency=float(ll))
        return g

    def with_weights(
        self,
        vertex_weight: Sequence[float] | np.ndarray | None = None,
        edge_weight: Sequence[float] | np.ndarray | None = None,
    ) -> "WeightedGraph":
        """Copy of the graph with replaced vertex and/or edge weights.

        ``edge_weight`` is given per undirected edge in :meth:`edge_list`
        order.
        """
        u, v, w, lat = self.edge_list()
        if edge_weight is not None:
            w = _as_f64(edge_weight)
            if w.shape[0] != u.shape[0]:
                raise ValueError("edge_weight length mismatch")
        vw = self.vwgt if vertex_weight is None else vertex_weight
        return WeightedGraph(self.num_vertices, u, v, w, lat, vw)
