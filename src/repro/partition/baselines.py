"""Baseline partitioners the paper and its related work compare against.

- random / round-robin: the naive mappings used to bootstrap profiling runs,
- BFS blocks: contiguous chunks of a breadth-first order (simple locality),
- greedy k-cluster: ModelNet's scheme (Yocum et al., MASCOTS 2003) — seed k
  clusters at random vertices and greedily grow them round-robin along links.
"""

from __future__ import annotations

import numpy as np

from .graph import WeightedGraph
from .kway import PartitionResult

__all__ = [
    "random_partition",
    "round_robin_partition",
    "bfs_block_partition",
    "greedy_k_cluster",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def random_partition(
    graph: WeightedGraph, num_parts: int, seed: int | np.random.Generator = 0
) -> PartitionResult:
    """Uniformly random assignment (the profiling bootstrap mapping)."""
    rng = _rng(seed)
    assignment = rng.integers(0, num_parts, size=graph.num_vertices, dtype=np.int64)
    return PartitionResult.from_assignment(graph, assignment, num_parts)


def round_robin_partition(graph: WeightedGraph, num_parts: int) -> PartitionResult:
    """Vertex ``v`` goes to part ``v mod k`` — perfectly count-balanced."""
    assignment = np.arange(graph.num_vertices, dtype=np.int64) % num_parts
    return PartitionResult.from_assignment(graph, assignment, num_parts)


def bfs_block_partition(
    graph: WeightedGraph, num_parts: int, seed: int | np.random.Generator = 0
) -> PartitionResult:
    """Split a BFS ordering into ``k`` contiguous equal-weight blocks."""
    rng = _rng(seed)
    n = graph.num_vertices
    order: list[int] = []
    visited = np.zeros(n, dtype=bool)
    for seed_v in rng.permutation(n):
        if visited[seed_v]:
            continue
        queue = [int(seed_v)]
        visited[seed_v] = True
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order.append(v)
            for u in graph.neighbors(v):
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
    order_arr = np.asarray(order, dtype=np.int64)
    cum = np.cumsum(graph.vwgt[order_arr])
    total = cum[-1] if cum.size else 0.0
    assignment = np.zeros(n, dtype=np.int64)
    if total > 0:
        boundaries = total * np.arange(1, num_parts) / num_parts
        blocks = np.searchsorted(boundaries, cum, side="left")
        assignment[order_arr] = np.minimum(blocks, num_parts - 1)
    return PartitionResult.from_assignment(graph, assignment, num_parts)


def greedy_k_cluster(
    graph: WeightedGraph, num_parts: int, seed: int | np.random.Generator = 0
) -> PartitionResult:
    """ModelNet's greedy k-cluster mapping.

    Select ``k`` random seed vertices, then in round-robin fashion each
    cluster absorbs one unassigned vertex adjacent to its current frontier
    (preferring the heaviest connecting edge). Orphan vertices (disconnected
    remainder) are swept into the lightest cluster.
    """
    rng = _rng(seed)
    n = graph.num_vertices
    k = min(num_parts, n) if n else num_parts
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return PartitionResult.from_assignment(graph, np.zeros(0, dtype=np.int64), num_parts)

    seeds = rng.choice(n, size=k, replace=False)
    frontiers: list[list[int]] = [[] for _ in range(k)]
    for c, s in enumerate(seeds):
        assignment[s] = c
        frontiers[c].append(int(s))

    remaining = n - k
    active = list(range(k))
    while remaining > 0 and active:
        next_active = []
        for c in active:
            # Find the best unassigned neighbor of this cluster's frontier.
            best_v, best_w = -1, -1.0
            new_frontier = []
            for v in frontiers[c]:
                nbrs = graph.neighbors(v)
                wts = graph.neighbor_weights(v)
                open_mask = assignment[nbrs] < 0
                if open_mask.any():
                    new_frontier.append(v)
                    i = int(np.argmax(np.where(open_mask, wts, -np.inf)))
                    if wts[i] > best_w and open_mask[i]:
                        best_v, best_w = int(nbrs[i]), float(wts[i])
            frontiers[c] = new_frontier
            if best_v >= 0:
                assignment[best_v] = c
                frontiers[c].append(best_v)
                remaining -= 1
                next_active.append(c)
        active = next_active

    if remaining > 0:
        weights = graph.partition_weights(np.where(assignment < 0, 0, assignment), k)
        for v in np.flatnonzero(assignment < 0):
            c = int(np.argmin(weights))
            assignment[v] = c
            weights[c] += graph.vwgt[v]
    return PartitionResult.from_assignment(graph, assignment, num_parts)
