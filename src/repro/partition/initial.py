"""Initial bisection of the coarsest graph.

METIS uses greedy graph growing (GGGP): grow a region from a random seed,
repeatedly absorbing the boundary vertex with the best cut gain, until the
region holds the target share of total vertex weight. Several trials are
run and the best (feasible, lowest-cut) bisection is kept.
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph import WeightedGraph

__all__ = ["greedy_graph_growing", "best_bisection"]


def greedy_graph_growing(
    graph: WeightedGraph,
    rng: np.random.Generator,
    target_fraction: float = 0.5,
    seed_vertex: int | None = None,
) -> np.ndarray:
    """Grow partition 0 from a seed until it holds ``target_fraction`` weight.

    Returns a 0/1 partition vector. The growth front is a max-gain heap
    where the gain of moving ``v`` into the region is
    ``(edge weight to region) - (edge weight to outside)``; absorbing
    high-gain vertices keeps the running cut small.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if not 0.0 < target_fraction < 1.0:
        raise ValueError("target_fraction must be in (0, 1)")
    total = graph.total_vertex_weight
    target = target_fraction * total

    part = np.ones(n, dtype=np.int64)
    seed = int(seed_vertex) if seed_vertex is not None else int(rng.integers(n))
    in_region = np.zeros(n, dtype=bool)

    # gain[v] tracked lazily: heap entries may be stale, validated on pop.
    gain = np.empty(n)
    ext = graph.adjwgt  # alias
    for v in range(n):
        gain[v] = -float(ext[graph.xadj[v] : graph.xadj[v + 1]].sum())

    heap: list[tuple[float, int, int]] = []
    stamp = np.zeros(n, dtype=np.int64)

    def push(v: int) -> None:
        stamp[v] += 1
        heapq.heappush(heap, (-gain[v], int(stamp[v]), v))

    region_weight = 0.0

    def absorb(v: int) -> None:
        nonlocal region_weight
        in_region[v] = True
        part[v] = 0
        region_weight += float(graph.vwgt[v])
        lo, hi = graph.xadj[v], graph.xadj[v + 1]
        for idx in range(lo, hi):
            u = int(graph.adjncy[idx])
            if not in_region[u]:
                gain[u] += 2.0 * float(graph.adjwgt[idx])
                push(u)

    absorb(seed)
    while region_weight < target and heap:
        while heap:
            neg_g, st, v = heapq.heappop(heap)
            if in_region[v] or st != stamp[v]:
                continue
            break
        else:  # pragma: no cover - loop exhausted without break
            break
        if in_region[v] or st != stamp[v]:
            break
        # Stop before overshooting badly past the target.
        vw = float(graph.vwgt[v])
        if region_weight + vw > target and region_weight > 0.5 * target:
            overshoot = region_weight + vw - target
            undershoot = target - region_weight
            if overshoot > undershoot:
                break
        absorb(v)

    # The frontier may dry up in a disconnected graph: top up with the
    # lightest remaining vertices until the balance target is met.
    if region_weight < target:
        remaining = np.flatnonzero(~in_region)
        order = remaining[np.argsort(graph.vwgt[remaining], kind="stable")]
        for v in order:
            if region_weight >= target:
                break
            in_region[v] = True
            part[v] = 0
            region_weight += float(graph.vwgt[v])
    return part


def best_bisection(
    graph: WeightedGraph,
    rng: np.random.Generator,
    target_fraction: float = 0.5,
    trials: int = 4,
    imbalance_tolerance: float = 1.10,
) -> np.ndarray:
    """Run several greedy-growing trials; keep the best feasible bisection.

    Feasible means neither side exceeds ``tolerance *`` its target weight;
    among feasible candidates the minimum cut wins, with balance as the
    tie-break. If no trial is feasible the least-imbalanced one is kept.
    """
    n = graph.num_vertices
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    total = graph.total_vertex_weight
    targets = np.array([target_fraction * total, (1 - target_fraction) * total])

    best: np.ndarray | None = None
    best_key: tuple[int, float, float] | None = None
    for t in range(max(1, trials)):
        part = greedy_graph_growing(graph, rng, target_fraction)
        weights = graph.partition_weights(part, 2)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(targets > 0, weights / targets, 1.0)
        imbalance = float(np.nanmax(ratio)) if np.isfinite(ratio).any() else 1.0
        cut = graph.edge_cut(part)
        feasible = 0 if imbalance <= imbalance_tolerance else 1
        key = (feasible, cut if feasible == 0 else imbalance, imbalance)
        if best_key is None or key < best_key:
            best, best_key = part, key
    assert best is not None
    return best
