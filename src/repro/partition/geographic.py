"""Geographic partitioning baseline: recursive coordinate bisection.

Early parallel network simulators partitioned by geography — split the
plane along the wider axis into equal-weight halves, recurse. It needs
node coordinates rather than the graph, ignores traffic entirely, and is
a natural baseline for geographic topologies: good MLL (cuts tend to be
long-haul links) but indifferent load balance.
"""

from __future__ import annotations

import numpy as np

from .graph import WeightedGraph
from .kway import PartitionResult

__all__ = ["coordinate_bisection"]


def coordinate_bisection(
    graph: WeightedGraph,
    positions: np.ndarray,
    num_parts: int,
) -> PartitionResult:
    """Recursive coordinate bisection over node positions.

    ``positions`` is ``(n, 2)`` (miles). Each split divides the current
    cell along its wider spatial axis at the weighted median, assigning
    ``ceil(k/2)`` parts to one side — so arbitrary ``num_parts`` stay
    weight-balanced.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = graph.num_vertices
    if positions.shape != (n, 2):
        raise ValueError(f"positions must be ({n}, 2)")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")

    assignment = np.zeros(n, dtype=np.int64)
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, int(num_parts))
    ]
    while stack:
        vertices, offset, k = stack.pop()
        if k == 1 or vertices.size == 0:
            assignment[vertices] = offset
            continue
        k0 = (k + 1) // 2
        pts = positions[vertices]
        spans = pts.max(axis=0) - pts.min(axis=0) if vertices.size else np.zeros(2)
        axis = int(np.argmax(spans))
        order = vertices[np.argsort(pts[:, axis], kind="stable")]
        weights = graph.vwgt[order]
        cum = np.cumsum(weights)
        total = cum[-1] if cum.size else 0.0
        target = total * k0 / k
        split = int(np.searchsorted(cum, target)) + 1
        split = min(max(split, 1), order.size - 1) if order.size > 1 else 0
        stack.append((order[:split], offset, k0))
        stack.append((order[split:], offset + k0, k - k0))

    return PartitionResult.from_assignment(graph, assignment, num_parts)
