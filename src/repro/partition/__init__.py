"""METIS-like multilevel graph partitioning substrate.

The paper partitions the virtual network graph with METIS; this package
is a from-scratch reimplementation of that contract: balanced vertex
weights, minimized edge cut, fast enough to sweep thousands of candidate
thresholds (Section 3.4.3 of the paper).

Public API
----------
:class:`WeightedGraph`
    CSR weighted graph with per-edge link latency.
:func:`partition_kway`
    Multilevel k-way partitioner (heavy-edge matching, greedy growing,
    boundary FM, recursive bisection).
Baselines
    :func:`random_partition`, :func:`round_robin_partition`,
    :func:`bfs_block_partition`, :func:`greedy_k_cluster`,
    :func:`spectral_partition_kway`.
"""

from .baselines import (
    bfs_block_partition,
    greedy_k_cluster,
    random_partition,
    round_robin_partition,
)
from .geographic import coordinate_bisection
from .coarsen import CoarseningLevel, coarsen, coarsen_once, heavy_edge_matching
from .graph import GraphContraction, WeightedGraph
from .initial import best_bisection, greedy_graph_growing
from .kway import PartitionResult, extract_subgraph, multilevel_bisect, partition_kway
from .rebalance import (
    MigrationDecision,
    RebalanceConfig,
    Rebalancer,
    lp_affinity,
    slowdown_spans,
    span_multipliers,
)
from .refine import balance_partition, fm_refine, kway_refine
from .spectral import spectral_bisect, spectral_partition_kway

__all__ = [
    "WeightedGraph",
    "GraphContraction",
    "PartitionResult",
    "partition_kway",
    "multilevel_bisect",
    "extract_subgraph",
    "coarsen",
    "coarsen_once",
    "heavy_edge_matching",
    "CoarseningLevel",
    "best_bisection",
    "greedy_graph_growing",
    "fm_refine",
    "balance_partition",
    "kway_refine",
    "random_partition",
    "round_robin_partition",
    "bfs_block_partition",
    "greedy_k_cluster",
    "coordinate_bisection",
    "spectral_bisect",
    "spectral_partition_kway",
    "RebalanceConfig",
    "MigrationDecision",
    "Rebalancer",
    "slowdown_spans",
    "span_multipliers",
    "lp_affinity",
]
