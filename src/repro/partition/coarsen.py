"""Graph coarsening via heavy-edge matching (the METIS HEM scheme).

Multilevel partitioning repeatedly contracts a maximal matching of the
graph, preferring heavy edges so that large edge weights are hidden inside
coarse vertices and cannot be cut. Coarsening stops when the graph is small
enough for the initial partitioner or stops shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import GraphContraction, WeightedGraph

__all__ = ["heavy_edge_matching", "coarsen_once", "coarsen", "CoarseningLevel"]


def heavy_edge_matching(
    graph: WeightedGraph,
    rng: np.random.Generator,
    max_vertex_weight: float | None = None,
) -> np.ndarray:
    """Compute a maximal matching preferring heavy edges.

    Vertices are visited in random order; an unmatched vertex is matched
    with its unmatched neighbor of maximum edge weight (ties broken by
    smaller resulting vertex weight). Returns dense cluster labels
    ``0..k-1`` where matched pairs share a label.

    Parameters
    ----------
    max_vertex_weight:
        If given, a match is skipped when the merged vertex weight would
        exceed this cap — this keeps coarse vertices partitionable.
    """
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt

    for v in order:
        if match[v] >= 0:
            continue
        best = -1
        best_w = -1.0
        best_vw = np.inf
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if match[u] >= 0:
                continue
            if max_vertex_weight is not None and vwgt[v] + vwgt[u] > max_vertex_weight:
                continue
            w = adjwgt[idx]
            if w > best_w or (w == best_w and vwgt[u] < best_vw):
                best, best_w, best_vw = int(u), float(w), float(vwgt[u])
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v  # matched with itself

    # Densify labels: representative is min(v, match[v]).
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    uniq, labels = np.unique(rep, return_inverse=True)
    del uniq
    return labels.astype(np.int64)


def coarsen_once(
    graph: WeightedGraph,
    rng: np.random.Generator,
    max_vertex_weight: float | None = None,
) -> GraphContraction:
    """One level of heavy-edge-matching contraction."""
    labels = heavy_edge_matching(graph, rng, max_vertex_weight)
    return graph.contract(labels)


@dataclass(frozen=True)
class CoarseningLevel:
    """One level of the multilevel hierarchy (finer graph + contraction)."""

    fine: WeightedGraph
    contraction: GraphContraction


def coarsen(
    graph: WeightedGraph,
    target_vertices: int,
    rng: np.random.Generator,
    shrink_threshold: float = 0.95,
    balance_cap_factor: float = 4.0,
    num_parts: int = 2,
) -> tuple[WeightedGraph, list[CoarseningLevel]]:
    """Coarsen until ``target_vertices`` or the graph stops shrinking.

    Returns the coarsest graph and the list of levels (finest first) needed
    to project a coarse partition back up.

    ``balance_cap_factor`` caps coarse vertex weights at
    ``factor * total / (target_vertices)`` so no coarse vertex
    becomes so heavy that a balanced ``num_parts``-way partition is
    impossible.
    """
    if target_vertices < max(2, num_parts):
        raise ValueError("target_vertices must be >= max(2, num_parts)")
    levels: list[CoarseningLevel] = []
    current = graph
    total = graph.total_vertex_weight
    cap = balance_cap_factor * total / max(target_vertices, 1) if total > 0 else None

    while current.num_vertices > target_vertices:
        contraction = coarsen_once(current, rng, max_vertex_weight=cap)
        coarse = contraction.coarse
        if coarse.num_vertices >= shrink_threshold * current.num_vertices:
            break  # matching saturated (e.g. star graphs); stop early
        levels.append(CoarseningLevel(fine=current, contraction=contraction))
        current = coarse
    return current, levels
