"""Multilevel k-way graph partitioning (recursive bisection driver).

This is the from-scratch stand-in for METIS used throughout the
reproduction: coarsen with heavy-edge matching, bisect the coarsest graph
with greedy graph growing, then uncoarsen with boundary-FM refinement;
k-way partitions come from recursive bisection with proportional weight
targets, so any ``k`` (not just powers of two) is balanced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coarsen import coarsen
from .graph import WeightedGraph
from .initial import best_bisection
from .refine import balance_partition, fm_refine, kway_refine

__all__ = ["PartitionResult", "multilevel_bisect", "partition_kway", "extract_subgraph"]


@dataclass(frozen=True)
class PartitionResult:
    """A k-way partition plus the quality numbers the paper reports."""

    assignment: np.ndarray
    num_parts: int
    edge_cut: float
    balance: float
    min_cut_latency: float

    @classmethod
    def from_assignment(
        cls, graph: WeightedGraph, assignment: np.ndarray, num_parts: int
    ) -> "PartitionResult":
        return cls(
            assignment=np.asarray(assignment, dtype=np.int64),
            num_parts=int(num_parts),
            edge_cut=graph.edge_cut(assignment),
            balance=graph.balance(assignment, num_parts),
            min_cut_latency=graph.min_cut_latency(assignment),
        )


def extract_subgraph(
    graph: WeightedGraph, vertices: np.ndarray
) -> tuple[WeightedGraph, np.ndarray]:
    """Induced subgraph over ``vertices``; returns it plus the old ids.

    The second return value maps subgraph vertex ``i`` back to
    ``vertices[i]`` in the parent graph.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.num_vertices
    newid = np.full(n, -1, dtype=np.int64)
    newid[vertices] = np.arange(vertices.shape[0], dtype=np.int64)
    u, v, w, lat = graph.edge_list()
    mask = (newid[u] >= 0) & (newid[v] >= 0)
    sub = WeightedGraph(
        vertices.shape[0],
        newid[u[mask]],
        newid[v[mask]],
        w[mask],
        lat[mask],
        graph.vwgt[vertices],
    )
    return sub, vertices


def multilevel_bisect(
    graph: WeightedGraph,
    rng: np.random.Generator,
    target_fraction: float = 0.5,
    imbalance_tolerance: float = 1.05,
    coarsen_to: int = 64,
    initial_trials: int = 4,
) -> np.ndarray:
    """Multilevel 2-way partition with an uneven weight target.

    ``target_fraction`` is the desired weight share of side 0.
    """
    n = graph.num_vertices
    if n <= 1:
        return np.zeros(n, dtype=np.int64)

    coarsest, levels = coarsen(graph, max(coarsen_to, 8), rng)
    part = best_bisection(
        coarsest,
        rng,
        target_fraction,
        trials=initial_trials,
        imbalance_tolerance=max(imbalance_tolerance, 1.10),
    )
    part = fm_refine(
        coarsest,
        part,
        (target_fraction, 1 - target_fraction),
        imbalance_tolerance=imbalance_tolerance,
    )

    for level in reversed(levels):
        part = level.contraction.project(part)
        fine = level.fine
        # Repair balance broken by projection before gain-driven refinement.
        weights = fine.partition_weights(part, 2)
        targets = np.array([target_fraction, 1 - target_fraction]) * fine.total_vertex_weight
        if np.any(weights > imbalance_tolerance * np.maximum(targets, 1e-300)):
            part = balance_partition(
                fine, part, (target_fraction, 1 - target_fraction), imbalance_tolerance
            )
        part = fm_refine(
            fine,
            part,
            (target_fraction, 1 - target_fraction),
            imbalance_tolerance=imbalance_tolerance,
        )
    return part


def partition_kway(
    graph: WeightedGraph,
    num_parts: int,
    seed: int | np.random.Generator = 0,
    imbalance_tolerance: float = 1.05,
    coarsen_to: int = 64,
    initial_trials: int = 4,
    kway_refinement: bool = True,
) -> PartitionResult:
    """Partition ``graph`` into ``num_parts`` balanced pieces.

    Recursive bisection: ``k`` parts are split as ``ceil(k/2)`` versus
    ``floor(k/2)`` with a weight target proportional to the split, which
    keeps non-power-of-two part counts balanced. Tolerance is applied per
    bisection, so the final k-way imbalance can slightly exceed it; a
    final direct k-way boundary pass (``kway_refinement``) then moves
    vertices between adjacent parts where the recursive cuts left gains.

    Returns a :class:`PartitionResult`; ``assignment[v]`` is in
    ``0..num_parts-1``.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n = graph.num_vertices
    assignment = np.zeros(n, dtype=np.int64)
    if num_parts == 1 or n == 0:
        return PartitionResult.from_assignment(graph, assignment, num_parts)

    # Work queue of (subgraph vertex ids in parent, part-id offset, k).
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, int(num_parts))
    ]
    while stack:
        vertices, offset, k = stack.pop()
        if k == 1 or vertices.size == 0:
            assignment[vertices] = offset
            continue
        k0 = (k + 1) // 2
        k1 = k - k0
        sub, back = extract_subgraph(graph, vertices)
        part = multilevel_bisect(
            sub,
            rng,
            target_fraction=k0 / k,
            imbalance_tolerance=imbalance_tolerance,
            coarsen_to=max(coarsen_to, 4 * k),
            initial_trials=initial_trials,
        )
        side0 = back[part == 0]
        side1 = back[part == 1]
        # Degenerate split (all vertices one side): force a weight split so
        # recursion terminates even on pathological graphs.
        if side0.size == 0 or side1.size == 0:
            order = vertices[np.argsort(-graph.vwgt[vertices], kind="stable")]
            running = np.cumsum(graph.vwgt[order])
            target = (k0 / k) * running[-1]
            split = int(np.searchsorted(running, target)) + 1
            split = min(max(split, 1), order.size - 1) if order.size > 1 else 0
            side0, side1 = order[:split], order[split:]
        # A side must keep at least as many vertices as the parts it will
        # host, or a part comes out empty (PART403) — the weight target
        # can starve a side when one vertex dominates the total weight.
        # Move the lightest vertices across to cover the deficit.
        if vertices.size >= k:
            if side0.size < k0:
                move = side1[np.argsort(graph.vwgt[side1], kind="stable")]
                move = move[: k0 - side0.size]
                side0 = np.concatenate([side0, move])
                side1 = side1[~np.isin(side1, move)]
            elif side1.size < k1:
                move = side0[np.argsort(graph.vwgt[side0], kind="stable")]
                move = move[: k1 - side1.size]
                side1 = np.concatenate([side1, move])
                side0 = side0[~np.isin(side0, move)]
        stack.append((side0, offset, k0))
        stack.append((side1, offset + k0, k1))

    if kway_refinement and num_parts >= 2:
        assignment = kway_refine(
            graph, assignment, num_parts, imbalance_tolerance=imbalance_tolerance
        )
    return PartitionResult.from_assignment(graph, assignment, num_parts)
